(* The incremental monitor against the batch checker: prefix-equivalence
   on generated executions, undo semantics, and the extension edge cases
   (empty delta, first delta into a previously empty schedule, universe
   growth from the empty prefix). *)
open Repro_model
open Repro_workload
module Compc = Repro_core.Compc
module Monitor = Repro_core.Monitor

let history_of_seed seed =
  let rng = Prng.create ~seed in
  match seed mod 5 with
  | 0 -> Gen.flat rng ~roots:(2 + (seed mod 4))
  | 1 -> Gen.stack rng ~levels:(2 + (seed mod 3)) ~roots:(2 + (seed mod 3))
  | 2 -> Gen.fork rng ~branches:2 ~roots:(3 + (seed mod 2))
  | 3 -> Gen.join rng ~branches:2 ~roots:3
  | _ -> Gen.general rng ~schedules:(3 + (seed mod 3)) ~roots:(3 + (seed mod 2))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let accepted_verdict = function
  | Monitor.Accepted _ -> true
  | Monitor.Rejected _ -> false

let n_roots h = List.length (History.roots h)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

(* A deterministic 2-level stack used by the unit tests. *)
let stack_history () = Gen.stack (Prng.create ~seed:42) ~levels:2 ~roots:4

let test_prefix_chain_shape () =
  let h = stack_history () in
  let k = n_roots h in
  let prev = ref (History.prefix_by_roots h 0) in
  for i = 1 to k do
    let cur = History.prefix_by_roots h i in
    Alcotest.(check bool)
      "node count grows" true
      (History.n_nodes cur > History.n_nodes !prev);
    (* Shared nodes keep identifiers and labels across the chain. *)
    for v = 0 to History.n_nodes !prev - 1 do
      Alcotest.(check bool)
        "shared label stable" true
        (Label.equal (History.label cur v) (History.label !prev v))
    done;
    prev := cur
  done;
  Alcotest.(check int)
    "full prefix spans the history" (History.n_nodes h)
    (History.n_nodes !prev)

let test_full_prefix_verdict () =
  let h = stack_history () in
  let p = History.prefix_by_roots h (n_roots h) in
  Alcotest.(check bool)
    "verdict invariant under prefix relabelling" (Compc.is_correct h)
    (Compc.is_correct p)

let test_monitor_from_empty () =
  (* Universe growth from the empty prefix: every schedule starts empty,
     so the first real append is a delta into fresh schedules. *)
  let h = stack_history () in
  let m = Monitor.create () in
  Alcotest.(check bool) "empty prefix accepted" true (Monitor.accepted m);
  Alcotest.(check int) "no pairs yet" 0 (Monitor.obs_pairs m);
  for k = 0 to n_roots h do
    let p = History.prefix_by_roots h k in
    let v = Monitor.append m p in
    Alcotest.(check bool)
      (Printf.sprintf "prefix %d verdict" k)
      (Compc.is_correct p) (accepted_verdict v)
  done

let test_empty_delta_fastpath () =
  let h = stack_history () in
  let m = Monitor.create () in
  let p = History.prefix_by_roots h 2 in
  let v1 = Monitor.append m p in
  let pairs = Monitor.obs_pairs m in
  (* Re-appending the same prefix is an extension with an empty delta: the
     verdict must be carried on the fast path without a reduction. *)
  let v2 = Monitor.append m (History.prefix_by_roots h 2) in
  Alcotest.(check bool)
    "verdict unchanged" (accepted_verdict v1) (accepted_verdict v2);
  Alcotest.(check int) "pairs unchanged" pairs (Monitor.obs_pairs m);
  Alcotest.(check bool)
    "fast path taken" true
    ((Monitor.stats m).Monitor.fastpath_hits >= 1)

let test_undo_restores () =
  let h = stack_history () in
  let m = Monitor.create () in
  ignore (Monitor.append m (History.prefix_by_roots h 2));
  let acc2 = Monitor.accepted m in
  let pairs2 = Monitor.obs_pairs m in
  let v3 = Monitor.append m (History.prefix_by_roots h 3) in
  Monitor.undo m;
  Alcotest.(check bool) "verdict restored" acc2 (Monitor.accepted m);
  Alcotest.(check int) "pairs restored" pairs2 (Monitor.obs_pairs m);
  Alcotest.(check int)
    "history restored" 2
    (match Monitor.history m with Some p -> n_roots p | None -> -1);
  (* Replaying the rolled-back candidate reproduces its verdict. *)
  let v3' = Monitor.append m (History.prefix_by_roots h 3) in
  Alcotest.(check bool)
    "replay agrees" (accepted_verdict v3) (accepted_verdict v3')

let test_undo_depth () =
  let m = Monitor.create () in
  Alcotest.check_raises "undo before any append"
    (Invalid_argument "Monitor.undo: no snapshot held (undo depth is one)")
    (fun () -> Monitor.undo m);
  let h = stack_history () in
  ignore (Monitor.append m (History.prefix_by_roots h 1));
  Monitor.undo m;
  Alcotest.(check bool) "back to empty" true (Monitor.history m = None);
  Alcotest.check_raises "second undo"
    (Invalid_argument "Monitor.undo: no snapshot held (undo depth is one)")
    (fun () -> Monitor.undo m)

let test_non_extension_rejected () =
  let h = stack_history () in
  let m = Monitor.create () in
  ignore (Monitor.append m (History.prefix_by_roots h 3));
  Alcotest.check_raises "shrinking append"
    (Invalid_argument
       "History.extend_cache: target has fewer nodes than source") (fun () ->
      ignore (Monitor.append m (History.prefix_by_roots h 1)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The pinning property of the whole PR: after k appends the monitor's
   verdict equals the batch checker on the k-prefix, for every k. *)
let prop_prefix_equivalence =
  QCheck.Test.make ~name:"monitor verdict = batch checker on every prefix"
    ~count:500 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let m = Monitor.create () in
      let ok = ref true in
      for k = 0 to n_roots h do
        let p = History.prefix_by_roots h k in
        let v = Monitor.append m p in
        if accepted_verdict v <> Compc.is_correct p then ok := false
      done;
      !ok)

let prop_undo_roundtrip =
  QCheck.Test.make ~name:"undo restores exact verdict and pair counts"
    ~count:200 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let k = n_roots h in
      let cut = 1 + (seed mod k) in
      let m = Monitor.create () in
      for i = 0 to cut - 1 do
        ignore (Monitor.append m (History.prefix_by_roots h i))
      done;
      let acc = Monitor.accepted m in
      let pairs = Monitor.obs_pairs m in
      let v = Monitor.append m (History.prefix_by_roots h cut) in
      Monitor.undo m;
      let restored = Monitor.accepted m = acc && Monitor.obs_pairs m = pairs in
      let v' = Monitor.append m (History.prefix_by_roots h cut) in
      restored && accepted_verdict v = accepted_verdict v')

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let suite =
  [
    ( "monitor",
      [
        Alcotest.test_case "prefix chain shape" `Quick test_prefix_chain_shape;
        Alcotest.test_case "full-prefix verdict" `Quick test_full_prefix_verdict;
        Alcotest.test_case "growth from empty prefix" `Quick
          test_monitor_from_empty;
        Alcotest.test_case "empty delta fast path" `Quick
          test_empty_delta_fastpath;
        Alcotest.test_case "undo restores state" `Quick test_undo_restores;
        Alcotest.test_case "undo depth is one" `Quick test_undo_depth;
        Alcotest.test_case "non-extension rejected" `Quick
          test_non_extension_rejected;
      ] );
    qsuite "monitor:props" [ prop_prefix_equivalence; prop_undo_roundtrip ];
  ]
