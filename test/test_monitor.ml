(* The incremental monitor against the batch checker: prefix-equivalence
   on generated executions, undo semantics, the extension edge cases
   (empty delta, first delta into a previously empty schedule, universe
   growth from the empty prefix), and the incremental order kernel on
   open-transaction streams — appends that land operations under {e old}
   roots, where levels stay stable but the structural fast paths do not
   apply. *)
open Repro_model
open Repro_workload
module Compc = Repro_core.Compc
module Monitor = Repro_core.Monitor
module Observed = Repro_core.Observed
module Rel = Repro_order.Rel
module Metrics = Repro_obs.Metrics
module Labels = Repro_obs.Labels

let history_of_seed seed =
  let rng = Prng.create ~seed in
  match seed mod 5 with
  | 0 -> Gen.flat rng ~roots:(2 + (seed mod 4))
  | 1 -> Gen.stack rng ~levels:(2 + (seed mod 3)) ~roots:(2 + (seed mod 3))
  | 2 -> Gen.fork rng ~branches:2 ~roots:(3 + (seed mod 2))
  | 3 -> Gen.join rng ~branches:2 ~roots:3
  | _ -> Gen.general rng ~schedules:(3 + (seed mod 3)) ~roots:(3 + (seed mod 2))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let accepted_verdict = function
  | Monitor.Accepted _ -> true
  | Monitor.Rejected _ -> false

let n_roots h = List.length (History.roots h)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

(* A deterministic 2-level stack used by the unit tests. *)
let stack_history () = Gen.stack (Prng.create ~seed:42) ~levels:2 ~roots:4

let test_prefix_chain_shape () =
  let h = stack_history () in
  let k = n_roots h in
  let prev = ref (History.prefix_by_roots h 0) in
  for i = 1 to k do
    let cur = History.prefix_by_roots h i in
    Alcotest.(check bool)
      "node count grows" true
      (History.n_nodes cur > History.n_nodes !prev);
    (* Shared nodes keep identifiers and labels across the chain. *)
    for v = 0 to History.n_nodes !prev - 1 do
      Alcotest.(check bool)
        "shared label stable" true
        (Label.equal (History.label cur v) (History.label !prev v))
    done;
    prev := cur
  done;
  Alcotest.(check int)
    "full prefix spans the history" (History.n_nodes h)
    (History.n_nodes !prev)

let test_full_prefix_verdict () =
  let h = stack_history () in
  let p = History.prefix_by_roots h (n_roots h) in
  Alcotest.(check bool)
    "verdict invariant under prefix relabelling" (Compc.is_correct h)
    (Compc.is_correct p)

let test_monitor_from_empty () =
  (* Universe growth from the empty prefix: every schedule starts empty,
     so the first real append is a delta into fresh schedules. *)
  let h = stack_history () in
  let m = Monitor.create () in
  Alcotest.(check bool) "empty prefix accepted" true (Monitor.accepted m);
  Alcotest.(check int) "no pairs yet" 0 (Monitor.obs_pairs m);
  for k = 0 to n_roots h do
    let p = History.prefix_by_roots h k in
    let v = Monitor.append m p in
    Alcotest.(check bool)
      (Printf.sprintf "prefix %d verdict" k)
      (Compc.is_correct p) (accepted_verdict v)
  done

let test_empty_delta_fastpath () =
  let h = stack_history () in
  let m = Monitor.create () in
  let p = History.prefix_by_roots h 2 in
  let v1 = Monitor.append m p in
  let pairs = Monitor.obs_pairs m in
  (* Re-appending the same prefix is an extension with an empty delta: the
     verdict must be carried on the fast path without a reduction. *)
  let v2 = Monitor.append m (History.prefix_by_roots h 2) in
  Alcotest.(check bool)
    "verdict unchanged" (accepted_verdict v1) (accepted_verdict v2);
  Alcotest.(check int) "pairs unchanged" pairs (Monitor.obs_pairs m);
  Alcotest.(check bool)
    "fast path taken" true
    ((Monitor.stats m).Monitor.fastpath_hits >= 1)

let test_undo_restores () =
  let h = stack_history () in
  let m = Monitor.create () in
  ignore (Monitor.append m (History.prefix_by_roots h 2));
  let acc2 = Monitor.accepted m in
  let pairs2 = Monitor.obs_pairs m in
  let v3 = Monitor.append m (History.prefix_by_roots h 3) in
  Monitor.undo m;
  Alcotest.(check bool) "verdict restored" acc2 (Monitor.accepted m);
  Alcotest.(check int) "pairs restored" pairs2 (Monitor.obs_pairs m);
  Alcotest.(check int)
    "history restored" 2
    (match Monitor.history m with Some p -> n_roots p | None -> -1);
  (* Replaying the rolled-back candidate reproduces its verdict. *)
  let v3' = Monitor.append m (History.prefix_by_roots h 3) in
  Alcotest.(check bool)
    "replay agrees" (accepted_verdict v3) (accepted_verdict v3')

let test_undo_depth () =
  let m = Monitor.create () in
  Alcotest.check_raises "undo before any append"
    (Invalid_argument "Monitor.undo: no snapshot held (undo depth is one)")
    (fun () -> Monitor.undo m);
  let h = stack_history () in
  ignore (Monitor.append m (History.prefix_by_roots h 1));
  Monitor.undo m;
  Alcotest.(check bool) "back to empty" true (Monitor.history m = None);
  Alcotest.check_raises "second undo"
    (Invalid_argument "Monitor.undo: no snapshot held (undo depth is one)")
    (fun () -> Monitor.undo m)

let test_undo_refork_allocation_linear () =
  (* The certify protocol's append/undo/append shape: a re-extension of a
     donated snapshot forks the conflict memo, and each accepted fork
     becomes the next snapshot.  A fork must size its rank arrays to the
     extension, never double the source's capacity — along this chain the
     doubling compounds (every accept-after-undo doubles the arrays), which
     once ran the simulator's 427-node committed prefix into gigabytes. *)
  let h = Gen.stack (Prng.create ~seed:7) ~levels:2 ~roots:24 in
  let m = Monitor.create () in
  ignore (Monitor.append m (History.prefix_by_roots h 1));
  let a0 = Gc.allocated_bytes () in
  for i = 2 to n_roots h do
    ignore (Monitor.append m (History.prefix_by_roots h i));
    Monitor.undo m;
    ignore (Monitor.append m (History.prefix_by_roots h i))
  done;
  let mb = (Gc.allocated_bytes () -. a0) /. 1048576.0 in
  Alcotest.(check bool)
    (Printf.sprintf "fork-chain allocation stays linear (%.1f MB)" mb)
    true (mb < 64.0)

let test_non_extension_rejected () =
  let h = stack_history () in
  let m = Monitor.create () in
  ignore (Monitor.append m (History.prefix_by_roots h 3));
  Alcotest.check_raises "shrinking append"
    (Invalid_argument
       "History.extend_cache: target has fewer nodes than source") (fun () ->
      ignore (Monitor.append m (History.prefix_by_roots h 1)))

(* ------------------------------------------------------------------ *)
(* The incremental order kernel: open-transaction streams               *)
(* ------------------------------------------------------------------ *)

(* The [prefix_by_roots] chains above always hang new nodes under new
   roots, so they exercise the delta paths.  The kernel path is for the
   other streaming shape: operations appended to transactions that are
   already open.  Both streams below keep schedule levels stable while
   every round parents its new subtransaction under an {e old} root. *)

let by_path metrics p =
  Metrics.counter_value metrics ~labels:(Labels.v [ ("path", p) ]) "monitor.append"

(* Accepting stream: one root whose subtransactions all update the same
   item, serialized by the low-level schedule's log.  Every round adds a
   conflicting write, so the delta is never empty and the root's intra
   feasibility graph is genuinely re-checked. *)
let open_stream k =
  let open History.Builder in
  let b = create () in
  let sp = schedule b ~conflict:Conflict.Same_item "SP" in
  let sa = schedule b ~conflict:Conflict.Rw "SA" in
  let r0 = root b ~sched:sp (Label.v "T1") in
  let txs = ref [] and ws = ref [] in
  for _ = 1 to k do
    let a = tx b ~parent:r0 ~sched:sa (Label.v ~args:[ "x" ] "add") in
    let w = leaf b ~parent:a (Label.v ~args:[ "x" ] "w") in
    txs := a :: !txs;
    ws := w :: !ws
  done;
  log b ~sched:sp (List.rev !txs);
  log b ~sched:sa (List.rev !ws);
  seal b

(* Rejecting stream, figure-3 shaped: two roots that each invoke both
   low-level schedules, which serialize them in opposite directions.  The
   offending subtransaction arrives in round 2 under the old root [n0],
   and the cyclic observed pair it climbs to lands entirely inside the
   old block — the case the kernel exists for.  Round 3 extends the
   already-rejected prefix (the verdict must stay sticky). *)
let reject_stream k =
  let open History.Builder in
  let b = create () in
  let sp = schedule b ~conflict:Conflict.Same_item "SP" in
  let sq = schedule b ~conflict:Conflict.Same_item "SQ" in
  let sa = schedule b ~conflict:Conflict.Rw "SA" in
  let sb = schedule b ~conflict:Conflict.Rw "SB" in
  let n0 = root b ~sched:sp (Label.v "T1") in
  let n1 = root b ~sched:sq (Label.v "T2") in
  (* round 1: SA serializes n0's write before n1's; SB only sees n1 *)
  let a0 = tx b ~parent:n0 ~sched:sa (Label.v ~args:[ "x" ] "add") in
  let wa0 = leaf b ~parent:a0 (Label.v ~args:[ "x" ] "w") in
  let a1 = tx b ~parent:n1 ~sched:sa (Label.v ~args:[ "x" ] "add") in
  let wa1 = leaf b ~parent:a1 (Label.v ~args:[ "x" ] "w") in
  let b1 = tx b ~parent:n1 ~sched:sb (Label.v ~args:[ "y" ] "add") in
  let wb1 = leaf b ~parent:b1 (Label.v ~args:[ "y" ] "w") in
  (* round 2: SB serializes n1's write before n0's — opposite of SA *)
  let sp_ops = ref [ a0 ] and sa_ops = ref [ wa0; wa1 ] and sb_ops = ref [ wb1 ] in
  if k >= 2 then begin
    let b0 = tx b ~parent:n0 ~sched:sb (Label.v ~args:[ "y" ] "add") in
    let wb0 = leaf b ~parent:b0 (Label.v ~args:[ "y" ] "w") in
    sp_ops := !sp_ops @ [ b0 ];
    sb_ops := !sb_ops @ [ wb0 ]
  end;
  (* round 3: an unrelated write under n0 after the rejection *)
  if k >= 3 then begin
    let a2 = tx b ~parent:n0 ~sched:sa (Label.v ~args:[ "z" ] "add") in
    let wa2 = leaf b ~parent:a2 (Label.v ~args:[ "z" ] "w") in
    sp_ops := !sp_ops @ [ a2 ];
    sa_ops := !sa_ops @ [ wa2 ]
  end;
  log b ~sched:sp !sp_ops;
  log b ~sched:sq [ a1; b1 ];
  log b ~sched:sa !sa_ops;
  log b ~sched:sb !sb_ops;
  seal b

let test_kernel_accepting_stream () =
  let rounds = 6 in
  let metrics = Metrics.create () in
  let m = Monitor.create ~metrics () in
  for k = 1 to rounds do
    let p = open_stream k in
    let v = Monitor.append m p in
    Alcotest.(check bool)
      (Printf.sprintf "round %d matches the batch checker" k)
      (Compc.is_correct p) (accepted_verdict v);
    Alcotest.(check bool)
      (Printf.sprintf "round %d accepted" k)
      true (accepted_verdict v)
  done;
  (* Round 1 is the initial analysis; every later round appends under the
     old root, which only the kernel path decides. *)
  let stats = Monitor.stats m in
  Alcotest.(check int) "kernel decides the open-transaction appends"
    (rounds - 1) stats.Monitor.kernel_hits;
  Alcotest.(check int) "labeled series agrees with the counter"
    stats.Monitor.kernel_hits (by_path metrics "kernel");
  Alcotest.(check int) "no full reductions after the first round" 0
    (by_path metrics "full")

let test_kernel_rejecting_stream () =
  let metrics = Metrics.create () in
  let m = Monitor.create ~metrics () in
  let verdicts =
    List.map
      (fun k ->
        let p = reject_stream k in
        let v = Monitor.append m p in
        Alcotest.(check bool)
          (Printf.sprintf "round %d matches the batch checker" k)
          (Compc.is_correct p) (accepted_verdict v);
        v)
      [ 1; 2; 3 ]
  in
  (match verdicts with
  | [ v1; v2; v3 ] ->
    Alcotest.(check bool) "one-sided serialization accepted" true
      (accepted_verdict v1);
    Alcotest.(check bool) "opposite serialization rejected" false
      (accepted_verdict v2);
    Alcotest.(check bool) "rejection is sticky under extension" false
      (accepted_verdict v3)
  | _ -> Alcotest.fail "three rounds expected");
  Alcotest.(check int) "both extensions decided by the kernel" 2
    (Monitor.stats m).Monitor.kernel_hits

(* The kernel's inputs: Observed.extend's reported delta is exactly the
   pairwise growth of each relation — same pairs as two full diffs of the
   persistent relations, at O(delta) cost. *)
let prop_extend_delta_exact =
  QCheck.Test.make ~name:"Observed.extend delta = pairwise relation diff"
    ~count:200 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let inc = Observed.inc_create () in
      let prev = ref (Observed.compute (History.prefix_by_roots h 0)) in
      let n_old = ref (History.n_nodes (History.prefix_by_roots h 0)) in
      let ok = ref true in
      for k = 1 to n_roots h do
        let p = History.prefix_by_roots h k in
        let rel, delta = Observed.extend ~inc ~prev:!prev ~n_old:!n_old p in
        let exact d grown old =
          Rel.equal (Rel.of_list d) (Rel.diff grown old)
        in
        if
          not
            (exact delta.Observed.d_obs rel.Observed.obs !prev.Observed.obs
            && exact delta.Observed.d_inp rel.Observed.inp !prev.Observed.inp
            && exact delta.Observed.d_inp_strong rel.Observed.inp_strong
                 !prev.Observed.inp_strong)
        then ok := false;
        prev := rel;
        n_old := History.n_nodes p
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The pinning property of the whole PR: after k appends the monitor's
   verdict equals the batch checker on the k-prefix, for every k. *)
let prop_prefix_equivalence =
  QCheck.Test.make ~name:"monitor verdict = batch checker on every prefix"
    ~count:500 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let m = Monitor.create () in
      let ok = ref true in
      for k = 0 to n_roots h do
        let p = History.prefix_by_roots h k in
        let v = Monitor.append m p in
        if accepted_verdict v <> Compc.is_correct p then ok := false
      done;
      !ok)

let prop_undo_roundtrip =
  QCheck.Test.make ~name:"undo restores exact verdict and pair counts"
    ~count:200 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let k = n_roots h in
      let cut = 1 + (seed mod k) in
      let m = Monitor.create () in
      for i = 0 to cut - 1 do
        ignore (Monitor.append m (History.prefix_by_roots h i))
      done;
      let acc = Monitor.accepted m in
      let pairs = Monitor.obs_pairs m in
      let v = Monitor.append m (History.prefix_by_roots h cut) in
      Monitor.undo m;
      let restored = Monitor.accepted m = acc && Monitor.obs_pairs m = pairs in
      let v' = Monitor.append m (History.prefix_by_roots h cut) in
      restored && accepted_verdict v = accepted_verdict v')

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let suite =
  [
    ( "monitor",
      [
        Alcotest.test_case "prefix chain shape" `Quick test_prefix_chain_shape;
        Alcotest.test_case "full-prefix verdict" `Quick test_full_prefix_verdict;
        Alcotest.test_case "growth from empty prefix" `Quick
          test_monitor_from_empty;
        Alcotest.test_case "empty delta fast path" `Quick
          test_empty_delta_fastpath;
        Alcotest.test_case "undo restores state" `Quick test_undo_restores;
        Alcotest.test_case "undo depth is one" `Quick test_undo_depth;
        Alcotest.test_case "undo/re-extend fork-chain allocation" `Quick
          test_undo_refork_allocation_linear;
        Alcotest.test_case "non-extension rejected" `Quick
          test_non_extension_rejected;
        Alcotest.test_case "kernel: accepting open-transaction stream" `Quick
          test_kernel_accepting_stream;
        Alcotest.test_case "kernel: rejection inside the old block" `Quick
          test_kernel_rejecting_stream;
      ] );
    qsuite "monitor:props"
      [ prop_prefix_equivalence; prop_undo_roundtrip; prop_extend_delta_exact ];
  ]
