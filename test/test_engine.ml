(* The certification engine: session parity with the batch checker and the
   incremental monitor, the one-computation-per-session guarantee (pinned
   against the [compc.observed_computes] counter and the conflict
   interpreter's eval count), cache reuse by the definitional cross-check,
   memo transfer onto restricted views, and byte-identity of the evidence
   report across the batch and session assembly paths. *)
open Repro_model
open Repro_workload
module Int_set = Repro_order.Ids.Int_set
module Compc = Repro_core.Compc
module Engine = Repro_core.Engine
module Observed = Repro_core.Observed
module Reduction = Repro_core.Reduction
module Equivalence = Repro_core.Equivalence
module Shrink = Repro_core.Shrink
module Evidence = Repro_forensics.Evidence
module Metrics = Repro_obs.Metrics
module Sink = Repro_obs.Sink
module Json = Repro_obs.Json

let history_of_seed seed =
  let rng = Prng.create ~seed in
  match seed mod 5 with
  | 0 -> Gen.flat rng ~roots:(2 + (seed mod 4))
  | 1 -> Gen.stack rng ~levels:(2 + (seed mod 3)) ~roots:(2 + (seed mod 3))
  | 2 -> Gen.fork rng ~branches:2 ~roots:(3 + (seed mod 2))
  | 3 -> Gen.join rng ~branches:2 ~roots:3
  | _ -> Gen.general rng ~schedules:(3 + (seed mod 3)) ~roots:(3 + (seed mod 2))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let accepted = function Engine.Accepted _ -> true | Engine.Rejected _ -> false

let n_roots h = List.length (History.roots h)

let figure3 () = (Figures.figure3 ()).Figures.ht

(* ------------------------------------------------------------------ *)
(* Telemetry: exactly one closure computation per session              *)
(* ------------------------------------------------------------------ *)

let computes metrics = Metrics.counter_value metrics "compc.observed_computes"

let test_one_compute_per_session () =
  let h = figure3 () in
  let metrics = Metrics.create () in
  let s = Engine.create ~obs:(Sink.v ~metrics ()) () in
  (match Engine.analyze s h with
  | Engine.Rejected _ -> ()
  | Engine.Accepted _ -> Alcotest.fail "figure 3 is not Comp-C");
  Alcotest.(check int) "analyze runs the closure once" 1 (computes metrics);
  let evals = Conflict.evals () in
  let e = Engine.explain s in
  Alcotest.(check bool)
    "rejection comes with provenance" true
    (e.Engine.provenance <> None);
  Alcotest.(check bool)
    "witness cycle classified" true
    (e.Engine.cycle_edges <> []);
  Alcotest.(check int) "explain recomputes no closure" 1 (computes metrics);
  Alcotest.(check int)
    "explain interprets no new label pairs" evals (Conflict.evals ());
  (* Re-extending with the same history is an empty delta: the fast path
     carries the verdict without touching closure or memo. *)
  (match Engine.extend s h with
  | Engine.Rejected _ -> ()
  | Engine.Accepted _ -> Alcotest.fail "verdict changed on empty delta");
  Alcotest.(check int) "zero-delta extend recomputes nothing" 1 (computes metrics);
  Alcotest.(check int)
    "zero-delta extend interprets nothing" evals (Conflict.evals ());
  Alcotest.(check bool)
    "fast path taken" true
    ((Engine.stats s).Engine.fastpath_hits >= 1)

(* Satellite regression: the definitional cross-check used to rebuild the
   closure and the reduction per query; it must now read the session. *)
let test_equivalence_reuses_session () =
  let h = figure3 () in
  let metrics = Metrics.create () in
  let s = Engine.of_history ~obs:(Sink.v ~metrics ()) h in
  Alcotest.(check int) "session warm after analyze" 1 (computes metrics);
  Alcotest.(check bool)
    "containment agrees with reduction" (Engine.accepted s)
    (Equivalence.comp_c_via_containment s);
  (match Equivalence.level_front s 1 with
  | Some f ->
    Alcotest.(check int) "level-1 front" 4 (Int_set.cardinal f.Repro_core.Front.members)
  | None -> Alcotest.fail "figure 3 has a level-1 front");
  Alcotest.(check int)
    "no second closure computation across the queries" 1 (computes metrics)

(* A full-keep view must inherit every memoized conflict pair, so checking
   the re-sealed copy interprets no label pair a warm session already
   decided. *)
let test_view_transfers_memo () =
  let h = figure3 () in
  let warm = Compc.is_correct h in
  let all = Int_set.of_list (List.init (History.n_nodes h) Fun.id) in
  let h' = Shrink.restrict h ~keep:all in
  (* the seal-time replay may interpret a few pairs; the check must not *)
  let evals = Conflict.evals () in
  Alcotest.(check int) "full keep preserves nodes" (History.n_nodes h) (History.n_nodes h');
  Alcotest.(check bool) "verdict preserved" warm (Compc.is_correct h');
  Alcotest.(check int)
    "restriction inherits the conflict memo" evals (Conflict.evals ())

(* ------------------------------------------------------------------ *)
(* Golden evidence: byte identity across the assembly paths            *)
(* ------------------------------------------------------------------ *)

(* examples/figure3.ct verbatim; the expected report is the pre-engine
   output of `compcheck examples/figure3.ct --explain --format json`
   (also committed as test/golden/figure3_evidence.json). *)
let figure3_text =
  {|schedule SQ conflict same-item
schedule SP conflict same-item
schedule SA conflict rw
schedule SB conflict rw
root n0 @ SP T1
root n1 @ SQ T2
tx n2 @ SA parent n0 add(x)
leaf n3 parent n2 w(x)
tx n4 @ SB parent n0 add(y)
leaf n5 parent n4 w(y)
tx n6 @ SA parent n1 add(x)
leaf n7 parent n6 w(x)
tx n8 @ SB parent n1 add(y)
leaf n9 parent n8 w(y)
log SQ : n6 n8
log SP : n2 n4
log SA : n3 n7
order SA : n3 < n7
log SB : n9 n5
order SB : n9 < n5
|}

let golden_evidence =
  {|{"schema":"evidence/1","verdict":"reject","history":{"nodes":10,"roots":2,"schedules":4,"order":2},"fronts":[{"level":0,"members":4,"obs_pairs":2,"inp_pairs":0},{"level":1,"members":4,"obs_pairs":2,"inp_pairs":0},{"level":2,"members":2,"obs_pairs":4,"inp_pairs":0}],"failure":{"kind":"no_calculation","level":2,"cycle":[{"id":0,"label":"T1#0","schedule":"SP"},{"id":1,"label":"T2#1","schedule":"SQ"}],"edges":[{"from":0,"to":1,"kind":"obs","via":[2,6],"provenance":[{"a":2,"b":6,"reason":{"rule":"base-conflict","schedule":"SA","ops":[3,7]}}]},{"from":1,"to":0,"kind":"obs","via":[8,4],"provenance":[{"a":8,"b":4,"reason":{"rule":"base-conflict","schedule":"SB","ops":[9,5]}}]}]},"provenance":{"pairs":8,"consistent":true}}|}

let test_evidence_golden () =
  let h = Repro_histlang.Syntax.parse figure3_text in
  let via_build = Json.to_string (Evidence.to_json (Evidence.build (Compc.check h))) in
  let via_session =
    Json.to_string (Evidence.to_json (Evidence.of_session (Engine.of_history h)))
  in
  Alcotest.(check string) "batch assembly matches golden" golden_evidence via_build;
  Alcotest.(check string) "session assembly matches golden" golden_evidence via_session

(* ------------------------------------------------------------------ *)
(* Properties: the engine is the old pipeline                          *)
(* ------------------------------------------------------------------ *)

let prop_analyze_parity =
  QCheck.Test.make ~name:"Engine.analyze = Observed.compute + Reduction.reduce"
    ~count:300 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let v = Engine.analyze (Engine.create ()) h in
      let rel = Observed.compute h in
      match (v, (Reduction.reduce ~rel h).Reduction.outcome) with
      | Engine.Accepted o, Ok o' -> o = o'
      | Engine.Rejected f, Error f' -> f = f'
      | _ -> false)

let prop_extend_prefix_parity =
  QCheck.Test.make
    ~name:"Engine.extend prefix chain = batch pipeline on every prefix"
    ~count:300 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let s = Engine.create () in
      let ok = ref true in
      for k = 0 to n_roots h do
        let p = History.prefix_by_roots h k in
        let direct =
          match (Reduction.reduce ~rel:(Observed.compute p) p).Reduction.outcome with
          | Ok _ -> true
          | Error _ -> false
        in
        if accepted (Engine.extend s p) <> direct then ok := false
      done;
      !ok)

(* Explain after analyze re-reads the session caches for every generated
   history, not just the figures: one closure computation, whatever the
   shape and however the reduction ended. *)
let prop_explain_reuses_closure =
  QCheck.Test.make ~name:"explain after analyze reuses the session closure"
    ~count:300 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let metrics = Metrics.create () in
      let s = Engine.create ~obs:(Sink.v ~metrics ()) () in
      ignore (Engine.analyze s h);
      ignore (Engine.explain s);
      computes metrics = 1)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "one closure computation per session" `Quick
          test_one_compute_per_session;
        Alcotest.test_case "equivalence queries reuse the session" `Quick
          test_equivalence_reuses_session;
        Alcotest.test_case "views inherit the conflict memo" `Quick
          test_view_transfers_memo;
        Alcotest.test_case "evidence golden bytes (both paths)" `Quick
          test_evidence_golden;
      ] );
    qsuite "engine:props"
      [ prop_analyze_parity; prop_extend_prefix_parity; prop_explain_reuses_closure ];
  ]
