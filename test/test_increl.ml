(* The incremental order kernel against the batch oracles: Increl's
   maintained topological order and component structure against
   Bitrel's Kahn sort and Tarjan condensation, and the Bigarray arena's
   byte-granular algorithm ports against the word-parallel originals. *)
open Repro_order
open Ids

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* An edge-insertion sequence over a dense universe: the order of
   insertion matters for Increl (each edge triggers its own affected-region
   pass), so the generator produces the sequence, not the set. *)
let gen_edges =
  let open QCheck.Gen in
  int_range 1 40 >>= fun n ->
  int_range 0 (3 * n) >>= fun m ->
  list_size (return m)
    (map2 (fun a b -> (a, b)) (int_bound (n - 1)) (int_bound (n - 1)))
  >|= fun edges -> (n, edges)

let arb_edges =
  QCheck.make
    ~print:(fun (n, es) ->
      Fmt.str "n=%d [%a]" n
        Fmt.(list ~sep:(any ";") (pair ~sep:(any "->") int int))
        es)
    gen_edges

let increl_of n edges =
  let t = Increl.create () in
  Increl.ensure_nodes t n;
  List.iter (fun (a, b) -> Increl.add_edge t a b) edges;
  t

let bitrel_of n edges =
  let b = Bitrel.create (Int_set.of_list (List.init n Fun.id)) in
  List.iter (fun (a, b') -> Bitrel.add b a b') edges;
  b

let arena_of n edges =
  let a = Arena.make ~rows:n ~cols:n in
  List.iter (fun (x, y) -> Arena.set a x y) edges;
  a

(* Components from the batch side: a ~ b iff mutually reachable in the
   closure (or equal) — Tarjan's partition without exposing Tarjan. *)
let batch_partition n edges =
  let c = Bitrel.transitive_closure (bitrel_of n edges) in
  let repr = Array.init n Fun.id in
  for a = 0 to n - 1 do
    for b = 0 to a - 1 do
      if Bitrel.mem c a b && Bitrel.mem c b a && repr.(a) = a then
        repr.(a) <- repr.(b)
    done
  done;
  repr

let is_cycle_of edges cycle =
  let mem a b = List.exists (fun (x, y) -> x = a && y = b) edges in
  match cycle with
  | [] -> false
  | first :: _ ->
    let rec ok = function
      | [] -> assert false
      | [ last ] -> mem last first
      | a :: (b :: _ as rest) -> mem a b && ok rest
    in
    ok cycle

(* ------------------------------------------------------------------ *)
(* Increl = batch kernel properties                                    *)
(* ------------------------------------------------------------------ *)

let prop_topo =
  QCheck.Test.make ~name:"increl: topo_sort = Bitrel.topo_sort" ~count:600
    arb_edges (fun (n, edges) ->
      let t = increl_of n edges in
      Increl.topo_sort t = Bitrel.topo_sort (bitrel_of n edges))

let prop_scc =
  QCheck.Test.make ~name:"increl: components = Tarjan condensation"
    ~count:600 arb_edges (fun (n, edges) ->
      let t = increl_of n edges in
      let repr = batch_partition n edges in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let together = Increl.same_component t a b in
          if together <> (repr.(a) = repr.(b)) then ok := false
        done
      done;
      !ok)

let prop_order_valid =
  QCheck.Test.make
    ~name:"increl: maintained order valid after every insertion" ~count:600
    arb_edges (fun (n, edges) ->
      let t = Increl.create () in
      Increl.ensure_nodes t n;
      let seen = ref [] in
      List.for_all
        (fun (a, b) ->
          Increl.add_edge t a b;
          seen := (a, b) :: !seen;
          (* Distinct keys per component; every cross-component inserted
             edge ascends. *)
          List.for_all
            (fun (x, y) ->
              Increl.same_component t x y || Increl.pos t x < Increl.pos t y)
            !seen)
        edges)

let prop_acyclic_flag =
  QCheck.Test.make ~name:"increl: acyclic flag = batch cycle detection"
    ~count:600 arb_edges (fun (n, edges) ->
      let t = increl_of n edges in
      Increl.acyclic t = Bitrel.is_acyclic (bitrel_of n edges))

let prop_find_cycle =
  QCheck.Test.make ~name:"increl: find_cycle returns a real cycle"
    ~count:600 arb_edges (fun (n, edges) ->
      let t = increl_of n edges in
      match Increl.find_cycle t with
      | None -> Increl.acyclic t
      | Some cycle -> (not (Increl.acyclic t)) && is_cycle_of edges cycle)

let prop_pos_extension =
  QCheck.Test.make
    ~name:"increl: pos sorts any subset into a linear extension" ~count:600
    arb_edges (fun (n, edges) ->
      let t = increl_of n edges in
      QCheck.assume (Increl.acyclic t);
      let order = List.init n Fun.id in
      let sorted =
        List.sort (fun a b -> compare (Increl.pos t a) (Increl.pos t b)) order
      in
      let rank = Array.make n 0 in
      List.iteri (fun i v -> rank.(v) <- i) sorted;
      List.for_all (fun (a, b) -> a = b || rank.(a) < rank.(b)) edges)

(* ------------------------------------------------------------------ *)
(* Arena = Bitrel properties (byte rows vs word rows)                  *)
(* ------------------------------------------------------------------ *)

let arena_pairs a = Arena.to_list a

let prop_arena_closure =
  QCheck.Test.make ~name:"arena: transitive_closure = Bitrel" ~count:600
    arb_edges (fun (n, edges) ->
      let a = Arena.transitive_closure (arena_of n edges) in
      let b = Bitrel.transitive_closure (bitrel_of n edges) in
      arena_pairs a = Bitrel.to_list b)

let prop_arena_cycle =
  QCheck.Test.make ~name:"arena: find_cycle = Bitrel (same witness)"
    ~count:600 arb_edges (fun (n, edges) ->
      Arena.find_cycle (arena_of n edges)
      = Bitrel.find_cycle (bitrel_of n edges))

let prop_arena_topo =
  QCheck.Test.make ~name:"arena: topo_sort = Bitrel (same tie-breaks)"
    ~count:600 arb_edges (fun (n, edges) ->
      Arena.topo_sort (arena_of n edges) = Bitrel.topo_sort (bitrel_of n edges))

let prop_arena_quotient =
  QCheck.Test.make ~name:"arena: quotient = Bitrel.quotient" ~count:600
    arb_edges (fun (n, edges) ->
      (* Cluster by halving: a deterministic non-trivial contraction. *)
      let cls v = v / 2 in
      let qn = ((n - 1) / 2) + 1 in
      let a = Arena.quotient ~n:qn cls (arena_of n edges) in
      let b =
        Bitrel.quotient
          ~universe:(Int_set.of_list (List.init qn Fun.id))
          cls (bitrel_of n edges)
      in
      arena_pairs a = Bitrel.to_list b)

let prop_arena_scc =
  QCheck.Test.make ~name:"arena: scc numbering is reverse topological"
    ~count:600 arb_edges (fun (n, edges) ->
      let a = arena_of n edges in
      let comp_of, ncomps = Arena.scc_condensation a in
      List.for_all
        (fun (x, y) -> comp_of.(x) >= comp_of.(y))
        edges
      && Array.for_all (fun c -> c >= 0 && c < ncomps) comp_of)

(* ------------------------------------------------------------------ *)
(* Arena unit tests: growth, windows, cursors                          *)
(* ------------------------------------------------------------------ *)

let test_arena_growth () =
  let a = Arena.make ~rows:2 ~cols:10 in
  Arena.set a 0 3;
  Arena.set a 1 9;
  Arena.ensure a ~rows:100 ~cols:500;
  Alcotest.(check bool) "bit (0,3) survives growth" true (Arena.get a 0 3);
  Alcotest.(check bool) "bit (1,9) survives growth" true (Arena.get a 1 9);
  Alcotest.(check bool) "fresh space is zero" false (Arena.get a 50 400);
  Arena.set a 99 499;
  Alcotest.(check bool) "far corner settable" true (Arena.get a 99 499);
  Alcotest.(check int) "cardinal" 3 (Arena.cardinal a);
  Arena.reset a ~rows:4 ~cols:4;
  Alcotest.(check int) "reset clears" 0 (Arena.cardinal a);
  Alcotest.(check int) "reset resizes rows" 4 (Arena.rows a)

let test_arena_cursor () =
  let a = Arena.make ~rows:1 ~cols:40 in
  List.iter (Arena.set a 0) [ 0; 7; 8; 31; 39 ];
  let collected = ref [] in
  Arena.row_iter a 0 (fun j -> collected := j :: !collected);
  Alcotest.(check (list int)) "row_iter ascending" [ 0; 7; 8; 31; 39 ]
    (List.rev !collected);
  Alcotest.(check int) "next_in_row from 0" 0 (Arena.next_in_row a 0 0);
  Alcotest.(check int) "next_in_row from 1" 7 (Arena.next_in_row a 0 1);
  Alcotest.(check int) "next_in_row from 9" 31 (Arena.next_in_row a 0 9);
  Alcotest.(check int) "next_in_row past last" (-1) (Arena.next_in_row a 0 40);
  Arena.unset a 0 0;
  Alcotest.(check int) "unset moves cursor" 7 (Arena.next_in_row a 0 0);
  Alcotest.(check bool) "mem out of window" false (Arena.mem a 5 5)

let test_increl_basics () =
  let t = Increl.create () in
  Increl.ensure_nodes t 4;
  Increl.add_edge t 0 1;
  Increl.add_edge t 1 2;
  Alcotest.(check bool) "acyclic chain" true (Increl.acyclic t);
  Alcotest.(check (option (list int))) "topo of chain"
    (Some [ 0; 1; 2; 3 ]) (Increl.topo_sort t);
  Increl.add_edge t 2 0;
  Alcotest.(check bool) "cycle detected" false (Increl.acyclic t);
  Alcotest.(check bool) "component merged" true (Increl.same_component t 0 2);
  Alcotest.(check bool) "outsider separate" false (Increl.same_component t 0 3);
  (match Increl.find_cycle t with
  | Some cycle ->
    Alcotest.(check bool) "witness is a cycle" true
      (is_cycle_of [ (0, 1); (1, 2); (2, 0) ] cycle)
  | None -> Alcotest.fail "expected a cycle witness");
  (* Duplicate insertions leave the state coherent. *)
  Increl.add_edge t 0 1;
  Alcotest.(check bool) "still cyclic" false (Increl.acyclic t)

let test_increl_self_loop () =
  let t = Increl.create () in
  Increl.ensure_nodes t 2;
  Increl.add_edge t 1 1;
  Alcotest.(check bool) "self-loop is a cycle" false (Increl.acyclic t);
  Alcotest.(check (option (list int))) "singleton witness" (Some [ 1 ])
    (Increl.find_cycle t);
  Alcotest.(check (option (list int))) "topo refuses" None (Increl.topo_sort t)

let suite =
  [
    ( "increl",
      [
        Alcotest.test_case "basics" `Quick test_increl_basics;
        Alcotest.test_case "self-loop" `Quick test_increl_self_loop;
        QCheck_alcotest.to_alcotest prop_topo;
        QCheck_alcotest.to_alcotest prop_scc;
        QCheck_alcotest.to_alcotest prop_order_valid;
        QCheck_alcotest.to_alcotest prop_acyclic_flag;
        QCheck_alcotest.to_alcotest prop_find_cycle;
        QCheck_alcotest.to_alcotest prop_pos_extension;
      ] );
    ( "arena",
      [
        Alcotest.test_case "growth" `Quick test_arena_growth;
        Alcotest.test_case "cursors" `Quick test_arena_cursor;
        QCheck_alcotest.to_alcotest prop_arena_closure;
        QCheck_alcotest.to_alcotest prop_arena_cycle;
        QCheck_alcotest.to_alcotest prop_arena_topo;
        QCheck_alcotest.to_alcotest prop_arena_quotient;
        QCheck_alcotest.to_alcotest prop_arena_scc;
      ] );
  ]
