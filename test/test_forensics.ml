(* Verdict forensics: the provenance replay against the batch closure, the
   counterexample shrinker, and the evidence renderings (JSON, DOT, text),
   pinned on the paper's figures and on generated executions. *)
open Repro_model
open Repro_workload
module Rel = Repro_order.Rel
module Int_set = Repro_order.Ids.Int_set
module Compc = Repro_core.Compc
module Shrink = Repro_core.Shrink
module Observed = Repro_core.Observed
module Reduction = Repro_core.Reduction
module Provenance = Repro_core.Provenance
module Evidence = Repro_forensics.Evidence
module Json = Repro_obs.Json

let history_of_seed seed =
  let rng = Prng.create ~seed in
  match seed mod 5 with
  | 0 -> Gen.flat rng ~roots:(2 + (seed mod 4))
  | 1 -> Gen.stack rng ~levels:(2 + (seed mod 3)) ~roots:(2 + (seed mod 3))
  | 2 -> Gen.fork rng ~branches:2 ~roots:(3 + (seed mod 2))
  | 3 -> Gen.join rng ~branches:2 ~roots:3
  | _ -> Gen.general rng ~schedules:(3 + (seed mod 3)) ~roots:(3 + (seed mod 2))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* A chain is a sound derivation when it is conclusion-first, every entry's
   pair is in the closed observed order, and it bottoms out in a premise-free
   Def. 10 base pair. *)
let chain_ok rel prov (a, b) =
  match Provenance.chain prov a b with
  | [] -> false
  | first :: _ as entries ->
    first.Provenance.a = a
    && first.Provenance.b = b
    && List.for_all
         (fun (e : Provenance.entry) ->
           Rel.mem e.Provenance.a e.Provenance.b rel.Observed.obs)
         entries
    && Provenance.is_base
         (List.nth entries (List.length entries - 1)).Provenance.reason

(* ------------------------------------------------------------------ *)
(* Unit tests on the figures                                           *)
(* ------------------------------------------------------------------ *)

let test_figure3_provenance () =
  let fig = Figures.figure3 () in
  let h = fig.Figures.ht in
  let rel = Observed.compute h in
  let prov = Provenance.build h rel in
  Alcotest.(check bool) "replay consistent" true (Provenance.consistent prov);
  Alcotest.(check int)
    "replay cardinality" (Rel.cardinal rel.Observed.obs)
    (Provenance.cardinal prov);
  (* The tension: both root pairs are observed, each climbing from a
     conflicting pair of subtransactions. *)
  let t1 = fig.Figures.tt_t1 and t2 = fig.Figures.tt_t2 in
  Alcotest.(check bool) "T1 <_o T2 derived" true (Provenance.mem prov t1 t2);
  Alcotest.(check bool) "T2 <_o T1 derived" true (Provenance.mem prov t2 t1);
  Alcotest.(check bool) "T1,T2 chain sound" true (chain_ok rel prov (t1, t2));
  Alcotest.(check bool) "T2,T1 chain sound" true (chain_ok rel prov (t2, t1))

let test_figure2_climb () =
  let fig = Figures.figure2 () in
  let h = fig.Figures.h2 in
  let rel = Observed.compute h in
  let prov = Provenance.build h rel in
  Alcotest.(check bool) "replay consistent" true (Provenance.consistent prov);
  let t1 = fig.Figures.f2_t1 and t2 = fig.Figures.f2_t2 in
  (match Provenance.reason prov t1 t2 with
  | Some (Provenance.Climb _) -> ()
  | Some r ->
    Alcotest.failf "root pair reason not a climb: %a"
      (Provenance.pp_reason h) r
  | None -> Alcotest.fail "root pair not derived");
  Alcotest.(check bool) "chain sound" true (chain_ok rel prov (t1, t2));
  (* The chain ends at the base pair the narrative starts from: the
     subtransactions ordered by their conflicting leaf operations o13, o25
     at the shared schedule. *)
  let entries = Provenance.chain prov t1 t2 in
  let last = List.nth entries (List.length entries - 1) in
  Alcotest.(check bool)
    "bottoms out at t11 <_o t21 via o13 ~ o25" true
    (last.Provenance.a = fig.Figures.f2_t11
    && last.Provenance.b = fig.Figures.f2_t21
    &&
    match last.Provenance.reason with
    | Provenance.Base_conflict { op_a; op_b; _ } ->
      op_a = fig.Figures.f2_o13 && op_b = fig.Figures.f2_o25
    | _ -> false)

let test_figure3_cycle_edges () =
  let h = (Figures.figure3 ()).Figures.ht in
  let v = Compc.check h in
  match v.Compc.certificate.Reduction.outcome with
  | Ok _ -> Alcotest.fail "figure 3 must be rejected"
  | Error f ->
    let edges = Reduction.cycle_edges h v.Compc.relations f in
    Alcotest.(check int)
      "closed cycle: one edge per member"
      (List.length (Reduction.failure_cycle f))
      (List.length edges);
    List.iter
      (fun (_, e) ->
        match e with
        | Reduction.Obs_edge { via = a, b } ->
          Alcotest.(check bool)
            "obs witness in the observed order" true
            (Rel.mem a b v.Compc.relations.Observed.obs)
        | Reduction.Inp_edge { via = a, b } ->
          Alcotest.(check bool)
            "inp witness in the input orders" true
            (Rel.mem a b v.Compc.relations.Observed.inp)
        | Reduction.Intra_edge _ | Reduction.Unexplained ->
          Alcotest.fail "figure 3 cycle edges are observed-order edges")
      edges

let test_pp_failure_labels () =
  let h = (Figures.figure3 ()).Figures.ht in
  let v = Compc.check h in
  match Compc.failure v with
  | None -> Alcotest.fail "figure 3 must be rejected"
  | Some f ->
    let s = Fmt.str "%a" (Reduction.pp_failure ~rel:v.Compc.relations h) f in
    Alcotest.(check bool) "owning schedule printed" true (contains ~needle:"@SP" s);
    Alcotest.(check bool) "edge kinds printed" true (contains ~needle:"-obs->" s);
    Alcotest.(check bool) "labels printed" true (contains ~needle:"T1" s)

(* ------------------------------------------------------------------ *)
(* Evidence report golden checks                                       *)
(* ------------------------------------------------------------------ *)

let get path json =
  List.fold_left
    (fun acc key ->
      match acc with
      | Some j -> Json.member key j
      | None -> None)
    (Some json) path

let test_evidence_json_reject () =
  let h = (Figures.figure3 ()).Figures.ht in
  let ev = Evidence.build ~shrink:true (Compc.check h) in
  (* Round-trip through the printer and parser: the emitted document is
     machine-readable by this repo's own tooling. *)
  let json = Json.of_string (Json.to_string (Evidence.to_json ev)) in
  let str path =
    match get path json with Some (Json.String s) -> s | _ -> "?"
  in
  Alcotest.(check string) "schema" "evidence/1" (str [ "schema" ]);
  Alcotest.(check string) "verdict" "reject" (str [ "verdict" ]);
  Alcotest.(check string)
    "failure kind" "no_calculation"
    (str [ "failure"; "kind" ]);
  (match get [ "fronts" ] json with
  | Some (Json.List fronts) ->
    Alcotest.(check int) "order+1 fronts" 3 (List.length fronts)
  | _ -> Alcotest.fail "fronts missing");
  (match get [ "failure"; "edges" ] json with
  | Some (Json.List edges) ->
    Alcotest.(check bool) "edges present" true (edges <> []);
    List.iter
      (fun e ->
        match Json.member "provenance" e with
        | Some (Json.List (_ :: _ as chain)) ->
          (* Every chain terminates in a Def. 10 base rule. *)
          let last = List.nth chain (List.length chain - 1) in
          let rule =
            match get [ "reason"; "rule" ] last with
            | Some (Json.String s) -> s
            | _ -> "?"
          in
          Alcotest.(check bool)
            "chain ends in a base rule" true
            (rule = "base-output" || rule = "base-conflict")
        | _ -> Alcotest.fail "observed edge without provenance chain")
      edges
  | _ -> Alcotest.fail "failure edges missing");
  (match get [ "provenance"; "consistent" ] json with
  | Some (Json.Bool b) -> Alcotest.(check bool) "replay consistent" true b
  | _ -> Alcotest.fail "provenance cross-check missing");
  match get [ "shrunk" ] json with
  | Some shr ->
    (* Figure 3 is already 1-minimal: the shrinker keeps all 10 nodes, and
       the embedded histlang text re-parses to the same failure kind. *)
    (match Json.member "nodes" shr with
    | Some (Json.Int n) -> Alcotest.(check int) "minimal already" 10 n
    | _ -> Alcotest.fail "shrunk.nodes missing");
    (match Json.member "histlang" shr with
    | Some (Json.String text) ->
      let h' = Repro_histlang.Syntax.parse text in
      let v' = Compc.check h' in
      Alcotest.(check string)
        "shrunken history reproduces the kind" "no_calculation"
        (match Compc.failure v' with
        | Some f -> Reduction.failure_kind f
        | None -> "accepted")
    | _ -> Alcotest.fail "shrunk.histlang missing")
  | None -> Alcotest.fail "shrunk section missing"

let test_evidence_json_accept () =
  let h = Figures.figure1 () in
  let ev = Evidence.build (Compc.check h) in
  let json = Json.of_string (Json.to_string (Evidence.to_json ev)) in
  (match get [ "verdict" ] json with
  | Some (Json.String s) -> Alcotest.(check string) "verdict" "accept" s
  | _ -> Alcotest.fail "verdict missing");
  (match get [ "serial_order" ] json with
  | Some (Json.List serial) ->
    Alcotest.(check int)
      "serial order covers the roots"
      (List.length (History.roots h))
      (List.length serial)
  | _ -> Alcotest.fail "serial order missing");
  Alcotest.(check bool)
    "no failure section" true
    (get [ "failure" ] json = None)

let test_evidence_dot () =
  let h = (Figures.figure3 ()).Figures.ht in
  let dot = Evidence.dot (Evidence.build (Compc.check h)) in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph forest" dot);
  Alcotest.(check bool)
    "cycle nodes bordered" true (contains ~needle:"penwidth=2.5" dot);
  Alcotest.(check bool)
    "cycle edges bold" true (contains ~needle:"style=bold" dot);
  Alcotest.(check bool)
    "cycle positions annotated" true (contains ~needle:"cycle[0]" dot);
  let accept_dot = Evidence.dot (Evidence.build (Compc.check (Figures.figure1 ()))) in
  Alcotest.(check bool)
    "no highlights on accept" false (contains ~needle:"penwidth=2.5" accept_dot)

(* ------------------------------------------------------------------ *)
(* Shrinker units                                                      *)
(* ------------------------------------------------------------------ *)

let test_restrict_identity () =
  let h = history_of_seed 7 in
  let all = Int_set.of_list (List.init (History.n_nodes h) (fun i -> i)) in
  let h' = Shrink.restrict h ~keep:all in
  Alcotest.(check int) "same size" (History.n_nodes h) (History.n_nodes h');
  Alcotest.(check (list string)) "still valid" []
    (List.map (Fmt.str "%a" (Validate.pp_error h')) (Validate.check h'));
  Alcotest.(check bool)
    "same verdict" (Compc.is_correct h) (Compc.is_correct h')

let test_shrink_figure3 () =
  let h = (Figures.figure3 ()).Figures.ht in
  match Shrink.shrink h with
  | None -> Alcotest.fail "figure 3 must be rejected"
  | Some r ->
    Alcotest.(check string) "kind preserved" "no_calculation" r.Shrink.kind;
    Alcotest.(check int) "already 1-minimal" 0 r.Shrink.dropped_nodes;
    Alcotest.(check bool) "probes counted" true (r.Shrink.probes > 0)

let test_shrink_accepted () =
  let h = Figures.figure1 () in
  Alcotest.(check bool) "accepted history: nothing to shrink" true
    (Shrink.shrink h = None)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_provenance_sound =
  QCheck.Test.make
    ~name:"provenance replay equals the closure; every chain is sound"
    ~count:60 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let rel = Observed.compute h in
      let prov = Provenance.build h rel in
      Provenance.consistent prov
      && Provenance.cardinal prov = Rel.cardinal rel.Observed.obs
      && Rel.fold
           (fun a b acc -> acc && chain_ok rel prov (a, b))
           rel.Observed.obs true)

let prop_derivation_trees =
  QCheck.Test.make
    ~name:"derivation trees re-derive their pair and bottom out in bases"
    ~count:40 arb_seed (fun seed ->
      let h = history_of_seed seed in
      let rel = Observed.compute h in
      let prov = Provenance.build h rel in
      (* Walk each pair's derivation DAG: conclusions must be observed
         pairs, leaves must be premise-free base rules. *)
      let rec sound (d : Provenance.derivation) =
        let a, b = d.Provenance.concl in
        Rel.mem a b rel.Observed.obs
        && (match d.Provenance.premises with
           | [] -> Provenance.is_base d.Provenance.rule
           | ps -> List.for_all sound ps)
      in
      Rel.fold
        (fun a b acc ->
          acc
          && match Provenance.derive prov a b with
             | Some d -> d.Provenance.concl = (a, b) && sound d
             | None -> false)
        rel.Observed.obs true)

let prop_shrink_preserves_kind =
  QCheck.Test.make
    ~name:"shrunken histories validate and preserve the failure kind"
    ~count:40 arb_seed (fun seed ->
      let h = history_of_seed seed in
      match Shrink.shrink ~max_probes:300 h with
      | None -> Compc.is_correct h
      | Some r ->
        (not (Compc.is_correct h))
        && Validate.check r.Shrink.history = []
        && History.n_nodes r.Shrink.history
           = History.n_nodes h - r.Shrink.dropped_nodes
        && (match Compc.failure (Compc.check r.Shrink.history) with
           | Some f -> Reduction.failure_kind f = r.Shrink.kind
           | None -> false))

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let suite =
  [
    ( "forensics",
      [
        Alcotest.test_case "figure 3 provenance" `Quick test_figure3_provenance;
        Alcotest.test_case "figure 2 climb chain" `Quick test_figure2_climb;
        Alcotest.test_case "figure 3 cycle edges" `Quick
          test_figure3_cycle_edges;
        Alcotest.test_case "pp_failure labels and edges" `Quick
          test_pp_failure_labels;
        Alcotest.test_case "evidence JSON (reject)" `Quick
          test_evidence_json_reject;
        Alcotest.test_case "evidence JSON (accept)" `Quick
          test_evidence_json_accept;
        Alcotest.test_case "evidence DOT highlights" `Quick test_evidence_dot;
        Alcotest.test_case "restrict to everything" `Quick
          test_restrict_identity;
        Alcotest.test_case "shrink figure 3" `Quick test_shrink_figure3;
        Alcotest.test_case "shrink accepted" `Quick test_shrink_accepted;
      ] );
    qsuite "forensics:props"
      [ prop_provenance_sound; prop_derivation_trees; prop_shrink_preserves_kind ];
  ]
