let () =
  Alcotest.run "repro"
    (Test_rel.suite @ Test_model.suite @ Test_core.suite @ Test_props.suite
   @ Test_criteria.suite @ Test_workload.suite @ Test_storage.suite
   @ Test_runtime.suite @ Test_histlang.suite @ Test_obs.suite
   @ Test_kernel.suite @ Test_increl.suite @ Test_monitor.suite
   @ Test_engine.suite
   @ Test_truncate.suite @ Test_server.suite
   @ Test_forensics.suite @ Test_adt.suite)
