(* The compserve library core, in-process: per-root chunking against the
   [prefix_by_roots] chain it promises to reproduce, the wire codec
   (round-trips, incremental framing, malformed-line recovery), and the
   sharded multi-stream server — many concurrent streams certified with
   verdict parity against a plain monitor, stats barrier, graceful
   drain. *)
open Repro_model
open Repro_workload
module Engine = Repro_core.Engine
module Monitor = Repro_core.Monitor
module Reduction = Repro_core.Reduction
module Server = Repro_runtime.Server
module Syntax = Repro_histlang.Syntax
module Json = Repro_obs.Json

let history_of_seed seed =
  let rng = Prng.create ~seed in
  match seed mod 4 with
  | 0 -> Gen.flat rng ~roots:(3 + (seed mod 3))
  | 1 -> Gen.stack rng ~levels:2 ~roots:(2 + (seed mod 3))
  | 2 -> Gen.fork rng ~branches:2 ~roots:3
  | _ -> Gen.general rng ~schedules:3 ~roots:(3 + (seed mod 2))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let n_roots h = List.length (History.roots h)

let stack_history () = Gen.stack (Prng.create ~seed:42) ~levels:2 ~roots:4

(* ------------------------------------------------------------------ *)
(* Chunker                                                             *)
(* ------------------------------------------------------------------ *)

(* Every concatenated chunk prefix parses to the corresponding
   root-prefix: same node count and labels (identifier assignment is the
   same root-major DFS), and the same Comp-C verdict. *)
let prop_chunks_parity =
  QCheck.Test.make ~count:80 ~name:"chunk prefixes = prefix_by_roots"
    arb_seed (fun seed ->
      let h = history_of_seed seed in
      let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf preamble;
      let ok = ref (List.length chunks = n_roots h) in
      List.iteri
        (fun i chunk ->
          Buffer.add_string buf chunk;
          let parsed = Syntax.parse (Buffer.contents buf) in
          let p = History.prefix_by_roots h (i + 1) in
          if History.n_nodes parsed <> History.n_nodes p then ok := false
          else begin
            for v = 0 to History.n_nodes p - 1 do
              if not (Label.equal (History.label parsed v) (History.label p v))
              then ok := false
            done;
            if
              Repro_core.Compc.is_correct parsed <> Repro_core.Compc.is_correct p
            then ok := false
          end)
        chunks;
      !ok)

let test_chunks_explicit_refused () =
  let h =
    Syntax.parse
      "schedule S conflict rw\nroot T @ S T\nleaf a parent T w(x)\nlog S : a\n"
  in
  (* Rebuild with an explicit spec through the builder is roundabout;
     parse rejects explicit specs in text, so drive the error through a
     bad schedule name instead, then check the Explicit refusal message
     against a handcrafted history. *)
  ignore h;
  let b = History.Builder.create () in
  let s = History.Builder.schedule b ~conflict:(Conflict.Explicit []) "S" in
  let t = History.Builder.root b ~sched:s (Label.v "T") in
  ignore (History.Builder.leaf b ~parent:t (Label.read "x"));
  let h = History.Builder.seal b in
  Alcotest.(check bool) "explicit spec refused" true
    (match Server.Chunks.of_history h with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let reqs =
    [
      Server.Wire.Open { stream = "s1"; window = None };
      Server.Wire.Open { stream = "s2"; window = Some 256 };
      Server.Wire.Append { stream = "s1"; body = "root n0 @ S T\nleaf n1 parent n0 w(x)\n" };
      Server.Wire.Append { stream = "s1"; body = "" };
      Server.Wire.Verdict "s1";
      Server.Wire.Explain "s-x.y";
      Server.Wire.Close "s1";
      Server.Wire.Stats;
    ]
  in
  let encoded = String.concat "" (List.map Server.Wire.encode_request reqs) in
  let rec decode_all pos acc =
    if pos >= String.length encoded then List.rev acc
    else
      match Server.Wire.decode_request encoded ~pos with
      | Server.Wire.Got (r, n) -> decode_all (pos + n) (r :: acc)
      | _ -> Alcotest.fail "decode stalled on well-formed input"
  in
  Alcotest.(check bool) "request round-trip" true (decode_all 0 [] = reqs);
  let resps =
    [
      Server.Wire.Ok;
      Server.Wire.Verdict_r { stream = "s1"; accepted = true; detail = "0 3" };
      Server.Wire.Verdict_r
        { stream = "s1"; accepted = false; detail = "cycle_in_clusters" };
      Server.Wire.Json_r (Json.Obj [ ("a", Json.Int 1) ]);
      Server.Wire.Err "no such stream s9";
    ]
  in
  let encoded = String.concat "" (List.map Server.Wire.encode_response resps) in
  let rec decode_all pos acc =
    if pos >= String.length encoded then List.rev acc
    else
      match Server.Wire.decode_response encoded ~pos with
      | Server.Wire.Got (r, n) -> decode_all (pos + n) (r :: acc)
      | _ -> Alcotest.fail "response decode stalled"
  in
  Alcotest.(check bool) "response round-trip" true (decode_all 0 [] = resps)

let test_wire_incremental () =
  let full = Server.Wire.encode_request (Server.Wire.Append { stream = "s"; body = "hello\n" }) in
  (* Every strict prefix of a framed request wants more bytes. *)
  for cut = 0 to String.length full - 1 do
    match Server.Wire.decode_request (String.sub full 0 cut) ~pos:0 with
    | Server.Wire.Need_more -> ()
    | _ -> Alcotest.fail (Printf.sprintf "prefix of %d bytes should be incomplete" cut)
  done;
  match Server.Wire.decode_request full ~pos:0 with
  | Server.Wire.Got (Server.Wire.Append { body; _ }, n) ->
    Alcotest.(check int) "consumed everything" (String.length full) n;
    Alcotest.(check string) "body intact" "hello\n" body
  | _ -> Alcotest.fail "decode failed on the full frame"

let test_wire_malformed () =
  let buf = "frobnicate x\nstats\n" in
  match Server.Wire.decode_request buf ~pos:0 with
  | Server.Wire.Malformed (_, n) -> (
    (* The bad line is skipped; the connection resynchronizes. *)
    match Server.Wire.decode_request buf ~pos:n with
    | Server.Wire.Got (Server.Wire.Stats, _) -> ()
    | _ -> Alcotest.fail "did not resynchronize after a malformed line")
  | _ -> Alcotest.fail "malformed line not flagged"

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let expect_ok = function
  | Server.Wire.Ok -> ()
  | Server.Wire.Err e -> Alcotest.fail ("unexpected err: " ^ e)
  | _ -> Alcotest.fail "expected ok"

(* Drive [streams] concurrent streams (seeded histories) through one
   server, interleaving appends round-robin, and return the per-stream
   verdict sequences. *)
let drive server ~streams ~window =
  let data =
    Array.init streams (fun i ->
        let h = history_of_seed (i * 37) in
        (Printf.sprintf "stream-%d" i, h, Server.Chunks.of_history h))
  in
  Array.iter
    (fun (sid, _, _) ->
      expect_ok (Server.request server (Server.Wire.Open { stream = sid; window })))
    data;
  let verdicts = Array.make streams [] in
  let max_chunks =
    Array.fold_left (fun m (_, _, c) -> max m (List.length c.Server.Chunks.chunks)) 0 data
  in
  for k = 0 to max_chunks - 1 do
    Array.iteri
      (fun i (sid, _, c) ->
        match List.nth_opt c.Server.Chunks.chunks k with
        | None -> ()
        | Some chunk ->
          let body = if k = 0 then c.Server.Chunks.preamble ^ chunk else chunk in
          (match Server.request server (Server.Wire.Append { stream = sid; body }) with
          | Server.Wire.Verdict_r { accepted; detail; _ } ->
            verdicts.(i) <- (accepted, detail) :: verdicts.(i)
          | Server.Wire.Err e -> Alcotest.fail ("append failed: " ^ e)
          | _ -> Alcotest.fail "expected a verdict"))
      data
  done;
  (data, Array.map List.rev verdicts)

(* The reference sequence: a plain in-process monitor over the same
   prefix chain. *)
let reference h =
  let m = Monitor.create () in
  List.init (n_roots h) (fun k ->
      match Monitor.append m (History.prefix_by_roots h (k + 1)) with
      | Monitor.Accepted _ -> (true, "")
      | Monitor.Rejected f -> (false, Reduction.failure_kind f))

let check_parity data verdicts =
  Array.iteri
    (fun i (sid, h, _) ->
      let ref_seq = reference h in
      let got = verdicts.(i) in
      Alcotest.(check int)
        (sid ^ ": one verdict per root") (List.length ref_seq) (List.length got);
      List.iter2
        (fun (ra, rf) (ga, gf) ->
          Alcotest.(check bool) (sid ^ ": acceptance parity") ra ga;
          if not ra then Alcotest.(check string) (sid ^ ": failure kind parity") rf gf)
        ref_seq got)
    data

let test_server_multi_stream () =
  let server = Server.create ~shards:4 () in
  let data, verdicts = drive server ~streams:12 ~window:None in
  check_parity data verdicts;
  Server.drain server

let test_server_windowed_parity () =
  (* Same drive with a tiny per-stream truncation window: verdicts must
     not move. *)
  let server = Server.create ~shards:4 ~window:6 () in
  let data, verdicts = drive server ~streams:8 ~window:None in
  check_parity data verdicts;
  Server.drain server

let test_server_stream_lifecycle () =
  let server = Server.create ~shards:2 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  expect_ok (Server.request server (Server.Wire.Open { stream = "s"; window = None }));
  (match Server.request server (Server.Wire.Open { stream = "s"; window = None }) with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "double open must fail");
  (match Server.request server (Server.Wire.Append { stream = "nope"; body = "x" }) with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "append to unknown stream must fail");
  (* Verdict before any append: the empty prefix. *)
  (match Server.request server (Server.Wire.Verdict "s") with
  | Server.Wire.Verdict_r { accepted = true; detail = "empty"; _ } -> ()
  | _ -> Alcotest.fail "empty stream should report the vacuous accept");
  let body = preamble ^ List.hd chunks in
  (match Server.request server (Server.Wire.Append { stream = "s"; body }) with
  | Server.Wire.Verdict_r { accepted = true; _ } -> ()
  | _ -> Alcotest.fail "first chunk should be accepted");
  (* A parse error rolls the stream back; the next good append lands. *)
  (match Server.request server (Server.Wire.Append { stream = "s"; body = "leaf ) x\n" }) with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "bad chunk must be refused");
  (match
     Server.request server (Server.Wire.Append { stream = "s"; body = List.nth chunks 1 })
   with
  | Server.Wire.Verdict_r _ -> ()
  | Server.Wire.Err e -> Alcotest.fail ("stream wedged after bad chunk: " ^ e)
  | _ -> Alcotest.fail "expected a verdict");
  (* Explain carries the engine snapshot and the flight recorder. *)
  (match Server.request server (Server.Wire.Explain "s") with
  | Server.Wire.Json_r (Json.Obj fields) ->
    Alcotest.(check bool) "explain has engine snapshot" true
      (List.mem_assoc "engine" fields);
    Alcotest.(check bool) "explain has flight recorder" true
      (List.mem_assoc "flight_recorder" fields)
  | _ -> Alcotest.fail "expected json");
  expect_ok (Server.request server (Server.Wire.Close "s"));
  (match Server.request server (Server.Wire.Close "s") with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "double close must fail");
  Server.drain server

let test_server_stats_and_drain () =
  let server = Server.create ~shards:3 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  for i = 0 to 5 do
    let sid = Printf.sprintf "t%d" i in
    expect_ok (Server.request server (Server.Wire.Open { stream = sid; window = None }));
    expect_ok
      (match
         Server.request server
           (Server.Wire.Append { stream = sid; body = preamble ^ List.hd chunks })
       with
      | Server.Wire.Verdict_r _ -> Server.Wire.Ok
      | r -> r)
  done;
  (match Server.request server Server.Wire.Stats with
  | Server.Wire.Json_r (Json.Obj fields) -> (
    Alcotest.(check bool) "stats schema" true
      (List.assoc_opt "schema" fields = Some (Json.String "compserve-stats/1"));
    match List.assoc_opt "shards" fields with
    | Some (Json.List shards) ->
      Alcotest.(check int) "one report per shard" 3 (List.length shards);
      let streams =
        List.fold_left
          (fun acc -> function
            | Json.Obj f -> (
              match List.assoc_opt "streams" f with
              | Some (Json.Int n) -> acc + n
              | _ -> acc)
            | _ -> acc)
          0 shards
      in
      Alcotest.(check int) "all streams accounted for" 6 streams
    | _ -> Alcotest.fail "stats lacks shard reports")
  | _ -> Alcotest.fail "expected stats json");
  Server.drain server;
  (match Server.request server (Server.Wire.Verdict "t0") with
  | Server.Wire.Err msg ->
    Alcotest.(check string) "post-drain refusal" "server draining" msg
  | _ -> Alcotest.fail "drained server must refuse work");
  (* Idempotent. *)
  Server.drain server

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "chunker refuses explicit specs" `Quick
          test_chunks_explicit_refused;
        Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "wire incremental framing" `Quick test_wire_incremental;
        Alcotest.test_case "wire malformed recovery" `Quick test_wire_malformed;
        Alcotest.test_case "multi-stream verdict parity" `Quick
          test_server_multi_stream;
        Alcotest.test_case "windowed multi-stream parity" `Quick
          test_server_windowed_parity;
        Alcotest.test_case "stream lifecycle" `Quick test_server_stream_lifecycle;
        Alcotest.test_case "stats barrier and drain" `Quick
          test_server_stats_and_drain;
      ] );
    ("server:props", [ QCheck_alcotest.to_alcotest prop_chunks_parity ]);
  ]
