(* The compserve library core, in-process: per-root chunking against the
   [prefix_by_roots] chain it promises to reproduce, the wire codec
   (round-trips, incremental framing, malformed-line recovery), and the
   sharded multi-stream server — many concurrent streams certified with
   verdict parity against a plain monitor, stats barrier, graceful
   drain. *)
open Repro_model
open Repro_workload
module Engine = Repro_core.Engine
module Monitor = Repro_core.Monitor
module Reduction = Repro_core.Reduction
module Server = Repro_runtime.Server
module Syntax = Repro_histlang.Syntax
module Json = Repro_obs.Json

let history_of_seed seed =
  let rng = Prng.create ~seed in
  match seed mod 4 with
  | 0 -> Gen.flat rng ~roots:(3 + (seed mod 3))
  | 1 -> Gen.stack rng ~levels:2 ~roots:(2 + (seed mod 3))
  | 2 -> Gen.fork rng ~branches:2 ~roots:3
  | _ -> Gen.general rng ~schedules:3 ~roots:(3 + (seed mod 2))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let n_roots h = List.length (History.roots h)

let stack_history () = Gen.stack (Prng.create ~seed:42) ~levels:2 ~roots:4

(* ------------------------------------------------------------------ *)
(* Chunker                                                             *)
(* ------------------------------------------------------------------ *)

(* Every concatenated chunk prefix parses to the corresponding
   root-prefix: same node count and labels (identifier assignment is the
   same root-major DFS), and the same Comp-C verdict. *)
let prop_chunks_parity =
  QCheck.Test.make ~count:80 ~name:"chunk prefixes = prefix_by_roots"
    arb_seed (fun seed ->
      let h = history_of_seed seed in
      let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf preamble;
      let ok = ref (List.length chunks = n_roots h) in
      List.iteri
        (fun i chunk ->
          Buffer.add_string buf chunk;
          let parsed = Syntax.parse (Buffer.contents buf) in
          let p = History.prefix_by_roots h (i + 1) in
          if History.n_nodes parsed <> History.n_nodes p then ok := false
          else begin
            for v = 0 to History.n_nodes p - 1 do
              if not (Label.equal (History.label parsed v) (History.label p v))
              then ok := false
            done;
            if
              Repro_core.Compc.is_correct parsed <> Repro_core.Compc.is_correct p
            then ok := false
          end)
        chunks;
      !ok)

let test_chunks_explicit_refused () =
  let h =
    Syntax.parse
      "schedule S conflict rw\nroot T @ S T\nleaf a parent T w(x)\nlog S : a\n"
  in
  (* Rebuild with an explicit spec through the builder is roundabout;
     parse rejects explicit specs in text, so drive the error through a
     bad schedule name instead, then check the Explicit refusal message
     against a handcrafted history. *)
  ignore h;
  let b = History.Builder.create () in
  let s = History.Builder.schedule b ~conflict:(Conflict.Explicit []) "S" in
  let t = History.Builder.root b ~sched:s (Label.v "T") in
  ignore (History.Builder.leaf b ~parent:t (Label.read "x"));
  let h = History.Builder.seal b in
  Alcotest.(check bool) "explicit spec refused" true
    (match Server.Chunks.of_history h with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let reqs =
    [
      Server.Wire.Open { stream = "s1"; window = None };
      Server.Wire.Open { stream = "s2"; window = Some 256 };
      Server.Wire.Append { stream = "s1"; body = "root n0 @ S T\nleaf n1 parent n0 w(x)\n"; ctx = None };
      Server.Wire.Append { stream = "s1"; body = ""; ctx = None };
      Server.Wire.Verdict "s1";
      Server.Wire.Explain "s-x.y";
      Server.Wire.Close "s1";
      Server.Wire.Stats;
    ]
  in
  let encoded = String.concat "" (List.map Server.Wire.encode_request reqs) in
  let rec decode_all pos acc =
    if pos >= String.length encoded then List.rev acc
    else
      match Server.Wire.decode_request encoded ~pos with
      | Server.Wire.Got (r, n) -> decode_all (pos + n) (r :: acc)
      | _ -> Alcotest.fail "decode stalled on well-formed input"
  in
  Alcotest.(check bool) "request round-trip" true (decode_all 0 [] = reqs);
  let resps =
    [
      Server.Wire.Ok;
      Server.Wire.Verdict_r { stream = "s1"; accepted = true; detail = "0 3" };
      Server.Wire.Verdict_r
        { stream = "s1"; accepted = false; detail = "cycle_in_clusters" };
      Server.Wire.Json_r (Json.Obj [ ("a", Json.Int 1) ]);
      Server.Wire.Err "no such stream s9";
    ]
  in
  let encoded = String.concat "" (List.map Server.Wire.encode_response resps) in
  let rec decode_all pos acc =
    if pos >= String.length encoded then List.rev acc
    else
      match Server.Wire.decode_response encoded ~pos with
      | Server.Wire.Got (r, n) -> decode_all (pos + n) (r :: acc)
      | _ -> Alcotest.fail "response decode stalled"
  in
  Alcotest.(check bool) "response round-trip" true (decode_all 0 [] = resps)

let test_wire_incremental () =
  let full = Server.Wire.encode_request (Server.Wire.Append { stream = "s"; body = "hello\n"; ctx = None }) in
  (* Every strict prefix of a framed request wants more bytes. *)
  for cut = 0 to String.length full - 1 do
    match Server.Wire.decode_request (String.sub full 0 cut) ~pos:0 with
    | Server.Wire.Need_more -> ()
    | _ -> Alcotest.fail (Printf.sprintf "prefix of %d bytes should be incomplete" cut)
  done;
  match Server.Wire.decode_request full ~pos:0 with
  | Server.Wire.Got (Server.Wire.Append { body; _ }, n) ->
    Alcotest.(check int) "consumed everything" (String.length full) n;
    Alcotest.(check string) "body intact" "hello\n" body
  | _ -> Alcotest.fail "decode failed on the full frame"

let test_wire_malformed () =
  let buf = "frobnicate x\nstats\n" in
  match Server.Wire.decode_request buf ~pos:0 with
  | Server.Wire.Malformed (_, n) -> (
    (* The bad line is skipped; the connection resynchronizes. *)
    match Server.Wire.decode_request buf ~pos:n with
    | Server.Wire.Got (Server.Wire.Stats, _) -> ()
    | _ -> Alcotest.fail "did not resynchronize after a malformed line")
  | _ -> Alcotest.fail "malformed line not flagged"

(* Protocol v2: the trace-context token and the admin requests round-trip;
   v1 frames still decode; a bad context token skips its whole frame
   (line AND body) so the body bytes are never re-parsed as requests. *)
let test_wire_v2 () =
  let reqs =
    [
      Server.Wire.Append
        {
          stream = "s1";
          body = "hello\n";
          ctx = Some { Server.Wire.trace = 0xabc; parent = 0x20000000001 };
        };
      Server.Wire.Metrics;
      Server.Wire.Health;
      Server.Wire.Slow None;
      Server.Wire.Slow (Some 0.5);
      Server.Wire.Slow (Some 2.0);
    ]
  in
  let encoded = String.concat "" (List.map Server.Wire.encode_request reqs) in
  let rec decode_all pos acc =
    if pos >= String.length encoded then List.rev acc
    else
      match Server.Wire.decode_request encoded ~pos with
      | Server.Wire.Got (r, n) -> decode_all (pos + n) (r :: acc)
      | _ -> Alcotest.fail "v2 decode stalled on well-formed input"
  in
  Alcotest.(check bool) "v2 request round-trip" true (decode_all 0 [] = reqs);
  (* the text response frame round-trips, including its length prefix *)
  let resps =
    [ Server.Wire.Text_r "# TYPE x counter\nx 1\n"; Server.Wire.Ok ]
  in
  let encoded = String.concat "" (List.map Server.Wire.encode_response resps) in
  let rec decode_resps pos acc =
    if pos >= String.length encoded then List.rev acc
    else
      match Server.Wire.decode_response encoded ~pos with
      | Server.Wire.Got (r, n) -> decode_resps (pos + n) (r :: acc)
      | _ -> Alcotest.fail "text response decode stalled"
  in
  Alcotest.(check bool) "text response round-trip" true
    (decode_resps 0 [] = resps);
  (* a v1 append frame (no token) decodes with no context *)
  (match Server.Wire.decode_request "append s 6\nhello\n" ~pos:0 with
  | Server.Wire.Got (Server.Wire.Append { ctx = None; body = "hello\n"; _ }, _)
    ->
    ()
  | _ -> Alcotest.fail "v1 append frame no longer decodes");
  (* a malformed context token invalidates the frame but consumes the
     declared body, resynchronizing on the next frame *)
  let buf = "append s 6 t=zz:1\nhello\nstats\n" in
  match Server.Wire.decode_request buf ~pos:0 with
  | Server.Wire.Malformed (_, n) -> (
    match Server.Wire.decode_request buf ~pos:n with
    | Server.Wire.Got (Server.Wire.Stats, _) -> ()
    | _ -> Alcotest.fail "body bytes re-parsed after a bad context token")
  | _ -> Alcotest.fail "bad context token not flagged"

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let expect_ok = function
  | Server.Wire.Ok -> ()
  | Server.Wire.Err e -> Alcotest.fail ("unexpected err: " ^ e)
  | _ -> Alcotest.fail "expected ok"

(* Drive [streams] concurrent streams (seeded histories) through one
   server, interleaving appends round-robin, and return the per-stream
   verdict sequences. *)
let drive server ~streams ~window =
  let data =
    Array.init streams (fun i ->
        let h = history_of_seed (i * 37) in
        (Printf.sprintf "stream-%d" i, h, Server.Chunks.of_history h))
  in
  Array.iter
    (fun (sid, _, _) ->
      expect_ok (Server.request server (Server.Wire.Open { stream = sid; window })))
    data;
  let verdicts = Array.make streams [] in
  let max_chunks =
    Array.fold_left (fun m (_, _, c) -> max m (List.length c.Server.Chunks.chunks)) 0 data
  in
  for k = 0 to max_chunks - 1 do
    Array.iteri
      (fun i (sid, _, c) ->
        match List.nth_opt c.Server.Chunks.chunks k with
        | None -> ()
        | Some chunk ->
          let body = if k = 0 then c.Server.Chunks.preamble ^ chunk else chunk in
          (match Server.request server (Server.Wire.Append { stream = sid; body; ctx = None }) with
          | Server.Wire.Verdict_r { accepted; detail; _ } ->
            verdicts.(i) <- (accepted, detail) :: verdicts.(i)
          | Server.Wire.Err e -> Alcotest.fail ("append failed: " ^ e)
          | _ -> Alcotest.fail "expected a verdict"))
      data
  done;
  (data, Array.map List.rev verdicts)

(* The reference sequence: a plain in-process monitor over the same
   prefix chain. *)
let reference h =
  let m = Monitor.create () in
  List.init (n_roots h) (fun k ->
      match Monitor.append m (History.prefix_by_roots h (k + 1)) with
      | Monitor.Accepted _ -> (true, "")
      | Monitor.Rejected f -> (false, Reduction.failure_kind f))

let check_parity data verdicts =
  Array.iteri
    (fun i (sid, h, _) ->
      let ref_seq = reference h in
      let got = verdicts.(i) in
      Alcotest.(check int)
        (sid ^ ": one verdict per root") (List.length ref_seq) (List.length got);
      List.iter2
        (fun (ra, rf) (ga, gf) ->
          Alcotest.(check bool) (sid ^ ": acceptance parity") ra ga;
          if not ra then Alcotest.(check string) (sid ^ ": failure kind parity") rf gf)
        ref_seq got)
    data

let test_server_multi_stream () =
  let server = Server.create ~shards:4 () in
  let data, verdicts = drive server ~streams:12 ~window:None in
  check_parity data verdicts;
  Server.drain server

let test_server_windowed_parity () =
  (* Same drive with a tiny per-stream truncation window: verdicts must
     not move. *)
  let server = Server.create ~shards:4 ~window:6 () in
  let data, verdicts = drive server ~streams:8 ~window:None in
  check_parity data verdicts;
  Server.drain server

let test_server_stream_lifecycle () =
  let server = Server.create ~shards:2 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  expect_ok (Server.request server (Server.Wire.Open { stream = "s"; window = None }));
  (match Server.request server (Server.Wire.Open { stream = "s"; window = None }) with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "double open must fail");
  (match Server.request server (Server.Wire.Append { stream = "nope"; body = "x"; ctx = None }) with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "append to unknown stream must fail");
  (* Verdict before any append: the empty prefix. *)
  (match Server.request server (Server.Wire.Verdict "s") with
  | Server.Wire.Verdict_r { accepted = true; detail = "empty"; _ } -> ()
  | _ -> Alcotest.fail "empty stream should report the vacuous accept");
  let body = preamble ^ List.hd chunks in
  (match Server.request server (Server.Wire.Append { stream = "s"; body; ctx = None }) with
  | Server.Wire.Verdict_r { accepted = true; _ } -> ()
  | _ -> Alcotest.fail "first chunk should be accepted");
  (* A parse error rolls the stream back; the next good append lands. *)
  (match Server.request server (Server.Wire.Append { stream = "s"; body = "leaf ) x\n"; ctx = None }) with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "bad chunk must be refused");
  (match
     Server.request server (Server.Wire.Append { stream = "s"; body = List.nth chunks 1; ctx = None })
   with
  | Server.Wire.Verdict_r _ -> ()
  | Server.Wire.Err e -> Alcotest.fail ("stream wedged after bad chunk: " ^ e)
  | _ -> Alcotest.fail "expected a verdict");
  (* Explain carries the engine snapshot and the flight recorder. *)
  (match Server.request server (Server.Wire.Explain "s") with
  | Server.Wire.Json_r (Json.Obj fields) ->
    Alcotest.(check bool) "explain has engine snapshot" true
      (List.mem_assoc "engine" fields);
    Alcotest.(check bool) "explain has flight recorder" true
      (List.mem_assoc "flight_recorder" fields)
  | _ -> Alcotest.fail "expected json");
  expect_ok (Server.request server (Server.Wire.Close "s"));
  (match Server.request server (Server.Wire.Close "s") with
  | Server.Wire.Err _ -> ()
  | _ -> Alcotest.fail "double close must fail");
  Server.drain server

let test_server_stats_and_drain () =
  let server = Server.create ~shards:3 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  for i = 0 to 5 do
    let sid = Printf.sprintf "t%d" i in
    expect_ok (Server.request server (Server.Wire.Open { stream = sid; window = None }));
    expect_ok
      (match
         Server.request server
           (Server.Wire.Append { stream = sid; body = preamble ^ List.hd chunks; ctx = None })
       with
      | Server.Wire.Verdict_r _ -> Server.Wire.Ok
      | r -> r)
  done;
  (match Server.request server Server.Wire.Stats with
  | Server.Wire.Json_r (Json.Obj fields) -> (
    Alcotest.(check bool) "stats schema" true
      (List.assoc_opt "schema" fields = Some (Json.String "compserve-stats/1"));
    match List.assoc_opt "shards" fields with
    | Some (Json.List shards) ->
      Alcotest.(check int) "one report per shard" 3 (List.length shards);
      let streams =
        List.fold_left
          (fun acc -> function
            | Json.Obj f -> (
              match List.assoc_opt "streams" f with
              | Some (Json.Int n) -> acc + n
              | _ -> acc)
            | _ -> acc)
          0 shards
      in
      Alcotest.(check int) "all streams accounted for" 6 streams
    | _ -> Alcotest.fail "stats lacks shard reports")
  | _ -> Alcotest.fail "expected stats json");
  Server.drain server;
  (match Server.request server (Server.Wire.Verdict "t0") with
  | Server.Wire.Err msg ->
    Alcotest.(check string) "post-drain refusal" "server draining" msg
  | _ -> Alcotest.fail "drained server must refuse work");
  (* Idempotent. *)
  Server.drain server

(* ------------------------------------------------------------------ *)
(* Admin plane and request tracing                                     *)
(* ------------------------------------------------------------------ *)

module Labels = Repro_obs.Labels
module Span = Repro_obs.Span

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The admin plane over live traffic: metrics scrapes as Prometheus
   exposition over a merged quiescent snapshot, health reports the
   topology, and with [slow_s] 0 every append lands in the slow log with
   a series string that decodes back through [Labels.decode_series]. *)
let test_server_admin_plane () =
  let server = Server.create ~shards:2 ~slow_s:0.0 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  for i = 0 to 3 do
    let sid = Printf.sprintf "a%d" i in
    expect_ok
      (Server.request server (Server.Wire.Open { stream = sid; window = None }));
    match
      Server.request server
        (Server.Wire.Append
           { stream = sid; body = preamble ^ List.hd chunks; ctx = None })
    with
    | Server.Wire.Verdict_r _ -> ()
    | _ -> Alcotest.fail "append failed"
  done;
  (match Server.request server Server.Wire.Metrics with
  | Server.Wire.Text_r text ->
    List.iter
      (fun needle ->
        Alcotest.(check bool) (Printf.sprintf "exposition has %S" needle) true
          (contains text needle))
      [ "# TYPE serve_open counter"; "# TYPE serve_append counter" ]
  | _ -> Alcotest.fail "metrics must answer with a text payload");
  (match Server.request server Server.Wire.Health with
  | Server.Wire.Json_r j ->
    Alcotest.(check bool) "health schema" true
      (Json.member "schema" j = Some (Json.String "compserve-health/1"));
    Alcotest.(check bool) "health status ok" true
      (Json.member "status" j = Some (Json.String "ok"));
    Alcotest.(check bool) "health shard count" true
      (Json.member "shards" j = Some (Json.Int 2));
    Alcotest.(check bool) "health stream count" true
      (Json.member "streams" j = Some (Json.Int 4))
  | _ -> Alcotest.fail "health must answer with json");
  (match Server.request server (Server.Wire.Slow None) with
  | Server.Wire.Json_r j ->
    Alcotest.(check bool) "slow schema" true
      (Json.member "schema" j = Some (Json.String "compserve-slow/1"));
    Alcotest.(check bool) "threshold 0 retains every append" true
      (Json.member "count" j = Some (Json.Int 4));
    (match Json.member "events" j with
    | Some (Json.List (e :: _)) -> (
      match Json.member "series" e with
      | Some (Json.String series) ->
        let name, labels = Labels.decode_series series in
        Alcotest.(check string) "slow event name" "slow_append" name;
        Alcotest.(check bool) "slow event labels decode" true
          (Labels.find "stream" labels <> None
          && Labels.find "wall_us" labels <> None)
      | _ -> Alcotest.fail "slow event without a series string")
    | _ -> Alcotest.fail "slow without events")
  | _ -> Alcotest.fail "slow must answer with json");
  (* an impossible threshold filters everything out *)
  (match Server.request server (Server.Wire.Slow (Some 3600.0)) with
  | Server.Wire.Json_r j ->
    Alcotest.(check bool) "1h threshold retains nothing" true
      (Json.member "count" j = Some (Json.Int 0))
  | _ -> Alcotest.fail "slow with threshold must answer");
  Server.drain server

(* The tentpole acceptance shape: one traced in-process request yields
   one connected span tree — queue-wait and encode under the caller's
   context parent, the engine's append (with its path label) under the
   queue-wait. *)
let test_server_span_tree () =
  let server = Server.create ~shards:2 ~span_rate:1.0 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  expect_ok
    (Server.request server (Server.Wire.Open { stream = "s"; window = None }));
  let trace = 0x42 and root = 0x777 in
  (match
     Server.request server
       (Server.Wire.Append
          {
            stream = "s";
            body = preamble ^ List.hd chunks;
            ctx = Some { Server.Wire.trace; parent = root };
          })
   with
  | Server.Wire.Verdict_r { accepted = true; _ } -> ()
  | _ -> Alcotest.fail "traced append failed");
  Server.drain server;
  let spans = Server.spans_snapshot server in
  let views =
    List.filter (fun v -> v.Span.v_trace = trace) (Span.spans spans)
  in
  Alcotest.(check (list string)) "span tree members"
    [ "serve.queue_wait"; "engine.append"; "serve.encode" ]
    (List.map (fun v -> v.Span.v_name) views);
  let find name = List.find (fun v -> v.Span.v_name = name) views in
  let qw = find "serve.queue_wait" in
  let eng = find "engine.append" in
  let enc = find "serve.encode" in
  Alcotest.(check bool) "queue-wait under the caller's span" true
    (qw.Span.v_parent = root);
  Alcotest.(check bool) "engine append under the queue-wait" true
    (eng.Span.v_parent = qw.Span.v_id);
  Alcotest.(check bool) "encode a sibling under the caller's span" true
    (enc.Span.v_parent = root);
  Alcotest.(check bool) "engine span carries a path label" true
    (Labels.find "path" eng.Span.v_labels = Some "initial");
  Alcotest.(check bool) "engine span carries the verdict" true
    (Labels.find "verdict" eng.Span.v_labels = Some "accept");
  Alcotest.(check bool) "intervals nest: engine within queue span start" true
    (qw.Span.v_t0 <= eng.Span.v_t0 && eng.Span.v_t1 <= enc.Span.v_t1);
  Alcotest.(check int) "the untraced open recorded nothing" 3
    (List.length (Span.spans spans))

(* Sampling rides the wire context deterministically: at rate 0.5 the
   server keeps exactly the traces whose ids hash under the rate, and
   requests without a context never record. *)
let test_server_span_sampling () =
  let server = Server.create ~shards:1 ~span_rate:0.5 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  let probe = Span.create ~rate:0.5 () in
  let expected = ref 0 in
  for i = 0 to 19 do
    let sid = Printf.sprintf "s%d" i in
    expect_ok
      (Server.request server (Server.Wire.Open { stream = sid; window = None }));
    let trace = 1000 + i in
    if Span.sampled probe trace then incr expected;
    match
      Server.request server
        (Server.Wire.Append
           {
             stream = sid;
             body = preamble ^ List.hd chunks;
             ctx = Some { Server.Wire.trace; parent = 0 };
           })
    with
    | Server.Wire.Verdict_r _ -> ()
    | _ -> Alcotest.fail "append failed"
  done;
  Server.drain server;
  let spans = Server.spans_snapshot server in
  let traces =
    List.sort_uniq compare
      (List.map (fun v -> v.Span.v_trace) (Span.spans spans))
  in
  Alcotest.(check int) "server kept exactly the sampled traces" !expected
    (List.length traces);
  Alcotest.(check bool) "every kept trace passes the client's own test" true
    (List.for_all (Span.sampled probe) traces)

(* ------------------------------------------------------------------ *)
(* Coverage registry                                                   *)
(* ------------------------------------------------------------------ *)

module Coverage = Repro_obs.Coverage
module Metrics = Repro_obs.Metrics

(* The canonical key set is pinned verbatim: adding, renaming or
   reordering a point is a schema change and must touch this list, the
   committed fixture (test/golden/coverage_v1.json) and DESIGN.md
   together. *)
let golden_coverage_keys =
  [
    "engine.append.path.initial";
    "engine.append.path.fast";
    "engine.append.path.delta";
    "engine.append.path.kernel";
    "engine.append.path.full";
    "engine.appends";
    "engine.truncations";
    "engine.restores";
    "reduction.checks";
    "reduction.steps";
    "reduction.accept";
    "reduction.reject";
    "reduction.failure.front_not_cc";
    "reduction.failure.no_calculation";
    "reduction.failure.intra_contradiction";
    "serve.open";
    "serve.append";
    "serve.close";
  ]

let test_coverage_registry () =
  Alcotest.(check (list string)) "stable key set" golden_coverage_keys
    Coverage.keys;
  (* an empty registry exports the full key set, all zeros *)
  let empty = Coverage.of_metrics (Metrics.create ()) in
  Alcotest.(check (list string)) "empty export keeps every key"
    golden_coverage_keys (List.map fst empty);
  Alcotest.(check bool) "empty export is all zeros" true
    (List.for_all (fun (_, v) -> v = 0) empty);
  (* extra labels (the server's shard=i) sum into their point; the
     required path label still separates the per-path points *)
  let m = Metrics.create () in
  Metrics.incr m ~by:2
    ~labels:(Labels.v [ ("path", "fast"); ("shard", "0") ])
    "monitor.append";
  Metrics.incr m ~by:3
    ~labels:(Labels.v [ ("path", "fast"); ("shard", "1") ])
    "monitor.append";
  Metrics.incr m ~labels:(Labels.v [ ("path", "full") ]) "monitor.append";
  Metrics.incr m ~by:4 ~labels:(Labels.v [ ("shard", "1") ]) "serve.append";
  let points = Coverage.of_metrics m in
  Alcotest.(check int) "shards summed into the fast point" 5
    (List.assoc "engine.append.path.fast" points);
  Alcotest.(check int) "full point separate" 1
    (List.assoc "engine.append.path.full" points);
  Alcotest.(check int) "serve appends summed" 4
    (List.assoc "serve.append" points);
  (* a served stream's counters feed the same document the server's
     stats response embeds *)
  let server = Server.create ~shards:2 () in
  let h = stack_history () in
  let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
  expect_ok
    (Server.request server (Server.Wire.Open { stream = "c"; window = None }));
  (match
     Server.request server
       (Server.Wire.Append
          { stream = "c"; body = preamble ^ List.hd chunks; ctx = None })
   with
  | Server.Wire.Verdict_r _ -> ()
  | _ -> Alcotest.fail "append failed");
  (match Server.request server Server.Wire.Stats with
  | Server.Wire.Json_r j -> (
    match Json.member "coverage" j with
    | Some cov -> (
      Alcotest.(check bool) "stats embeds coverage/1" true
        (Json.member "schema" cov = Some (Json.String Coverage.schema));
      match Json.member "points" cov with
      | Some (Json.Obj points) ->
        Alcotest.(check (list string)) "stats coverage keys"
          golden_coverage_keys (List.map fst points);
        Alcotest.(check bool) "served append counted" true
          (List.assoc_opt "serve.append" points = Some (Json.Int 1))
      | _ -> Alcotest.fail "coverage without points")
    | None -> Alcotest.fail "stats without coverage")
  | _ -> Alcotest.fail "expected stats json");
  Server.drain server

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "chunker refuses explicit specs" `Quick
          test_chunks_explicit_refused;
        Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "wire incremental framing" `Quick test_wire_incremental;
        Alcotest.test_case "wire malformed recovery" `Quick test_wire_malformed;
        Alcotest.test_case "wire v2: trace context and admin" `Quick
          test_wire_v2;
        Alcotest.test_case "multi-stream verdict parity" `Quick
          test_server_multi_stream;
        Alcotest.test_case "windowed multi-stream parity" `Quick
          test_server_windowed_parity;
        Alcotest.test_case "stream lifecycle" `Quick test_server_stream_lifecycle;
        Alcotest.test_case "stats barrier and drain" `Quick
          test_server_stats_and_drain;
        Alcotest.test_case "admin plane" `Quick test_server_admin_plane;
        Alcotest.test_case "request span tree" `Quick test_server_span_tree;
        Alcotest.test_case "span sampling over the wire" `Quick
          test_server_span_sampling;
        Alcotest.test_case "coverage registry" `Quick test_coverage_registry;
      ] );
    ("server:props", [ QCheck_alcotest.to_alcotest prop_chunks_parity ]);
  ]
