(* Tests for the ADT commutativity algebra and the compiled conflict-spec
   layer: the interpreted/compiled equivalence (the memo fill path runs
   the compiled probe; [Conflict.eval] is the reference oracle), the .ct
   grammar round-trip for every spec form, the lock/checker agreement on
   the shared compatibility function, and the Validate lints. *)
open Repro_model
module B = History.Builder
module Syntax = Repro_histlang.Syntax
module Lock = Repro_runtime.Lock

let l name args = Label.v ~args name

(* ------------------------------------------------------------------ *)
(* The algebra, interpreted                                            *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Adt.eval Adt.Counter in
  Alcotest.(check bool) "inc/inc commute" false (c (l "inc" [ "x" ]) (l "inc" [ "x" ]));
  Alcotest.(check bool) "inc/dec commute" false (c (l "inc" [ "x" ]) (l "dec" [ "x" ]));
  Alcotest.(check bool) "get/get commute" false (c (l "get" [ "x" ]) (l "get" [ "x" ]));
  Alcotest.(check bool) "get/inc same item" true (c (l "get" [ "x" ]) (l "inc" [ "x" ]));
  Alcotest.(check bool) "get/inc other item" false (c (l "get" [ "x" ]) (l "inc" [ "y" ]));
  Alcotest.(check bool) "set/inc same item" true (c (l "set" [ "x" ]) (l "inc" [ "x" ]));
  Alcotest.(check bool) "set/set same item" true (c (l "set" [ "x" ]) (l "set" [ "x" ]));
  Alcotest.(check bool) "symmetric" true (c (l "inc" [ "x" ]) (l "get" [ "x" ]));
  (* Unknown names fall back to same-item pessimism. *)
  Alcotest.(check bool) "unknown same item" true (c (l "frob" [ "x" ]) (l "inc" [ "x" ]));
  Alcotest.(check bool) "unknown other item" false (c (l "frob" [ "y" ]) (l "inc" [ "x" ]));
  Alcotest.(check bool) "unknown no item" true (c (l "frob" []) (l "inc" [ "x" ]))

let test_queue () =
  let c = Adt.eval Adt.Queue in
  Alcotest.(check bool) "enq/enq same queue" true (c (l "enq" [ "q" ]) (l "enq" [ "q" ]));
  Alcotest.(check bool) "deq/deq same queue" true (c (l "deq" [ "q" ]) (l "pop" [ "q" ]));
  Alcotest.(check bool) "enq/deq opposite ends" false (c (l "enq" [ "q" ]) (l "deq" [ "q" ]));
  Alcotest.(check bool) "enq/enq other queue" false (c (l "enq" [ "q" ]) (l "enq" [ "p" ]))

let test_set () =
  let c = Adt.eval Adt.Set in
  Alcotest.(check bool) "add/add commute" false
    (c (l "add" [ "s"; "e" ]) (l "add" [ "s"; "e" ]));
  Alcotest.(check bool) "add/remove same elem" true
    (c (l "add" [ "s"; "e" ]) (l "remove" [ "s"; "e" ]));
  Alcotest.(check bool) "add/remove other elem" false
    (c (l "add" [ "s"; "e1" ]) (l "remove" [ "s"; "e2" ]));
  Alcotest.(check bool) "add/contains same elem" true
    (c (l "add" [ "s"; "e" ]) (l "contains" [ "s"; "e" ]));
  Alcotest.(check bool) "other set" false
    (c (l "add" [ "s"; "e" ]) (l "remove" [ "t"; "e" ]));
  (* No element argument: cannot prove disjointness, conflict. *)
  Alcotest.(check bool) "missing elem pessimistic" true
    (c (l "add" [ "s" ]) (l "remove" [ "s"; "e" ]))

let test_escrow () =
  let c = Adt.eval Adt.Escrow in
  Alcotest.(check bool) "overlapping ranges" true
    (c (l "escrow" [ "a"; "0"; "10" ]) (l "escrow" [ "a"; "5"; "15" ]));
  Alcotest.(check bool) "disjoint ranges" false
    (c (l "escrow" [ "a"; "0"; "4" ]) (l "escrow" [ "a"; "5"; "9" ]));
  Alcotest.(check bool) "other account" false
    (c (l "escrow" [ "a"; "0"; "10" ]) (l "escrow" [ "b"; "5"; "15" ]));
  Alcotest.(check bool) "unparseable bounds pessimistic" true
    (c (l "escrow" [ "a"; "lo"; "hi" ]) (l "escrow" [ "a"; "5"; "9" ]));
  Alcotest.(check bool) "missing bounds pessimistic" true
    (c (l "escrow" [ "a" ]) (l "escrow" [ "a"; "5"; "9" ]));
  Alcotest.(check bool) "take/put commute" false (c (l "take" [ "a" ]) (l "put" [ "a" ]));
  Alcotest.(check bool) "escrow/take same account" true
    (c (l "escrow" [ "a"; "0"; "9" ]) (l "take" [ "a" ]))

let test_custom () =
  let d =
    {
      Adt.classes = [ ("m", [ "f"; "g" ]); ("n", [ "f"; "h" ]) ];
      rules = [ ("m", "n", Adt.Item); ("m", "n", Adt.Always); ("z", "m", Adt.Always) ];
    }
  in
  let c = Adt.eval (Adt.Custom d) in
  (* "f" belongs to class m: the first declaration wins. *)
  Alcotest.(check bool) "first class wins" true (c (l "f" [ "x" ]) (l "h" [ "x" ]));
  (* m/n is guarded by Item (first rule), not Always (second). *)
  Alcotest.(check bool) "first rule wins" false (c (l "g" [ "x" ]) (l "h" [ "y" ]));
  (* Rules naming undeclared classes are inert. *)
  Alcotest.(check bool) "undeclared class rule inert" false
    (c (l "f" [ "x" ]) (l "g" [ "x" ]));
  Alcotest.(check bool) "vocabulary" true
    (Adt.vocabulary (Adt.Custom d) = [ "f"; "g"; "f"; "h" ]);
  Alcotest.(check bool) "known" true (Adt.known (Adt.Custom d) "h");
  Alcotest.(check bool) "not known" false (Adt.known (Adt.Custom d) "q")

(* ------------------------------------------------------------------ *)
(* Compiled = interpreted (qcheck)                                     *)
(* ------------------------------------------------------------------ *)

(* Deterministic generators over a name pool that mixes every family's
   vocabulary with page-level and unknown names, and argument shapes that
   exercise all four condition guards (no args, item only, item+element,
   item+numeric range). *)
let name_pool =
  [|
    "inc"; "dec"; "get"; "set"; "w"; "r"; "enq"; "deq"; "push"; "pop";
    "add"; "remove"; "contains"; "escrow"; "reserve"; "take"; "put";
    "f"; "g"; "h"; "frob"; "zzz";
  |]

let gen_label =
  QCheck.Gen.(
    let* name = oneofa name_pool in
    let* item = map (Fmt.str "x%d") (int_bound 2) in
    let* shape = int_bound 3 in
    let* e = map (Fmt.str "e%d") (int_bound 2) in
    let* lo = int_bound 9 in
    let* len = int_bound 4 in
    return
      (match shape with
      | 0 -> Label.v name
      | 1 -> Label.v ~args:[ item ] name
      | 2 -> Label.v ~args:[ item; e ] name
      | _ ->
        Label.v ~args:[ item; string_of_int lo; string_of_int (lo + len) ] name))

let gen_cond =
  QCheck.Gen.oneofl [ Adt.Always; Adt.Item; Adt.Args; Adt.Range ]

let gen_decl =
  QCheck.Gen.(
    let class_names = [ "a"; "b"; "c" ] in
    let* classes =
      flatten_l
        (List.map
           (fun cn ->
             let* ops = list_size (int_range 1 3) (oneofa name_pool) in
             return (cn, ops))
           class_names)
    in
    let* rules =
      list_size (int_range 0 5)
        (let* x = oneofl ("z" :: class_names) in
         let* y = oneofl ("z" :: class_names) in
         let* c = gen_cond in
         return (x, y, c))
    in
    return { Adt.classes; rules })

let gen_family =
  QCheck.Gen.(
    frequency
      [
        (1, return Adt.Counter); (1, return Adt.Queue); (1, return Adt.Set);
        (1, return Adt.Escrow); (2, map (fun d -> Adt.Custom d) gen_decl);
      ])

let arb_adt_case =
  QCheck.make
    ~print:(fun (f, a, b) ->
      Fmt.str "%a | %a | %a" Adt.pp f Label.pp a Label.pp b)
    QCheck.Gen.(
      let* f = gen_family in
      let* a = gen_label in
      let* b = gen_label in
      return (f, a, b))

let adt_probe_matches_eval =
  QCheck.Test.make ~name:"Adt.probe (compiled) = Adt.eval (interpreted)"
    ~count:500 arb_adt_case (fun (f, a, b) ->
      let c = Adt.compile f in
      Adt.probe c a b = Adt.eval f a b
      && Adt.probe c b a = Adt.eval f a b (* symmetric *))

(* The full spec layer: [Conflict.probe_ids] on the compiled spec agrees
   with the interpreted [Conflict.eval] for every spec form, [Explicit]
   included (the id-level probe resolves its pairs exactly). *)
let gen_spec n_labels =
  QCheck.Gen.(
    let* k = int_bound 6 in
    match k with
    | 0 -> return Conflict.Never
    | 1 -> return Conflict.Always
    | 2 -> return Conflict.Rw
    | 3 -> return Conflict.Same_item
    | 4 ->
      let* pairs =
        list_size (int_range 0 4)
          (let* x = oneofa name_pool in
           let* y = oneofa name_pool in
           return (x, y))
      in
      return (Conflict.Table pairs)
    | 5 ->
      let* pairs =
        list_size (int_range 0 4)
          (let* x = int_bound (n_labels - 1) in
           let* y = int_bound (n_labels - 1) in
           return (x, y))
      in
      return (Conflict.Explicit pairs)
    | _ -> map (fun f -> Conflict.Adt f) gen_family)

let arb_spec_case =
  let n = 6 in
  QCheck.make
    ~print:(fun (spec, labels) ->
      Fmt.str "%a | %a" Conflict.pp spec (Fmt.Dump.array Label.pp) labels)
    QCheck.Gen.(
      let* spec = gen_spec n in
      let* labels = array_size (return n) gen_label in
      return (spec, labels))

let compiled_spec_matches_eval =
  QCheck.Test.make ~name:"Conflict.probe_ids (compiled) = Conflict.eval"
    ~count:500 arb_spec_case (fun (spec, labels) ->
      let get_label i = labels.(i) in
      let c = Conflict.compile spec in
      let n = Array.length labels in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if
            Conflict.probe_ids c ~get_label a b
            <> Conflict.eval spec ~get_label a b
          then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Lock/checker agreement                                              *)
(* ------------------------------------------------------------------ *)

(* The lock table's admission decision must be exactly the compiled
   spec's label probe against the held entries of other owners — the
   single compatibility function shared with the conflict-memo fill.
   ([Explicit] is excluded: the lock table serializes it completely,
   which the unit test below pins separately.) *)
let gen_lock_spec =
  QCheck.Gen.(
    let* k = int_bound 5 in
    match k with
    | 0 -> return Conflict.Never
    | 1 -> return Conflict.Always
    | 2 -> return Conflict.Rw
    | 3 -> return Conflict.Same_item
    | 4 -> return (Conflict.Table [ ("add", "add"); ("add", "get") ])
    | _ -> map (fun f -> Conflict.Adt f) gen_family)

let arb_lock_case =
  QCheck.make
    ~print:(fun (spec, labels) ->
      Fmt.str "%a | %a" Conflict.pp spec (Fmt.Dump.list Label.pp) labels)
    QCheck.Gen.(
      let* spec = gen_lock_spec in
      let* labels = list_size (int_range 1 8) gen_label in
      return (spec, labels))

let lock_agrees_with_spec =
  QCheck.Test.make
    ~name:"Lock.try_acquire refuses iff the compiled spec conflicts"
    ~count:300 arb_lock_case (fun (spec, labels) ->
      let t = Lock.create spec in
      let compiled = Conflict.compile spec in
      let held = ref [] in
      List.for_all
        (fun (i, label) ->
          let owner = i mod 3 in
          let expect_block =
            List.exists
              (fun (o, l') ->
                o <> owner && Conflict.probe_labels compiled l' label)
              !held
          in
          let r =
            Lock.try_acquire t ~owner ~permits:(fun o -> o = owner) label
          in
          match r with
          | Ok _ ->
            held := (owner, label) :: !held;
            not expect_block
          | Error _ -> expect_block)
        (List.mapi (fun i x -> (i, x)) labels))

let test_lock_explicit_serializes () =
  (* [Explicit] references node ids a lock table never sees: every pair
     of distinct owners conflicts (and the one-time Validate warning has
     fired; firing it again here must be a no-op). *)
  Validate.warn_explicit_fallback ();
  let t = Lock.create (Conflict.Explicit [ (0, 1) ]) in
  (match Lock.try_acquire t ~owner:0 ~permits:(fun o -> o = 0) (l "a" []) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "empty table must admit");
  (match Lock.try_acquire t ~owner:1 ~permits:(fun o -> o = 1) (l "b" []) with
  | Ok _ -> Alcotest.fail "explicit spec must serialize distinct owners"
  | Error blockers -> Alcotest.(check (list int)) "blocked by holder" [ 0 ] blockers);
  match Lock.try_acquire t ~owner:0 ~permits:(fun o -> o = 0) (l "c" []) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "same owner re-enters"

(* ------------------------------------------------------------------ *)
(* .ct grammar round-trip                                              *)
(* ------------------------------------------------------------------ *)

let all_spec_forms =
  [
    Conflict.Never; Conflict.Always; Conflict.Rw; Conflict.Same_item;
    Conflict.Table [ ("add", "get"); ("add", "add") ];
    (* References the two nodes of the round-trip history below. *)
    Conflict.Explicit [ (0, 1) ];
    Conflict.Adt Adt.Counter; Conflict.Adt Adt.Queue; Conflict.Adt Adt.Set;
    Conflict.Adt Adt.Escrow;
    Conflict.Adt
      (Adt.Custom
         {
           Adt.classes = [ ("m", [ "f"; "g" ]); ("n", [ "h" ]) ];
           rules = [ ("m", "m", Adt.Args); ("m", "n", Adt.Item); ("n", "n", Adt.Range) ];
         });
    (* Degenerate declarations must survive the round trip too. *)
    Conflict.Adt (Adt.Custom { Adt.classes = [ ("m", [ "f" ]) ]; rules = [] });
    Conflict.Adt (Adt.Custom { Adt.classes = []; rules = [] });
  ]

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let b = B.create () in
      let s = B.schedule b ~conflict:spec "S" in
      let t = B.root b ~sched:s (Label.v "T1") in
      let o = B.leaf b ~parent:t (l "f" [ "x" ]) in
      B.log b ~sched:s [ o ];
      let h = B.seal b in
      let h' = Syntax.parse (Syntax.to_string h) in
      Alcotest.(check bool)
        (Fmt.str "round-trips %a" Conflict.pp spec)
        true
        (Conflict.equal (History.schedule h' 0).History.conflict spec))
    all_spec_forms

let test_spec_of_string () =
  List.iter
    (fun (text, spec) ->
      Alcotest.(check bool) (Fmt.str "parses %S" text) true
        (Conflict.equal (Syntax.spec_of_string text) spec))
    [
      ("never", Conflict.Never);
      ("rw", Conflict.Rw);
      ("same-item", Conflict.Same_item);
      ("counter", Conflict.Adt Adt.Counter);
      ("queue", Conflict.Adt Adt.Queue);
      ("set", Conflict.Adt Adt.Set);
      ("escrow", Conflict.Adt Adt.Escrow);
      ("table(add/get)", Conflict.Table [ ("add", "get") ]);
      ( "adt(m=f/g;m/m=range)",
        Conflict.Adt
          (Adt.Custom
             { Adt.classes = [ ("m", [ "f"; "g" ]) ]; rules = [ ("m", "m", Adt.Range) ] })
      );
    ];
  let rejects text =
    match Syntax.spec_of_string text with
    | exception Syntax.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "rejects explicit" true (rejects "explicit(a/b)");
  Alcotest.(check bool) "rejects trailing input" true (rejects "rw rw");
  Alcotest.(check bool) "rejects unknown" true (rejects "bogus")

(* ------------------------------------------------------------------ *)
(* Validate lints                                                      *)
(* ------------------------------------------------------------------ *)

let test_lint_unknown_names () =
  let b = B.create () in
  let s_rw = B.schedule b ~conflict:Conflict.Rw "SR" in
  let s_adt = B.schedule b ~conflict:(Conflict.Adt Adt.Counter) "SC" in
  let s_never = B.schedule b ~conflict:Conflict.Never "SN" in
  let t1 = B.root b ~sched:s_rw (Label.v "T1") in
  let a = B.tx b ~parent:t1 ~sched:s_adt (l "frob" [ "x" ]) in
  let o1 = B.leaf b ~parent:a (l "inc" [ "x" ]) in
  let o2 = B.leaf b ~parent:a (l "mystery" [ "x" ]) in
  let t2 = B.root b ~sched:s_never (Label.v "T2") in
  let o3 = B.leaf b ~parent:t2 (l "whatever" [ "y" ]) in
  B.log b ~sched:s_rw [ a ];
  B.log b ~sched:s_adt [ o1; o2 ];
  B.log b ~sched:s_never [ o3 ];
  let h = B.seal b in
  let ws = Validate.lint h in
  let unknowns =
    List.filter_map
      (function
        | Validate.Unknown_op_name { sched; name; count } -> Some (sched, name, count)
        | _ -> None)
      ws
  in
  (* "frob" is an op of the rw schedule (unrecognized there) and a
     transaction of the counter schedule; "mystery" is unknown to the
     counter family; "inc" is known; Never does not discriminate, so its
     schedule is not linted at all. *)
  Alcotest.(check bool) "rw flags frob" true
    (List.mem ("SR", "frob", 1) unknowns);
  Alcotest.(check bool) "counter flags mystery" true
    (List.mem ("SC", "mystery", 1) unknowns);
  Alcotest.(check bool) "known name not flagged" true
    (not (List.exists (fun (_, n, _) -> n = "inc") unknowns));
  Alcotest.(check bool) "never not linted" true
    (not (List.exists (fun (s, _, _) -> s = "SN") unknowns))

let test_lint_clean () =
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t = B.root b ~sched:s (Label.v "T1") in
  let o = B.leaf b ~parent:t (Label.read "x") in
  B.log b ~sched:s [ o ];
  Alcotest.(check bool) "no warnings" true (Validate.lint (B.seal b) = [])

let test_lint_pp () =
  let w = Validate.Unknown_op_name { sched = "S"; name = "frob"; count = 2 } in
  let s = Fmt.str "%a" Validate.pp_warning w in
  Alcotest.(check bool) "mentions name" true (Astring.String.is_infix ~affix:"frob" s);
  Alcotest.(check bool) "mentions schedule" true (Astring.String.is_infix ~affix:"S" s);
  let s' = Fmt.str "%a" Validate.pp_warning Validate.Explicit_lock_fallback in
  Alcotest.(check bool) "explicit fallback prints" true (String.length s' > 0)

(* ------------------------------------------------------------------ *)

let qtest = QCheck_alcotest.to_alcotest ~verbose:false

let suite =
  [
    ( "adt",
      [
        Alcotest.test_case "algebra: counter" `Quick test_counter;
        Alcotest.test_case "algebra: queue" `Quick test_queue;
        Alcotest.test_case "algebra: set" `Quick test_set;
        Alcotest.test_case "algebra: escrow" `Quick test_escrow;
        Alcotest.test_case "algebra: custom declarations" `Quick test_custom;
        qtest adt_probe_matches_eval;
        qtest compiled_spec_matches_eval;
        qtest lock_agrees_with_spec;
        Alcotest.test_case "lock: explicit serializes" `Quick
          test_lock_explicit_serializes;
        Alcotest.test_case "ct: spec round-trip" `Quick test_spec_roundtrip;
        Alcotest.test_case "ct: spec_of_string" `Quick test_spec_of_string;
        Alcotest.test_case "lint: unknown op names" `Quick test_lint_unknown_names;
        Alcotest.test_case "lint: clean history" `Quick test_lint_clean;
        Alcotest.test_case "lint: warning formatting" `Quick test_lint_pp;
      ] );
  ]
