(* Tests for the runtime: lock tables, templates, and the simulator's
   safety/liveness properties, including the protocol/theory loop. *)
open Repro_model
open Repro_runtime
open Repro_workload

(* ------------------------------------------------------------------ *)
(* Lock tables                                                         *)
(* ------------------------------------------------------------------ *)

let no_ancestors _ = false

let test_lock_basic () =
  let t = Lock.create Conflict.Rw in
  let k1 =
    match Lock.try_acquire t ~owner:1 ~permits:(fun o -> o = 1) (Label.write "x") with
    | Ok k -> k
    | Error _ -> Alcotest.fail "first acquire must succeed"
  in
  (match Lock.try_acquire t ~owner:2 ~permits:(fun o -> o = 2) (Label.read "x") with
  | Error [ 1 ] -> ()
  | _ -> Alcotest.fail "conflicting acquire must report blocker 1");
  (match Lock.try_acquire t ~owner:2 ~permits:(fun o -> o = 2) (Label.read "y") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "different item must be granted");
  Lock.release t k1;
  match Lock.try_acquire t ~owner:2 ~permits:(fun o -> o = 2) (Label.read "x") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "released lock must be acquirable"

let test_lock_same_owner_and_ancestors () =
  let t = Lock.create Conflict.Rw in
  (match Lock.try_acquire t ~owner:1 ~permits:(fun o -> o = 1) (Label.write "x") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "acquire");
  (* Same owner never blocks itself. *)
  (match Lock.try_acquire t ~owner:1 ~permits:(fun o -> o = 1) (Label.write "x") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "same owner must pass");
  (* A descendant whose permits accept owner 1 passes too. *)
  match Lock.try_acquire t ~owner:5 ~permits:(fun o -> o = 5 || o = 1) (Label.write "x") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "ancestor's lock must not block"

let test_lock_semantic_commutativity () =
  let t = Lock.create (Conflict.Table [ ("add", "get") ]) in
  (match Lock.try_acquire t ~owner:1 ~permits:no_ancestors (Label.v ~args:[ "k" ] "add") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "acquire add");
  (match Lock.try_acquire t ~owner:2 ~permits:no_ancestors (Label.v ~args:[ "k" ] "add") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "adds commute");
  match Lock.try_acquire t ~owner:3 ~permits:no_ancestors (Label.v ~args:[ "k" ] "get") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "get conflicts with add"

let test_lock_release_if_and_transfer () =
  let t = Lock.create Conflict.Rw in
  ignore (Lock.try_acquire t ~owner:1 ~permits:(fun o -> o = 1) (Label.write "x"));
  ignore (Lock.try_acquire t ~owner:2 ~permits:(fun o -> o = 2) (Label.write "y"));
  Alcotest.(check int) "two held" 2 (Lock.held t);
  Alcotest.(check bool) "transfer" true (Lock.change_owner_if t (fun o -> o = 1) ~owner:9);
  Alcotest.(check (list int)) "owners" [ 2; 9 ] (Lock.owners t);
  Alcotest.(check bool) "release" true (Lock.release_if t (fun o -> o = 9));
  Alcotest.(check bool) "nothing to release" false (Lock.release_if t (fun o -> o = 9));
  Alcotest.(check int) "one left" 1 (Lock.held t)

(* ------------------------------------------------------------------ *)
(* Templates                                                           *)
(* ------------------------------------------------------------------ *)

let test_template_validate () =
  let topo = { Template.components = [| ("a", Conflict.Rw) |] } in
  let good = Template.call ~component:0 (Label.v "t") [ Template.leaf (Label.read "x") ] in
  Template.validate topo good;
  Alcotest.(check int) "size" 2 (Template.size good);
  Alcotest.check_raises "empty children" (Invalid_argument "Template.call: empty children")
    (fun () -> ignore (Template.call ~component:0 (Label.v "t") []));
  Alcotest.check_raises "unknown component"
    (Invalid_argument "Template.validate: unknown component 3") (fun () ->
      Template.validate topo
        (Template.call ~component:3 (Label.v "t") [ Template.leaf (Label.read "x") ]))

(* ------------------------------------------------------------------ *)
(* Simulator                                                           *)
(* ------------------------------------------------------------------ *)

let bank_topology =
  {
    Template.components =
      [|
        ( "bank",
          Conflict.Table
            [ ("withdraw", "withdraw"); ("withdraw", "deposit");
              ("balance", "withdraw"); ("balance", "deposit") ] );
        ("store", Conflict.Rw);
      |];
  }

let bank_template rng ~client ~seq =
  ignore client;
  ignore seq;
  let svc () =
    let a = Fmt.str "a%d" (Prng.int rng 3) in
    let name = [| "deposit"; "withdraw"; "balance" |].(Prng.int rng 3) in
    let leaves =
      if name = "balance" then [ Template.leaf (Label.read a) ]
      else [ Template.leaf (Label.read a); Template.leaf (Label.write a) ]
    in
    Template.call ~component:1 ~sequential:true (Label.v ~args:[ a ] name) leaves
  in
  Template.call ~component:0 (Label.v "txn") (List.init (1 + Prng.int rng 2) (fun _ -> svc ()))

let federated_topology =
  {
    Template.components =
      [|
        ("frontP", Conflict.Never); ("frontQ", Conflict.Never);
        ("rmA", Conflict.Rw); ("rmB", Conflict.Rw);
      |];
  }

let federated_template rng ~client ~seq =
  ignore seq;
  let svc rm =
    let it = Fmt.str "%c%d" (if rm = 2 then 'a' else 'b') (Prng.int rng 2) in
    Template.call ~component:rm (Label.v ~args:[ it ] "svc")
      [ Template.leaf (Label.read it); Template.leaf (Label.write it) ]
  in
  Template.call ~component:(client mod 2) (Label.v "txn") [ svc 2; svc 3 ]

let run ?(clients = 5) ?(txs = 4) protocol topo gen seed =
  let params =
    {
      Sim.default_params with
      Sim.protocol;
      seed;
      clients;
      txs_per_client = txs;
      lock_timeout = 4.0;
      backoff = 2.0;
    }
  in
  Sim.run params topo ~gen

let test_all_transactions_commit () =
  List.iter
    (fun protocol ->
      let stats = run protocol bank_topology bank_template 3 in
      Alcotest.(check int) "all committed" (5 * 4)
        (stats.Sim.committed + stats.Sim.given_up);
      Alcotest.(check int) "nothing given up" 0 stats.Sim.given_up;
      Alcotest.(check bool) "makespan positive" true (stats.Sim.makespan > 0.0))
    [ Sim.Serial; Sim.Locking { closed = true }; Sim.Locking { closed = false };
      Sim.Certify ]

let test_emitted_histories_valid_and_correct () =
  (* Serial and closed nesting are always safe; open nesting is safe here
     because the bank's conflict table is faithful to the store. *)
  List.iter
    (fun protocol ->
      for seed = 1 to 8 do
        let stats = run protocol bank_topology bank_template seed in
        Alcotest.(check (list unit)) "valid" []
          (List.map (fun _ -> ()) (Validate.check stats.Sim.history));
        Alcotest.(check bool) "comp-c" true (Repro_core.Compc.is_correct stats.Sim.history)
      done)
    [ Sim.Serial; Sim.Locking { closed = true }; Sim.Locking { closed = false } ]

let test_certify_always_correct () =
  (* The certification protocol validates with the Comp-C checker at every
     commit, so even the federated topology - where open locking fails -
     must always emit correct histories. *)
  List.iter
    (fun (topo, gen) ->
      for seed = 1 to 8 do
        let stats = run Sim.Certify topo gen seed in
        Alcotest.(check (list unit)) "valid" []
          (List.map (fun _ -> ()) (Validate.check stats.Sim.history));
        Alcotest.(check bool) "comp-c by construction" true
          (Repro_core.Compc.is_correct stats.Sim.history)
      done)
    [ (bank_topology, bank_template); (federated_topology, federated_template) ]

let test_certify_aborts_on_conflict () =
  (* On the federated topology the optimistic runs do hit certification
     failures across seeds (otherwise the test is vacuous). *)
  let total_aborts = ref 0 in
  for seed = 1 to 10 do
    let stats = run Sim.Certify federated_topology federated_template seed in
    total_aborts := !total_aborts + stats.Sim.aborts
  done;
  Alcotest.(check bool)
    (Fmt.str "certification rejected some attempts (%d)" !total_aborts)
    true (!total_aborts > 0)

let test_closed_nesting_safe_federated () =
  for seed = 1 to 10 do
    let stats = run (Sim.Locking { closed = true }) federated_topology federated_template seed in
    Alcotest.(check bool) "closed federated comp-c" true
      (Repro_core.Compc.is_correct stats.Sim.history)
  done

let test_open_nesting_unsafe_federated () =
  (* Open nesting across two autonomous front-ends lets the two resource
     managers serialize a root pair in opposite directions (the Figure-3
     shape); the checker must catch at least one such run, and every
     emitted history must still be model-valid. *)
  let rejected = ref 0 in
  for seed = 1 to 30 do
    let stats = run (Sim.Locking { closed = false }) federated_topology federated_template seed in
    Alcotest.(check (list unit)) "valid" []
      (List.map (fun _ -> ()) (Validate.check stats.Sim.history));
    if not (Repro_core.Compc.is_correct stats.Sim.history) then incr rejected
  done;
  Alcotest.(check bool)
    (Fmt.str "some open-nesting runs rejected (%d/30)" !rejected)
    true (!rejected > 0)

let test_serial_never_interleaves () =
  (* Under Serial every component's log groups each root's operations
     contiguously. *)
  let stats = run Sim.Serial bank_topology bank_template 7 in
  let h = stats.Sim.history in
  List.iter
    (fun (s : History.schedule) ->
      let seen_done = Hashtbl.create 16 in
      let current = ref (-1) in
      List.iter
        (fun o ->
          let root =
            let rec climb n =
              match History.parent h n with None -> n | Some p -> climb p
            in
            climb o
          in
          if root <> !current then begin
            Alcotest.(check bool)
              (Fmt.str "root %d not resumed in %s" root s.History.sname)
              false (Hashtbl.mem seen_done root);
            if !current >= 0 then Hashtbl.replace seen_done !current ();
            current := root
          end)
        s.History.log)
    (History.schedules h)

let test_determinism () =
  let s1 = run (Sim.Locking { closed = false }) bank_topology bank_template 13 in
  let s2 = run (Sim.Locking { closed = false }) bank_topology bank_template 13 in
  Alcotest.(check int) "same commits" s1.Sim.committed s2.Sim.committed;
  Alcotest.(check int) "same aborts" s1.Sim.aborts s2.Sim.aborts;
  Alcotest.(check bool) "same makespan" true (s1.Sim.makespan = s2.Sim.makespan)

let test_certify_monitor_matches_full_recheck () =
  (* The incremental monitor and the legacy full-recheck oracle return the
     same verdict on every commit attempt, so the whole (deterministic)
     simulation trajectory — including the rejects the federated topology
     provokes — must be identical. *)
  for seed = 1 to 6 do
    let go full =
      let params =
        {
          Sim.default_params with
          Sim.protocol = Sim.Certify;
          seed;
          clients = 5;
          txs_per_client = 4;
          lock_timeout = 4.0;
          backoff = 2.0;
          certify_full_recheck = full;
        }
      in
      Sim.run params federated_topology ~gen:federated_template
    in
    let m = go false and f = go true in
    Alcotest.(check int) "same commits" f.Sim.committed m.Sim.committed;
    Alcotest.(check int) "same aborts" f.Sim.aborts m.Sim.aborts;
    Alcotest.(check bool) "same makespan" true (f.Sim.makespan = m.Sim.makespan);
    Alcotest.(check int) "same history"
      (History.n_nodes f.Sim.history)
      (History.n_nodes m.Sim.history)
  done

let test_deadlock_gives_up () =
  (* A guaranteed cross-component deadlock (two clients locking two
     exclusive components in opposite orders, sequentially, with long
     service times) must be broken by timeouts, and with a retry budget of
     one the transactions are dropped rather than spun forever. *)
  let topo =
    { Template.components = [| ("root", Conflict.Never); ("A", Conflict.Always); ("B", Conflict.Always) |] }
  in
  let gen _rng ~client ~seq =
    ignore seq;
    let leg c = Template.call ~component:c (Label.v "leg") [ Template.leaf (Label.read "x") ] in
    let order = if client = 0 then [ leg 1; leg 2 ] else [ leg 2; leg 1 ] in
    Template.call ~component:0 ~sequential:true (Label.v "txn") order
  in
  let params =
    {
      Sim.default_params with
      Sim.protocol = Sim.Locking { closed = true };
      clients = 2;
      txs_per_client = 1;
      seed = 3;
      mean_service = 10.0;
      lock_timeout = 2.0;
      backoff = 1.0;
      max_attempts = 1;
    }
  in
  let st = Sim.run params topo ~gen in
  Alcotest.(check int) "accounted" 2 (st.Sim.committed + st.Sim.given_up);
  Alcotest.(check bool) "someone aborted" true (st.Sim.aborts > 0)

let test_think_time_delays () =
  let st0 = run Sim.Serial bank_topology bank_template 3 in
  let params =
    { Sim.default_params with Sim.protocol = Sim.Serial; seed = 3; clients = 5;
      txs_per_client = 4; lock_timeout = 4.0; backoff = 2.0; think = 5.0 }
  in
  let st5 = Sim.run params bank_topology ~gen:bank_template in
  Alcotest.(check bool) "think time stretches the makespan" true
    (st5.Sim.makespan > st0.Sim.makespan)

let test_emitted_history_roundtrips () =
  (* Dumped simulator histories must survive the description language. *)
  let st = run (Sim.Locking { closed = true }) bank_topology bank_template 9 in
  let h = st.Sim.history in
  let h' = Repro_histlang.Syntax.parse (Repro_histlang.Syntax.to_string h) in
  Alcotest.(check int) "nodes" (History.n_nodes h) (History.n_nodes h');
  Alcotest.(check bool) "verdict preserved" (Repro_core.Compc.is_correct h)
    (Repro_core.Compc.is_correct h')

let test_store_effects () =
  (* Committed effects survive in the store: run with only deposits and
     check every written account is positive. *)
  let topo = { Template.components = [| ("bank", Conflict.Never); ("store", Conflict.Rw) |] } in
  let gen rng ~client ~seq =
    ignore client;
    ignore seq;
    let a = Fmt.str "a%d" (Prng.int rng 2) in
    Template.call ~component:0 (Label.v "txn")
      [
        Template.call ~component:1 ~sequential:true (Label.v ~args:[ a ] "deposit")
          [ Template.leaf (Label.read a); Template.leaf (Label.incr a) ];
      ]
  in
  let stats = run (Sim.Locking { closed = true }) topo gen 5 in
  Alcotest.(check bool) "committed some" true (stats.Sim.committed > 0)

let suite =
  [
    ( "runtime",
      [
        Alcotest.test_case "lock: basic" `Quick test_lock_basic;
        Alcotest.test_case "lock: owners and ancestors" `Quick test_lock_same_owner_and_ancestors;
        Alcotest.test_case "lock: semantic commutativity" `Quick test_lock_semantic_commutativity;
        Alcotest.test_case "lock: release_if / transfer" `Quick test_lock_release_if_and_transfer;
        Alcotest.test_case "template validation" `Quick test_template_validate;
        Alcotest.test_case "all transactions commit" `Quick test_all_transactions_commit;
        Alcotest.test_case "emitted histories valid and Comp-C" `Slow
          test_emitted_histories_valid_and_correct;
        Alcotest.test_case "certify protocol always correct" `Slow
          test_certify_always_correct;
        Alcotest.test_case "certify protocol rejects attempts" `Slow
          test_certify_aborts_on_conflict;
        Alcotest.test_case "certify monitor matches full recheck" `Slow
          test_certify_monitor_matches_full_recheck;
        Alcotest.test_case "closed nesting safe on federated topology" `Slow
          test_closed_nesting_safe_federated;
        Alcotest.test_case "open nesting unsafe on federated topology" `Slow
          test_open_nesting_unsafe_federated;
        Alcotest.test_case "serial protocol never interleaves" `Quick
          test_serial_never_interleaves;
        Alcotest.test_case "simulation is deterministic" `Quick test_determinism;
        Alcotest.test_case "store effects applied" `Quick test_store_effects;
        Alcotest.test_case "emitted histories round-trip through the language" `Quick
          test_emitted_history_roundtrips;
        Alcotest.test_case "deadlocks give up under a retry budget" `Quick
          test_deadlock_gives_up;
        Alcotest.test_case "think time delays clients" `Quick test_think_time_delays;
      ] );
  ]
