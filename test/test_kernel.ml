(* Equivalence tests for the dense performance kernel: Bitrel against the
   persistent Rel oracles, the memoized conflict cache against the direct
   evaluation path, the domain pool against List.map, and metrics merging. *)
open Repro_order
open Repro_model
open Ids
module Pool = Repro_par.Pool
module Metrics = Repro_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Random relations over universes up to 150 nodes — several bit words per
   row — with self-loops and cycles allowed, biased towards both sparse and
   dense pair counts.  The empty relation appears naturally. *)
let gen_rel =
  let open QCheck.Gen in
  int_range 1 150 >>= fun n ->
  int_range 0 (3 * n) >>= fun pairs ->
  list_size (return pairs) (map2 (fun a b -> (a, b)) (int_bound (n - 1)) (int_bound (n - 1)))
  >|= Rel.of_list

let arb_rel = QCheck.make ~print:(Fmt.str "%a" Rel.pp) gen_rel

let bitrel_of r =
  let b = Bitrel.create (Rel.nodes r) in
  Rel.iter (fun a b' -> Bitrel.add b a b') r;
  b

let pairs_of_rel r = List.rev (Rel.fold (fun a b acc -> (a, b) :: acc) r [])

(* ------------------------------------------------------------------ *)
(* Bitrel = Rel properties                                             *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"bitrel: to_list round-trips Rel" ~count:500 arb_rel
    (fun r ->
      let b = bitrel_of r in
      Bitrel.to_list b = pairs_of_rel r
      && Bitrel.cardinal b = Rel.cardinal r
      && Rel.equal (Rel.of_bitrel b) r)

let prop_mem =
  QCheck.Test.make ~name:"bitrel: mem agrees with Rel.mem" ~count:500 arb_rel
    (fun r ->
      let b = bitrel_of r in
      Rel.fold (fun a b' ok -> ok && Bitrel.mem b a b') r true
      && (not (Bitrel.mem b 9999 0))
      && Bitrel.mem b (-1) (-1) = false)

let prop_closure_reachability =
  QCheck.Test.make ~name:"bitrel: closure = reachability" ~count:500 arb_rel
    (fun r ->
      let c = Bitrel.transitive_closure (bitrel_of r) in
      let succs_of a =
        let acc = ref Int_set.empty in
        Bitrel.iter (fun x y -> if x = a then acc := Int_set.add y !acc) c;
        !acc
      in
      Int_set.for_all
        (fun a -> Int_set.equal (succs_of a) (Rel.reachable r a))
        (Rel.nodes r))

let prop_cycle_agreement =
  QCheck.Test.make ~name:"bitrel: find_cycle agrees and is real" ~count:500
    arb_rel (fun r ->
      let b = bitrel_of r in
      match Bitrel.find_cycle b with
      | None -> Rel.find_cycle r = None
      | Some [] -> false
      | Some (first :: _ as cycle) ->
        Rel.find_cycle r <> None
        &&
        let rec edges = function
          | [] -> true
          | [ last ] -> Rel.mem last first r
          | a :: (b' :: _ as rest) -> Rel.mem a b' r && edges rest
        in
        edges cycle)

let prop_topo_exact =
  QCheck.Test.make ~name:"bitrel: topo_sort = Rel.topo_sort" ~count:500 arb_rel
    (fun r ->
      Bitrel.topo_sort (bitrel_of r) = Rel.topo_sort ~nodes:(Rel.nodes r) r)

let prop_restrict =
  QCheck.Test.make ~name:"bitrel: restrict agrees" ~count:500 arb_rel (fun r ->
      let keep n = n mod 2 = 0 in
      Bitrel.to_list (Bitrel.restrict ~keep (bitrel_of r))
      = pairs_of_rel (Rel.restrict ~keep r))

let prop_quotient =
  QCheck.Test.make ~name:"bitrel: quotient agrees" ~count:500 arb_rel (fun r ->
      let cls n = n mod 7 in
      let universe =
        Int_set.of_list (List.map cls (Int_set.elements (Rel.nodes r)))
      in
      Bitrel.to_list (Bitrel.quotient ~universe cls (bitrel_of r))
      = pairs_of_rel (Rel.quotient cls r))

let prop_union_into =
  QCheck.Test.make ~name:"bitrel: union_into agrees with Rel.union" ~count:500
    (QCheck.pair arb_rel arb_rel) (fun (r1, r2) ->
      (* Same universe for both sides: embed into the joint node set. *)
      let us = Int_set.union (Rel.nodes r1) (Rel.nodes r2) in
      let embed r =
        let b = Bitrel.create us in
        Rel.iter (fun a b' -> Bitrel.add b a b') r;
        b
      in
      let b1 = embed r1 in
      Bitrel.union_into ~into:b1 (embed r2);
      Bitrel.to_list b1 = pairs_of_rel (Rel.union r1 r2))

let prop_inverse =
  QCheck.Test.make ~name:"rel: inverse flips pairs and preds" ~count:500 arb_rel
    (fun r ->
      let i = Rel.inverse r in
      Rel.cardinal i = Rel.cardinal r
      && Rel.fold (fun a b ok -> ok && Rel.mem b a i) r true
      && Int_set.for_all
           (fun n -> Int_set.equal (Rel.succs i n) (Rel.preds r n))
           (Rel.nodes r))

let test_of_ids () =
  let b = Bitrel.of_ids [| 3; 7; 100 |] in
  Bitrel.add b 3 100;
  Alcotest.(check bool) "mem" true (Bitrel.mem b 3 100);
  Alcotest.(check bool) "outside" false (Bitrel.mem b 4 100);
  Alcotest.(check_raises) "unsorted" (Invalid_argument "Bitrel.of_ids: ids must be strictly increasing")
    (fun () -> ignore (Bitrel.of_ids [| 3; 3 |]));
  Alcotest.(check_raises) "add outside"
    (Invalid_argument "Bitrel.add: node 4 outside the universe") (fun () ->
      Bitrel.add b 4 7);
  let empty = Bitrel.create Int_set.empty in
  Alcotest.(check bool) "empty topo" true (Bitrel.topo_sort empty = Some []);
  Alcotest.(check bool) "empty closure" true
    (Bitrel.is_empty (Bitrel.transitive_closure empty))

let test_sparse_universe () =
  (* Ids far apart fall back to the hashtable index; semantics unchanged. *)
  let b = Bitrel.of_ids [| 0; 5_000_000 |] in
  Bitrel.add b 0 5_000_000;
  Alcotest.(check bool) "mem far" true (Bitrel.mem b 0 5_000_000);
  Alcotest.(check int) "cardinal" 1 (Bitrel.cardinal b);
  Alcotest.(check bool) "topo" true
    (Bitrel.topo_sort b = Some [ 0; 5_000_000 ])

(* ------------------------------------------------------------------ *)
(* Memoized conflicts = uncached conflicts                             *)
(* ------------------------------------------------------------------ *)

let prop_conflict_cache =
  QCheck.Test.make ~name:"history: memoized conflicts = uncached" ~count:500
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let open Repro_workload in
      let rng = Prng.create ~seed in
      let h =
        match seed mod 3 with
        | 0 -> Gen.stack rng ~levels:2 ~roots:2
        | 1 -> Gen.general rng ~schedules:3 ~roots:2
        | _ -> Gen.flat rng ~roots:4
      in
      List.for_all
        (fun (s : History.schedule) ->
          let ops = History.ops_of_schedule h s.History.sid in
          List.for_all
            (fun a ->
              List.for_all
                (fun b ->
                  History.conflicts h s.History.sid a b
                  = History.conflicts_uncached h s.History.sid a b
                  && History.conflicts h s.History.sid b a
                     = History.conflicts_uncached h s.History.sid b a)
                ops)
            ops)
        (History.schedules h))

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let items = List.init 100 Fun.id

let test_parmap_order () =
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Fmt.str "jobs=%d" jobs)
        (List.map f items)
        (Pool.parmap ~jobs f items))
    [ 1; 2; 4; 8 ];
  Alcotest.(check (list int)) "empty" [] (Pool.parmap ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.parmap ~jobs:4 (fun x -> x) [ 7 ])

let test_parmap_exception () =
  Alcotest.check_raises "first failure re-raised" (Failure "item 3") (fun () ->
      ignore
        (Pool.parmap ~jobs:4
           (fun x -> if x >= 3 then failwith (Fmt.str "item %d" x) else x)
           items))

let test_parmap_with_metrics () =
  let run jobs =
    let metrics = Metrics.create () in
    let r =
      Pool.parmap_with ~jobs ~metrics
        (fun ~metrics x ->
          Metrics.incr metrics "pool.items";
          Metrics.observe metrics "pool.value" (float_of_int x);
          x)
        items
    in
    Alcotest.(check (list int)) (Fmt.str "results jobs=%d" jobs) items r;
    Repro_obs.Json.to_string (Metrics.to_json metrics)
  in
  let sequential = run 1 in
  Alcotest.(check string) "metrics identical at jobs=4" sequential (run 4);
  (* Disabled registry: workers get the null registry, nothing recorded. *)
  let r =
    Pool.parmap_with ~jobs:2 ~metrics:Metrics.null
      (fun ~metrics x ->
        Alcotest.(check bool) "null passed" false (Metrics.enabled metrics);
        x)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "null results" [ 1; 2; 3 ] r

(* ------------------------------------------------------------------ *)
(* Metrics.merge                                                       *)
(* ------------------------------------------------------------------ *)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "c" ~by:2;
  Metrics.incr b "c" ~by:3;
  Metrics.incr b "only_b";
  Metrics.set a "g" 1.0;
  Metrics.set b "g" 2.0;
  Metrics.observe a "h" 0.5;
  Metrics.observe b "h" 2.5;
  Metrics.observe b "h" 0.25;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counter adds" 5 (Metrics.counter_value a "c");
  Alcotest.(check int) "new counter copied" 1 (Metrics.counter_value a "only_b");
  Alcotest.(check (option (float 1e-9))) "gauge overwritten" (Some 2.0)
    (Metrics.gauge_value a "g");
  (match Metrics.summary a "h" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some s ->
    Alcotest.(check int) "histogram count" 3 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "histogram sum" 3.25 s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "histogram min" 0.25 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "histogram max" 2.5 s.Metrics.max);
  (* Incompatible bucket bounds are refused. *)
  let x = Metrics.create () and y = Metrics.create () in
  Metrics.observe x ~buckets:[| 1.0; 2.0 |] "h" 0.5;
  Metrics.observe y ~buckets:[| 1.0; 3.0 |] "h" 0.5;
  Alcotest.check_raises "incompatible buckets"
    (Invalid_argument "Metrics.merge: incompatible buckets for h") (fun () ->
      Metrics.merge ~into:x y);
  (* Merging into the disabled registry is a no-op. *)
  Metrics.merge ~into:Metrics.null a;
  Alcotest.(check int) "null untouched" 0 (Metrics.counter_value Metrics.null "c")

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let suite =
  [
    ( "kernel",
      [
        Alcotest.test_case "bitrel of_ids and bounds" `Quick test_of_ids;
        Alcotest.test_case "bitrel sparse universe" `Quick test_sparse_universe;
        Alcotest.test_case "pool parmap order" `Quick test_parmap_order;
        Alcotest.test_case "pool exception" `Quick test_parmap_exception;
        Alcotest.test_case "pool metrics merge determinism" `Quick
          test_parmap_with_metrics;
        Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
      ] );
    qsuite "kernel:props"
      [
        prop_roundtrip;
        prop_mem;
        prop_closure_reachability;
        prop_cycle_agreement;
        prop_topo_exact;
        prop_restrict;
        prop_quotient;
        prop_union_into;
        prop_inverse;
        prop_conflict_cache;
      ];
  ]
