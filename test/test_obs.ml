(* Tests for the telemetry layer: JSON round-trips, histogram bucket math
   and percentile estimation, Chrome-trace well-formedness, null-sink
   no-ops, and consistency between a simulator run's metrics snapshot and
   its returned stats. *)
open Repro_obs

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 2.5);
        ("tiny", Json.Float 1.5e-6);
        ("string", Json.String "a\"b\\c\nd\te");
        ("ctrl", Json.String "\001\031");
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("list", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  let parsed = Json.of_string (Json.to_string doc) in
  Alcotest.(check bool) "round-trips" true (parsed = doc);
  (* floats that render without a fraction must still re-read as floats *)
  let j = Json.List [ Json.Float 5.0; Json.Float 0.0 ] in
  Alcotest.(check bool) "integral floats stay floats" true
    (Json.of_string (Json.to_string j) = j)

let test_json_parser_misc () =
  Alcotest.(check bool) "whitespace" true
    (Json.of_string "  { \"a\" : [ 1 , 2 ] }  " = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
  Alcotest.(check bool) "exponent" true
    (Json.of_string "1e3" = Json.Float 1000.0);
  Alcotest.(check bool) "unicode escape" true
    (Json.of_string "\"\\u0041\"" = Json.String "A");
  Alcotest.(check bool) "non-finite prints null" true
    (Json.to_string (Json.Float Float.nan) = "null");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Fmt.str "parser accepted %S" bad))
    [ "{"; "[1,]"; "\"unterminated"; "tru"; "1 2"; "" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let buckets = [| 1.0; 2.0; 5.0; 10.0 |]

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  Metrics.set m "g" 1.5;
  Metrics.set m "g" 2.5;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "c");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter_value m "missing");
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 2.5) (Metrics.gauge_value m "g")

let test_histogram_bucket_math () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m ~buckets "h") [ 1.0; 2.0; 5.0; 10.0 ];
  let s = Option.get (Metrics.summary m "h") in
  Alcotest.(check int) "count" 4 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 18.0 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 10.0 s.Metrics.max;
  (* rank(0.5 * 4) = 2 falls at the top of the (1,2] bucket *)
  Alcotest.(check (float 1e-9)) "p50" 2.0 s.Metrics.p50;
  (* rank 4 is the last observation, in the (5,10] bucket *)
  Alcotest.(check (float 1e-9)) "p99" 10.0 s.Metrics.p99

let test_histogram_overflow_and_clamp () =
  let m = Metrics.create () in
  Metrics.observe m ~buckets "h" 100.0;
  (* the overflow bucket reports the exact observed maximum *)
  Alcotest.(check (option (float 1e-9))) "overflow p50" (Some 100.0)
    (Metrics.percentile m "h" 0.5);
  (* interpolation below the smallest observation clamps to the minimum *)
  let m2 = Metrics.create () in
  for _ = 1 to 10 do Metrics.observe m2 ~buckets "h" 1.0 done;
  Alcotest.(check (option (float 1e-9))) "clamped to min" (Some 1.0)
    (Metrics.percentile m2 "h" 0.5);
  Alcotest.(check (option (float 1e-9))) "empty histogram" None
    (Metrics.percentile m2 "missing" 0.5)

let test_metrics_json_snapshot () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.set m "a.gauge" 3.0;
  Metrics.observe m ~buckets "a.hist" 2.0;
  let j = Json.of_string (Json.to_string (Metrics.to_json m)) in
  Alcotest.(check bool) "counter in snapshot" true
    (Json.member "counters" j |> Option.get |> Json.member "a.count"
    = Some (Json.Int 1));
  let hist = Json.member "histograms" j |> Option.get |> Json.member "a.hist" in
  Alcotest.(check bool) "histogram has p50" true
    (Option.bind hist (Json.member "p50") <> None)

let test_null_metrics_noop () =
  let m = Metrics.null in
  Metrics.incr m "c";
  Metrics.set m "g" 1.0;
  Metrics.observe m "h" 1.0;
  Alcotest.(check bool) "disabled" false (Metrics.enabled m);
  Alcotest.(check int) "no counter" 0 (Metrics.counter_value m "c");
  Alcotest.(check bool) "no gauge" true (Metrics.gauge_value m "g" = None);
  Alcotest.(check bool) "no histogram" true (Metrics.summary m "h" = None)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_chrome_json () =
  let t = Trace.create () in
  Trace.set_process_name t ~pid:1 "component:bank";
  Trace.set_thread_name t ~pid:0 ~tid:3 "client 3";
  Trace.instant t ~cat:"sim" ~tid:3 ~ts:12.5
    ~args:[ ("op", Json.String "withdraw \"x\"") ]
    "commit";
  Trace.complete t ~cat:"sim" ~pid:2 ~tid:3 ~ts:10.0 ~dur:2.5 "lock_wait";
  Alcotest.(check int) "two events" 2 (Trace.length t);
  let doc = Json.of_string (Json.to_string (Trace.to_json t)) in
  let events = Json.to_list_exn (Option.get (Json.member "traceEvents" doc)) in
  (* 2 metadata + 2 recorded *)
  Alcotest.(check int) "traceEvents" 4 (List.length events);
  let phases =
    List.filter_map (fun e -> Json.member "ph" e) events
  in
  Alcotest.(check bool) "phases" true
    (phases = [ Json.String "M"; Json.String "M"; Json.String "i"; Json.String "X" ]);
  let span = List.nth events 3 in
  Alcotest.(check bool) "dur" true (Json.member "dur" span = Some (Json.Float 2.5));
  Alcotest.(check bool) "ts" true (Json.member "ts" span = Some (Json.Float 10.0));
  (* every recorded event must carry the mandatory Chrome fields *)
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (Fmt.str "field %s present" k) true
            (Json.member k e <> None))
        [ "name"; "ph"; "pid" ])
    events

let test_null_trace_noop () =
  let t = Trace.null in
  Trace.instant t ~ts:1.0 "x";
  Trace.complete t ~ts:1.0 ~dur:1.0 "y";
  Trace.set_process_name t ~pid:0 "p";
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Alcotest.(check int) "no events" 0 (Trace.length t);
  Alcotest.(check bool) "empty json" true
    (Json.member "traceEvents" (Trace.to_json t) = Some (Json.List []))

(* ------------------------------------------------------------------ *)
(* Simulator integration                                               *)
(* ------------------------------------------------------------------ *)

open Repro_runtime

let bank_topology =
  {
    Template.components =
      [| ("bank", Repro_model.Conflict.Always); ("store", Repro_model.Conflict.Rw) |];
  }

let bank_template rng ~client ~seq =
  ignore client;
  ignore seq;
  let open Repro_model in
  let a = Fmt.str "a%d" (Repro_workload.Prng.int rng 2) in
  Template.call ~component:0 (Label.v "txn")
    [
      Template.call ~component:1 ~sequential:true (Label.v ~args:[ a ] "deposit")
        [ Template.leaf (Label.read a); Template.leaf (Label.write a) ];
    ]

let run_closed ?trace ?metrics seed =
  let params =
    {
      Sim.default_params with
      Sim.protocol = Sim.Locking { closed = true };
      clients = 5;
      txs_per_client = 4;
      seed;
      lock_timeout = 4.0;
      backoff = 2.0;
    }
  in
  Sim.run ?trace ?metrics params bank_topology ~gen:bank_template

let test_sim_metrics_match_stats () =
  let metrics = Metrics.create () in
  let trace = Trace.create () in
  let st = run_closed ~trace ~metrics 11 in
  Alcotest.(check int) "committed" st.Sim.committed
    (Metrics.counter_value metrics "sim.committed");
  Alcotest.(check int) "aborts" st.Sim.aborts
    (Metrics.counter_value metrics "sim.aborts");
  Alcotest.(check int) "given_up" st.Sim.given_up
    (Metrics.counter_value metrics "sim.given_up");
  Alcotest.(check int) "lock_waits" st.Sim.lock_waits
    (Metrics.counter_value metrics "sim.lock_waits");
  Alcotest.(check (option (float 1e-9))) "makespan gauge" (Some st.Sim.makespan)
    (Metrics.gauge_value metrics "sim.makespan");
  (* the trace's commit instants agree with the counter, and the whole
     document survives a JSON round-trip *)
  let commits =
    List.length
      (List.filter (fun e -> e.Trace.name = "commit") (Trace.events trace))
  in
  Alcotest.(check int) "commit events" st.Sim.committed commits;
  let doc = Json.of_string (Json.to_string (Trace.to_json trace)) in
  Alcotest.(check bool) "trace json parses" true
    (Json.member "traceEvents" doc <> None)

let test_sim_telemetry_is_transparent () =
  (* Attaching telemetry must not perturb the simulation: identical seed,
     identical outcome (telemetry never draws from the random stream). *)
  let plain = run_closed 13 in
  let st = run_closed ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) 13 in
  Alcotest.(check int) "committed" plain.Sim.committed st.Sim.committed;
  Alcotest.(check int) "aborts" plain.Sim.aborts st.Sim.aborts;
  Alcotest.(check bool) "makespan" true (plain.Sim.makespan = st.Sim.makespan)

let test_checker_telemetry () =
  let h = Repro_workload.Gen.stack (Repro_workload.Prng.create ~seed:6) ~levels:3 ~roots:2 in
  let metrics = Metrics.create () in
  let trace = Trace.create () in
  let v = Repro_core.Compc.check ~trace ~metrics h in
  let steps =
    List.filter (fun e -> e.Trace.name = "reduction_step") (Trace.events trace)
  in
  Alcotest.(check int) "one span per attempted level"
    (Metrics.counter_value metrics "compc.steps")
    (List.length steps);
  Alcotest.(check int) "accept+reject = checks"
    (Metrics.counter_value metrics "compc.checks")
    (Metrics.counter_value metrics "compc.accept"
    + Metrics.counter_value metrics "compc.reject");
  if not (Repro_core.Compc.is_correct_verdict v) then
    Alcotest.(check bool) "failure classified" true
      (List.exists
         (fun k -> Metrics.counter_value metrics ("compc.failure." ^ k) > 0)
         [ "front_not_cc"; "no_calculation"; "intra_contradiction" ])

(* ------------------------------------------------------------------ *)
(* Labels, labeled metrics, Prometheus exposition, recorder            *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_labels_canonical () =
  let a = Labels.v [ ("b", "2"); ("a", "1") ] in
  let b = Labels.add "a" "1" (Labels.add "b" "2" Labels.empty) in
  Alcotest.(check bool) "insertion order irrelevant" true (Labels.equal a b);
  Alcotest.(check string) "sorted encode" {|{a="1",b="2"}|} (Labels.encode a);
  let c = Labels.add "a" "9" a in
  Alcotest.(check bool) "rebinding replaces" true (Labels.find "a" c = Some "9");
  Alcotest.(check int) "cardinal" 2 (Labels.cardinal c);
  (match Labels.v [ ("0bad", "x") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid label key accepted");
  (* escaped values survive the series-key round-trip *)
  let tricky = Labels.v [ ("msg", "a\"b\\c\nd,e=f}" ) ] in
  let name, dec = Labels.decode_series (Labels.series "m.x" tricky) in
  Alcotest.(check string) "name recovered" "m.x" name;
  Alcotest.(check bool) "labels recovered" true (Labels.equal tricky dec);
  Alcotest.(check bool) "label-free key decodes as itself" true
    (Labels.decode_series "plain.name" = ("plain.name", Labels.empty))

let test_metrics_empty_summary () =
  let m = Metrics.create () in
  Alcotest.(check bool) "summary of nothing" true (Metrics.summary m "h" = None);
  Alcotest.(check bool) "percentile of nothing" true
    (Metrics.percentile m "h" 0.99 = None)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~by:2 "c";
  Metrics.incr b ~by:3 "c";
  Metrics.incr b ~labels:(Labels.v [ ("p", "x") ]) "c";
  Metrics.set a "g" 1.0;
  Metrics.set b "g" 2.0;
  Metrics.observe a ~buckets "h" 1.0;
  Metrics.observe b ~buckets "h" 10.0;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 5 (Metrics.counter_value a "c");
  Alcotest.(check int) "labeled series carried over" 1
    (Metrics.counter_value a ~labels:(Labels.v [ ("p", "x") ]) "c");
  Alcotest.(check (option (float 1e-9))) "gauges take the source" (Some 2.0)
    (Metrics.gauge_value a "g");
  let s = Option.get (Metrics.summary a "h") in
  Alcotest.(check int) "histogram count" 2 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "histogram sum" 11.0 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "histogram max" 10.0 s.Metrics.max;
  (* same series name under different bucket bounds must refuse *)
  let c = Metrics.create () in
  Metrics.observe c ~buckets:[| 1.0; 2.0 |] "h" 1.0;
  (match Metrics.merge ~into:a c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "merged histograms with mismatched buckets");
  (* the null registry absorbs nothing *)
  Metrics.merge ~into:Metrics.null b;
  Alcotest.(check bool) "null stays empty" true
    (Metrics.summary Metrics.null "h" = None)

let test_labeled_metrics () =
  let m = Metrics.create () in
  let fast = Labels.v [ ("path", "fast") ] in
  let full = Labels.v [ ("path", "full") ] in
  Metrics.incr m ~labels:fast "monitor.append";
  Metrics.incr m ~labels:fast "monitor.append";
  Metrics.incr m ~labels:full "monitor.append";
  Metrics.incr m "monitor.append";
  Alcotest.(check int) "fast series" 2
    (Metrics.counter_value m ~labels:fast "monitor.append");
  Alcotest.(check int) "full series" 1
    (Metrics.counter_value m ~labels:full "monitor.append");
  Alcotest.(check int) "unlabeled series distinct" 1
    (Metrics.counter_value m "monitor.append");
  Metrics.observe m ~buckets ~labels:fast "wall" 1.5;
  Alcotest.(check bool) "labeled histogram distinct" true
    (Metrics.summary m "wall" = None
    && Metrics.summary m ~labels:fast "wall" <> None);
  (* null registry: labeled writes are no-ops too *)
  Metrics.incr Metrics.null ~labels:fast "monitor.append";
  Alcotest.(check int) "null labeled" 0
    (Metrics.counter_value Metrics.null ~labels:fast "monitor.append")

let test_prometheus_exposition () =
  let m = Metrics.create () in
  Metrics.incr m ~by:2 ~labels:(Labels.v [ ("path", "fast") ]) "monitor.append";
  Metrics.incr m ~labels:(Labels.v [ ("path", "full") ]) "monitor.append";
  Metrics.set m "engine.nodes" 12.0;
  Metrics.observe m ~buckets "latency.s" 1.5;
  Metrics.observe m ~buckets "latency.s" 100.0;
  let text = Metrics.to_prometheus m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "exposition has %S" needle) true
        (contains text needle))
    [
      "# TYPE monitor_append counter";
      "monitor_append{path=\"fast\"} 2";
      "monitor_append{path=\"full\"} 1";
      "# TYPE engine_nodes gauge";
      "engine_nodes 12.0";
      "# TYPE latency_s histogram";
      "latency_s_bucket{le=\"2.0\"} 1";
      "latency_s_bucket{le=\"+Inf\"} 2";
      "latency_s_sum";
      "latency_s_count 2";
    ];
  Alcotest.(check string) "null exposition is empty" ""
    (Metrics.to_prometheus Metrics.null)

let test_recorder_ring () =
  (match Recorder.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  let r = Recorder.create ~capacity:4 () in
  Alcotest.(check bool) "enabled" true (Recorder.enabled r);
  Alcotest.(check int) "capacity" 4 (Recorder.capacity r);
  for i = 1 to 10 do
    Recorder.record r ~cat:"t"
      ~labels:(Labels.v [ ("i", string_of_int i) ])
      "e"
  done;
  Alcotest.(check int) "total" 10 (Recorder.total r);
  Alcotest.(check int) "length = capacity" 4 (Recorder.length r);
  Alcotest.(check int) "dropped" 6 (Recorder.dropped r);
  let evs = Recorder.events r in
  Alcotest.(check (list int)) "retained tail, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Recorder.seq) evs);
  let rec mono = function
    | a :: (b :: _ as tl) -> a.Recorder.ts <= b.Recorder.ts && mono tl
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (mono evs);
  (* absorb replays the tail with fresh sequence numbers, original payload *)
  let into = Recorder.create ~capacity:8 () in
  Recorder.record into "pre";
  Recorder.absorb ~into r;
  Alcotest.(check int) "absorbed after existing" 5 (Recorder.length into);
  let second = List.nth (Recorder.events into) 1 in
  Alcotest.(check bool) "absorbed payload" true
    (Labels.find "i" second.Recorder.labels = Some "7");
  (* the JSON dump round-trips and reports the ring accounting *)
  let j = Json.of_string (Json.to_string (Recorder.to_json r)) in
  Alcotest.(check bool) "dump accounting" true
    (Json.member "recorded" j = Some (Json.Int 10)
    && Json.member "dropped" j = Some (Json.Int 6));
  (* null recorder: recording is a no-op *)
  Recorder.record Recorder.null "x";
  Alcotest.(check bool) "null disabled" false (Recorder.enabled Recorder.null);
  Alcotest.(check int) "null empty" 0 (Recorder.total Recorder.null);
  Alcotest.(check bool) "null events" true (Recorder.events Recorder.null = [])

(* The engine's always-on observability: labeled per-path append series,
   one flight-recorder event per advance, live gauges, and an
   introspection report that matches the session's real counters. *)
let test_engine_observability () =
  let h =
    Repro_workload.Gen.stack
      (Repro_workload.Prng.create ~seed:9)
      ~levels:2 ~roots:6
  in
  let metrics = Metrics.create () in
  let recorder = Recorder.create () in
  let s = Repro_core.Engine.create ~obs:(Sink.v ~metrics ~recorder ()) () in
  let n = List.length (Repro_model.History.roots h) in
  let verdicts =
    List.init n (fun k ->
        match
          Repro_core.Engine.extend s (Repro_model.History.prefix_by_roots h (k + 1))
        with
        | Repro_core.Engine.Accepted _ -> "accept"
        | Repro_core.Engine.Rejected _ -> "reject")
  in
  let by_path p =
    Metrics.counter_value metrics
      ~labels:(Labels.v [ ("path", p) ])
      "monitor.append"
  in
  Alcotest.(check int) "path series partition the appends"
    (Metrics.counter_value metrics "monitor.appends")
    (by_path "initial" + by_path "fast" + by_path "delta" + by_path "kernel"
   + by_path "full");
  Alcotest.(check int) "one recorder event per append" n
    (Recorder.total recorder);
  List.iter2
    (fun e verdict ->
      Alcotest.(check string) "engine category" "engine" e.Recorder.cat;
      Alcotest.(check bool) "verdict label matches the returned verdict" true
        (Labels.find "verdict" e.Recorder.labels = Some verdict))
    (Recorder.events recorder) verdicts;
  Alcotest.(check bool) "live nodes gauge" true
    (Metrics.gauge_value metrics "engine.nodes" <> None);
  let j = Repro_core.Engine.introspect s in
  match Json.member "session" j with
  | Some sj ->
    Alcotest.(check bool) "introspect counts the appends" true
      (Json.member "appends" sj = Some (Json.Int n))
  | None -> Alcotest.fail "introspection without a session section"

(* Per-item sinks of a parallel run drain back deterministically: merged
   labeled counters equal a sequential run's, recorder events come back
   in input order whatever the claiming interleaving was. *)
let test_parmap_sink_deterministic () =
  let items = List.init 12 (fun i -> i) in
  let run jobs =
    let metrics = Metrics.create () in
    let recorder = Recorder.create () in
    let obs = Sink.v ~metrics ~recorder () in
    let res =
      Repro_par.Pool.parmap_sink ~jobs ~obs
        (fun ~obs i ->
          Metrics.incr obs.Sink.metrics
            ~labels:(Labels.v [ ("w", string_of_int (i mod 3)) ])
            "items";
          Recorder.record obs.Sink.recorder ~cat:"t"
            ~labels:(Labels.v [ ("i", string_of_int i) ])
            "item";
          i * i)
        items
    in
    ( res,
      Metrics.counter_value metrics ~labels:(Labels.v [ ("w", "0") ]) "items",
      List.map
        (fun e -> Labels.find "i" e.Recorder.labels)
        (Recorder.events recorder) )
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool) "parallel = sequential" true (seq = par);
  let _, w0, order = par in
  Alcotest.(check int) "merged labeled counter" 4 w0;
  Alcotest.(check bool) "recorder drained in input order" true
    (order = List.map (fun i -> Some (string_of_int i)) items)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_basics () =
  let t = Span.create () in
  Alcotest.(check bool) "enabled" true (Span.enabled t);
  let trace = Span.fresh_trace t in
  Alcotest.(check bool) "trace ids are non-zero" true (trace <> 0);
  Alcotest.(check bool) "rate 1.0 samples everything" true
    (Span.sampled t trace);
  let root = Span.start t ~cat:"test" ~trace ~ts:10.0 "root" in
  let child =
    Span.start t ~parent:(Span.id root)
      ~labels:(Labels.v [ ("k", "v") ])
      ~trace ~ts:11.0 "child"
  in
  Span.finish t child ~ts:12.0;
  Span.finish t root ~ts:13.0;
  let eid =
    Span.emit t ~parent:(Span.id root) ~trace ~t0:12.5 ~t1:12.75 "sibling"
  in
  Alcotest.(check bool) "emit returns a fresh id" true
    (eid <> 0 && eid <> Span.id root && eid <> Span.id child);
  Alcotest.(check int) "three spans recorded" 3 (Span.length t);
  let views = Span.spans t in
  Alcotest.(check (list string)) "recording order"
    [ "root"; "child"; "sibling" ]
    (List.map (fun v -> v.Span.v_name) views);
  let child_v = List.nth views 1 in
  Alcotest.(check bool) "child parented on root" true
    (child_v.Span.v_parent = Span.id root);
  Alcotest.(check bool) "child labels survive" true
    (Labels.find "k" child_v.Span.v_labels = Some "v");
  (* Chrome export: one async begin/end pair per span, grouped by trace *)
  let tr = Trace.create () in
  Span.export t tr;
  Alcotest.(check int) "one b/e pair per span" 6 (Trace.length tr);
  let evs = Trace.events tr in
  Alcotest.(check bool) "async pairs carry the trace as id" true
    (List.for_all
       (fun e ->
         e.Trace.id = trace
         &&
         match e.Trace.phase with
         | Trace.Async_begin | Trace.Async_end -> true
         | _ -> false)
       evs);
  (* spans/1 JSON: stable schema, hex ids, root's parent omitted *)
  let j = Json.of_string (Json.to_string (Span.to_json t)) in
  Alcotest.(check bool) "schema tag" true
    (Json.member "schema" j = Some (Json.String "spans/1"));
  (match Json.member "spans" j with
  | Some (Json.List (r :: c :: _)) ->
    Alcotest.(check bool) "root has no parent field" true
      (Json.member "parent" r = None);
    Alcotest.(check bool) "child parent is the root span, hex" true
      (Json.member "parent" c
      = Some (Json.String (Printf.sprintf "%x" (Span.id root))))
  | _ -> Alcotest.fail "spans/1 without a spans list");
  (* finish is physical: the [none] handle is inert *)
  Span.finish t Span.none ~ts:99.0;
  Alcotest.(check int) "finishing none records nothing" 3 (Span.length t)

let test_span_null_and_sampling () =
  (* the null collector refuses everything after one branch *)
  Alcotest.(check bool) "null disabled" false (Span.enabled Span.null);
  Alcotest.(check int) "null trace id is 0" 0 (Span.fresh_trace Span.null);
  Alcotest.(check bool) "null never samples" false (Span.sampled Span.null 1);
  let a = Span.start Span.null ~trace:1 ~ts:0.0 "x" in
  Alcotest.(check bool) "null start returns none" true (a == Span.none);
  Alcotest.(check int) "null emit returns 0" 0
    (Span.emit Span.null ~trace:1 ~t0:0.0 ~t1:1.0 "x");
  (* the hot path on the null collector allocates nothing *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    let h = Span.start Span.null ~trace:1 ~ts:0.0 "hot" in
    Span.finish Span.null h ~ts:1.0
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Fmt.str "null start/finish allocation-free (%.0f words)" dw)
    true (dw < 64.0);
  (* rate 0 never samples; the decision is a pure function of the trace
     id, so distinct collectors at the same rate always agree *)
  let z = Span.create ~rate:0.0 () in
  let some_trace = 12345 in
  Alcotest.(check bool) "rate 0 drops" false (Span.sampled z some_trace);
  Alcotest.(check int) "start on unsampled trace records nothing" 0
    (ignore (Span.start z ~trace:some_trace ~ts:0.0 "x");
     Span.length z);
  let a = Span.create ~rate:0.37 ~tag:1 () in
  let b = Span.create ~rate:0.37 ~tag:2 () in
  let agree = ref true in
  for trace = 1 to 1000 do
    if Span.sampled a trace <> Span.sampled b trace then agree := false
  done;
  Alcotest.(check bool) "collectors agree on every sampling decision" true
    !agree;
  let kept = ref 0 in
  for trace = 1 to 1000 do
    if Span.sampled a trace then incr kept
  done;
  Alcotest.(check bool)
    (Fmt.str "rate 0.37 keeps a similar fraction (%d/1000)" !kept)
    true
    (!kept > 250 && !kept < 500);
  (match Span.create ~rate:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate 1.5 accepted");
  match Span.create ~tag:(1 lsl 22) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tag 2^22 accepted"

(* Cross-domain span collection drains back deterministically: a parallel
   parmap_sink run yields the same span list (ids, parents, names, order)
   as the sequential one — the spans twin of the parmap_sink metrics/
   recorder pin above. *)
let test_span_drain_deterministic () =
  let items = List.init 12 (fun i -> i) in
  let run jobs =
    let spans = Span.create () in
    let obs = Sink.v ~spans () in
    let res =
      Repro_par.Pool.parmap_sink ~jobs ~obs
        (fun ~obs i ->
          let spans = obs.Sink.spans in
          let trace = Span.fresh_trace spans in
          let root =
            Span.start spans ~trace
              ~labels:(Labels.v [ ("i", string_of_int i) ])
              ~ts:(float_of_int i) "item"
          in
          ignore
            (Span.emit spans ~parent:(Span.id root) ~trace
               ~t0:(float_of_int i)
               ~t1:(float_of_int i +. 0.5)
               "step");
          Span.finish spans root ~ts:(float_of_int i +. 1.0);
          i)
        items
    in
    ( res,
      List.map
        (fun v -> (v.Span.v_trace, v.Span.v_id, v.Span.v_parent, v.Span.v_name))
        (Span.spans spans) )
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool) "parallel spans = sequential spans" true (seq = par);
  let _, views = par in
  Alcotest.(check int) "all spans drained" (2 * List.length items)
    (List.length views)

(* The two escaping pins of the dump surfaces: a labeled histogram's
   Prometheus _sum/_count series and a recorder event's canonical series
   string both round-trip through [Labels.decode_series] even with
   backslash/quote/newline label values. *)
let test_dump_escaping_roundtrip () =
  let nasty = Labels.v [ ("p", "a\\b\"c\nd") ] in
  let m = Metrics.create () in
  Metrics.observe m ~labels:nasty ~buckets "lat.s" 1.5;
  let text = Metrics.to_prometheus m in
  let sum_line =
    List.find_opt
      (fun l ->
        String.length l > 9 && String.sub l 0 8 = "lat_s_su"
        && not (contains l "bucket"))
      (String.split_on_char '\n' text)
  in
  (match sum_line with
  | None -> Alcotest.fail "no _sum line for the labeled histogram"
  | Some line -> (
    match String.index_opt line ' ' with
    | None -> Alcotest.fail "unparseable exposition line"
    | Some sp ->
      let series = String.sub line 0 sp in
      let name, dec = Labels.decode_series series in
      Alcotest.(check string) "sum series name" "lat_s_sum" name;
      Alcotest.(check bool) "escaped label value decodes back" true
        (Labels.equal dec nasty)));
  let r = Recorder.create () in
  Recorder.record r ~cat:"t" ~labels:nasty "evt";
  (* through the actual JSON dump: every labeled event carries its
     canonical escaped series string *)
  match Json.member "events" (Recorder.to_json r) with
  | Some (Json.List [ e ]) -> (
    match Json.member "series" e with
    | Some (Json.String series) ->
      let name, dec = Labels.decode_series series in
      Alcotest.(check string) "event series name" "evt" name;
      Alcotest.(check bool) "event labels decode back" true
        (Labels.equal dec nasty)
    | _ -> Alcotest.fail "recorder dump without a series string")
  | _ -> Alcotest.fail "recorder dump without events"

(* qcheck: random span trees built through the API are well-parented
   (every non-root parent id is an earlier span of the same trace) and
   properly nested (a child's interval lies within its parent's). *)
let spans_qcheck =
  let open QCheck in
  (* A tree shape: for node i > 0, parent.(i) is some j < i; node 0 is
     the root.  Spans are opened in preorder and closed in reverse, so
     nesting holds by construction — the property checks the collector
     preserves it. *)
  let arb =
    make
      ~print:(fun l -> String.concat ";" (List.map string_of_int l))
      Gen.(list_size (int_range 1 12) (int_bound 100))
  in
  [
    Test.make ~count:100 ~name:"span trees are well-parented and nested" arb
      (fun seed ->
        let n = List.length seed in
        let parent =
          Array.of_list (List.mapi (fun i s -> if i = 0 then -1 else s mod i) seed)
        in
        let t = Span.create () in
        let trace = Span.fresh_trace t in
        let handles = Array.make n Span.none in
        let t0 = Array.make n 0.0 and t1 = Array.make n 0.0 in
        (* Open every span at a depth-derived time, close in reverse
           order at mirrored times: child intervals strictly inside
           parents. *)
        let rec depth i = if parent.(i) < 0 then 0 else 1 + depth parent.(i) in
        Array.iteri
          (fun i _ ->
            t0.(i) <- (float_of_int i *. 100.0) +. float_of_int (depth i);
            t1.(i) <- (float_of_int i *. 100.0) +. 50.0 -. float_of_int (depth i))
          handles;
        (* parents must open before and close after their children: use
           the root's envelope for every subtree by opening in preorder
           with times nested by depth under a common origin *)
        let open_order = List.init n (fun i -> i) in
        List.iter
          (fun i ->
            let p = if parent.(i) < 0 then 0 else Span.id handles.(parent.(i)) in
            let d = float_of_int (depth i) in
            handles.(i) <-
              Span.start t ~parent:p ~trace ~ts:d (Fmt.str "s%d" i))
          open_order;
        List.iter
          (fun i ->
            let d = float_of_int (depth i) in
            Span.finish t handles.(i) ~ts:(100.0 -. d))
          (List.rev open_order);
        let views = Span.spans t in
        let ids = List.map (fun v -> v.Span.v_id) views in
        List.length views = n
        && List.for_all
             (fun v ->
               v.Span.v_trace = trace
               && (v.Span.v_parent = 0 || List.mem v.Span.v_parent ids))
             views
        && List.for_all
             (fun v ->
               v.Span.v_parent = 0
               ||
               let p =
                 List.find (fun w -> w.Span.v_id = v.Span.v_parent) views
               in
               p.Span.v_t0 <= v.Span.v_t0 && v.Span.v_t1 <= p.Span.v_t1)
             views);
    Test.make ~count:100 ~name:"drained ids stay unique across collectors"
      (pair (int_range 1 4) (int_range 1 8))
      (fun (collectors, per) ->
        let into = Span.create () in
        let trace = Span.fresh_trace into in
        let srcs =
          List.init collectors (fun c -> Span.create ~tag:(c + 1) ())
        in
        List.iter
          (fun src ->
            for k = 1 to per do
              ignore
                (Span.emit src ~trace ~t0:(float_of_int k)
                   ~t1:(float_of_int k +. 1.0)
                   "s")
            done)
          srcs;
        List.iter (fun src -> Span.drain ~into src) srcs;
        let ids = List.map (fun v -> v.Span.v_id) (Span.spans into) in
        List.length ids = collectors * per
        && List.length (List.sort_uniq compare ids) = List.length ids
        && List.for_all (fun src -> Span.length src = 0) srcs);
  ]

(* qcheck: the label-set algebra stays canonical under arbitrary
   construction orders and survives the series-key encoding. *)
let labels_qcheck =
  let open QCheck in
  let keys = [ "a"; "b"; "c"; "path"; "worker_1" ] in
  let arb =
    make
      ~print:(fun l ->
        String.concat ";"
          (List.map (fun (k, value) -> k ^ "=" ^ String.escaped value) l))
      Gen.(
        list_size (int_bound 5)
          (pair (oneofl keys) (string_size ~gen:printable (int_bound 6))))
  in
  [
    Test.make ~count:200 ~name:"label sets are canonical" arb (fun l ->
        let t = Labels.v l in
        Labels.equal t (Labels.v (Labels.to_list t))
        && Labels.encode t = Labels.encode (Labels.v (Labels.to_list t)));
    Test.make ~count:200 ~name:"series keys decode back" arb (fun l ->
        let t = Labels.v l in
        let name, dec = Labels.decode_series (Labels.series "m.name" t) in
        name = "m.name" && Labels.equal t dec);
    Test.make ~count:200 ~name:"union is right-biased"
      (pair arb arb)
      (fun (la, lb) ->
        let a = Labels.v la and b = Labels.v lb in
        let u = Labels.union a b in
        List.for_all
          (fun k ->
            Labels.find k u
            =
            match Labels.find k b with
            | Some value -> Some value
            | None -> Labels.find k a)
          keys);
  ]

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parser misc" `Quick test_json_parser_misc;
        Alcotest.test_case "metrics counters and gauges" `Quick test_metrics_counters_gauges;
        Alcotest.test_case "histogram bucket math" `Quick test_histogram_bucket_math;
        Alcotest.test_case "histogram overflow and clamping" `Quick
          test_histogram_overflow_and_clamp;
        Alcotest.test_case "metrics json snapshot" `Quick test_metrics_json_snapshot;
        Alcotest.test_case "null metrics are no-ops" `Quick test_null_metrics_noop;
        Alcotest.test_case "chrome trace json" `Quick test_trace_chrome_json;
        Alcotest.test_case "null trace is a no-op" `Quick test_null_trace_noop;
        Alcotest.test_case "sim metrics match stats" `Quick test_sim_metrics_match_stats;
        Alcotest.test_case "telemetry does not perturb the simulation" `Quick
          test_sim_telemetry_is_transparent;
        Alcotest.test_case "checker telemetry" `Quick test_checker_telemetry;
        Alcotest.test_case "label sets are canonical" `Quick
          test_labels_canonical;
        Alcotest.test_case "empty histograms report nothing" `Quick
          test_metrics_empty_summary;
        Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
        Alcotest.test_case "labeled metrics series" `Quick test_labeled_metrics;
        Alcotest.test_case "prometheus exposition" `Quick
          test_prometheus_exposition;
        Alcotest.test_case "flight-recorder ring" `Quick test_recorder_ring;
        Alcotest.test_case "engine observability" `Quick
          test_engine_observability;
        Alcotest.test_case "parmap_sink determinism" `Quick
          test_parmap_sink_deterministic;
        Alcotest.test_case "span collector basics" `Quick test_span_basics;
        Alcotest.test_case "span null and sampling" `Quick
          test_span_null_and_sampling;
        Alcotest.test_case "span drain determinism" `Quick
          test_span_drain_deterministic;
        Alcotest.test_case "dump escaping round-trips" `Quick
          test_dump_escaping_roundtrip;
      ]
      @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) labels_qcheck
      @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) spans_qcheck );
  ]
