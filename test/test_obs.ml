(* Tests for the telemetry layer: JSON round-trips, histogram bucket math
   and percentile estimation, Chrome-trace well-formedness, null-sink
   no-ops, and consistency between a simulator run's metrics snapshot and
   its returned stats. *)
open Repro_obs

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 2.5);
        ("tiny", Json.Float 1.5e-6);
        ("string", Json.String "a\"b\\c\nd\te");
        ("ctrl", Json.String "\001\031");
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("list", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  let parsed = Json.of_string (Json.to_string doc) in
  Alcotest.(check bool) "round-trips" true (parsed = doc);
  (* floats that render without a fraction must still re-read as floats *)
  let j = Json.List [ Json.Float 5.0; Json.Float 0.0 ] in
  Alcotest.(check bool) "integral floats stay floats" true
    (Json.of_string (Json.to_string j) = j)

let test_json_parser_misc () =
  Alcotest.(check bool) "whitespace" true
    (Json.of_string "  { \"a\" : [ 1 , 2 ] }  " = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
  Alcotest.(check bool) "exponent" true
    (Json.of_string "1e3" = Json.Float 1000.0);
  Alcotest.(check bool) "unicode escape" true
    (Json.of_string "\"\\u0041\"" = Json.String "A");
  Alcotest.(check bool) "non-finite prints null" true
    (Json.to_string (Json.Float Float.nan) = "null");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Fmt.str "parser accepted %S" bad))
    [ "{"; "[1,]"; "\"unterminated"; "tru"; "1 2"; "" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let buckets = [| 1.0; 2.0; 5.0; 10.0 |]

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  Metrics.set m "g" 1.5;
  Metrics.set m "g" 2.5;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "c");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter_value m "missing");
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 2.5) (Metrics.gauge_value m "g")

let test_histogram_bucket_math () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m ~buckets "h") [ 1.0; 2.0; 5.0; 10.0 ];
  let s = Option.get (Metrics.summary m "h") in
  Alcotest.(check int) "count" 4 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 18.0 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 10.0 s.Metrics.max;
  (* rank(0.5 * 4) = 2 falls at the top of the (1,2] bucket *)
  Alcotest.(check (float 1e-9)) "p50" 2.0 s.Metrics.p50;
  (* rank 4 is the last observation, in the (5,10] bucket *)
  Alcotest.(check (float 1e-9)) "p99" 10.0 s.Metrics.p99

let test_histogram_overflow_and_clamp () =
  let m = Metrics.create () in
  Metrics.observe m ~buckets "h" 100.0;
  (* the overflow bucket reports the exact observed maximum *)
  Alcotest.(check (option (float 1e-9))) "overflow p50" (Some 100.0)
    (Metrics.percentile m "h" 0.5);
  (* interpolation below the smallest observation clamps to the minimum *)
  let m2 = Metrics.create () in
  for _ = 1 to 10 do Metrics.observe m2 ~buckets "h" 1.0 done;
  Alcotest.(check (option (float 1e-9))) "clamped to min" (Some 1.0)
    (Metrics.percentile m2 "h" 0.5);
  Alcotest.(check (option (float 1e-9))) "empty histogram" None
    (Metrics.percentile m2 "missing" 0.5)

let test_metrics_json_snapshot () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.set m "a.gauge" 3.0;
  Metrics.observe m ~buckets "a.hist" 2.0;
  let j = Json.of_string (Json.to_string (Metrics.to_json m)) in
  Alcotest.(check bool) "counter in snapshot" true
    (Json.member "counters" j |> Option.get |> Json.member "a.count"
    = Some (Json.Int 1));
  let hist = Json.member "histograms" j |> Option.get |> Json.member "a.hist" in
  Alcotest.(check bool) "histogram has p50" true
    (Option.bind hist (Json.member "p50") <> None)

let test_null_metrics_noop () =
  let m = Metrics.null in
  Metrics.incr m "c";
  Metrics.set m "g" 1.0;
  Metrics.observe m "h" 1.0;
  Alcotest.(check bool) "disabled" false (Metrics.enabled m);
  Alcotest.(check int) "no counter" 0 (Metrics.counter_value m "c");
  Alcotest.(check bool) "no gauge" true (Metrics.gauge_value m "g" = None);
  Alcotest.(check bool) "no histogram" true (Metrics.summary m "h" = None)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_chrome_json () =
  let t = Trace.create () in
  Trace.set_process_name t ~pid:1 "component:bank";
  Trace.set_thread_name t ~pid:0 ~tid:3 "client 3";
  Trace.instant t ~cat:"sim" ~tid:3 ~ts:12.5
    ~args:[ ("op", Json.String "withdraw \"x\"") ]
    "commit";
  Trace.complete t ~cat:"sim" ~pid:2 ~tid:3 ~ts:10.0 ~dur:2.5 "lock_wait";
  Alcotest.(check int) "two events" 2 (Trace.length t);
  let doc = Json.of_string (Json.to_string (Trace.to_json t)) in
  let events = Json.to_list_exn (Option.get (Json.member "traceEvents" doc)) in
  (* 2 metadata + 2 recorded *)
  Alcotest.(check int) "traceEvents" 4 (List.length events);
  let phases =
    List.filter_map (fun e -> Json.member "ph" e) events
  in
  Alcotest.(check bool) "phases" true
    (phases = [ Json.String "M"; Json.String "M"; Json.String "i"; Json.String "X" ]);
  let span = List.nth events 3 in
  Alcotest.(check bool) "dur" true (Json.member "dur" span = Some (Json.Float 2.5));
  Alcotest.(check bool) "ts" true (Json.member "ts" span = Some (Json.Float 10.0));
  (* every recorded event must carry the mandatory Chrome fields *)
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (Fmt.str "field %s present" k) true
            (Json.member k e <> None))
        [ "name"; "ph"; "pid" ])
    events

let test_null_trace_noop () =
  let t = Trace.null in
  Trace.instant t ~ts:1.0 "x";
  Trace.complete t ~ts:1.0 ~dur:1.0 "y";
  Trace.set_process_name t ~pid:0 "p";
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Alcotest.(check int) "no events" 0 (Trace.length t);
  Alcotest.(check bool) "empty json" true
    (Json.member "traceEvents" (Trace.to_json t) = Some (Json.List []))

(* ------------------------------------------------------------------ *)
(* Simulator integration                                               *)
(* ------------------------------------------------------------------ *)

open Repro_runtime

let bank_topology =
  {
    Template.components =
      [| ("bank", Repro_model.Conflict.Always); ("store", Repro_model.Conflict.Rw) |];
  }

let bank_template rng ~client ~seq =
  ignore client;
  ignore seq;
  let open Repro_model in
  let a = Fmt.str "a%d" (Repro_workload.Prng.int rng 2) in
  Template.call ~component:0 (Label.v "txn")
    [
      Template.call ~component:1 ~sequential:true (Label.v ~args:[ a ] "deposit")
        [ Template.leaf (Label.read a); Template.leaf (Label.write a) ];
    ]

let run_closed ?trace ?metrics seed =
  let params =
    {
      Sim.default_params with
      Sim.protocol = Sim.Locking { closed = true };
      clients = 5;
      txs_per_client = 4;
      seed;
      lock_timeout = 4.0;
      backoff = 2.0;
    }
  in
  Sim.run ?trace ?metrics params bank_topology ~gen:bank_template

let test_sim_metrics_match_stats () =
  let metrics = Metrics.create () in
  let trace = Trace.create () in
  let st = run_closed ~trace ~metrics 11 in
  Alcotest.(check int) "committed" st.Sim.committed
    (Metrics.counter_value metrics "sim.committed");
  Alcotest.(check int) "aborts" st.Sim.aborts
    (Metrics.counter_value metrics "sim.aborts");
  Alcotest.(check int) "given_up" st.Sim.given_up
    (Metrics.counter_value metrics "sim.given_up");
  Alcotest.(check int) "lock_waits" st.Sim.lock_waits
    (Metrics.counter_value metrics "sim.lock_waits");
  Alcotest.(check (option (float 1e-9))) "makespan gauge" (Some st.Sim.makespan)
    (Metrics.gauge_value metrics "sim.makespan");
  (* the trace's commit instants agree with the counter, and the whole
     document survives a JSON round-trip *)
  let commits =
    List.length
      (List.filter (fun e -> e.Trace.name = "commit") (Trace.events trace))
  in
  Alcotest.(check int) "commit events" st.Sim.committed commits;
  let doc = Json.of_string (Json.to_string (Trace.to_json trace)) in
  Alcotest.(check bool) "trace json parses" true
    (Json.member "traceEvents" doc <> None)

let test_sim_telemetry_is_transparent () =
  (* Attaching telemetry must not perturb the simulation: identical seed,
     identical outcome (telemetry never draws from the random stream). *)
  let plain = run_closed 13 in
  let st = run_closed ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) 13 in
  Alcotest.(check int) "committed" plain.Sim.committed st.Sim.committed;
  Alcotest.(check int) "aborts" plain.Sim.aborts st.Sim.aborts;
  Alcotest.(check bool) "makespan" true (plain.Sim.makespan = st.Sim.makespan)

let test_checker_telemetry () =
  let h = Repro_workload.Gen.stack (Repro_workload.Prng.create ~seed:6) ~levels:3 ~roots:2 in
  let metrics = Metrics.create () in
  let trace = Trace.create () in
  let v = Repro_core.Compc.check ~trace ~metrics h in
  let steps =
    List.filter (fun e -> e.Trace.name = "reduction_step") (Trace.events trace)
  in
  Alcotest.(check int) "one span per attempted level"
    (Metrics.counter_value metrics "compc.steps")
    (List.length steps);
  Alcotest.(check int) "accept+reject = checks"
    (Metrics.counter_value metrics "compc.checks")
    (Metrics.counter_value metrics "compc.accept"
    + Metrics.counter_value metrics "compc.reject");
  if not (Repro_core.Compc.is_correct_verdict v) then
    Alcotest.(check bool) "failure classified" true
      (List.exists
         (fun k -> Metrics.counter_value metrics ("compc.failure." ^ k) > 0)
         [ "front_not_cc"; "no_calculation"; "intra_contradiction" ])

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parser misc" `Quick test_json_parser_misc;
        Alcotest.test_case "metrics counters and gauges" `Quick test_metrics_counters_gauges;
        Alcotest.test_case "histogram bucket math" `Quick test_histogram_bucket_math;
        Alcotest.test_case "histogram overflow and clamping" `Quick
          test_histogram_overflow_and_clamp;
        Alcotest.test_case "metrics json snapshot" `Quick test_metrics_json_snapshot;
        Alcotest.test_case "null metrics are no-ops" `Quick test_null_metrics_noop;
        Alcotest.test_case "chrome trace json" `Quick test_trace_chrome_json;
        Alcotest.test_case "null trace is a no-op" `Quick test_null_trace_noop;
        Alcotest.test_case "sim metrics match stats" `Quick test_sim_metrics_match_stats;
        Alcotest.test_case "telemetry does not perturb the simulation" `Quick
          test_sim_telemetry_is_transparent;
        Alcotest.test_case "checker telemetry" `Quick test_checker_telemetry;
      ] );
  ]
