(* Tests for the observed order, fronts, reduction, and the Comp-C decision,
   including reconstructions of the paper's figures and the empirical
   validation of Theorems 2-4. *)
open Repro_order
open Repro_model
open Repro_workload
module B = History.Builder
module Gen_figures = Repro_workload.Figures
module Compc = Repro_core.Compc
module Observed = Repro_core.Observed
module Front = Repro_core.Front
module Reduction = Repro_core.Reduction

(* ------------------------------------------------------------------ *)
(* Hand-built executions                                               *)
(* ------------------------------------------------------------------ *)

(* Classic flat non-serializable interleaving: r1(x) w2(x) w2(y) r1(y). *)
let flat_bad () =
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let r1x = B.leaf b ~parent:t1 (Label.read "x") in
  let r1y = B.leaf b ~parent:t1 (Label.read "y") in
  let w2x = B.leaf b ~parent:t2 (Label.write "x") in
  let w2y = B.leaf b ~parent:t2 (Label.write "y") in
  B.log b ~sched:s [ r1x; w2x; w2y; r1y ];
  B.seal b

let test_flat_bad () =
  let v = Compc.check (flat_bad ()) in
  Alcotest.(check bool) "rejected" false (Compc.is_correct_verdict v);
  match Compc.failure v with
  | Some (Reduction.No_calculation { level = 1; cluster_cycle }) ->
    Alcotest.(check int) "both roots in the cycle" 2 (List.length cluster_cycle)
  | other ->
    Alcotest.failf "unexpected outcome %a"
      Fmt.(option (fun ppf _ -> Fmt.string ppf "<failure>"))
      other

let test_serial_order_raises_on_incorrect () =
  let v = Compc.check (flat_bad ()) in
  Alcotest.check_raises "serial_order on rejected history"
    (Invalid_argument "Compc.serial_order: execution is not Comp-C") (fun () ->
      ignore (Compc.serial_order v))

let test_flat_good () =
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let r1x = B.leaf b ~parent:t1 (Label.read "x") in
  let r1y = B.leaf b ~parent:t1 (Label.read "y") in
  let w2x = B.leaf b ~parent:t2 (Label.write "x") in
  let w2y = B.leaf b ~parent:t2 (Label.write "y") in
  B.log b ~sched:s [ r1x; w2x; r1y; w2y ];
  let v = Compc.check (B.seal b) in
  Alcotest.(check bool) "accepted" true (Compc.is_correct_verdict v);
  Alcotest.(check (list int)) "serial order" [ t1; t2 ] (Compc.serial_order v)

(* Figure 2 (from the shared reconstruction library): the observed order
   climbs from a shared leaf schedule to roots on different schedules. *)
let test_figure2_observed_order () =
  let f = Gen_figures.figure2 () in
  let h = f.Gen_figures.h2 in
  let t1 = f.Gen_figures.f2_t1 and t2 = f.Gen_figures.f2_t2 in
  let t11 = f.Gen_figures.f2_t11 and t21 = f.Gen_figures.f2_t21 in
  let o13 = f.Gen_figures.f2_o13 and o25 = f.Gen_figures.f2_o25 in
  let rel = Observed.compute h in
  Alcotest.(check bool) "leaf pair observed" true (Rel.mem o13 o25 rel.Observed.obs);
  Alcotest.(check bool) "climbs to subtransactions" true (Rel.mem t11 t21 rel.Observed.obs);
  Alcotest.(check bool) "climbs to roots" true (Rel.mem t1 t2 rel.Observed.obs);
  Alcotest.(check bool) "no reverse" false (Rel.mem t2 t1 rel.Observed.obs);
  (* Generalized conflicts (Def. 11): cross-schedule pairs conflict because
     they are observed-related. *)
  Alcotest.(check bool) "roots conflict" true (Observed.conflict h rel t1 t2);
  Alcotest.(check bool) "subtransactions conflict" true (Observed.conflict h rel t11 t21);
  Alcotest.(check bool) "correct" true (Compc.is_correct h)

(* Figure 3: the crossing serializations make the roots impossible to
   isolate at the final step. *)
let test_figure3_incorrect () =
  let f = Gen_figures.figure3 () in
  let h = f.Gen_figures.ht in
  let t1 = f.Gen_figures.tt_t1 and t2 = f.Gen_figures.tt_t2 in
  let t11 = f.Gen_figures.tt_t11 and t21 = f.Gen_figures.tt_t21 in
  Alcotest.(check bool) "valid execution" true (Validate.check h = []);
  let v = Compc.check h in
  Alcotest.(check bool) "rejected" false (Compc.is_correct_verdict v);
  (* The level-1 front exists (one successful step); the failure is the
     isolation of the roots. *)
  Alcotest.(check int) "one completed step" 1 (List.length v.Compc.certificate.Reduction.steps);
  (match Compc.failure v with
  | Some (Reduction.No_calculation { level = 2; cluster_cycle }) ->
    Alcotest.(check bool) "roots in cycle" true
      (List.mem t1 cluster_cycle && List.mem t2 cluster_cycle)
  | _ -> Alcotest.fail "expected No_calculation at step 2");
  (* The conflicting observed pairs that cause it. *)
  let rel = v.Compc.relations in
  Alcotest.(check bool) "sa pulled pair" true (Rel.mem t11 t21 rel.Observed.obs);
  Alcotest.(check bool) "roots observed both ways" true
    (Rel.mem t1 t2 rel.Observed.obs && Rel.mem t2 t1 rel.Observed.obs)

(* Figure 4: the same tension, forgotten at the common schedule. *)
let test_figure4_correct () =
  let f = Gen_figures.figure4 () in
  let h = f.Gen_figures.ht in
  let t11 = f.Gen_figures.tt_t11 and t12 = f.Gen_figures.tt_t12 in
  let t21 = f.Gen_figures.tt_t21 and t22 = f.Gen_figures.tt_t22 in
  Alcotest.(check bool) "valid" true (Validate.check h = []);
  let v = Compc.check h in
  let rel = v.Compc.relations in
  Alcotest.(check bool) "pulled pair sa" true (Rel.mem t11 t21 rel.Observed.obs);
  Alcotest.(check bool) "pulled pair sb" true (Rel.mem t22 t12 rel.Observed.obs);
  (* Not generalized conflicts: their common schedule knows they commute. *)
  Alcotest.(check bool) "forgotten for layout" false (Observed.conflict h rel t11 t21);
  Alcotest.(check bool) "accepted" true (Compc.is_correct_verdict v)

let test_figure4_with_conflicts_incorrect () =
  (* If the same services conflict at the top schedule, the top schedule's
     own serialization decisions are pulled to the roots both ways. *)
  let f = Gen_figures.figure4 ~conflicting_top:true () in
  Alcotest.(check bool) "rejected" false (Compc.is_correct f.Gen_figures.ht)

(* Figure 1: structural notions only (the paper's figure is an
   architecture illustration). *)
let test_figure1_structure () =
  let h = Gen_figures.figure1 () in
  Alcotest.(check int) "order 3" 3 (History.order h);
  Alcotest.(check int) "five roots" 5 (List.length (History.roots h));
  Alcotest.(check int) "five schedules" 5 (History.n_schedules h);
  Alcotest.(check bool) "valid" true (Validate.check h = []);
  Alcotest.(check bool) "correct" true (Compc.is_correct h);
  (* T4 (root 3) and T5 (root 4) share a schedule with each other but with
     nobody else. *)
  let roots = History.roots h in
  let t4 = List.nth roots 3 and t5 = List.nth roots 4 in
  let open Ids in
  let sub r =
    Int_set.elements (History.descendants h r)
    |> List.filter_map (History.sched_of_tx h)
  in
  Alcotest.(check bool) "t4/t5 share their provider" true
    (List.exists (fun s -> List.mem s (sub t5)) (sub t4))

(* ------------------------------------------------------------------ *)
(* Fronts                                                              *)
(* ------------------------------------------------------------------ *)

let test_fronts () =
  let h = (Gen_figures.figure3 ()).Gen_figures.ht in
  let rel = Observed.compute h in
  let f0 = Front.initial h rel in
  Alcotest.(check int) "level 0 front holds the 4 leaves" 4
    (Ids.Int_set.cardinal f0.Front.members);
  let f1 = Front.make h rel 1 in
  Alcotest.(check int) "level 1 front holds the 4 subtransactions" 4
    (Ids.Int_set.cardinal f1.Front.members);
  let f2 = Front.make h rel 2 in
  Alcotest.(check int) "level 2 front holds the roots" 2
    (Ids.Int_set.cardinal f2.Front.members);
  Alcotest.(check bool) "f0 cc" true (Front.is_cc f0);
  Alcotest.(check bool) "f1 cc" true (Front.is_cc f1);
  (* The level-2 front is not conflict consistent: the roots are observed
     both ways — exactly why no calculation exists. *)
  Alcotest.(check bool) "f2 not cc" false (Front.is_cc f2)

let test_front_serial () =
  (* Strongly totally ordered roots make the final front serial. *)
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let w1 = B.leaf b ~parent:t1 (Label.write "x") in
  let w2 = B.leaf b ~parent:t2 (Label.write "x") in
  B.input_strong b ~a:t1 ~b:t2;
  B.log b ~sched:s [ w1; w2 ];
  let h = B.seal b in
  let rel = Observed.compute h in
  Alcotest.(check bool) "serial front" true (Front.is_serial h (Front.make h rel 1));
  Alcotest.(check bool) "level 0 not serial" false (Front.is_serial h (Front.initial h rel))

(* ------------------------------------------------------------------ *)
(* Theorems 2-4, empirically                                           *)
(* ------------------------------------------------------------------ *)

let agreement ~name ~n gen special =
  for i = 0 to n - 1 do
    let h = gen i in
    Alcotest.(check bool) (Fmt.str "%s#%d valid" name i) true (Validate.check h = []);
    let s = special h and c = Compc.is_correct h in
    if s <> c then
      Alcotest.failf "%s#%d: special criterion says %b, Comp-C says %b@.%a" name i s c
        History.pp h
  done

let test_theorem2_stack () =
  agreement ~name:"stack" ~n:150
    (fun i -> Gen.stack (Prng.create ~seed:(9000 + i)) ~levels:(2 + (i mod 3)) ~roots:(2 + (i mod 3)))
    Repro_criteria.Special.scc

let test_theorem3_fork () =
  agreement ~name:"fork" ~n:150
    (fun i -> Gen.fork (Prng.create ~seed:(5000 + i)) ~branches:(2 + (i mod 3)) ~roots:(2 + (i mod 4)))
    Repro_criteria.Special.fcc

let test_theorem4_join () =
  agreement ~name:"join" ~n:150
    (fun i -> Gen.join (Prng.create ~seed:(3000 + i)) ~branches:2 ~roots:(2 + (i mod 4)))
    Repro_criteria.Special.jcc

let test_flat_matches_csr () =
  agreement ~name:"flat" ~n:150
    (fun i -> Gen.flat (Prng.create ~seed:(700 + i)) ~roots:(2 + (i mod 4)))
    Repro_criteria.Classic.flat_csr

(* Containment claims of Section 4: LLSR and OPSR accept only Comp-C
   histories (they are subsets). *)
let test_containment_llsr_opsr () =
  let accepted_llsr = ref 0 and accepted_opsr = ref 0 and accepted_compc = ref 0 in
  for i = 0 to 299 do
    let h = Gen.stack (Prng.create ~seed:(100_000 + i)) ~levels:2 ~roots:3 in
    let llsr = Repro_criteria.Classic.llsr h in
    let opsr = Repro_criteria.Classic.opsr h in
    let compc = Compc.is_correct h in
    if llsr then incr accepted_llsr;
    if opsr then incr accepted_opsr;
    if compc then incr accepted_compc;
    if llsr && not compc then Alcotest.failf "LLSR accepted a non-Comp-C stack #%d" i;
    if opsr && not compc then Alcotest.failf "OPSR accepted a non-Comp-C stack #%d" i
  done;
  (* Strictness: Comp-C admits strictly more than each. *)
  Alcotest.(check bool) "llsr strictly contained" true (!accepted_llsr < !accepted_compc);
  Alcotest.(check bool) "opsr strictly contained" true (!accepted_opsr < !accepted_compc)

(* Serial executions (strong total root order) are always correct. *)
let test_serial_always_correct () =
  (* Sequential clients and sequential transactions: the execution really is
     serial, not just root-ordered. *)
  let profile =
    {
      Gen.default_profile with
      Gen.root_input_prob = 1.0;
      strong_input_prob = 1.0;
      intra_prob = 1.0;
      intra_strong_prob = 1.0;
    }
  in
  for i = 0 to 60 do
    let rng = Prng.create ~seed:(42_000 + i) in
    let h =
      match i mod 3 with
      | 0 -> Gen.stack ~profile rng ~levels:3 ~roots:3
      | 1 -> Gen.fork ~profile rng ~branches:2 ~roots:3
      | _ -> Gen.flat ~profile rng ~roots:4
    in
    Alcotest.(check bool) (Fmt.str "serial#%d correct" i) true (Compc.is_correct h)
  done

(* The witness layout of each successful step is a real isolation: every
   reduced transaction's operations are contiguous. *)
let test_layout_contiguous () =
  for i = 0 to 40 do
    let h = Gen.general (Prng.create ~seed:(88_000 + i)) ~schedules:4 ~roots:3 in
    let v = Compc.check h in
    List.iter
      (fun (st : Reduction.step) ->
        let lvl = st.Reduction.level in
        let txs =
          History.schedules_at_level h lvl
          |> List.concat_map (fun s ->
                 Ids.Int_set.elements (History.schedule h s).History.transactions)
        in
        List.iter
          (fun t ->
            let mine = History.children h t in
            let positions =
              List.mapi (fun idx n -> (n, idx)) st.Reduction.layout
              |> List.filter (fun (n, _) -> List.mem n mine)
              |> List.map snd
            in
            match (positions, mine) with
            | [], [] -> ()
            | ps, ms when List.length ps = List.length ms ->
              let lo = List.fold_left min max_int ps and hi = List.fold_left max 0 ps in
              Alcotest.(check bool)
                (Fmt.str "contiguous tx %d at step %d (history %d)" t lvl i)
                true
                (hi - lo + 1 = List.length ps)
            | _ -> Alcotest.fail "layout lost operations")
          txs)
      v.Compc.certificate.Reduction.steps
  done

(* ------------------------------------------------------------------ *)
(* Ablation variants of the observed order                             *)
(* ------------------------------------------------------------------ *)

let decide_with variant h =
  let rel = Observed.compute_with variant h in
  Reduction.is_correct (Reduction.reduce ~rel h)

let test_ablation_witnesses () =
  let fig4 = (Gen_figures.figure4 ()).Gen_figures.ht in
  let chain = Gen_figures.input_order_chain () in
  Alcotest.(check bool) "chain is a valid execution" true (Validate.check chain = []);
  Alcotest.(check bool) "chain: SCC rejects" false (Repro_criteria.Special.scc chain);
  (* Final reading: agrees with SCC on both witnesses. *)
  Alcotest.(check bool) "final rejects chain" false (decide_with Observed.Final chain);
  Alcotest.(check bool) "final accepts fig4" true (decide_with Observed.Final fig4);
  (* No-forgetting: over-rejects Figure 4 (orders never forgotten). *)
  Alcotest.(check bool) "no-forgetting rejects fig4" false
    (decide_with Observed.No_forgetting fig4);
  (* Eager forgetting: over-accepts the input-order chain (fronts lose the
     pulled serialization orders). *)
  Alcotest.(check bool) "eager accepts chain" true
    (decide_with Observed.Eager_forgetting chain)

let test_ablation_final_is_compute () =
  for i = 0 to 30 do
    let h = Gen.general (Prng.create ~seed:(90_000 + i)) ~schedules:4 ~roots:3 in
    Alcotest.(check bool) "compute_with Final = compute" true
      (Repro_order.Rel.equal (Observed.compute h).Observed.obs
         (Observed.compute_with Observed.Final h).Observed.obs)
  done

(* ------------------------------------------------------------------ *)
(* Defs. 17-20: serial fronts, equivalence, containment                *)
(* ------------------------------------------------------------------ *)

module Equivalence = Repro_core.Equivalence
module Engine = Repro_core.Engine

let test_level_fronts () =
  let h = (Gen_figures.figure3 ()).Gen_figures.ht in
  let s = Engine.of_history h in
  (match Equivalence.level_front s 0 with
  | Some f -> Alcotest.(check int) "level 0" 4 (Ids.Int_set.cardinal f.Front.members)
  | None -> Alcotest.fail "level 0 front always exists");
  (match Equivalence.level_front s 1 with
  | Some f -> Alcotest.(check int) "level 1" 4 (Ids.Int_set.cardinal f.Front.members)
  | None -> Alcotest.fail "figure 3 has a level 1 front");
  Alcotest.(check bool) "no level 2 front" true (Equivalence.level_front s 2 = None)

let test_equivalence_reflexive () =
  let h = (Gen_figures.figure4 ()).Gen_figures.ht in
  let s = Engine.of_history h in
  let rel = Option.get (Engine.relations s) in
  for i = 0 to History.order h do
    match Equivalence.level_front s i with
    | Some f ->
      let fs = Equivalence.of_front h rel f in
      Alcotest.(check bool)
        (Fmt.str "equivalent to own level-%d front" i)
        true
        (Equivalence.level_equivalent s i fs);
      Alcotest.(check bool)
        (Fmt.str "not contained when inputs lack the observed order (level %d)" i)
        (Repro_order.Rel.subset f.Front.obs f.Front.inp)
        (Equivalence.level_contained s i fs)
    | None -> Alcotest.failf "figure 4 reduces fully; missing level %d" i
  done

let test_containment_agrees_with_reduction () =
  (* Def. 20 through Theorem 1's construction must agree with the
     reduction-based decision on every history. *)
  for i = 0 to 120 do
    let rng = Prng.create ~seed:(60_000 + i) in
    let h =
      match i mod 5 with
      | 0 -> Gen.flat rng ~roots:3
      | 1 -> Gen.stack rng ~levels:3 ~roots:2
      | 2 -> Gen.fork rng ~branches:2 ~roots:3
      | 3 -> Gen.join rng ~branches:2 ~roots:3
      | _ -> Gen.general rng ~schedules:4 ~roots:3
    in
    Alcotest.(check bool)
      (Fmt.str "containment = reduction #%d" i)
      (Compc.is_correct h)
      (Equivalence.comp_c_via_containment (Engine.of_history h))
  done

let test_serial_front_spec () =
  let open Repro_order in
  let fs =
    {
      Equivalence.fs_members = Ids.Int_set.of_list [ 1; 2; 3 ];
      fs_input = Rel.transitive_closure (Rel.of_list [ (1, 2); (2, 3) ]);
      fs_con = Ids.Pair_set.empty;
    }
  in
  Alcotest.(check bool) "total chain is serial" true (Equivalence.is_serial fs);
  let fs = { fs with Equivalence.fs_input = Rel.of_list [ (1, 2) ] } in
  Alcotest.(check bool) "partial order is not serial" false (Equivalence.is_serial fs)

let suite =
  [
    ( "core",
      [
        Alcotest.test_case "flat non-serializable rejected" `Quick test_flat_bad;
        Alcotest.test_case "serial_order raises on incorrect" `Quick
          test_serial_order_raises_on_incorrect;
        Alcotest.test_case "flat serializable accepted" `Quick test_flat_good;
        Alcotest.test_case "figure 2: observed order climbs" `Quick test_figure2_observed_order;
        Alcotest.test_case "figure 3: incorrect execution" `Quick test_figure3_incorrect;
        Alcotest.test_case "figure 4: forgetting makes it correct" `Quick test_figure4_correct;
        Alcotest.test_case "figure 4 variant with conflicts rejected" `Quick
          test_figure4_with_conflicts_incorrect;
        Alcotest.test_case "figure 1: structure" `Quick test_figure1_structure;
        Alcotest.test_case "fronts" `Quick test_fronts;
        Alcotest.test_case "serial fronts" `Quick test_front_serial;
      ] );
    ( "theorems",
      [
        Alcotest.test_case "theorem 2: SCC = Comp-C on stacks" `Slow test_theorem2_stack;
        Alcotest.test_case "theorem 3: FCC = Comp-C on forks" `Slow test_theorem3_fork;
        Alcotest.test_case "theorem 4: JCC = Comp-C on joins" `Slow test_theorem4_join;
        Alcotest.test_case "flat histories match classical CSR" `Slow test_flat_matches_csr;
        Alcotest.test_case "LLSR and OPSR are strict subsets" `Slow test_containment_llsr_opsr;
        Alcotest.test_case "serial executions always correct" `Quick test_serial_always_correct;
        Alcotest.test_case "witness layouts isolate transactions" `Quick test_layout_contiguous;
      ] );
    ( "ablation",
      [
        Alcotest.test_case "rejected readings break on the witnesses" `Quick
          test_ablation_witnesses;
        Alcotest.test_case "Final variant is the default" `Quick
          test_ablation_final_is_compute;
      ] );
    ( "equivalence",
      [
        Alcotest.test_case "level fronts (Def. 16)" `Quick test_level_fronts;
        Alcotest.test_case "level equivalence is reflexive (Def. 18)" `Quick
          test_equivalence_reflexive;
        Alcotest.test_case "Def. 20 containment = Theorem 1 reduction" `Slow
          test_containment_agrees_with_reduction;
        Alcotest.test_case "serial front spec (Def. 17)" `Quick test_serial_front_spec;
      ] );
  ]
