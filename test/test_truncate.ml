(* Frontier truncation: bounded-memory monitored sessions.

   The headline property is verdict parity — a monitor with an
   auto-truncation window decides exactly what an untruncated session
   decides on every prefix of a random stream, accepting and rejecting
   alike — plus the units pinning the truncation surface: undo refused
   across a fold boundary, [truncate; truncate] = [truncate], the
   summary contents, and that the dense resident estimate actually
   shrinks when the certified prefix is folded. *)
open Repro_model
open Repro_workload
module Engine = Repro_core.Engine
module Monitor = Repro_core.Monitor
module Reduction = Repro_core.Reduction

let history_of_seed seed =
  let rng = Prng.create ~seed in
  let stream = seed mod 2 = 0 in
  match seed mod 5 with
  | 0 -> Gen.flat ~stream rng ~roots:(3 + (seed mod 4))
  | 1 -> Gen.stack ~stream rng ~levels:(2 + (seed mod 3)) ~roots:(2 + (seed mod 3))
  | 2 -> Gen.fork ~stream rng ~branches:2 ~roots:(3 + (seed mod 2))
  | 3 -> Gen.join ~stream rng ~branches:2 ~roots:3
  | _ -> Gen.general ~stream rng ~schedules:(3 + (seed mod 3)) ~roots:(3 + (seed mod 2))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let n_roots h = List.length (History.roots h)

(* Verdicts agree when acceptance agrees, and rejections cite the same
   failure kind (the witness details may differ in inessentials, like
   the untruncated monitor's vs the batch checker's). *)
let same_verdict a b =
  match (a, b) with
  | Monitor.Accepted _, Monitor.Accepted _ -> true
  | Monitor.Rejected f, Monitor.Rejected g ->
    Reduction.failure_kind f = Reduction.failure_kind g
  | _ -> false

let stack_history () = Gen.stack (Prng.create ~seed:42) ~levels:2 ~roots:4

(* ------------------------------------------------------------------ *)
(* Property: windowed = untruncated on random streams                  *)
(* ------------------------------------------------------------------ *)

let prop_truncation_parity =
  QCheck.Test.make ~count:120 ~name:"auto-truncation preserves every verdict"
    arb_seed (fun seed ->
      let h = history_of_seed seed in
      (* Tiny windows force truncation (and the occasional breach-and-
         restore) constantly; vary them so both regimes are hit. *)
      let window = 4 + (seed mod 13) in
      let plain = Monitor.create () in
      let windowed = Monitor.create ~window () in
      let ok = ref true in
      for k = 1 to n_roots h do
        let p = History.prefix_by_roots h k in
        let v_plain = Monitor.append plain p in
        let v_win = Monitor.append windowed p in
        if not (same_verdict v_plain v_win) then ok := false
      done;
      !ok)

let prop_truncation_not_vacuous =
  QCheck.Test.make ~count:60 ~name:"small windows actually truncate"
    arb_seed (fun seed ->
      let h = history_of_seed seed in
      let s = Engine.create ~window:4 () in
      for k = 1 to n_roots h do
        ignore (Engine.extend s (History.prefix_by_roots h k))
      done;
      (* Streams that reject early may legitimately never fold (only a
         certified prefix is foldable), and a fold followed by a breach
         restore legitimately ends back at floor 0 — but the lifetime
         counter proves the parity property above exercised folding.
         The watermark is checked before each append, so only a stream
         with some non-final prefix at or past the window can fold at
         all — nothing folds after the last append. *)
      let can_fold =
        let rec any k =
          k < n_roots h
          && (History.n_nodes (History.prefix_by_roots h k) >= 4 || any (k + 1))
        in
        any 1
      in
      (not (Engine.accepted s)) || (not can_fold) || Engine.truncations s > 0)

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let certified_session () =
  let h = stack_history () in
  let s = Engine.create () in
  for k = 1 to n_roots h do
    ignore (Engine.extend s (History.prefix_by_roots h k))
  done;
  (h, s)

let test_undo_at_boundary () =
  let _, s = certified_session () in
  Engine.truncate s;
  Alcotest.check_raises "engine refuses undo across the fold"
    (Invalid_argument "Engine.undo: cannot roll back across a truncation boundary")
    (fun () -> Engine.undo s)

let test_monitor_undo_at_boundary () =
  let h = stack_history () in
  let m = Monitor.create () in
  for k = 1 to n_roots h do
    ignore (Monitor.append m (History.prefix_by_roots h k))
  done;
  Monitor.truncate m;
  Alcotest.check_raises "monitor refuses undo across the fold"
    (Invalid_argument "Monitor.undo: cannot roll back across a truncation boundary")
    (fun () -> Monitor.undo m);
  (* The historical no-snapshot message is untouched. *)
  let fresh = Monitor.create () in
  Alcotest.check_raises "no-snapshot message unchanged"
    (Invalid_argument "Monitor.undo: no snapshot held (undo depth is one)")
    (fun () -> Monitor.undo fresh)

let test_truncate_idempotent () =
  let _, s = certified_session () in
  Engine.truncate s;
  let floor1 = Engine.floor s
  and sum1 = Engine.summary s
  and count1 = Engine.truncations s
  and verdict1 = Engine.accepted s in
  Engine.truncate s;
  Alcotest.(check int) "floor unchanged" floor1 (Engine.floor s);
  Alcotest.(check bool) "summary unchanged" true (sum1 = Engine.summary s);
  Alcotest.(check int) "second truncate is a no-op" count1 (Engine.truncations s);
  Alcotest.(check bool) "verdict carried" verdict1 (Engine.accepted s)

let test_truncate_summary_contents () =
  let h, s = certified_session () in
  let serial_before =
    match Engine.verdict s with
    | Some (Engine.Accepted serial) -> serial
    | _ -> Alcotest.fail "stack history should be accepted"
  in
  Engine.truncate s;
  match Engine.summary s with
  | None -> Alcotest.fail "truncate must leave a summary"
  | Some sum ->
    Alcotest.(check int) "summary spans the history" (History.n_nodes h) sum.Engine.s_nodes;
    Alcotest.(check int) "all roots folded" (n_roots h) sum.Engine.s_roots;
    Alcotest.(check (list int)) "serial witness prefix kept" serial_before
      sum.Engine.s_serial;
    Alcotest.(check int) "floor is the folded node count" (History.n_nodes h)
      (Engine.floor s)

let test_truncate_releases_memory () =
  let _, s = certified_session () in
  let before = Engine.resident_estimate_words s in
  Engine.truncate s;
  let after = Engine.resident_estimate_words s in
  Alcotest.(check bool)
    (Printf.sprintf "dense estimate shrinks (%d -> %d words)" before after)
    true (after < before)

let test_truncate_rejected_refused () =
  (* Figure-3 style violation: two rw-conflicting leaf pairs serialized
     opposite ways by their schedules. *)
  let h =
    Repro_histlang.Syntax.parse
      "schedule S conflict rw\n\
       root T1 @ S T1\n\
       root T2 @ S T2\n\
       leaf a parent T1 w(x)\n\
       leaf b parent T1 w(y)\n\
       leaf c parent T2 w(x)\n\
       leaf d parent T2 w(y)\n\
       order S : a < c\n\
       order S : d < b\n"
  in
  let s = Engine.create () in
  (match Engine.extend s h with
  | Engine.Rejected _ -> ()
  | Engine.Accepted _ -> Alcotest.fail "expected a rejection");
  Alcotest.check_raises "only certified prefixes fold"
    (Invalid_argument "Engine.truncate: only an accepted (certified) prefix can be folded")
    (fun () -> Engine.truncate s)

let test_truncate_empty_noop () =
  let s = Engine.create () in
  Engine.truncate s;
  Alcotest.(check int) "no floor on the empty session" 0 (Engine.floor s);
  Alcotest.(check bool) "no summary on the empty session" true (Engine.summary s = None)

let test_window_validation () =
  Alcotest.check_raises "window must be positive"
    (Invalid_argument "Engine.create: window must be positive") (fun () ->
      ignore (Engine.create ~window:0 ()))

let test_explain_after_truncate () =
  (* Forensic accessors transparently restore the dense state. *)
  let _, s = certified_session () in
  Engine.truncate s;
  Alcotest.(check bool) "floor up after fold" true (Engine.floor s > 0);
  let cert = Engine.certificate s in
  Alcotest.(check int) "restore drops the floor" 0 (Engine.floor s);
  Alcotest.(check bool) "restored certificate is the accept one" true
    (match cert.Reduction.outcome with Ok _ -> true | Error _ -> false);
  Alcotest.(check bool) "restores counted" true (Engine.restores s > 0)

let suite =
  [
    ( "truncate",
      [
        Alcotest.test_case "undo at boundary (engine)" `Quick test_undo_at_boundary;
        Alcotest.test_case "undo at boundary (monitor)" `Quick
          test_monitor_undo_at_boundary;
        Alcotest.test_case "truncate; truncate = truncate" `Quick
          test_truncate_idempotent;
        Alcotest.test_case "summary contents" `Quick test_truncate_summary_contents;
        Alcotest.test_case "dense estimate shrinks" `Quick
          test_truncate_releases_memory;
        Alcotest.test_case "rejected prefix refused" `Quick
          test_truncate_rejected_refused;
        Alcotest.test_case "empty session no-op" `Quick test_truncate_empty_noop;
        Alcotest.test_case "window validation" `Quick test_window_validation;
        Alcotest.test_case "explain after truncate restores" `Quick
          test_explain_after_truncate;
      ] );
    ( "truncate:props",
      [
        QCheck_alcotest.to_alcotest prop_truncation_parity;
        QCheck_alcotest.to_alcotest prop_truncation_not_vacuous;
      ] );
  ]
