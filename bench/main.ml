(* The experiment harness: regenerates every figure- and theorem-derived
   experiment of the reproduction (the paper has no numeric tables; see
   DESIGN.md section 3 and EXPERIMENTS.md for the mapping), then runs
   bechamel micro-benchmarks of the core algorithms.

   Usage:  dune exec bench/main.exe [-- e1 e5 micro ...]   (default: all) *)

open Repro_model
open Repro_workload
module F = Figures
module Compc = Repro_core.Compc
module Shrink = Repro_core.Shrink
module Sim = Repro_runtime.Sim
module Template = Repro_runtime.Template
module Workloads = Repro_runtime.Workloads

module Json = Repro_obs.Json
module Metrics = Repro_obs.Metrics
module Pool = Repro_par.Pool

(* Monotonic wall clock in seconds.  [Sys.time] is process CPU time, which
   hides parallel speedups (n busy domains burn n CPU-seconds per wall
   second), so timed experiments report both. *)
let now_wall = Repro_obs.Clock.now_wall

let section id title =
  Fmt.pr "@.==================================================================@.";
  Fmt.pr "%s: %s@." (String.uppercase_ascii id) title;
  Fmt.pr "==================================================================@."

(* Machine-readable results, accumulated by whichever experiments run and
   written to BENCH_core.json at exit so future PRs have a perf trajectory
   to compare against (see EXPERIMENTS.md). *)
let bench_json : (string * Json.t) list ref = ref []

let record_json section payload =
  bench_json := (section, payload) :: List.remove_assoc section !bench_json

let write_bench_json () =
  match !bench_json with
  | [] -> ()
  | sections ->
    let doc =
      Json.Obj (("schema", Json.String "bench-core/1") :: List.rev sections)
    in
    let oc = open_out "BENCH_core.json" in
    Json.to_channel oc doc;
    output_char oc '\n';
    close_out oc;
    Fmt.pr "@.bench results written to BENCH_core.json@."

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — structure of a general composite system             *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "e1" "Figure 1: an order-3 composite configuration";
  let h = F.figure1 () in
  Fmt.pr "schedules=%d roots=%d internal=%d leaves=%d order=%d@."
    (History.n_schedules h)
    (List.length (History.roots h))
    (List.length (History.internal_nodes h))
    (List.length (History.leaves h))
    (History.order h);
  List.iter
    (fun (s : History.schedule) ->
      let invoked =
        Repro_order.Ids.Int_set.elements
          (Repro_order.Rel.succs (History.invocation_graph h) s.History.sid)
        |> List.map (fun c -> (History.schedule h c).History.sname)
      in
      Fmt.pr "  %-3s level %d  invokes: %a@." s.History.sname
        (History.level h s.History.sid)
        Fmt.(list ~sep:comma string)
        invoked)
    (History.schedules h);
  Fmt.pr "shape: %a; valid: %b; Comp-C: %b@."
    Repro_criteria.Shapes.pp
    (Repro_criteria.Shapes.classify h)
    (Validate.check h = [])
    (Compc.is_correct h)

(* ------------------------------------------------------------------ *)
(* E2: Figure 2 — conflict and observed order                         *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "e2" "Figure 2: observed order climbing the execution trees";
  let f = F.figure2 () in
  let h = f.F.h2 in
  let rel = Repro_core.Observed.compute h in
  let obs = rel.Repro_core.Observed.obs in
  let pn = History.pp_node h in
  let row a b =
    Fmt.pr "  %a <_o %a : %b  CON: %b@." pn a pn b
      (Repro_order.Rel.mem a b obs)
      (Repro_core.Observed.conflict h rel a b)
  in
  row f.F.f2_o13 f.F.f2_o25;
  row f.F.f2_t11 f.F.f2_t21;
  row f.F.f2_t1 f.F.f2_t2;
  Fmt.pr "expected: all three pairs observed and conflicting (paper sec. 3.2)@."

(* ------------------------------------------------------------------ *)
(* E3/E4: Figures 3 and 4 — the reduction at work                     *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "e3" "Figure 3: an incorrect execution (reduction gets stuck)";
  Compc.explain Fmt.stdout (Compc.check (F.figure3 ()).F.ht);
  Fmt.pr "expected: one successful step, then no calculation for the roots@."

let e4 () =
  section "e4" "Figure 4: a correct execution (orders forgotten at a common schedule)";
  Compc.explain Fmt.stdout (Compc.check (F.figure4 ()).F.ht);
  Fmt.pr "expected: reduction completes; pulled-up orders were not conflicts@."

(* ------------------------------------------------------------------ *)
(* E5-E7: Theorems 2-4, empirically                                   *)
(* ------------------------------------------------------------------ *)

(* Each agreement probe generates its own history from its own seed, so the
   batch is embarrassingly parallel: fan it out over the domain pool
   (REPRO_JOBS; sequential on a single-core box) and fold the per-item
   verdicts in input order. *)
let agreement ~n gen special =
  let verdicts =
    Pool.parmap
      (fun i ->
        let h = gen i in
        if Validate.check h <> [] then None
        else Some (special h, Compc.is_correct h))
      (List.init n (fun i -> i))
  in
  List.fold_left
    (fun (agree, accept, special_accept, invalid) v ->
      match v with
      | None -> (agree, accept, special_accept, invalid + 1)
      | Some (s, c) ->
        ( (agree + if s = c then 1 else 0),
          (accept + if c then 1 else 0),
          (special_accept + if s then 1 else 0),
          invalid ))
    (0, 0, 0, 0) verdicts

let pp_agreement name n (agree, accept, special_accept, invalid) =
  Fmt.pr
    "  %-24s n=%4d  agree=%4d (%.1f%%)  special-accepts=%d  comp-c-accepts=%d  invalid=%d %s@."
    name n agree
    (100.0 *. float_of_int agree /. float_of_int (max 1 (n - invalid)))
    special_accept accept invalid
    (if agree = n - invalid then "[OK]" else "[DISAGREEMENT!]")

let e5 () =
  section "e5" "Theorem 2: SCC <=> Comp-C on stacks (random histories)";
  List.iter
    (fun (levels, roots, n) ->
      let r =
        agreement ~n
          (fun i -> Gen.stack (Prng.create ~seed:(1_000_000 + i)) ~levels ~roots)
          Repro_criteria.Special.scc
      in
      pp_agreement (Fmt.str "stack levels=%d roots=%d" levels roots) n r)
    [ (2, 2, 600); (2, 4, 600); (3, 3, 600); (4, 2, 400); (5, 2, 300) ]

let e6 () =
  section "e6" "Theorem 3: FCC <=> Comp-C on forks (random histories)";
  List.iter
    (fun (branches, roots, n) ->
      let r =
        agreement ~n
          (fun i -> Gen.fork (Prng.create ~seed:(2_000_000 + i)) ~branches ~roots)
          Repro_criteria.Special.fcc
      in
      pp_agreement (Fmt.str "fork branches=%d roots=%d" branches roots) n r)
    [ (2, 3, 600); (3, 4, 600); (4, 5, 400) ]

let e7 () =
  section "e7" "Theorem 4: JCC <=> Comp-C on joins (random histories)";
  List.iter
    (fun (branches, roots, n) ->
      let r =
        agreement ~n
          (fun i -> Gen.join (Prng.create ~seed:(3_000_000 + i)) ~branches ~roots)
          Repro_criteria.Special.jcc
      in
      pp_agreement (Fmt.str "join branches=%d roots=%d" branches roots) n r)
    [ (2, 3, 600); (3, 4, 600); (2, 6, 400) ]

(* ------------------------------------------------------------------ *)
(* E8: the correctness-class hierarchy (sec. 1 and 4 claims)           *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "e8" "Containment of correctness classes on random stacks";
  Fmt.pr "acceptance counts; the paper claims LLSR, MLSR and OPSR are proper@.";
  Fmt.pr "subsets of SCC = Comp-C (an inversion would falsify that claim), and@.";
  Fmt.pr "classically LLSR is contained in MLSR.  FlatCSR ignores level@.";
  Fmt.pr "semantics in both directions and is incomparable:@.";
  let run ~levels ~roots ~n ~seed0 =
    let counts = Hashtbl.create 8 in
    let bump k =
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    in
    let inv = Hashtbl.create 8 in
    let bump_inv k =
      Hashtbl.replace inv k (1 + Option.value ~default:0 (Hashtbl.find_opt inv k))
    in
    for i = 0 to n - 1 do
      let h = Gen.stack (Prng.create ~seed:(seed0 + i)) ~levels ~roots in
      let report = Repro_criteria.Classic.accepted_by h in
      let compc = List.assoc "Comp-C" report in
      List.iter (fun (name, v) -> if v then bump name) report;
      List.iter
        (fun name -> if List.assoc name report && not compc then bump_inv name)
        [ "FlatCSR"; "LLSR"; "MLSR"; "OPSR" ];
      if List.assoc "LLSR" report && not (List.assoc "MLSR" report) then
        bump_inv "LLSR-not-MLSR"
    done;
    let get t k = Option.value ~default:0 (Hashtbl.find_opt t k) in
    let claimed_inversions =
      get inv "LLSR" + get inv "MLSR" + get inv "OPSR" + get inv "LLSR-not-MLSR"
    in
    Fmt.pr
      "  stack levels=%d roots=%d n=%d:  FlatCSR=%3d  LLSR=%3d  MLSR=%3d  OPSR=%3d  SCC=%3d  Comp-C=%3d@."
      levels roots n (get counts "FlatCSR") (get counts "LLSR") (get counts "MLSR")
      (get counts "OPSR") (get counts "SCC") (get counts "Comp-C");
    Fmt.pr
      "    inversions: LLSR=%d MLSR=%d OPSR=%d LLSR-beyond-MLSR=%d %s   (FlatCSR=%d, expected: incomparable)@."
      (get inv "LLSR") (get inv "MLSR") (get inv "OPSR") (get inv "LLSR-not-MLSR")
      (if claimed_inversions = 0 then "[OK]" else "[VIOLATION!]")
      (get inv "FlatCSR")
  in
  run ~levels:2 ~roots:3 ~n:500 ~seed0:4_000_000;
  run ~levels:3 ~roots:2 ~n:500 ~seed0:4_500_000;
  Fmt.pr "@.gap witnesses (hand-built, see the test suite):@.";
  Fmt.pr "  forgetting-stack:    LLSR, MLSR and FlatCSR reject; SCC = Comp-C accept@.";
  Fmt.pr "  llsr-mlsr-gap:       LLSR rejects; MLSR and Comp-C accept@.";
  Fmt.pr "  opsr-gap (flat 3tx): OPSR rejects; SCC = Comp-C accept@."

(* ------------------------------------------------------------------ *)
(* E9: cost of the reduction                                           *)
(* ------------------------------------------------------------------ *)

let time f =
  let c0 = Repro_obs.Clock.now_cpu () and w0 = now_wall () in
  let r = f () in
  (r, Repro_obs.Clock.now_cpu () -. c0, now_wall () -. w0)

(* Allocation profile of one timed row: minor and major words allocated
   during [f] (deltas of the GC's monotone counters), how far [f] pushed
   the process's top-of-heap high-water mark, and what it left live.
   Absolute [top_heap_words] is useless per row — the high-water mark is
   process-global and monotone, so every variant after the hungriest one
   used to report the identical number.  Compacting before and after
   isolates the row: the pre-compaction settles inherited garbage (and
   resets nothing — the mark only ever grows, which is exactly why the
   {e delta} is the attributable quantity), the post-compaction makes
   [live_words] mean real retained data rather than heap shape.  The
   compactions sit outside the rows' internal wall/cpu timers, so timings
   are unaffected. *)
let gc_row f =
  Gc.compact ();
  let g0 = Gc.stat () in
  let r = f () in
  let g1 = Gc.quick_stat () in
  Gc.compact ();
  let g2 = Gc.stat () in
  let gc =
    Json.Obj
      [
        ("minor_words", Json.Float (g1.Gc.minor_words -. g0.Gc.minor_words));
        ("major_words", Json.Float (g1.Gc.major_words -. g0.Gc.major_words));
        ("top_heap_growth_words", Json.Int (g2.Gc.top_heap_words - g0.Gc.top_heap_words));
        ("live_words_delta", Json.Int (g2.Gc.live_words - g0.Gc.live_words));
      ]
  in
  (r, gc)

(* The committed pre-kernel baseline; rows carry cpu_s measured on a
   single-threaded run, so cpu ~= wall there. *)
let e9_baseline_path = "bench/baselines/e9_prechange.json"

let e9_baseline () =
  match open_in e9_baseline_path with
  | exception Sys_error _ -> None
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    (match Json.of_string text with
    | exception Json.Parse_error _ -> None
    | doc -> (
      match Json.member "rows" doc with
      | Some (Json.Obj rows) ->
        Some
          (List.filter_map
             (fun (name, row) ->
               match Json.member "cpu_s" row with
               | Some (Json.Float s) -> Some (name, s)
               | Some (Json.Int s) -> Some (name, float_of_int s)
               | _ -> None)
             rows)
      | _ -> None))

let e9 () =
  section "e9" "Checker scalability: cost of the full Comp-C decision";
  (* REPRO_E9_ROOTS_MAX caps the root counts so CI smoke runs stay cheap;
     the full ladder runs by default. *)
  let roots_max =
    match Sys.getenv_opt "REPRO_E9_ROOTS_MAX" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> max_int)
    | None -> max_int
  in
  let root_sizes = List.filter (fun r -> r <= roots_max) [ 2; 4; 8; 16; 32; 64 ] in
  Fmt.pr "  %-34s %8s %8s %10s %10s %8s@." "history" "nodes" "leaves" "cpu_s"
    "wall_s" "verdict";
  let rows = ref [] in
  let row name h =
    let (v, cpu, wall), gc = gc_row (fun () -> time (fun () -> Compc.check h)) in
    let verdict = if Compc.is_correct_verdict v then "accept" else "reject" in
    Fmt.pr "  %-34s %8d %8d %10.4f %10.4f %8s@." name (History.n_nodes h)
      (List.length (History.leaves h))
      cpu wall verdict;
    rows :=
      ( name,
        Json.Obj
          [
            ("nodes", Json.Int (History.n_nodes h));
            ("leaves", Json.Int (List.length (History.leaves h)));
            ("cpu_s", Json.Float cpu);
            ("wall_s", Json.Float wall);
            ("verdict", Json.String verdict);
            ("gc", gc);
          ] )
      :: !rows
  in
  (* Dense conflicts: almost surely rejected (failures found early, at a low
     level); sparse conflicts: mostly accepted -- the reduction must run all
     the way to the roots, the expensive case. *)
  List.iter
    (fun (tag, items_of_roots) ->
      List.iter
        (fun roots ->
          let profile =
            {
              Gen.default_profile with
              Gen.ops_min = 2;
              ops_max = 2;
              items = items_of_roots roots;
            }
          in
          row
            (Fmt.str "stack levels=3 roots=%d (%s)" roots tag)
            (Gen.stack ~profile (Prng.create ~seed:42) ~levels:3 ~roots))
        root_sizes)
    [ ("dense", (fun _ -> 2)); ("sparse", (fun roots -> 8 * roots)) ];
  (* Serial clients: always accepted, so the reduction always runs to the
     top -- the worst case for the checker. *)
  List.iter
    (fun roots ->
      let profile =
        {
          Gen.default_profile with
          Gen.ops_min = 2;
          ops_max = 2;
          root_input_prob = 1.0;
          strong_input_prob = 1.0;
          intra_prob = 1.0;
          intra_strong_prob = 1.0;
        }
      in
      row
        (Fmt.str "stack levels=3 roots=%d (serial)" roots)
        (Gen.stack ~profile (Prng.create ~seed:42) ~levels:3 ~roots))
    root_sizes;
  let profile = { Gen.default_profile with Gen.ops_min = 2; ops_max = 2 } in
  List.iter
    (fun (schedules, roots) ->
      row
        (Fmt.str "general schedules=%d roots=%d" schedules roots)
        (Gen.general ~profile (Prng.create ~seed:42) ~schedules ~roots))
    (List.filter (fun (_, r) -> r <= roots_max) [ (4, 8); (6, 16); (8, 32); (8, 64) ]);
  record_json "checker" (Json.Obj (List.rev !rows));
  (* Before/after speedup against the committed pre-kernel baseline: every
     row present in both runs gets an old/new/ratio record under
     e9.speedup. *)
  match e9_baseline () with
  | None -> Fmt.pr "  (no baseline at %s; speedup section skipped)@." e9_baseline_path
  | Some baseline ->
    let wall_of row =
      match Json.member "wall_s" row with Some (Json.Float w) -> Some w | _ -> None
    in
    let speedups =
      List.filter_map
        (fun (name, row) ->
          match (List.assoc_opt name baseline, wall_of row) with
          | Some old_s, Some new_s when new_s > 0.0 ->
            Some
              ( name,
                Json.Obj
                  [
                    ("old_wall_s", Json.Float old_s);
                    ("new_wall_s", Json.Float new_s);
                    ("ratio", Json.Float (old_s /. new_s));
                  ] )
          | _ -> None)
        (List.rev !rows)
    in
    if speedups <> [] then begin
      Fmt.pr "@.  speedup vs pre-kernel baseline (%s):@." e9_baseline_path;
      Fmt.pr "  %-34s %10s %10s %8s@." "history" "old_s" "new_s" "ratio";
      List.iter
        (fun (name, j) ->
          match (Json.member "old_wall_s" j, Json.member "new_wall_s" j,
                 Json.member "ratio" j)
          with
          | Some (Json.Float o), Some (Json.Float n), Some (Json.Float r) ->
            Fmt.pr "  %-34s %10.4f %10.4f %7.1fx@." name o n r
          | _ -> ())
        speedups;
      record_json "e9" (Json.Obj [ ("speedup", Json.Obj speedups) ])
    end

(* ------------------------------------------------------------------ *)
(* E10: concurrency-control protocols on the runtime                   *)
(* ------------------------------------------------------------------ *)

let protocols =
  [
    ("serial", Sim.Serial);
    ("closed", Sim.Locking { closed = true });
    ("open", Sim.Locking { closed = false });
    ("certify", Sim.Certify);
  ]

(* perf: one instrumented run per workload x protocol, recorded to
   BENCH_core.json — simulated throughput and latency percentiles, plus the
   wall-clock cost of the run itself. *)
let perf () =
  section "perf" "Simulator throughput and latency percentiles per protocol";
  Fmt.pr "  %-10s %-7s %9s %10s %7s %7s %7s %9s@." "workload" "proto" "committed"
    "throughput" "p50" "p90" "p99" "wall-s";
  let rows =
    List.map
      (fun (w : Workloads.workload) ->
        let per_proto =
          List.map
            (fun (pname, protocol) ->
              let metrics = Metrics.create () in
              let params =
                {
                  Sim.default_params with
                  Sim.protocol;
                  clients = 6;
                  txs_per_client = 8;
                  seed = 1;
                  lock_timeout = 10.0;
                  backoff = 3.0;
                }
              in
              let t0 = now_wall () in
              let st = Sim.run ~metrics params w.Workloads.topology ~gen:w.Workloads.gen in
              let wall = now_wall () -. t0 in
              let throughput =
                if st.Sim.makespan > 0.0 then
                  float_of_int st.Sim.committed /. st.Sim.makespan
                else 0.0
              in
              let lat q =
                Option.value ~default:0.0 (Metrics.percentile metrics "sim.latency" q)
              in
              Fmt.pr "  %-10s %-7s %9d %10.3f %7.2f %7.2f %7.2f %9.3f@."
                w.Workloads.name pname st.Sim.committed throughput (lat 0.5)
                (lat 0.9) (lat 0.99) wall;
              ( pname,
                Json.Obj
                  [
                    ("committed", Json.Int st.Sim.committed);
                    ("aborts", Json.Int st.Sim.aborts);
                    ("given_up", Json.Int st.Sim.given_up);
                    ("lock_waits", Json.Int st.Sim.lock_waits);
                    ("makespan", Json.Float st.Sim.makespan);
                    ("throughput", Json.Float throughput);
                    ("latency_p50", Json.Float (lat 0.5));
                    ("latency_p90", Json.Float (lat 0.9));
                    ("latency_p99", Json.Float (lat 0.99));
                    ("wall_s", Json.Float wall);
                  ] ))
            protocols
        in
        (w.Workloads.name, Json.Obj per_proto))
      (Workloads.all ())
  in
  record_json "sim" (Json.Obj rows)

let e10 () =
  section "e10" "Protocols x workloads: performance and safety of emitted histories";
  Fmt.pr "  (10 seeds each; correct%% = share of runs whose emitted history is Comp-C)@.";
  Fmt.pr "  %-10s %-7s %9s %7s %8s %9s %9s %9s@." "workload" "proto" "committed"
    "aborts" "given-up" "makespan" "latency" "correct%";
  List.iter
    (fun (w : Workloads.workload) ->
      List.iter
        (fun (pname, protocol) ->
          let seeds = List.init 10 (fun i -> 100 + i) in
          let acc =
            List.map
              (fun seed ->
                let params =
                  {
                    Sim.default_params with
                    Sim.protocol;
                    clients = 6;
                    txs_per_client = 6;
                    seed;
                    lock_timeout = 10.0;
                    backoff = 3.0;
                  }
                in
                let st = Sim.run params w.Workloads.topology ~gen:w.Workloads.gen in
                (st, Compc.is_correct st.Sim.history))
              seeds
          in
          let n = float_of_int (List.length acc) in
          let favg f = List.fold_left (fun s (st, _) -> s +. f st) 0.0 acc /. n in
          let correct = List.length (List.filter snd acc) * 100 / List.length acc in
          Fmt.pr "  %-10s %-7s %9.1f %7.1f %8.1f %9.2f %9.2f %8d%%@."
            w.Workloads.name pname
            (favg (fun st -> float_of_int st.Sim.committed))
            (favg (fun st -> float_of_int st.Sim.aborts))
            (favg (fun st -> float_of_int st.Sim.given_up))
            (favg (fun st -> st.Sim.makespan))
            (favg (fun st -> st.Sim.mean_latency))
            correct)
        protocols)
    (Workloads.all ());
  Fmt.pr
    "@.expected shape: serial slowest; open nesting most concurrent; serial,@.\
     closed nesting and certify always 100%% correct (certify by construction);@.\
     open nesting loses correctness only on the federated workload@.\
     (autonomous front-ends: the Figure-3 situation)@."

(* ------------------------------------------------------------------ *)
(* E11: weak vs strong orders                                          *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "e11" "Weak vs strong orders: parallelism within a transaction";
  Fmt.pr
    "  (each customer works on private accounts, so the only difference is@.\
     whether a transaction's services are strongly ordered or left weak)@.";
  let topo =
    {
      Repro_runtime.Template.components =
        [| ("bank", Conflict.Never); ("store", Conflict.Rw) |];
    }
  in
  let gen sequential rng ~client ~seq =
    ignore seq;
    ignore rng;
    let svc i =
      (* distinct accounts per service: the comparison isolates ordering,
         not lock contention *)
      let a = Fmt.str "c%d-acct%d" client i in
      Repro_runtime.Template.call ~component:1 ~sequential:true
        (Label.v ~args:[ a ] "deposit")
        [
          Repro_runtime.Template.leaf (Label.read a);
          Repro_runtime.Template.leaf (Label.write a);
        ]
    in
    {
      (Repro_runtime.Template.call ~component:0 (Label.v "txn") (List.init 4 svc)) with
      Repro_runtime.Template.sequential;
    }
  in
  let variant name sequential =
    let params =
      {
        Sim.default_params with
        Sim.protocol = Sim.Locking { closed = true };
        clients = 6;
        txs_per_client = 8;
        seed = 7;
        lock_timeout = 20.0;
      }
    in
    let st = Sim.run params topo ~gen:(gen sequential) in
    Fmt.pr "  %-28s committed=%3d makespan=%8.2f latency=%6.2f comp-c=%b@." name
      st.Sim.committed st.Sim.makespan st.Sim.mean_latency
      (Compc.is_correct st.Sim.history)
  in
  variant "strong (sequential services)" true;
  variant "weak (parallel services)" false;
  Fmt.pr "expected: the weak variant finishes markedly earlier at equal safety@."

(* ------------------------------------------------------------------ *)
(* E12: incremental certification (the monitor vs full rechecks)       *)
(* ------------------------------------------------------------------ *)

(* The certification workload: certify every root-prefix of one history in
   order, the way the Certify protocol and compcheck --monitor do.  The
   full-recheck side runs the batch checker on each prefix with cold memos
   (exactly what the simulator did before the monitor existed); the monitor
   side appends the same prefixes into one monitor.  Prefix construction is
   untimed on both sides, and each side gets its own freshly built prefix
   chain so the full-recheck side cannot ride on conflict caches the
   monitor warmed. *)
let e12 () =
  section "e12"
    "Incremental certification: monitor appends vs full recheck per prefix";
  let roots_max =
    match Sys.getenv_opt "REPRO_E12_ROOTS_MAX" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> max_int)
    | None -> max_int
  in
  let root_sizes = List.filter (fun r -> r <= roots_max) [ 8; 16; 32; 64 ] in
  Fmt.pr "  %-34s %8s %10s %10s %8s %9s %6s@." "history" "nodes" "full_s"
    "monitor_s" "speedup" "fastpath" "delta";
  let rows = ref [] in
  let headline = ref None in
  let row name ~headline_row mk =
    let chain () =
      let h = mk () in
      let n = List.length (History.roots h) in
      List.init n (fun k -> History.prefix_by_roots h (k + 1))
    in
    let (accepts_full, full_wall), gc_full =
      gc_row (fun () ->
          let prefixes = chain () in
          let t0 = now_wall () in
          let accepts =
            List.fold_left
              (fun acc p -> if Compc.is_correct p then acc + 1 else acc)
              0 prefixes
          in
          (accepts, now_wall () -. t0))
    in
    let (accepts_mon, mon_wall, stats), gc_mon =
      gc_row (fun () ->
          let prefixes = chain () in
          let m = Repro_core.Monitor.create () in
          let t0 = now_wall () in
          let accepts =
            List.fold_left
              (fun acc p ->
                match Repro_core.Monitor.append m p with
                | Repro_core.Monitor.Accepted _ -> acc + 1
                | Repro_core.Monitor.Rejected _ -> acc)
              0 prefixes
          in
          (accepts, now_wall () -. t0, Repro_core.Monitor.stats m))
    in
    let fastpath = stats.Repro_core.Monitor.fastpath_hits in
    let delta_hits = stats.Repro_core.Monitor.delta_hits in
    if accepts_full <> accepts_mon then
      Fmt.pr "  %-34s [VERDICT MISMATCH: full=%d monitor=%d]@." name accepts_full
        accepts_mon;
    let nodes = History.n_nodes (mk ()) in
    let speedup = if mon_wall > 0.0 then full_wall /. mon_wall else 0.0 in
    Fmt.pr "  %-34s %8d %10.4f %10.4f %7.1fx %9d %6d@." name nodes full_wall
      mon_wall speedup fastpath delta_hits;
    if headline_row then headline := Some speedup;
    rows :=
      ( name,
        Json.Obj
          [
            ("nodes", Json.Int nodes);
            ("prefixes", Json.Int (List.length (chain ())));
            ("full_wall_s", Json.Float full_wall);
            ("monitor_wall_s", Json.Float mon_wall);
            ("speedup", Json.Float speedup);
            ("fastpath_hits", Json.Int fastpath);
            ("delta_hits", Json.Int delta_hits);
            ("accepted_prefixes", Json.Int accepts_mon);
            ("gc_full", gc_full);
            ("gc_monitor", gc_mon);
          ] )
      :: !rows
  in
  let sparse roots =
    { Gen.default_profile with Gen.ops_min = 2; ops_max = 2; items = 8 * roots }
  in
  (* Streaming logs: the prefixes model an execution growing one root at a
     time, which is the monitor's contract (the simulator emits exactly
     this shape).  Batch interleavings are covered by the last row — the
     monitor falls back to full reductions there and must stay within
     noise of the batch checker. *)
  List.iter
    (fun roots ->
      row
        (Fmt.str "stack levels=3 roots=%d (stream)" roots)
        ~headline_row:(roots = List.fold_left max 0 root_sizes)
        (fun () ->
          Gen.stack ~profile:(sparse roots) ~stream:true (Prng.create ~seed:42)
            ~levels:3 ~roots))
    root_sizes;
  List.iter
    (fun (schedules, roots) ->
      row
        (Fmt.str "general schedules=%d roots=%d (stream)" schedules roots)
        ~headline_row:false
        (fun () ->
          let profile = { Gen.default_profile with Gen.ops_min = 2; ops_max = 2 } in
          Gen.general ~profile ~stream:true (Prng.create ~seed:42) ~schedules
            ~roots))
    (List.filter (fun (_, r) -> r <= roots_max) [ (6, 16); (8, 32) ]);
  (match List.filter (fun r -> r <= roots_max) [ 32 ] with
  | [ roots ] ->
    row
      (Fmt.str "stack levels=3 roots=%d (batch)" roots)
      ~headline_row:false
      (fun () ->
        Gen.stack ~profile:(sparse roots) (Prng.create ~seed:42) ~levels:3 ~roots)
  | _ -> ());
  (* End-to-end: the simulator's Certify protocol with the monitor oracle
     against the legacy full-recheck oracle, same workload and seed.  The
     simulations are verdict-identical (pinned by the test suite), so the
     only difference is the certification cost itself. *)
  let sim_rows =
    List.filter_map
      (fun (w : Workloads.workload) ->
        if w.Workloads.name <> "federated" then None
        else
          Some
            (List.map
               (fun (oracle, full) ->
                 let metrics = Metrics.create () in
                 let params =
                   {
                     Sim.default_params with
                     Sim.protocol = Sim.Certify;
                     clients = 6;
                     txs_per_client = 12;
                     seed = 1;
                     lock_timeout = 10.0;
                     backoff = 3.0;
                     certify_full_recheck = full;
                   }
                 in
                 let t0 = now_wall () in
                 let st =
                   Sim.run ~metrics params w.Workloads.topology ~gen:w.Workloads.gen
                 in
                 let run_wall = now_wall () -. t0 in
                 let certify_wall =
                   match Metrics.summary metrics "sim.certify_wall_s" with
                   | Some s -> s.Metrics.sum
                   | None -> 0.0
                 in
                 Fmt.pr
                   "  compsim certify/%-13s committed=%3d checks=%3.0f certify=%8.4fs run=%8.4fs@."
                   oracle st.Sim.committed
                   (Metrics.counter_value metrics "sim.certify_checks"
                   |> float_of_int)
                   certify_wall run_wall;
                 ( oracle,
                   Json.Obj
                     [
                       ("committed", Json.Int st.Sim.committed);
                       ("certify_wall_s", Json.Float certify_wall);
                       ("run_wall_s", Json.Float run_wall);
                     ] ))
               [ ("monitor", false); ("full-recheck", true) ]))
      (Workloads.all ())
    |> List.concat
  in
  let headline = Option.value ~default:0.0 !headline in
  Fmt.pr "  headline (largest stack): %.1fx@." headline;
  record_json "e12"
    (Json.Obj
       [
         ("speedup", Json.Float headline);
         ("rows", Json.Obj (List.rev !rows));
         ("sim_certify", Json.Obj sim_rows);
       ])

(* ------------------------------------------------------------------ *)
(* E13: ablation of the observed-order interpretation                  *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "e13"
    "Ablation: alternative readings of Def. 10 break the paper's theorems";
  Fmt.pr
    "  The OCR-damaged definitions admit several readings of how pulled-up@.\
     orders meet a schedule's commutativity knowledge (DESIGN.md sec. 4).@.\
     Each variant below recomputes the observed order and re-runs the@.\
     reduction; only the final reading reproduces SCC on stacks (Thm 2)@.\
     and the Figure 3/4 verdicts:@.";
  let variants =
    [
      ("final", Repro_core.Observed.Final);
      ("no-forgetting", Repro_core.Observed.No_forgetting);
      ("eager-forgetting", Repro_core.Observed.Eager_forgetting);
    ]
  in
  let decide variant h =
    let rel = Repro_core.Observed.compute_with variant h in
    Repro_core.Reduction.is_correct (Repro_core.Reduction.reduce ~rel h)
  in
  let fig3 = (F.figure3 ()).F.ht and fig4 = (F.figure4 ()).F.ht in
  let chain = F.input_order_chain () in
  Fmt.pr "  %-18s %10s %12s %8s %8s %8s@." "variant" "agree/600" "over-rejects"
    "fig3" "fig4" "chain";
  List.iter
    (fun (name, variant) ->
      let agree = ref 0 and over_reject = ref 0 and over_accept = ref 0 in
      for i = 0 to 599 do
        let h =
          Gen.stack
            (Prng.create ~seed:(7_000_000 + i))
            ~levels:(2 + (i mod 2))
            ~roots:(2 + (i mod 2))
        in
        let scc = Repro_criteria.Special.scc h in
        let v = decide variant h in
        if v = scc then incr agree
        else if scc && not v then incr over_reject
        else incr over_accept
      done;
      let fig3_v = decide variant fig3
      and fig4_v = decide variant fig4
      and chain_v = decide variant chain in
      let verdict_str v = if v then "accept" else "reject" in
      let breaks = !agree < 600 || fig3_v || not fig4_v || chain_v in
      Fmt.pr "  %-18s %6d %8d(+%d acc) %8s %8s %8s %s@." name !agree !over_reject
        !over_accept (verdict_str fig3_v) (verdict_str fig4_v) (verdict_str chain_v)
        (match name with
        | "final" -> if breaks then "[VIOLATION!]" else "[OK]"
        | _ -> if breaks then "[breaks, as expected]" else "[unexpectedly agrees]"))
    variants;
  Fmt.pr
    "  expected: only the final reading rejects fig3 and the input-order chain@.\
     while accepting fig4@."

(* ------------------------------------------------------------------ *)
(* E14: verdict forensics — explain/shrink cost, accept path untouched  *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "e14" "Verdict forensics: provenance replay, shrinking, evidence cost";
  Fmt.pr
    "  Forensics run only on the --explain path after a rejection; the@.\
     accept path never calls into them.  Per rejected history: the plain@.\
     decision, the provenance replay, the delta-debugging shrink and the@.\
     JSON evidence rendering, all wall-clock:@.";
  (* The simulator rejection compsim --check surfaces: the federated
     workload under open nesting leaks subtransaction orders across
     autonomous front-ends (seed 5 is a known violating run). *)
  let sim_reject =
    let w = Option.get (Workloads.find "federated") in
    let params =
      {
        Sim.default_params with
        Sim.protocol = Sim.Locking { closed = false };
        clients = 6;
        txs_per_client = 8;
        seed = 5;
        lock_timeout = 6.0;
        backoff = 2.0;
      }
    in
    (Sim.run params w.Workloads.topology ~gen:w.Workloads.gen).Sim.history
  in
  let corpus =
    [
      ("figure3", (F.figure3 ()).F.ht);
      ("figure4-conflict", (F.figure4 ~conflicting_top:true ()).F.ht);
      ("input-order-chain", F.input_order_chain ());
      ("sim-federated-open", sim_reject);
    ]
  in
  Fmt.pr "  %-20s %6s %9s %9s %12s %9s %14s@." "history" "nodes" "check-ms"
    "prov-ms" "shrink-ms" "json-ms" "shrunk";
  let rows =
    List.map
      (fun (name, h) ->
        let v, _, check_w = time (fun () -> Compc.check h) in
        assert (not (Compc.is_correct_verdict v));
        let prov, _, prov_w =
          time (fun () ->
              Repro_core.Provenance.build h v.Compc.relations)
        in
        assert (Repro_core.Provenance.consistent prov);
        let shr, _, shrink_w = time (fun () -> Shrink.shrink h) in
        let shr = Option.get shr in
        let ev, _, json_w =
          time (fun () ->
              Repro_obs.Json.to_string
                (Repro_forensics.Evidence.to_json
                   (Repro_forensics.Evidence.build v)))
        in
        ignore ev;
        Fmt.pr "  %-20s %6d %9.3f %9.3f %6.1f(%4d) %9.3f %8d -> %d@." name
          (History.n_nodes h) (check_w *. 1e3) (prov_w *. 1e3)
          (shrink_w *. 1e3) shr.Shrink.probes (json_w *. 1e3)
          (History.n_nodes h)
          (History.n_nodes shr.Shrink.history);
        ( name,
          Json.Obj
            [
              ("nodes", Json.Int (History.n_nodes h));
              ("check_wall_s", Json.Float check_w);
              ("provenance_wall_s", Json.Float prov_w);
              ("provenance_pairs", Json.Int (Repro_core.Provenance.cardinal prov));
              ("shrink_wall_s", Json.Float shrink_w);
              ("shrink_probes", Json.Int shr.Shrink.probes);
              ("shrunk_nodes", Json.Int (History.n_nodes shr.Shrink.history));
              ("json_wall_s", Json.Float json_w);
            ] ))
      corpus
  in
  (* Accept-path control: the same decision entry point over an accepted
     corpus, with the forensics library linked in.  Nothing on this path
     constructs a provenance index, a shrinker or an evidence object, so
     the per-check cost is the figure future PRs compare against the e9
     checker trajectory to confirm zero forensic overhead. *)
  let accepted =
    List.init 40 (fun i ->
        Gen.stack (Prng.create ~seed:(4_000 + i)) ~levels:2 ~roots:4)
  in
  let n_acc = List.length accepted in
  let (), _, accept_w =
    time (fun () -> List.iter (fun h -> ignore (Compc.check h)) accepted)
  in
  Fmt.pr
    "  accept-path control: %d accepted checks in %.3f ms (%.3f ms each); no@.\
     forensic code runs on this path@."
    n_acc (accept_w *. 1e3)
    (accept_w *. 1e3 /. float_of_int n_acc);
  record_json "e14"
    (Json.Obj
       [
         ("reject", Json.Obj rows);
         ( "accept_path",
           Json.Obj
             [
               ("checks", Json.Int n_acc);
               ("total_wall_s", Json.Float accept_w);
               ( "per_check_wall_s",
                 Json.Float (accept_w /. float_of_int n_acc) );
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* E15: engine parity — one session vs split cold invocations          *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "e15" "Certification engine: one session vs split invocations";
  Fmt.pr
    "  The engine unification claim: servicing a verdict and its evidence@.\
     report from one analysis session beats the pre-engine flow of two@.\
     cold CLI runs (check, then explain re-parsing and re-analyzing),@.\
     while the batch accept path pays no measurable session overhead:@.";
  let reps =
    match Sys.getenv_opt "REPRO_E15_REPS" with
    | Some v -> (try max 1 (int_of_string v) with _ -> 25)
    | None -> 25
  in
  let sim_reject =
    let w = Option.get (Workloads.find "federated") in
    let params =
      {
        Sim.default_params with
        Sim.protocol = Sim.Locking { closed = false };
        clients = 6;
        txs_per_client = 8;
        seed = 5;
        lock_timeout = 6.0;
        backoff = 2.0;
      }
    in
    (Sim.run params w.Workloads.topology ~gen:w.Workloads.gen).Sim.history
  in
  let corpus =
    [
      ("figure3", (F.figure3 ()).F.ht);
      ("figure4-conflict", (F.figure4 ~conflicting_top:true ()).F.ht);
      ("input-order-chain", F.input_order_chain ());
      ("sim-federated-open", sim_reject);
    ]
  in
  Fmt.pr "  %-20s %6s %12s %12s %8s@." "history" "nodes" "split-ms"
    "session-ms" "speedup";
  let rows =
    List.map
      (fun (name, h) ->
        let text = Repro_histlang.Syntax.to_string h in
        (* The pre-engine CLI flow: `compcheck FILE` followed by
           `compcheck FILE --explain --format json`.  Each invocation
           parsed and ran the criterion report from scratch, and the
           explain run additionally re-ran the whole pipeline inside
           [Compc.check] to obtain the evidence's certificate — three
           closure+reduction passes end to end. *)
        let (), _, split_w =
          time (fun () ->
              for _ = 1 to reps do
                let h1 = Repro_histlang.Syntax.parse text in
                ignore (Repro_criteria.Classic.accepted_by h1);
                let h2 = Repro_histlang.Syntax.parse text in
                ignore (Repro_criteria.Classic.accepted_by h2);
                ignore
                  (Json.to_string
                     (Repro_forensics.Evidence.to_json
                        (Repro_forensics.Evidence.build (Compc.check h2))))
              done)
        in
        (* The engine flow of the new check subcommand: one parse, one
           session, the criterion report reading the session verdict and
           the evidence assembled from the session's caches. *)
        let (), _, session_w =
          time (fun () ->
              for _ = 1 to reps do
                let h1 = Repro_histlang.Syntax.parse text in
                let s = Repro_core.Engine.of_history h1 in
                ignore
                  (Repro_criteria.Classic.accepted_by
                     ~compc:(Repro_core.Engine.accepted s)
                     h1);
                ignore
                  (Json.to_string
                     (Repro_forensics.Evidence.to_json
                        (Repro_forensics.Evidence.of_session s)))
              done)
        in
        let speedup = split_w /. session_w in
        Fmt.pr "  %-20s %6d %12.3f %12.3f %7.2fx@." name (History.n_nodes h)
          (split_w *. 1e3 /. float_of_int reps)
          (session_w *. 1e3 /. float_of_int reps)
          speedup;
        ( name,
          Json.Obj
            [
              ("nodes", Json.Int (History.n_nodes h));
              ("split_wall_s", Json.Float (split_w /. float_of_int reps));
              ("session_wall_s", Json.Float (session_w /. float_of_int reps));
              ("speedup", Json.Float speedup);
            ] ))
      corpus
  in
  (* Accept-path control: the batch entry point now constructs a session
     per check; against the bare pipeline (closure + reduction, no session,
     no certificate bookkeeping) the overhead must stay in the noise.  Two
     identical corpora so both sides run against cold conflict memos. *)
  let mk () =
    List.init 60 (fun i ->
        Gen.stack (Prng.create ~seed:(7_000 + i)) ~levels:2 ~roots:4)
  in
  let direct_corpus = mk () and engine_corpus = mk () in
  let (), _, direct_w =
    time (fun () ->
        List.iter
          (fun h ->
            ignore
              (Repro_core.Reduction.reduce ~rel:(Repro_core.Observed.compute h) h))
          direct_corpus)
  in
  let (), _, engine_w =
    time (fun () ->
        List.iter (fun h -> ignore (Compc.check h)) engine_corpus)
  in
  let n_acc = List.length direct_corpus in
  let overhead = (engine_w -. direct_w) /. direct_w *. 100.0 in
  Fmt.pr
    "  accept-path control: %d checks, bare pipeline %.3f ms, engine %.3f ms \
     (%+.1f%%)@."
    n_acc (direct_w *. 1e3) (engine_w *. 1e3) overhead;
  record_json "e15"
    (Json.Obj
       [
         ("rows", Json.Obj rows);
         ( "accept_path",
           Json.Obj
             [
               ("checks", Json.Int n_acc);
               ("direct_wall_s", Json.Float direct_w);
               ("engine_wall_s", Json.Float engine_w);
               ("overhead_pct", Json.Float overhead);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* E16: telemetry overhead                                             *)
(* ------------------------------------------------------------------ *)

(* The production-observability claim: always-on telemetry — labeled
   metrics, live engine gauges and the flight recorder — must cost so
   little on the accept path that there is no reason to turn it off, and
   the recorder's memory must be O(capacity), independent of how long the
   monitored stream runs.  Measured by streaming the same prefix chain
   through two engine sessions: one over the null sink (one load + branch
   per instrumentation point) and one over a full metrics registry plus
   recorder.  CI gates the ratio via bench/baselines/e16_ci.json. *)
let e16 () =
  section "e16" "Telemetry overhead: null sink vs labeled metrics + flight recorder";
  Fmt.pr
    "  Streaming monitor accept path, whole prefix chain per run; the@.\
     full sink pays labeled counters, per-path histograms, live gauges@.\
     and one recorder event per append:@.";
  let roots_max =
    match Sys.getenv_opt "REPRO_E16_ROOTS_MAX" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> max_int)
    | None -> max_int
  in
  let reps =
    match Sys.getenv_opt "REPRO_E16_REPS" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 5)
    | None -> 5
  in
  let sizes = List.filter (fun r -> r <= roots_max) [ 16; 32; 64 ] in
  Fmt.pr "  %-12s %6s %12s %12s %10s %8s@." "roots" "nodes" "null-ms"
    "full-ms" "overhead" "ratio";
  let rows =
    List.map
      (fun roots ->
        let h =
          Gen.stack (Prng.create ~seed:(16_000 + roots)) ~levels:2 ~roots
        in
        let prefixes =
          List.init roots (fun i -> History.prefix_by_roots h (i + 1))
        in
        let stream obs =
          let s = Repro_core.Engine.create ~obs () in
          List.iter (fun p -> ignore (Repro_core.Engine.extend s p)) prefixes;
          s
        in
        (* Warm-up: fault in the code paths once so neither side pays
           first-run effects. *)
        ignore (stream Repro_obs.Sink.null);
        let (), _, null_w =
          time (fun () ->
              for _ = 1 to reps do
                ignore (stream Repro_obs.Sink.null)
              done)
        in
        let last = ref Repro_obs.Recorder.null in
        let (), _, full_w =
          time (fun () ->
              for _ = 1 to reps do
                let recorder = Repro_obs.Recorder.create () in
                last := recorder;
                ignore
                  (stream
                     (Repro_obs.Sink.v ~metrics:(Metrics.create ()) ~recorder
                        ()))
              done)
        in
        let ratio = full_w /. null_w in
        let overhead_pct = (ratio -. 1.0) *. 100.0 in
        let recorder_words = Obj.reachable_words (Obj.repr !last) in
        Fmt.pr "  %-12d %6d %12.3f %12.3f %9.1f%% %7.2fx@." roots
          (History.n_nodes h)
          (null_w *. 1e3 /. float_of_int reps)
          (full_w *. 1e3 /. float_of_int reps)
          overhead_pct ratio;
        ( Fmt.str "stack-roots-%d" roots,
          Json.Obj
            [
              ("roots", Json.Int roots);
              ("nodes", Json.Int (History.n_nodes h));
              ("null_wall_s", Json.Float (null_w /. float_of_int reps));
              ("full_wall_s", Json.Float (full_w /. float_of_int reps));
              ("overhead_pct", Json.Float overhead_pct);
              ("overhead_ratio", Json.Float ratio);
              ("recorder_words", Json.Int recorder_words);
            ] ))
      sizes
  in
  (* Recorder memory vs stream length: record far past capacity and show
     the reachable size stays put — the ring really is bounded. *)
  let cap = Repro_obs.Recorder.default_capacity in
  Fmt.pr "  recorder memory (capacity %d):@." cap;
  let mem_rows =
    List.map
      (fun len ->
        let r = Repro_obs.Recorder.create () in
        for i = 1 to len do
          Repro_obs.Recorder.record r ~cat:"bench"
            ~labels:(Repro_obs.Labels.v [ ("i", string_of_int (i mod 97)) ])
            "event"
        done;
        let words = Obj.reachable_words (Obj.repr r) in
        Fmt.pr "    %7d events recorded -> %7d reachable words@." len words;
        (Fmt.str "events-%d" len, Json.Obj [ ("reachable_words", Json.Int words) ]))
      [ cap; 4 * cap; 16 * cap ]
  in
  record_json "e16"
    (Json.Obj
       [ ("rows", Json.Obj rows); ("recorder_memory", Json.Obj mem_rows) ])

(* ------------------------------------------------------------------ *)
(* E17: the incremental order kernel on open-transaction streams       *)
(* ------------------------------------------------------------------ *)

(* The O(delta) append claim.  E12's streams grow one {e root} at a time,
   which the structural delta paths already decide; this experiment streams
   the other shape — operations appended to transactions that are already
   open.  Levels stay stable but every append hangs a subtransaction under
   an old root, so before the order kernel the monitor's only option was a
   full reduction per append: O(history) each, O(n^2) for the stream.  The
   kernel re-checks just the perturbed cluster and feeds the edge delta to
   its incremental topological orders, so the whole stream is O(total
   delta).  Two criteria, both gated in CI:
   - wall clock: the kernel stream must beat per-append
     incremental-closure + full-reduction (the pre-kernel cost of the same
     appends) — the speedup must grow with root count;
   - allocation: minor words per steady-state append must stay flat as the
     root count (hence the history the deltas land in) grows. *)

let e17_prefix ~roots k =
  (* Base (k = 0): [roots] top transactions, each with one subtransaction
     updating its own item.  Append i hangs one more subtransaction under
     root [i mod roots], writing that root's item: the delta is confined
     to the root's own lineage, so it has constant size however many roots
     surround it.  All schedule levels exist from the base prefix, so the
     whole stream is level-stable. *)
  let open History.Builder in
  let b = create () in
  let sp = schedule b ~conflict:Conflict.Same_item "SP" in
  let sa = schedule b ~conflict:Conflict.Rw "SA" in
  let rs = Array.init roots (fun j -> root b ~sched:sp (Label.v (Fmt.str "T%d" j))) in
  let txs = ref [] and ws = ref [] in
  let add j =
    let item = Fmt.str "x%d" j in
    let a = tx b ~parent:rs.(j) ~sched:sa (Label.v ~args:[ item ] "add") in
    let w = leaf b ~parent:a (Label.v ~args:[ item ] "w") in
    txs := a :: !txs;
    ws := w :: !ws
  in
  for j = 0 to roots - 1 do add j done;
  for i = 0 to k - 1 do add (i mod roots) done;
  log b ~sched:sp (List.rev !txs);
  log b ~sched:sa (List.rev !ws);
  seal b

let e17 () =
  section "e17" "O(delta) appends: the order kernel on open-transaction streams";
  Fmt.pr
    "  Each append opens a subtransaction under an existing root (levels@.\
    \  stable, structure not); baseline is the pre-kernel cost of the same@.\
    \  stream: incremental closure + one full reduction per append.@.";
  let roots_max =
    match Sys.getenv_opt "REPRO_E17_ROOTS_MAX" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> max_int)
    | None -> max_int
  in
  let rounds = 4 in
  let sizes = List.filter (fun r -> r <= roots_max) [ 16; 32; 64; 128; 256 ] in
  Fmt.pr "  %-10s %6s %8s %12s %12s %8s %7s %5s %10s@." "roots" "nodes"
    "appends" "monitor-s" "reduce-s" "speedup" "kernel" "full" "mw/append";
  let headline = ref 0.0 in
  let rows =
    List.map
      (fun roots ->
        let appends = rounds * roots in
        let prefix = e17_prefix ~roots in
        (* Kernel stream: per-append wall and minor-word deltas, measured
           around the append alone (prefix assembly is the workload
           generator's cost, not the monitor's). *)
        let metrics = Metrics.create () in
        let m = Repro_core.Monitor.create ~metrics () in
        let mon_wall = ref 0.0 in
        let minor = Array.make (appends + 1) 0.0 in
        let rejected = ref 0 in
        for k = 0 to appends do
          let p = prefix k in
          let w0 = Gc.minor_words () in
          let t0 = now_wall () in
          let v = Repro_core.Monitor.append m p in
          mon_wall := !mon_wall +. (now_wall () -. t0);
          minor.(k) <- Gc.minor_words () -. w0;
          match v with
          | Repro_core.Monitor.Accepted _ -> ()
          | Repro_core.Monitor.Rejected _ -> incr rejected
        done;
        if !rejected > 0 then
          Fmt.pr "  %-10d [UNEXPECTED REJECTS: %d]@." roots !rejected;
        (* Steady state: the last-quarter window averages appends whose
           round index — hence delta size — matches across row sizes. *)
        let q = max 1 (appends / 4) in
        let mw = ref 0.0 in
        for k = appends - q + 1 to appends do
          mw := !mw +. minor.(k)
        done;
        let mw = !mw /. float_of_int q in
        let stats = Repro_core.Monitor.stats m in
        let by_path p =
          Metrics.counter_value metrics
            ~labels:(Repro_obs.Labels.v [ ("path", p) ])
            "monitor.append"
        in
        (* Baseline: same closure deltas, full reduction per append. *)
        let inc = Repro_core.Observed.inc_create () in
        let base_wall = ref 0.0 in
        let prev = ref None in
        let n_old = ref 0 in
        for k = 0 to appends do
          let p = prefix k in
          let t0 = now_wall () in
          let rel =
            match !prev with
            | None -> Repro_core.Observed.compute p
            | Some pr ->
              fst (Repro_core.Observed.extend ~inc ~prev:pr ~n_old:!n_old p)
          in
          ignore (Repro_core.Reduction.reduce ~rel p);
          base_wall := !base_wall +. (now_wall () -. t0);
          prev := Some rel;
          n_old := History.n_nodes p
        done;
        let nodes = History.n_nodes (prefix appends) in
        let speedup = if !mon_wall > 0.0 then !base_wall /. !mon_wall else 0.0 in
        headline := speedup;
        Fmt.pr "  %-10d %6d %8d %12.4f %12.4f %7.1fx %7d %5d %10.0f@." roots
          nodes (appends + 1) !mon_wall !base_wall speedup
          stats.Repro_core.Monitor.kernel_hits (by_path "full") mw;
        ( Fmt.str "open-stream-roots-%d" roots,
          Json.Obj
            [
              ("roots", Json.Int roots);
              ("nodes", Json.Int nodes);
              ("appends", Json.Int (appends + 1));
              ("monitor_wall_s", Json.Float !mon_wall);
              ("full_reduce_wall_s", Json.Float !base_wall);
              ("speedup", Json.Float speedup);
              ("kernel_hits", Json.Int stats.Repro_core.Monitor.kernel_hits);
              ("full_hits", Json.Int (by_path "full"));
              ("minor_words_per_append", Json.Float mw);
            ] ))
      sizes
  in
  Fmt.pr "  headline (largest stream): %.1fx@." !headline;
  record_json "e17"
    (Json.Obj [ ("speedup", Json.Float !headline); ("rows", Json.Obj rows) ])

(* ------------------------------------------------------------------ *)
(* E18: bounded-memory multi-stream serving (compserve)                *)
(* ------------------------------------------------------------------ *)

module Server = Repro_runtime.Server

(* The serving claims: a sharded server sustains many concurrent
   certification streams with per-stream append latency close to the
   single-stream monitor path, and with a truncation window each stream's
   dense resident state stays flat however long the stream grows.  The
   workload is an accept-only open-stream shape (root j's subtransaction
   writes only its own item, so every prefix certifies and the session
   sits in the truncation steady state), streamed through the real
   protocol layer: per-root chunks, parsed and certified by
   {!Repro_runtime.Server} on its worker shards. *)

(* 9 nodes per root (4 operations of 2 nodes under each): one chunk is a
   realistic append with enough certification work to measure, while
   keeping the full experiment cheap enough for CI. *)
let e18_ops_per_root = 4

let e18_history ~roots ~tag =
  let open History.Builder in
  let b = create () in
  let sp = schedule b ~conflict:Conflict.Same_item "SP" in
  let sa = schedule b ~conflict:Conflict.Rw "SA" in
  let txs = ref [] and ws = ref [] in
  for j = 0 to roots - 1 do
    let r = root b ~sched:sp (Label.v (Fmt.str "T%d_%d" tag j)) in
    for o = 0 to e18_ops_per_root - 1 do
      let item = Fmt.str "x%d_%d_%d" tag j o in
      let a = tx b ~parent:r ~sched:sa (Label.v ~args:[ item ] "add") in
      let w = leaf b ~parent:a (Label.v ~args:[ item ] "w") in
      txs := a :: !txs;
      ws := w :: !ws
    done
  done;
  log b ~sched:sp (List.rev !txs);
  log b ~sched:sa (List.rev !ws);
  seal b

let e18_barrier n =
  let mu = Mutex.create () and cv = Condition.create () in
  let left = ref n in
  let hit () =
    Mutex.lock mu;
    decr left;
    if !left = 0 then Condition.signal cv;
    Mutex.unlock mu
  in
  let wait () =
    Mutex.lock mu;
    while !left > 0 do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  in
  (hit, wait)

let e18_float = function
  | Some (Json.Int n) -> float_of_int n
  | Some (Json.Float f) -> f
  | _ -> nan

let e18 () =
  section "e18"
    "Bounded-memory serving: concurrent streams through compserve's engine";
  Fmt.pr
    "  Each stream appends per-root chunks through the server protocol;@.\
    \  window 36 nodes, streams run to 4x past the window.  Gates: dense@.\
    \  resident words flat after saturation, p99 append within 1.5x of@.\
    \  a dedicated single-stream session at equal residency, zero@.\
    \  spurious verdicts.@.";
  let streams_max =
    match Sys.getenv_opt "REPRO_E18_STREAMS_MAX" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> max_int)
    | None -> max_int
  in
  let sizes = List.filter (fun s -> s <= streams_max) [ 1; 8; 64; 512 ] in
  let roots = 16 and window = 36 in
  (* 9 nodes per append: the window saturates after 4 roots and the full
     stream is 4x past it — the regime the flatness gate watches. *)
  let chunks_of h =
    let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
    (preamble, Array.of_list chunks)
  in
  (* Reference verdicts for parity: the plain unwindowed monitor on the
     same prefix chain (identical for every stream up to item renaming). *)
  let parity_ref =
    let h = e18_history ~roots ~tag:0 in
    let m = Repro_core.Monitor.create () in
    Array.init roots (fun k ->
        match
          Repro_core.Monitor.append m (History.prefix_by_roots h (k + 1))
        with
        | Repro_core.Monitor.Accepted _ -> true
        | Repro_core.Monitor.Rejected _ -> false)
  in
  (* Context baseline: the bare monitor path — parse + Monitor.append,
     no server at all — over as many sequential single sessions as the
     largest row has streams, through the same histogram buckets.  Not a
     gate (a one-core box taxes the cross-domain path with scheduler
     tails the inline path never pays); the gated ratio below compares
     server rows against the server's own single-stream row instead. *)
  let baseline_streams = List.fold_left max 8 sizes in
  let baseline_p99 =
    let trial () =
      Gc.compact ();
      let hm = Metrics.create () in
      for rep = 0 to baseline_streams - 1 do
        let preamble, chunks = chunks_of (e18_history ~roots ~tag:rep) in
        let m =
          Repro_core.Monitor.create
            ~recorder:(Repro_obs.Recorder.create ())
            ~window ()
        in
        let buf = Buffer.create 256 in
        Array.iteri
          (fun k c ->
            let body = if k = 0 then preamble ^ c else c in
            let t0 = now_wall () in
            Buffer.add_string buf body;
            let h = Repro_histlang.Syntax.parse (Buffer.contents buf) in
            ignore (Repro_core.Monitor.append m h);
            Metrics.observe hm "base.append_wall_s" (now_wall () -. t0))
          chunks
      done;
      match Metrics.summary hm "base.append_wall_s" with
      | Some s -> s.Metrics.p99
      | None -> nan
    in
    (* Best of three: scheduler preemptions own an unrepeatable share of
       any single trial's tail; the minimum estimates the path's own. *)
    List.fold_left (fun acc _ -> Float.min acc (trial ())) infinity [ 1; 2; 3 ]
  in
  (* Burst pass: all streams' appends for one chunk index submitted at
     once, a barrier per phase — the throughput regime.  Also takes the
     memory checkpoints (between phases, so they never overlap an
     append) and the final truncation/parity tallies. *)
  let burst_pass streams =
    Gc.compact ();
    let srv = Server.create ~window () in
    let stream_data =
      Array.init streams (fun i -> chunks_of (e18_history ~roots ~tag:i))
    in
    let sid i = Fmt.str "s%d" i in
    let hit, wait = e18_barrier streams in
    Array.iteri
      (fun i _ ->
        Server.submit srv
          (Server.Wire.Open { stream = sid i; window = None })
          (fun _ -> hit ()))
      stream_data;
    wait ();
    let bad = Atomic.make 0 in
    let serve_wall = ref 0.0 in
    let mem_means = ref [] in
    for k = 0 to roots - 1 do
      let hit, wait = e18_barrier streams in
      let expect = parity_ref.(k) in
      let t0 = now_wall () in
      Array.iteri
        (fun i (preamble, chunks) ->
          let body = if k = 0 then preamble ^ chunks.(k) else chunks.(k) in
          Server.submit srv
            (Server.Wire.Append { stream = sid i; body; ctx = None })
            (function
              | Server.Wire.Verdict_r { accepted; _ } when accepted = expect
                ->
                hit ()
              | _ ->
                Atomic.incr bad;
                hit ()))
        stream_data;
      wait ();
      serve_wall := !serve_wall +. (now_wall () -. t0);
      (* Checkpoint at the same phase of every truncation cycle (one
         fold per 4 appends), so samples compare like with like; a
         bounded sample is enough — the streams are symmetric. *)
      if (k + 1) mod 4 = 0 then begin
        let sample = min streams 8 in
        let total = ref 0.0 in
        for i = 0 to sample - 1 do
          match Server.request srv (Server.Wire.Explain (sid i)) with
          | Server.Wire.Json_r j ->
            let eng = Json.member "engine" j in
            let mem = Option.bind eng (Json.member "memory") in
            total :=
              !total
              +. e18_float
                   (Option.bind mem (Json.member "resident_estimate_words"))
          | _ -> total := nan
        done;
        mem_means := (!total /. float_of_int sample) :: !mem_means
      end
    done;
    let truncations =
      let acc = ref 0 in
      Array.iteri
        (fun i _ ->
          match Server.request srv (Server.Wire.Explain (sid i)) with
          | Server.Wire.Json_r j ->
            let eng = Json.member "engine" j in
            let ses = Option.bind eng (Json.member "session") in
            acc :=
              !acc
              + int_of_float
                  (e18_float (Option.bind ses (Json.member "truncations")))
          | _ -> ())
        stream_data;
      !acc
    in
    Server.drain srv;
    (!serve_wall, List.rev !mem_means, truncations, Atomic.get bad)
  in
  (* Latency pass: the same streams advanced round-robin with one
     request in flight — the per-append service regime a non-saturated
     client sees — timed client-side per request.  After the row's
     streams are fully fed, the same live server runs a dedicated
     sequence of single-stream sessions, timed identically: the gate's
     denominator, at the row's own residency.  The ratio row/dedicated
     then isolates what interleaving concurrent streams costs per
     append — heap size and host scheduling hit both numerator and
     denominator alike. *)
  let latency_pass streams =
    Gc.compact ();
    let srv = Server.create ~window () in
    let stream_data =
      Array.init streams (fun i -> chunks_of (e18_history ~roots ~tag:i))
    in
    let sid i = Fmt.str "s%d" i in
    let bad = ref 0 in
    Array.iteri
      (fun i _ ->
        ignore
          (Server.request srv (Server.Wire.Open { stream = sid i; window = None })))
      stream_data;
    let hm = Metrics.create () in
    for k = 0 to roots - 1 do
      let expect = parity_ref.(k) in
      Array.iteri
        (fun i (preamble, chunks) ->
          let body = if k = 0 then preamble ^ chunks.(k) else chunks.(k) in
          let t0 = now_wall () in
          let r =
            Server.request srv (Server.Wire.Append { stream = sid i; body; ctx = None })
          in
          Metrics.observe hm "row.append_wall_s" (now_wall () -. t0);
          match r with
          | Server.Wire.Verdict_r { accepted; _ } when accepted = expect -> ()
          | _ -> incr bad)
        stream_data
    done;
    let reps = max 4 (256 / roots) in
    for rep = 0 to reps - 1 do
      let sid = Fmt.str "q%d" rep in
      let preamble, chunks = chunks_of (e18_history ~roots ~tag:rep) in
      ignore
        (Server.request srv (Server.Wire.Open { stream = sid; window = None }));
      Array.iteri
        (fun k c ->
          let body = if k = 0 then preamble ^ c else c in
          let t0 = now_wall () in
          ignore (Server.request srv (Server.Wire.Append { stream = sid; body; ctx = None }));
          Metrics.observe hm "one.append_wall_s" (now_wall () -. t0))
        chunks;
      ignore (Server.request srv (Server.Wire.Close sid))
    done;
    Server.drain srv;
    let p99 name =
      match Metrics.summary hm name with
      | Some s -> s.Metrics.p99
      | None -> nan
    in
    (p99 "row.append_wall_s", p99 "one.append_wall_s", !bad)
  in
  Fmt.pr "  bare monitor path p99 append (context): %.3fms@."
    (baseline_p99 *. 1e3);
  Fmt.pr "  %-10s %8s %10s %12s %9s %9s %9s %7s %7s@." "streams" "appends"
    "wall-s" "appends/s" "p99-ms" "p99/one" "mem-ratio" "truncs" "rejects";
  let rows =
    List.map
      (fun streams ->
        let serve_wall, mem_means, truncations, bad_burst =
          burst_pass streams
        in
        (* Enough latency passes that small rows still estimate their
           tail from a few hundred observations.  The gated ratio is
           paired — computed within one pass, where numerator and
           denominator share a server instance, heap and moment in time —
           and the best pass is kept: cross-pass drift (GC phase, host
           scheduling) cancels instead of landing on one side. *)
        let passes = max 3 (min 16 (256 / (streams * roots))) in
        let p99 = ref infinity
        and one_p99 = ref infinity
        and vs_one = ref infinity
        and bad_lat = ref 0 in
        for _ = 1 to passes do
          let p, o, b = latency_pass streams in
          p99 := Float.min !p99 p;
          one_p99 := Float.min !one_p99 o;
          if o > 0.0 then vs_one := Float.min !vs_one (p /. o);
          bad_lat := !bad_lat + b
        done;
        let p99 = !p99 and one_p99 = !one_p99 in
        let vs_one = if Float.is_finite !vs_one then !vs_one else nan in
        let bad = bad_burst + !bad_lat in
        let mem_ratio =
          match mem_means with
          | [] -> nan
          | m :: ms ->
            let mx = List.fold_left Float.max m ms in
            let mn = List.fold_left Float.min m ms in
            if mn > 0.0 then mx /. mn else nan
        in
        let appends = streams * roots in
        let rate =
          if serve_wall > 0.0 then float_of_int appends /. serve_wall else 0.0
        in
        Fmt.pr "  %-10d %8d %10.4f %12.0f %9.3f %9.2f %9.3f %7d %7d@." streams
          appends serve_wall rate (p99 *. 1e3) vs_one mem_ratio truncations
          bad;
        ( Fmt.str "streams-%d" streams,
          Json.Obj
            [
              ("streams", Json.Int streams);
              ("roots_per_stream", Json.Int roots);
              ("window", Json.Int window);
              ("appends", Json.Int appends);
              ("serve_wall_s", Json.Float serve_wall);
              ("appends_per_s", Json.Float rate);
              ("p99_append_s", Json.Float p99);
              ("single_path_p99_append_s", Json.Float one_p99);
              ("p99_vs_single_stream", Json.Float vs_one);
              ( "resident_words_per_stream",
                Json.List (List.map (fun m -> Json.Float m) mem_means) );
              ("mem_ratio", Json.Float mem_ratio);
              ("truncations", Json.Int truncations);
              ("verdict_mismatches", Json.Int bad);
            ] ))
      sizes
  in
  record_json "e18"
    (Json.Obj
       [
         ("baseline_p99_append_s", Json.Float baseline_p99);
         ("rows", Json.Obj rows);
       ])

(* ------------------------------------------------------------------ *)
(* E19: tracing overhead on the serving path                           *)
(* ------------------------------------------------------------------ *)

module Span = Repro_obs.Span

(* The observability claim: the span layer is free when off (the null
   collector costs one load and branch per instrumentation point) and
   cheap when fully on (head-sampling at rate 1.0 — every request traced:
   decode-less in-process submits still mint queue-wait, engine-append
   and encode spans).  The workload is E18's bounded-memory serving shape
   at one fixed concurrency, driven round-robin with one request in
   flight — the per-append service-latency regime, where a per-request
   overhead is most visible. *)
let e19 () =
  section "e19" "Tracing overhead: request spans on the E18 serving workload";
  Fmt.pr
    "  E18's serving shape (window 36, 16 roots/stream), one request in@.\
    \  flight, null-span server vs every request traced at rate 1.0.@.\
    \  Gates: null within the e19_ci.json wall baseline, traced p99@.\
    \  within 1.25x of null.@.";
  let streams =
    match Sys.getenv_opt "REPRO_E19_STREAMS" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 8)
    | None -> 8
  in
  let roots = 16 and window = 36 in
  let chunks_of h =
    let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
    (preamble, Array.of_list chunks)
  in
  let stream_data =
    Array.init streams (fun i -> chunks_of (e18_history ~roots ~tag:i))
  in
  let sid i = Fmt.str "s%d" i in
  (* One pass: open, feed every stream round-robin timing each append
     client-side, drain.  [traced] adds a span context to every request —
     trace ids minted from a client-side collector, exactly the drive
     client's wiring. *)
  let pass ~traced =
    Gc.compact ();
    let srv =
      if traced then Server.create ~window ~span_rate:1.0 ()
      else Server.create ~window ()
    in
    let client = if traced then Span.create () else Span.null in
    Array.iteri
      (fun i _ ->
        ignore
          (Server.request srv
             (Server.Wire.Open { stream = sid i; window = None })))
      stream_data;
    let hm = Metrics.create () in
    let t_start = now_wall () in
    for k = 0 to roots - 1 do
      Array.iteri
        (fun i (preamble, chunks) ->
          let body = if k = 0 then preamble ^ chunks.(k) else chunks.(k) in
          let ctx =
            if traced then
              Some { Server.Wire.trace = Span.fresh_trace client; parent = 0 }
            else None
          in
          let t0 = now_wall () in
          ignore
            (Server.request srv (Server.Wire.Append { stream = sid i; body; ctx }));
          Metrics.observe hm "e19.append_wall_s" (now_wall () -. t0))
        stream_data
    done;
    let wall = now_wall () -. t_start in
    (* Snapshot after the drain: a request's encode span is recorded
       after its response continuation fires, so quiescence needs the
       workers joined, not just the responses delivered. *)
    Server.drain srv;
    let spans_recorded =
      if traced then Span.length (Server.spans_snapshot srv) else 0
    in
    let p99 =
      match Metrics.summary hm "e19.append_wall_s" with
      | Some s -> s.Metrics.p99
      | None -> nan
    in
    (p99, wall, spans_recorded)
  in
  (* Best of three per config: scheduler preemptions own an unrepeatable
     share of any single pass's tail. *)
  let best ~traced =
    let p99 = ref infinity and wall = ref infinity and spans = ref 0 in
    for _ = 1 to 3 do
      let p, w, s = pass ~traced in
      p99 := Float.min !p99 p;
      wall := Float.min !wall w;
      spans := max !spans s
    done;
    (!p99, !wall, !spans)
  in
  let null_p99, null_wall, _ = best ~traced:false in
  let traced_p99, traced_wall, traced_spans = best ~traced:true in
  let ratio = if null_p99 > 0.0 then traced_p99 /. null_p99 else nan in
  let appends = streams * roots in
  Fmt.pr "  %-8s %8s %10s %9s %9s@." "config" "appends" "wall-s" "p99-ms"
    "spans";
  Fmt.pr "  %-8s %8d %10.4f %9.3f %9d@." "null" appends null_wall
    (null_p99 *. 1e3) 0;
  Fmt.pr "  %-8s %8d %10.4f %9.3f %9d@." "traced" appends traced_wall
    (traced_p99 *. 1e3) traced_spans;
  Fmt.pr "  traced/null p99 ratio: %.3f@." ratio;
  let row ~p99 ~wall ~spans =
    Json.Obj
      [
        ("streams", Json.Int streams);
        ("roots_per_stream", Json.Int roots);
        ("window", Json.Int window);
        ("appends", Json.Int appends);
        ("serve_wall_s", Json.Float wall);
        ("p99_append_s", Json.Float p99);
        ("spans_recorded", Json.Int spans);
      ]
  in
  record_json "e19"
    (Json.Obj
       [
         ("traced_vs_null_p99", Json.Float ratio);
         ( "rows",
           Json.Obj
             [
               ("null", row ~p99:null_p99 ~wall:null_wall ~spans:0);
               ( "traced",
                 row ~p99:traced_p99 ~wall:traced_wall ~spans:traced_spans );
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* E20: semantic acceptance — ADT conflict specs vs page-level rw      *)
(* ------------------------------------------------------------------ *)

(* The semantic-commutativity claims, measured.  At a matched topology —
   same forest, same labels, same intra-transaction and root input
   orders, only the operation-level spec swapped and the logs redrawn
   under it ({!Clone.with_conflicts} composed with {!Gen.populate}) —
   replacing the page-level [rw] spec with the ADT family the operations
   actually belong to (counter updates commute; set operations conflict
   only on a shared element; escrow reservations only on overlapping
   ranges) leaves fewer conflicts for the schedules to serialize, so a
   larger fraction of random executions certifies under Comp-C.  The
   same compiled spec drives {!Repro_runtime.Lock}, so the simulator's
   semantic 2PL admits more concurrency than the page-level reading of
   the identical workload.  The compiled-vs-interpreted parity sweep
   runs inline so the JSON carries the equivalence evidence next to the
   numbers that depend on it. *)

let e20_families =
  [ ("counter", Adt.Counter); ("set", Adt.Set); ("escrow", Adt.Escrow) ]

(* Operation mix per family over a small item pool: mostly commuting
   under the family's algebra, every one of them a writer under [rw]. *)
let e20_leaf rng fam it =
  match fam with
  | Adt.Counter ->
    Label.v ~args:[ it ]
      (match Prng.int rng 4 with 0 | 1 -> "inc" | _ -> "get")
  | Adt.Set ->
    let e = Fmt.str "e%d" (Prng.int rng 6) in
    Label.v ~args:[ it; e ]
      (match Prng.int rng 4 with 0 -> "contains" | 1 -> "remove" | _ -> "add")
  | Adt.Queue | Adt.Escrow | Adt.Custom _ ->
    let lo = Prng.int rng 40 in
    let hi = lo + 1 + Prng.int rng 5 in
    Label.v ~args:[ it; string_of_int lo; string_of_int hi ] "escrow"

(* One store component under semantic 2PL with open nesting; each root
   submits a handful of family operations on a two-item pool.  The same
   generator runs against the ADT spec and against [rw]; only the lock
   modes differ. *)
let e20_sim ~spec ~fam ~seed =
  let topology = { Template.components = [| ("store", spec) |] } in
  let gen rng ~client ~seq =
    ignore client;
    ignore seq;
    let op () =
      let pool = match fam with Adt.Counter -> 6 | _ -> 2 in
      let it = Fmt.str "x%d" (Prng.int rng pool) in
      (it, e20_leaf rng fam it)
    in
    (* Sequential dispatch in item order: locks are acquired in a
       canonical order, so the run is deadlock-free and the protocols
       differ in blocking only — the semantic-vs-page comparison is not
       confounded by timeout-abort churn. *)
    let ops =
      List.sort compare (List.init (2 + Prng.int rng 2) (fun _ -> op ()))
    in
    Template.call ~sequential:true ~component:0 (Label.v "txn")
      (List.map (fun (_, l) -> Template.leaf l) ops)
  in
  let params =
    {
      Sim.default_params with
      Sim.protocol = Sim.Locking { closed = false };
      clients = 8;
      txs_per_client = 16;
      think = 0.0;
      seed;
    }
  in
  let stats = Sim.run params topology ~gen in
  let thr =
    if stats.Sim.makespan > 0.0 then
      float_of_int stats.Sim.committed /. stats.Sim.makespan
    else 0.0
  in
  (thr, stats)

(* Inline parity: the dense matrix probe must agree with the interpreted
   algebra on every family, including argument-sensitive and range rules
   and unknown operation names (the qcheck suite proves the same property;
   this records the evidence in the bench document). *)
let e20_parity cases =
  let rng = Prng.create ~seed:20 in
  let fams =
    [
      Adt.Counter; Adt.Queue; Adt.Set; Adt.Escrow;
      Adt.Custom
        {
          Adt.classes = [ ("m", [ "f"; "g" ]); ("n", [ "h" ]) ];
          rules =
            [ ("m", "m", Adt.Args); ("m", "n", Adt.Item); ("n", "n", Adt.Range) ];
        };
    ]
  in
  let names =
    [
      "inc"; "dec"; "get"; "enq"; "deq"; "add"; "remove"; "contains";
      "escrow"; "put"; "take"; "f"; "g"; "h"; "zzz";
    ]
  in
  let label () =
    let it = Fmt.str "x%d" (Prng.int rng 3) in
    let args =
      match Prng.int rng 4 with
      | 0 -> []
      | 1 -> [ it ]
      | 2 -> [ it; Fmt.str "e%d" (Prng.int rng 3) ]
      | _ ->
        [ it; string_of_int (Prng.int rng 10); string_of_int (Prng.int rng 10) ]
    in
    Label.v ~args (Prng.pick rng names)
  in
  let bad = ref 0 in
  for _ = 1 to cases do
    let f = Prng.pick rng fams in
    let c = Adt.compile f in
    let a = label () and b = label () in
    if Adt.probe c a b <> Adt.eval f a b then incr bad
  done;
  !bad

(* Streaming acceptance horizon: feed the history to the incremental
   monitor one root at a time and count the accepted appends before the
   first rejection.  Whole-history acceptance degenerates to zero well
   below 16 roots (every random batch interleaving eventually embeds a
   cycle), while the horizon keeps discriminating across the whole
   16..256 range: a sparser conflict spec leaves fewer obligations to
   contradict, so the certified prefix runs deeper. *)
(* Each family's operation mix stresses where its algebra is sparser
   than the page-level reading.  [rw] already commutes bumper pairs
   ([inc]/[dec]), so the counter family's edge is its reads — [get] is
   unrecognized by [rw] and falls to the writer default the Validate
   lint warns about — while set and escrow win on element-disjoint and
   range-disjoint updates, so their mixes are write-heavy. *)
let e20_profile = function
  | Adt.Counter -> { Gen.default_profile with Gen.read_ratio = 0.7 }
  | _ -> { Gen.default_profile with Gen.read_ratio = 0.15 }

let e20_horizon h ~roots =
  let m = Repro_core.Monitor.create () in
  let rec go k =
    if k > roots then roots
    else
      match Repro_core.Monitor.append m (History.prefix_by_roots h k) with
      | Repro_core.Monitor.Accepted _ -> go (k + 1)
      | Repro_core.Monitor.Rejected _ -> k - 1
  in
  go 1

let e20 () =
  section "e20" "Semantic acceptance: ADT conflict specs vs page-level rw";
  Fmt.pr
    "  Matched topologies (2-branch joins; only the bottom spec differs,@.\
    \  logs redrawn under each): roots certified by the streaming monitor@.\
    \  before the first rejection (fraction of the stream), then@.\
    \  open-nesting 2PL throughput under the same two specs.@.";
  let roots_max =
    match Sys.getenv_opt "REPRO_E20_ROOTS_MAX" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> max_int)
    | None -> max_int
  in
  let seeds =
    match Sys.getenv_opt "REPRO_E20_SEEDS" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 20)
    | None -> 20
  in
  let sizes = List.filter (fun r -> r <= roots_max) [ 16; 32; 64; 128; 256 ] in
  let parity_cases = 500 in
  let mismatches = e20_parity parity_cases in
  Fmt.pr "  compiled-vs-interpreted parity: %d/%d cases agree@."
    (parity_cases - mismatches) parity_cases;
  Fmt.pr "  %-8s %6s %6s %12s %12s %10s@." "family" "roots" "seeds"
    "adt-horizon" "rw-horizon" "wall-s";
  let rows =
    List.concat_map
      (fun (fname, fam) ->
        List.map
          (fun roots ->
            let t0 = now_wall () in
            let adt_sum = ref 0 and rw_sum = ref 0 in
            for seed = 1 to seeds do
              let rng = Prng.create ~seed:((seed * 8191) + roots) in
              let base =
                Gen.join ~profile:(e20_profile fam) rng ~branches:2 ~roots
                  ~conflict:(Conflict.Adt fam)
              in
              (* Paired draw: phase two runs from the same seed on both
                 variants.  The service level's obligations are identical
                 (its spec is unchanged), so its log comes out the same
                 and the two histories differ exactly where the bottom
                 spec does — without the pairing, the service level's
                 independent redraw swamps the bottom-spec signal. *)
              let log_seed = (seed * 523) + roots in
              let adt_h = Gen.populate (Prng.create ~seed:log_seed) base in
              adt_sum := !adt_sum + e20_horizon adt_h ~roots;
              let to_rw sid =
                match (History.schedule base sid).History.conflict with
                | Conflict.Adt _ -> Some Conflict.Rw
                | _ -> None
              in
              let rw =
                Gen.populate
                  (Prng.create ~seed:log_seed)
                  (Clone.with_conflicts base ~conflicts:to_rw)
              in
              rw_sum := !rw_sum + e20_horizon rw ~roots
            done;
            let wall = now_wall () -. t0 in
            let rate k = float_of_int k /. float_of_int (seeds * roots) in
            Fmt.pr "  %-8s %6d %6d %12.2f %12.2f %10.4f@." fname roots seeds
              (rate !adt_sum) (rate !rw_sum) wall;
            ( Fmt.str "%s-roots-%d" fname roots,
              Json.Obj
                [
                  ("family", Json.String fname);
                  ("roots", Json.Int roots);
                  ("seeds", Json.Int seeds);
                  ("adt_accept_rate", Json.Float (rate !adt_sum));
                  ("rw_accept_rate", Json.Float (rate !rw_sum));
                  ("wall_s", Json.Float wall);
                ] ))
          sizes)
      e20_families
  in
  Fmt.pr "  %-8s %14s %14s %8s@." "family" "adt-commits/t" "rw-commits/t"
    "uplift";
  let sim_rows =
    List.map
      (fun (fname, fam) ->
        let avg spec =
          let reps = 3 in
          let sum = ref 0.0 and aborts = ref 0 in
          for seed = 1 to reps do
            let thr, stats = e20_sim ~spec ~fam ~seed in
            sum := !sum +. thr;
            aborts := !aborts + stats.Sim.aborts
          done;
          (!sum /. float_of_int reps, !aborts)
        in
        let adt_thr, adt_aborts = avg (Conflict.Adt fam) in
        let rw_thr, rw_aborts = avg Conflict.Rw in
        let uplift = if rw_thr > 0.0 then adt_thr /. rw_thr else nan in
        Fmt.pr "  %-8s %14.4f %14.4f %7.2fx@." fname adt_thr rw_thr uplift;
        ( fname,
          Json.Obj
            [
              ("adt_throughput", Json.Float adt_thr);
              ("rw_throughput", Json.Float rw_thr);
              ("uplift", Json.Float uplift);
              ("adt_aborts", Json.Int adt_aborts);
              ("rw_aborts", Json.Int rw_aborts);
            ] ))
      e20_families
  in
  record_json "e20"
    (Json.Obj
       [
         ( "parity",
           Json.Obj
             [
               ("cases", Json.Int parity_cases);
               ("mismatches", Json.Int mismatches);
             ] );
         ("rows", Json.Obj rows);
         ("sim", Json.Obj sim_rows);
       ])

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro" "Bechamel micro-benchmarks of the core algorithms";
  let open Bechamel in
  let open Toolkit in
  let rel200 =
    let rng = Prng.create ~seed:9 in
    let rec build acc n =
      if n = 0 then acc
      else build (Repro_order.Rel.add (Prng.int rng 200) (Prng.int rng 200) acc) (n - 1)
    in
    Repro_order.Rel.filter (fun a b -> a <> b) (build Repro_order.Rel.empty 400)
  in
  let stack3 = Gen.stack (Prng.create ~seed:10) ~levels:3 ~roots:6 in
  let general6 = Gen.general (Prng.create ~seed:10) ~schedules:6 ~roots:6 in
  let flat40 = Gen.flat (Prng.create ~seed:10) ~roots:40 in
  let text = Repro_histlang.Syntax.to_string stack3 in
  let tests =
    Test.make_grouped ~name:"repro"
      [
        Test.make ~name:"rel.closure-200"
          (Staged.stage (fun () -> Repro_order.Rel.transitive_closure rel200));
        Test.make ~name:"observed.stack3"
          (Staged.stage (fun () -> Repro_core.Observed.compute stack3));
        Test.make ~name:"compc.stack3" (Staged.stage (fun () -> Compc.check stack3));
        Test.make ~name:"compc.general6" (Staged.stage (fun () -> Compc.check general6));
        Test.make ~name:"compc.flat40" (Staged.stage (fun () -> Compc.check flat40));
        Test.make ~name:"histlang.parse"
          (Staged.stage (fun () -> Repro_histlang.Syntax.parse text));
        Test.make ~name:"validate.stack3" (Staged.stage (fun () -> Validate.check stack3));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let json_rows = ref [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ t ] ->
        Fmt.pr "  %-28s %12.0f ns/run@." name t;
        json_rows := (name, Json.Float t) :: !json_rows
      | _ -> Fmt.pr "  %-28s (no estimate)@." name)
    (List.sort compare rows);
  record_json "micro_ns_per_run" (Json.Obj (List.rev !json_rows))

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("perf", perf);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown experiment %S (known: %a)@." name
          Fmt.(list ~sep:comma string)
          (List.map fst all))
    requested;
  write_bench_json ()
