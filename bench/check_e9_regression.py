#!/usr/bin/env python3
"""Fail when an E9 checker row regresses against the committed CI baseline.

Usage: check_e9_regression.py BASELINE.json BENCH_core.json

The baseline (bench/baselines/e9_ci.json) stores wall-clock seconds per E9
row measured right after the dense-kernel change.  A row fails when its new
wall time exceeds RATIO x the baseline AND the absolute growth exceeds
FLOOR seconds — the floor keeps sub-hundredth-second rows, which sit at the
single-shot measurement noise level, from flapping the build.  Rows present
on only one side (e.g. a reduced REPRO_E9_ROOTS_MAX run) are skipped.
"""

import json
import sys

RATIO = 2.0
FLOOR = 0.02  # seconds of absolute growth below which noise wins


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)["rows"]
    with open(sys.argv[2]) as f:
        current = json.load(f)["checker"]

    compared = 0
    failed = []
    for name, base_row in sorted(baseline.items()):
        row = current.get(name)
        if row is None:
            continue
        old_s = float(base_row["wall_s"])
        new_s = float(row["wall_s"])
        compared += 1
        regressed = new_s > RATIO * old_s and new_s - old_s > FLOOR
        mark = "FAIL" if regressed else "ok"
        print(f"  {name:<34} base {old_s:9.4f}s  now {new_s:9.4f}s  {mark}")
        if regressed:
            failed.append(name)

    if compared == 0:
        print("error: no E9 rows in common with the baseline", file=sys.stderr)
        return 2
    if failed:
        print(
            f"error: {len(failed)} E9 row(s) regressed more than "
            f"{RATIO}x (+{FLOOR}s floor): {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: {compared} row(s) within {RATIO}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
