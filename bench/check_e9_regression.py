#!/usr/bin/env python3
"""Fail when a benchmark row regresses against a committed CI baseline.

Usage: check_e9_regression.py BASELINE.json BENCH_core.json [SECTION [METRIC]]

The baseline (e.g. bench/baselines/e9_ci.json) stores wall-clock seconds
per row.  SECTION is a dotted path into BENCH_core.json naming the object
that holds the current rows (default "checker", the E9 section; E12 uses
"e12.rows").  METRIC is the per-row field to compare (default "wall_s";
E12 uses "monitor_wall_s").  Both can also be embedded in the baseline
file as top-level "section" / "metric" keys, so CI invocations stay
one-liners per experiment.

A row fails when its new wall time exceeds RATIO x the baseline AND the
absolute growth exceeds FLOOR seconds — the floor keeps
sub-hundredth-second rows, which sit at the single-shot measurement noise
level, from flapping the build.  Rows present on only one side (e.g. a
reduced REPRO_E9_ROOTS_MAX / REPRO_E12_ROOTS_MAX run) are skipped.
"""

import json
import sys

RATIO = 2.0
FLOOR = 0.02  # seconds of absolute growth below which noise wins


def lookup(doc, path):
    for key in path.split("."):
        doc = doc[key]
    return doc


def main() -> int:
    if len(sys.argv) < 3 or len(sys.argv) > 5:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline_doc = json.load(f)
    section = sys.argv[3] if len(sys.argv) > 3 else baseline_doc.get("section", "checker")
    metric = sys.argv[4] if len(sys.argv) > 4 else baseline_doc.get("metric", "wall_s")
    baseline = baseline_doc["rows"]
    with open(sys.argv[2]) as f:
        try:
            current = lookup(json.load(f), section)
        except KeyError:
            print(f"error: section {section!r} not in {sys.argv[2]}", file=sys.stderr)
            return 2

    compared = 0
    failed = []
    for name, base_row in sorted(baseline.items()):
        row = current.get(name)
        if row is None:
            continue
        old_s = float(base_row[metric])
        new_s = float(row[metric])
        compared += 1
        regressed = new_s > RATIO * old_s and new_s - old_s > FLOOR
        mark = "FAIL" if regressed else "ok"
        print(f"  {name:<38} base {old_s:9.4f}s  now {new_s:9.4f}s  {mark}")
        if regressed:
            failed.append(name)

    if compared == 0:
        print(f"error: no {section} rows in common with the baseline", file=sys.stderr)
        return 2
    if failed:
        print(
            f"error: {len(failed)} {section} row(s) regressed more than "
            f"{RATIO}x (+{FLOOR}s floor) on {metric}: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: {compared} row(s) within {RATIO}x of baseline ({section}.{metric})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
