(* compserve: a long-running multi-stream certification daemon, plus the
   client that drives it from history files.

   The daemon half is deliberately thin: one select loop owns the Unix
   socket and the per-connection read buffers, and every decoded request
   is handed to {!Repro_runtime.Server}, whose sharded worker domains do
   the certifying and write the response back through the connection's
   write lock.  Responses to one stream therefore come back in request
   order (stream->shard affinity is FIFO); responses to different streams
   multiplexed on one connection may interleave, which is why every
   verdict line carries its stream id.  SIGTERM/SIGINT drain gracefully:
   stop accepting, let the shards finish their queues, flush, exit 0.

   The client half ([--connect]) turns each FILE into a per-root chunk
   stream ({!Repro_runtime.Server.Chunks}), opens one connection and one
   stream per file, and pipelines appends across all files phase by
   phase — so a single invocation exercises genuinely concurrent
   streams — printing one verdict line per certified root in
   [compcheck --monitor]'s format.  Exit 1 iff some stream rejected. *)

module Server = Repro_runtime.Server
module Wire = Repro_runtime.Server.Wire
module Span = Repro_obs.Span
module Trace = Repro_obs.Trace
module Clock = Repro_obs.Clock
module Json = Repro_obs.Json

(* ------------------------------------------------------------------ *)
(* Daemon                                                              *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  wmu : Mutex.t;  (* serializes worker-domain response writes *)
  mutable alive : bool;  (* guarded by wmu; false once the fd is closed *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Response sink for one connection, callable from any shard domain. *)
let respond c resp =
  Mutex.lock c.wmu;
  (if c.alive then
     try write_all c.fd (Wire.encode_response resp)
     with Unix.Unix_error _ -> c.alive <- false);
  Mutex.unlock c.wmu

let close_conn conns c =
  Mutex.lock c.wmu;
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock c.wmu;
  Hashtbl.remove conns c.fd

(* Drain one connection's input buffer of complete frames.  [spans] is
   the transport loop's collector (tag 0): a traced append gets a
   [serve.decode] root span here covering the frame's time in the input
   buffer, and its wire context is rewritten so everything downstream —
   queue wait, engine, encode — parents under that root. *)
let pump_requests ~spans server c =
  let rec go () =
    let buf = Buffer.contents c.inbuf in
    let t0 = if Span.enabled spans then Clock.now_wall () else 0.0 in
    match Wire.decode_request buf ~pos:0 with
    | Wire.Need_more -> ()
    | Wire.Malformed (msg, skip) ->
      respond c (Wire.Err msg);
      let rest = String.sub buf skip (String.length buf - skip) in
      Buffer.clear c.inbuf;
      Buffer.add_string c.inbuf rest;
      go ()
    | Wire.Got (req, consumed) ->
      let rest = String.sub buf consumed (String.length buf - consumed) in
      Buffer.clear c.inbuf;
      Buffer.add_string c.inbuf rest;
      let req =
        match req with
        | Wire.Append { stream; body; ctx = Some ctx }
          when Span.sampled spans ctx.Wire.trace ->
          let did =
            Span.emit spans ~parent:ctx.Wire.parent ~cat:"serve"
              ~labels:(Repro_obs.Labels.v [ ("stream", stream) ])
              ~trace:ctx.Wire.trace ~t0 ~t1:(Clock.now_wall ()) "serve.decode"
          in
          Wire.Append
            { stream; body; ctx = Some { ctx with Wire.parent = did } }
        | req -> req
      in
      Server.submit server req (respond c);
      go ()
  in
  go ()

let serve path shards window span_rate slow_ms trace_out spans_out =
  let span_rate =
    (* Asking for a trace or span dump implies tracing at full rate
       unless a rate was given explicitly. *)
    match (span_rate, trace_out, spans_out) with
    | Some r, _, _ -> Some r
    | None, None, None -> None
    | None, _, _ -> Some 1.0
  in
  let slow_s = Option.map (fun ms -> ms /. 1e3) slow_ms in
  let server = Server.create ?shards ?window ?span_rate ?slow_s () in
  let spans =
    match span_rate with
    | Some rate -> Span.create ~rate ()
    | None -> Span.null
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  let stop = ref false in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (* A worker writing to a client that vanished must not kill the
     daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Fmt.epr "compserve: listening on %s (%d shards%a)@." path
    (Server.shard_count server)
    Fmt.(option (any ", window " ++ int))
    window;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let chunk = Bytes.create 65536 in
  while not !stop do
    let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = listen_fd then begin
            match Unix.accept listen_fd with
            | exception Unix.Unix_error _ -> ()
            | cfd, _ ->
              Hashtbl.replace conns cfd
                {
                  fd = cfd;
                  inbuf = Buffer.create 4096;
                  wmu = Mutex.create ();
                  alive = true;
                }
          end
          else
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some c -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | exception Unix.Unix_error _ -> close_conn conns c
              | 0 -> close_conn conns c
              | n ->
                Buffer.add_subbytes c.inbuf chunk 0 n;
                pump_requests ~spans server c))
        readable
  done;
  (* Graceful drain: finish every queued request (responses still flow
     through live connections), then tear the transport down. *)
  Fmt.epr "compserve: draining...@.";
  Server.drain server;
  Hashtbl.iter (fun _ c -> close_conn conns c) (Hashtbl.copy conns);
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* Post-drain the shards are joined, so combining their collectors with
     the transport's (shard-index order, transport first) is quiescent
     and deterministic. *)
  if Span.enabled spans then begin
    Span.drain ~into:spans (Server.spans_snapshot server);
    (match trace_out with
    | None -> ()
    | Some file ->
      let tr = Trace.create () in
      Trace.set_process_name tr ~pid:0 "compserve";
      Span.export spans tr;
      Cli_common.write_json ~tool:"compserve" file (Trace.to_json tr);
      Fmt.epr "compserve: wrote Chrome trace (%d spans) to %s@."
        (Span.length spans) file);
    match spans_out with
    | None -> ()
    | Some file ->
      Cli_common.write_json ~tool:"compserve" file (Span.to_json spans);
      Fmt.epr "compserve: wrote spans/1 (%d spans) to %s@."
        (Span.length spans) file
  end;
  Fmt.epr "compserve: drained@.";
  0

(* ------------------------------------------------------------------ *)
(* Drive client                                                        *)
(* ------------------------------------------------------------------ *)

type client_stream = {
  file : string;
  sid : string;
  cfd : Unix.file_descr;
  rbuf : Buffer.t;
  preamble : string;
  chunks : string array;
  mutable done_ : bool;  (* rejected or exhausted: no more appends *)
  mutable rejected : bool;
  mutable act : Span.active;  (* in-flight client.append span, if traced *)
}

let read_response cs =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Wire.decode_response (Buffer.contents cs.rbuf) ~pos:0 with
    | Wire.Got (resp, consumed) ->
      let rest = Buffer.contents cs.rbuf in
      let rest = String.sub rest consumed (String.length rest - consumed) in
      Buffer.clear cs.rbuf;
      Buffer.add_string cs.rbuf rest;
      resp
    | Wire.Malformed (msg, _) -> failwith ("malformed response: " ^ msg)
    | Wire.Need_more -> (
      match Unix.read cs.cfd chunk 0 (Bytes.length chunk) with
      | 0 -> failwith "server closed the connection"
      | n ->
        Buffer.add_subbytes cs.rbuf chunk 0 n;
        go ())
  in
  go ()

let drive path window files trace_out =
  (* The client's span collector: one [client.append] span per request,
     whose trace/span ids ride the wire so the daemon's decode,
     queue-wait, engine and encode spans all join this root's tree. *)
  let spans =
    match trace_out with Some _ -> Span.create () | None -> Span.null
  in
  let streams =
    List.mapi
      (fun i file ->
        match Cli_common.read_history file with
        | Error msg ->
          Fmt.epr "compserve: %s: %s@." file msg;
          exit 2
        | Ok h ->
          let { Server.Chunks.preamble; chunks } = Server.Chunks.of_history h in
          let cfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect cfd (Unix.ADDR_UNIX path);
          {
            file;
            sid = Fmt.str "f%d" i;
            cfd;
            rbuf = Buffer.create 4096;
            preamble;
            chunks = Array.of_list chunks;
            done_ = false;
            rejected = false;
            act = Span.none;
          })
      files
  in
  let fail cs what resp =
    Fmt.epr "compserve: %s: %s: %s@." cs.file what
      (match resp with
      | Wire.Err e -> e
      | _ -> "unexpected response");
    exit 2
  in
  (* Pipelined phases: one request in flight per connection, all
     connections concurrently — the server certifies the streams in
     parallel across its shards. *)
  List.iter
    (fun cs ->
      write_all cs.cfd
        (Wire.encode_request (Wire.Open { stream = cs.sid; window })))
    streams;
  List.iter
    (fun cs ->
      match read_response cs with
      | Wire.Ok -> ()
      | r -> fail cs "open" r)
    streams;
  let max_chunks =
    List.fold_left (fun m cs -> max m (Array.length cs.chunks)) 0 streams
  in
  for k = 0 to max_chunks - 1 do
    let active =
      List.filter (fun cs -> (not cs.done_) && k < Array.length cs.chunks) streams
    in
    List.iter
      (fun cs ->
        let body =
          if k = 0 then cs.preamble ^ cs.chunks.(k) else cs.chunks.(k)
        in
        let ctx =
          let trace = Span.fresh_trace spans in
          if not (Span.sampled spans trace) then None
          else begin
            cs.act <-
              Span.start spans ~cat:"client"
                ~labels:
                  (Repro_obs.Labels.v
                     [ ("file", cs.file); ("chunk", string_of_int (k + 1)) ])
                ~trace ~ts:(Clock.now_wall ()) "client.append";
            Some { Wire.trace; parent = Span.id cs.act }
          end
        in
        write_all cs.cfd
          (Wire.encode_request (Wire.Append { stream = cs.sid; body; ctx })))
      active;
    List.iter
      (fun cs ->
        let resp = read_response cs in
        Span.finish spans cs.act ~ts:(Clock.now_wall ());
        cs.act <- Span.none;
        match resp with
        | Wire.Verdict_r { accepted; detail; _ } ->
          Fmt.pr "%s: prefix %d/%d: %s@." cs.file (k + 1)
            (Array.length cs.chunks)
            (if accepted then "accept" else "reject");
          if not accepted then begin
            (* Match [compcheck --monitor]: stop at the first violating
               prefix. *)
            cs.done_ <- true;
            cs.rejected <- true;
            ignore detail
          end
        | r -> fail cs "append" r)
      active
  done;
  List.iter
    (fun cs ->
      write_all cs.cfd (Wire.encode_request (Wire.Close cs.sid)))
    streams;
  List.iter
    (fun cs ->
      (match read_response cs with
      | Wire.Ok -> ()
      | r -> fail cs "close" r);
      Unix.close cs.cfd)
    streams;
  List.iter
    (fun cs ->
      Fmt.pr "%s: monitor: %s@." cs.file
        (if cs.rejected then "reject" else "accept"))
    streams;
  (match trace_out with
  | None -> ()
  | Some file ->
    let tr = Trace.create () in
    Trace.set_process_name tr ~pid:0 "compserve-drive";
    Span.export spans tr;
    Cli_common.write_json ~tool:"compserve" file (Trace.to_json tr);
    Fmt.epr "compserve: wrote Chrome trace (%d spans) to %s@."
      (Span.length spans) file);
  if List.exists (fun cs -> cs.rejected) streams then 1 else 0

(* ------------------------------------------------------------------ *)
(* Admin client                                                        *)
(* ------------------------------------------------------------------ *)

(* One-shot admin request against a live daemon; prints the payload. *)
let admin path cmd =
  let req =
    match String.split_on_char ' ' (String.trim cmd) with
    | [ "stats" ] -> Wire.Stats
    | [ "metrics" ] -> Wire.Metrics
    | [ "health" ] -> Wire.Health
    | [ "slow" ] -> Wire.Slow None
    | [ "slow"; ms ] -> (
      match float_of_string_opt ms with
      | Some v when v >= 0.0 -> Wire.Slow (Some (v /. 1e3))
      | _ ->
        Fmt.epr "compserve: --admin: bad slow threshold %S@." ms;
        exit 2)
    | _ ->
      Fmt.epr
        "compserve: --admin: unknown command %S (expected stats, metrics, \
         health, or slow [MS])@."
        cmd;
      exit 2
  in
  let cfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect cfd (Unix.ADDR_UNIX path);
  write_all cfd (Wire.encode_request req);
  let rbuf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec read_one () =
    match Wire.decode_response (Buffer.contents rbuf) ~pos:0 with
    | Wire.Got (resp, _) -> resp
    | Wire.Malformed (msg, _) -> failwith ("malformed response: " ^ msg)
    | Wire.Need_more -> (
      match Unix.read cfd chunk 0 (Bytes.length chunk) with
      | 0 -> failwith "server closed the connection"
      | n ->
        Buffer.add_subbytes rbuf chunk 0 n;
        read_one ())
  in
  let resp = read_one () in
  Unix.close cfd;
  match resp with
  | Wire.Json_r j ->
    Fmt.pr "%s@." (Json.to_string j);
    0
  | Wire.Text_r payload ->
    print_string payload;
    if payload = "" || payload.[String.length payload - 1] <> '\n' then
      print_newline ();
    0
  | Wire.Ok ->
    Fmt.pr "ok@.";
    0
  | Wire.Verdict_r _ ->
    Fmt.epr "compserve: --admin: unexpected verdict response@.";
    2
  | Wire.Err e ->
    Fmt.epr "compserve: --admin: %s@." e;
    2

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let run socket connect shards window span_rate slow_ms trace_out spans_out
    admin_cmd files =
  (match span_rate with
  | Some r when not (r >= 0.0 && r <= 1.0) ->
    Fmt.epr "compserve: --trace-rate must be within [0,1]@.";
    exit 2
  | _ -> ());
  (match slow_ms with
  | Some ms when not (ms >= 0.0) ->
    Fmt.epr "compserve: --slow-ms must be non-negative@.";
    exit 2
  | _ -> ());
  match (socket, connect) with
  | Some path, None ->
    if files <> [] then begin
      Fmt.epr "compserve: --socket mode takes no FILE arguments@.";
      2
    end
    else if admin_cmd <> None then begin
      Fmt.epr "compserve: --admin needs --connect@.";
      2
    end
    else serve path shards window span_rate slow_ms trace_out spans_out
  | None, Some path -> (
    match admin_cmd with
    | Some cmd ->
      if files <> [] then begin
        Fmt.epr "compserve: --admin mode takes no FILE arguments@.";
        2
      end
      else admin path cmd
    | None ->
      if files = [] then begin
        Fmt.epr "compserve: --connect mode needs FILE arguments to stream@.";
        2
      end
      else drive path window files trace_out)
  | _ ->
    Fmt.epr "compserve: exactly one of --socket (daemon) or --connect (client) is required@.";
    2

let socket_arg =
  let doc = "Run the daemon: listen for the line protocol on the Unix socket $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let connect_arg =
  let doc =
    "Run the client: connect to a daemon on $(docv) and stream each FILE as \
     a per-root chunk sequence on its own concurrent stream, printing one \
     verdict line per certified root."
  in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"PATH" ~doc)

let shards_arg =
  let doc =
    "Daemon mode: worker domains to shard the streams across (default: the \
     machine's recommended domain count, capped at 8).  A stream is pinned \
     to one shard for its whole life, so its appends never migrate."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)

let window_arg =
  let doc =
    "Truncation window, in nodes.  Daemon mode: the default for every \
     stream; client mode: requested per opened stream.  Once a stream's \
     active suffix reaches $(docv) nodes after an accepted append, the \
     certified prefix is folded into a compact summary and its dense state \
     released, so per-stream resident memory is bounded by the window, \
     not the stream length."
  in
  Arg.(value & opt (some int) None & info [ "window" ] ~docv:"NODES" ~doc)

let span_rate_arg =
  let doc =
    "Head-sampling rate for request tracing, in [0,1].  The keep/drop \
     decision is a deterministic hash of each request's trace id, so every \
     collector the request crosses agrees without coordination.  Daemon \
     mode only; implies tracing even without $(b,--trace)/$(b,--spans)."
  in
  Arg.(value & opt (some float) None & info [ "trace-rate" ] ~docv:"RATE" ~doc)

let slow_ms_arg =
  let doc =
    "Daemon mode: appends whose engine wall time reaches $(docv) \
     milliseconds land in the slow-request log served by the $(b,slow) \
     admin command (default 100)."
  in
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON of every sampled request's span tree \
     to $(docv) — at drain in daemon mode (SIGTERM), at exit in client \
     mode.  Load it in Perfetto: one async track per request, frame decode \
     / queue wait / engine append / verdict encode as nested intervals."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let spans_arg =
  let doc =
    "Daemon mode: write the compact spans/1 JSON document of every sampled \
     span to $(docv) at drain."
  in
  Arg.(value & opt (some string) None & info [ "spans" ] ~docv:"FILE" ~doc)

let admin_arg =
  let doc =
    "With $(b,--connect): send one admin request — $(b,stats), \
     $(b,metrics) (Prometheus text exposition), $(b,health), or $(b,slow) \
     [$(i,MS)] (slow-request log, optionally at or above a threshold) — \
     print the payload and exit."
  in
  Arg.(value & opt (some string) None & info [ "admin" ] ~docv:"CMD" ~doc)

let files_arg =
  let doc = "History files to stream (client mode)." in
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)

let cmd =
  let doc = "multi-stream certification server (Comp-C over a Unix socket)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "A long-running certification service: many independent composite \
         executions stream in over one Unix socket, each is certified \
         incrementally (Comp-C, per appended chunk) by a monitored engine \
         session pinned to a worker domain, and with $(b,--window) every \
         session runs in bounded memory however long its stream grows.  \
         The protocol is a length-prefixed line protocol (version 2): \
         open/append/verdict/explain/close per stream id; stats, metrics \
         (Prometheus), health and slow for the whole server; appends may \
         carry a trace context so one request yields one connected span \
         tree across client, transport, shard queue and engine.  SIGTERM \
         drains gracefully.";
      `S Manpage.s_examples;
      `Pre
        "  compserve --socket /tmp/comp.sock --shards 4 --window 512 \\\n\
        \      --trace /tmp/serve.trace.json --slow-ms 50 &\n\
        \  compserve --connect /tmp/comp.sock histories/*.ct\n\
        \  compserve --connect /tmp/comp.sock --admin metrics\n\
        \  compserve --connect /tmp/comp.sock --admin 'slow 25'\n\
        \  kill -TERM %1";
    ]
  in
  Cmd.v
    (Cmd.info "compserve" ~version:Cli_common.version ~doc ~man)
    Term.(
      const run $ socket_arg $ connect_arg $ shards_arg $ window_arg
      $ span_rate_arg $ slow_ms_arg $ trace_arg $ spans_arg $ admin_arg
      $ files_arg)

