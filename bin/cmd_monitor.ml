(* The monitor subcommand: streaming certification of one history's
   root-prefix chain.  The k-prefix is certified by one incremental
   {!Repro_core.Engine.extend} against the (k-1)-prefix's warm state, and
   the loop stops at the first violating prefix index — the monitoring
   story of the checker: "which commit broke the execution", not just "is
   the final history correct".  The evidence report for the stopping
   prefix is assembled from the same session: the incrementally maintained
   relations stay warm and only the certificate is (lazily) derived over
   them.

   Production observability: the session always carries a flight recorder
   (bounded ring, so always-on costs O(capacity) memory), and a rejection's
   evidence report embeds its retained tail plus the engine-stats/1
   introspection snapshot — the operational prehistory and the engine's
   state at the moment of the violation.  With a live [progress] the
   stderr line tracks prefixes done, append rate and the p99 append
   latency read from the session's own registry. *)
open Repro_model
module Json = Repro_obs.Json
module Metrics = Repro_obs.Metrics
module Span = Repro_obs.Span

(* One monitor append = one trace: mint a fresh trace id and set it as
   the collector's ambient context around the engine call, so the engine
   emits its [engine.append] span (path label, node/cluster counts) as
   the trace's root.  No-op on a disabled collector. *)
let with_append_trace spans f =
  if Span.enabled spans then begin
    let trace = Span.fresh_trace spans in
    Span.set_ctx spans ~trace ~parent:0;
    let r = f () in
    Span.clear_ctx spans;
    r
  end
  else f ()

(* Refresh the memory gauge from the cheap introspection path — counters
   plus the memo/arena byte accounting, no [Obj.reachable_words] walk, so
   polling stays O(1) however long the stream gets.  The full walk still
   runs once where it matters: embedded (deep) in a rejection's evidence
   report.  The cheap [engine.*] state gauges are refreshed by the engine
   itself on every advance. *)
let snapshot_gauges metrics s =
  if Metrics.enabled metrics then
    match Repro_core.Engine.introspect ~deep:false s with
    | Json.Obj fields -> (
      match List.assoc_opt "memory" fields with
      | Some (Json.Obj mem) -> (
        match List.assoc_opt "resident_estimate_words" mem with
        | Some (Json.Int w) ->
          Metrics.set metrics "engine.resident_estimate_words" (float_of_int w)
        | _ -> ())
      | _ -> ())
    | _ -> ()

let introspect_every = 32

(* Streaming mode (path "-"): certify appends as they arrive on stdin
   instead of slurping the whole description first, so live streams can
   be piped into the monitor (and into the compserve smoke tests).  A
   flush point is the arrival of each new root declaration — chunked
   streams are root-major, so each flush certifies exactly one more
   root.  A prefix that does not yet parse, is not yet model-valid, or
   adds no nodes simply defers to the next flush point; a printed
   history whose order lines all trail the node declarations therefore
   certifies once, at end of stream — the historical slurp behaviour. *)
let run_stream ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr)
    ?(obs = Repro_obs.Sink.null) ?(progress = Cli_common.Progress.null)
    ?window ~brief explain format shrink skip_validation () =
  let explain = explain || shrink || format <> `Text in
  let hpf = if format = `Text then ppf else eppf in
  let metrics = obs.Repro_obs.Sink.metrics in
  let recorder =
    if Repro_obs.Recorder.enabled obs.Repro_obs.Sink.recorder then
      obs.Repro_obs.Sink.recorder
    else Repro_obs.Recorder.create ()
  in
  let spans = obs.Repro_obs.Sink.spans in
  let s =
    Repro_core.Engine.create
      ~obs:(Repro_obs.Sink.v ~metrics ~recorder ~spans ())
      ?window ()
  in
  let text = Buffer.create 4096 in
  let nodes = ref 0 in
  let appends = ref 0 in
  let t0 = Repro_obs.Clock.now_wall () in
  let show_progress () =
    if Cli_common.Progress.enabled progress then begin
      let dt = Repro_obs.Clock.now_wall () -. t0 in
      let rate = if dt > 0.0 then float_of_int !appends /. dt else 0.0 in
      let p99 =
        match Metrics.percentile metrics "monitor.append_wall_s" 0.99 with
        | Some v -> Fmt.str "  p99 append %.2fms" (v *. 1e3)
        | None -> ""
      in
      Cli_common.Progress.update progress
        (Fmt.str "monitor -: append %d  %.0f appends/s%s" !appends rate p99)
    end
  in
  let reject_evidence f h =
    snapshot_gauges metrics s;
    Cli_common.Progress.finish progress;
    let rel = Repro_core.Engine.relations s in
    if brief then Fmt.pf ppf "-: monitor: reject at append %d@." !appends
    else begin
      Fmt.pf hpf "append %d: reject@." !appends;
      Fmt.pf hpf "first violating append: %d; %a@." !appends
        (Repro_core.Reduction.pp_failure ?rel h)
        f
    end;
    if explain then begin
      let extra =
        [
          ( "prefix",
            Json.Obj [ ("index", Json.Int !appends); ("of", Json.Int !appends) ]
          );
          ("flight_recorder", Repro_obs.Recorder.to_json recorder);
          ("engine", Repro_core.Engine.introspect s);
        ]
      in
      Cmd_explain.report ~extra ppf format shrink s
    end;
    1
  in
  (* One certification attempt over the accumulated text.  [`Deferred]
     folds three mid-stream states — unparseable yet, model-invalid yet,
     no new nodes — that all mean "wait for more input". *)
  let try_append () =
    match Repro_histlang.Syntax.parse (Buffer.contents text) with
    | exception Repro_histlang.Syntax.Parse_error _ -> `Deferred
    | exception Invalid_argument _ -> `Deferred
    | h ->
      if History.n_nodes h <= !nodes then `Deferred
      else if
        (not skip_validation) && Repro_model.Validate.check h <> []
      then `Deferred
      else begin
        nodes := History.n_nodes h;
        incr appends;
        match with_append_trace spans (fun () -> Repro_core.Engine.extend s h) with
        | Repro_core.Engine.Accepted _ ->
          if !appends mod introspect_every = 0 then snapshot_gauges metrics s;
          show_progress ();
          if not brief then Fmt.pf hpf "append %d: accept@." !appends;
          `Ok
        | Repro_core.Engine.Rejected f -> `Reject (reject_evidence f h)
      end
  in
  let is_root_line line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do
      incr i
    done;
    !i + 4 <= n
    && String.sub line !i 4 = "root"
    && (!i + 4 = n || line.[!i + 4] = ' ' || line.[!i + 4] = '\t')
  in
  let roots_seen = ref 0 in
  let rec pump () =
    match input_line stdin with
    | exception End_of_file -> finish ()
    | line ->
      let flush_now = is_root_line line && !roots_seen > 0 in
      let code = if flush_now then try_append () else `Deferred in
      if is_root_line line then incr roots_seen;
      Buffer.add_string text line;
      Buffer.add_char text '\n';
      (match code with `Reject c -> c | `Ok | `Deferred -> pump ())
  and finish () =
    (* End of stream: the full description must parse and validate (the
       same gate the file path applies up front), then the final prefix
       is certified. *)
    match Repro_histlang.Syntax.parse (Buffer.contents text) with
    | exception Repro_histlang.Syntax.Parse_error e ->
      Cli_common.Progress.finish progress;
      let msg = Fmt.str "parse error: %a" Repro_histlang.Syntax.pp_error e in
      if brief then Fmt.pf ppf "-: error: %s@." msg
      else Fmt.pf eppf "compcheck: %s@." msg;
      2
    | exception Invalid_argument msg ->
      Cli_common.Progress.finish progress;
      if brief then Fmt.pf ppf "-: error: invalid history: %s@." msg
      else Fmt.pf eppf "compcheck: invalid history: %s@." msg;
      2
    | h ->
      let validation = Repro_model.Validate.check h in
      if validation <> [] && not skip_validation then begin
        Cli_common.Progress.finish progress;
        if brief then
          Fmt.pf ppf "-: invalid: %d model violation%s@." (List.length validation)
            (if List.length validation = 1 then "" else "s")
        else begin
          Fmt.pf eppf "history violates the composite-system model (Defs. 3-4):@.";
          List.iter
            (fun e -> Fmt.pf eppf "  %a@." (Repro_model.Validate.pp_error h) e)
            validation
        end;
        2
      end
      else begin
        match (if History.n_nodes h > !nodes then try_append () else `Ok) with
        | `Reject c -> c
        | `Ok | `Deferred ->
          snapshot_gauges metrics s;
          Cli_common.Progress.finish progress;
          let fast =
            (Repro_core.Engine.stats s).Repro_core.Engine.fastpath_hits
          in
          if brief then
            Fmt.pf ppf "-: monitor: accept (%d append%s)@." !appends
              (if !appends = 1 then "" else "s")
          else
            Fmt.pf hpf
              "monitor: accept - %d stream append%s Comp-C (%d reductions \
               skipped on the fast path)@."
              !appends
              (if !appends = 1 then "" else "s")
              fast;
          if explain then begin
            if Repro_core.Engine.history s = None then
              ignore (Repro_core.Engine.extend s h);
            Cmd_explain.report ppf format shrink s
          end;
          0
      end
  in
  pump ()

let run ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr)
    ?(obs = Repro_obs.Sink.null) ?(progress = Cli_common.Progress.null)
    ?window ~brief explain format shrink skip_validation path =
  if path = "-" then
    run_stream ~ppf ~eppf ~obs ~progress ?window ~brief explain format shrink
      skip_validation ()
  else
  let explain = explain || shrink || format <> `Text in
  let hpf = if format = `Text then ppf else eppf in
  Cli_common.with_history ~ppf ~eppf ~brief ~skip_validation path @@ fun h ->
  let metrics = obs.Repro_obs.Sink.metrics in
  let recorder =
    if Repro_obs.Recorder.enabled obs.Repro_obs.Sink.recorder then
      obs.Repro_obs.Sink.recorder
    else Repro_obs.Recorder.create ()
  in
  let n = List.length (History.roots h) in
  let spans = obs.Repro_obs.Sink.spans in
  let s =
    Repro_core.Engine.create
      ~obs:(Repro_obs.Sink.v ~metrics ~recorder ~spans ())
      ?window ()
  in
  let t0 = Repro_obs.Clock.now_wall () in
  let show_progress k =
    if Cli_common.Progress.enabled progress then begin
      let dt = Repro_obs.Clock.now_wall () -. t0 in
      let rate = if dt > 0.0 then float_of_int k /. dt else 0.0 in
      let p99 =
        match Metrics.percentile metrics "monitor.append_wall_s" 0.99 with
        | Some v -> Fmt.str "  p99 append %.2fms" (v *. 1e3)
        | None -> ""
      in
      Cli_common.Progress.update progress
        (Fmt.str "monitor %s: prefix %d/%d  %.0f prefixes/s%s" path k n rate
           p99)
    end
  in
  let rec go k =
    if k > n then begin
      snapshot_gauges metrics s;
      Cli_common.Progress.finish progress;
      let fast = (Repro_core.Engine.stats s).Repro_core.Engine.fastpath_hits in
      if brief then
        Fmt.pf ppf "%s: monitor: accept (%d prefix%s)@." path n
          (if n = 1 then "" else "es")
      else
        Fmt.pf hpf
          "monitor: accept - all %d prefixes Comp-C (%d reductions skipped \
           on the fast path)@."
          n fast;
      if explain then begin
        (* A rootless history never entered the session; analyze it now so
           the report has a frame to read. *)
        if Repro_core.Engine.history s = None then
          ignore (Repro_core.Engine.extend s h);
        Cmd_explain.report ppf format shrink s
      end;
      0
    end
    else begin
      let p = History.prefix_by_roots h k in
      match with_append_trace spans (fun () -> Repro_core.Engine.extend s p) with
      | Repro_core.Engine.Accepted _ ->
        if k mod introspect_every = 0 then snapshot_gauges metrics s;
        show_progress k;
        if not brief then Fmt.pf hpf "prefix %d/%d: accept@." k n;
        go (k + 1)
      | Repro_core.Engine.Rejected f ->
        snapshot_gauges metrics s;
        Cli_common.Progress.finish progress;
        let rel = Repro_core.Engine.relations s in
        if brief then
          Fmt.pf ppf "%s: monitor: reject at prefix %d/%d@." path k n
        else begin
          Fmt.pf hpf "prefix %d/%d: reject@." k n;
          Fmt.pf hpf "first violating prefix: %d; %a@." k
            (Repro_core.Reduction.pp_failure ?rel p)
            f
        end;
        if explain then begin
          (* The violation's operational context rides along with the
             forensic evidence: where in the stream it happened, the
             flight-recorder tail leading up to it, and the engine's
             state snapshot at the moment of rejection. *)
          let extra =
            [
              ( "prefix",
                Json.Obj [ ("index", Json.Int k); ("of", Json.Int n) ] );
              ("flight_recorder", Repro_obs.Recorder.to_json recorder);
              ("engine", Repro_core.Engine.introspect s);
            ]
          in
          Cmd_explain.report ~extra ppf format shrink s
        end;
        1
    end
  in
  go 1
