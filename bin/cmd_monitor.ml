(* The monitor subcommand: streaming certification of one history's
   root-prefix chain.  The k-prefix is certified by one incremental
   {!Repro_core.Engine.extend} against the (k-1)-prefix's warm state, and
   the loop stops at the first violating prefix index — the monitoring
   story of the checker: "which commit broke the execution", not just "is
   the final history correct".  The evidence report for the stopping
   prefix is assembled from the same session: the incrementally maintained
   relations stay warm and only the certificate is (lazily) derived over
   them. *)
open Repro_model

let run ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr) ~brief explain format shrink
    skip_validation path =
  let explain = explain || shrink || format <> `Text in
  let hpf = if format = `Text then ppf else eppf in
  Cli_common.with_history ~ppf ~eppf ~brief ~skip_validation path @@ fun h ->
  let n = List.length (History.roots h) in
  let s = Repro_core.Engine.create () in
  let rec go k =
    if k > n then begin
      let fast = (Repro_core.Engine.stats s).Repro_core.Engine.fastpath_hits in
      if brief then
        Fmt.pf ppf "%s: monitor: accept (%d prefix%s)@." path n
          (if n = 1 then "" else "es")
      else
        Fmt.pf hpf
          "monitor: accept - all %d prefixes Comp-C (%d reductions skipped \
           on the fast path)@."
          n fast;
      if explain then begin
        (* A rootless history never entered the session; analyze it now so
           the report has a frame to read. *)
        if Repro_core.Engine.history s = None then
          ignore (Repro_core.Engine.extend s h);
        Cmd_explain.report ppf format shrink s
      end;
      0
    end
    else begin
      let p = History.prefix_by_roots h k in
      match Repro_core.Engine.extend s p with
      | Repro_core.Engine.Accepted _ ->
        if not brief then Fmt.pf hpf "prefix %d/%d: accept@." k n;
        go (k + 1)
      | Repro_core.Engine.Rejected f ->
        let rel = Repro_core.Engine.relations s in
        if brief then
          Fmt.pf ppf "%s: monitor: reject at prefix %d/%d@." path k n
        else begin
          Fmt.pf hpf "prefix %d/%d: reject@." k n;
          Fmt.pf hpf "first violating prefix: %d; %a@." k
            (Repro_core.Reduction.pp_failure ?rel p)
            f
        end;
        if explain then begin
          let extra =
            [
              ( "prefix",
                Repro_obs.Json.Obj
                  [
                    ("index", Repro_obs.Json.Int k);
                    ("of", Repro_obs.Json.Int n);
                  ] );
            ]
          in
          Cmd_explain.report ~extra ppf format shrink s
        end;
        1
    end
  in
  go 1
