(* The monitor subcommand: streaming certification of one history's
   root-prefix chain.  The k-prefix is certified by one incremental
   {!Repro_core.Engine.extend} against the (k-1)-prefix's warm state, and
   the loop stops at the first violating prefix index — the monitoring
   story of the checker: "which commit broke the execution", not just "is
   the final history correct".  The evidence report for the stopping
   prefix is assembled from the same session: the incrementally maintained
   relations stay warm and only the certificate is (lazily) derived over
   them.

   Production observability: the session always carries a flight recorder
   (bounded ring, so always-on costs O(capacity) memory), and a rejection's
   evidence report embeds its retained tail plus the engine-stats/1
   introspection snapshot — the operational prehistory and the engine's
   state at the moment of the violation.  With a live [progress] the
   stderr line tracks prefixes done, append rate and the p99 append
   latency read from the session's own registry. *)
open Repro_model
module Json = Repro_obs.Json
module Metrics = Repro_obs.Metrics

(* Refresh the expensive introspection-derived gauges (reachable heap
   words) from a full [Engine.introspect] walk — polled periodically, not
   per append; the cheap [engine.*] gauges are refreshed by the engine
   itself on every advance. *)
let snapshot_gauges metrics s =
  if Metrics.enabled metrics then
    match Repro_core.Engine.introspect s with
    | Json.Obj fields -> (
      match List.assoc_opt "memory" fields with
      | Some (Json.Obj mem) -> (
        match List.assoc_opt "reachable_words" mem with
        | Some (Json.Int w) ->
          Metrics.set metrics "engine.reachable_words" (float_of_int w)
        | _ -> ())
      | _ -> ())
    | _ -> ()

let introspect_every = 32

let run ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr)
    ?(obs = Repro_obs.Sink.null) ?(progress = Cli_common.Progress.null) ~brief
    explain format shrink skip_validation path =
  let explain = explain || shrink || format <> `Text in
  let hpf = if format = `Text then ppf else eppf in
  Cli_common.with_history ~ppf ~eppf ~brief ~skip_validation path @@ fun h ->
  let metrics = obs.Repro_obs.Sink.metrics in
  let recorder =
    if Repro_obs.Recorder.enabled obs.Repro_obs.Sink.recorder then
      obs.Repro_obs.Sink.recorder
    else Repro_obs.Recorder.create ()
  in
  let n = List.length (History.roots h) in
  let s =
    Repro_core.Engine.create ~obs:(Repro_obs.Sink.v ~metrics ~recorder ()) ()
  in
  let t0 = Repro_obs.Clock.now_wall () in
  let show_progress k =
    if Cli_common.Progress.enabled progress then begin
      let dt = Repro_obs.Clock.now_wall () -. t0 in
      let rate = if dt > 0.0 then float_of_int k /. dt else 0.0 in
      let p99 =
        match Metrics.percentile metrics "monitor.append_wall_s" 0.99 with
        | Some v -> Fmt.str "  p99 append %.2fms" (v *. 1e3)
        | None -> ""
      in
      Cli_common.Progress.update progress
        (Fmt.str "monitor %s: prefix %d/%d  %.0f prefixes/s%s" path k n rate
           p99)
    end
  in
  let rec go k =
    if k > n then begin
      snapshot_gauges metrics s;
      Cli_common.Progress.finish progress;
      let fast = (Repro_core.Engine.stats s).Repro_core.Engine.fastpath_hits in
      if brief then
        Fmt.pf ppf "%s: monitor: accept (%d prefix%s)@." path n
          (if n = 1 then "" else "es")
      else
        Fmt.pf hpf
          "monitor: accept - all %d prefixes Comp-C (%d reductions skipped \
           on the fast path)@."
          n fast;
      if explain then begin
        (* A rootless history never entered the session; analyze it now so
           the report has a frame to read. *)
        if Repro_core.Engine.history s = None then
          ignore (Repro_core.Engine.extend s h);
        Cmd_explain.report ppf format shrink s
      end;
      0
    end
    else begin
      let p = History.prefix_by_roots h k in
      match Repro_core.Engine.extend s p with
      | Repro_core.Engine.Accepted _ ->
        if k mod introspect_every = 0 then snapshot_gauges metrics s;
        show_progress k;
        if not brief then Fmt.pf hpf "prefix %d/%d: accept@." k n;
        go (k + 1)
      | Repro_core.Engine.Rejected f ->
        snapshot_gauges metrics s;
        Cli_common.Progress.finish progress;
        let rel = Repro_core.Engine.relations s in
        if brief then
          Fmt.pf ppf "%s: monitor: reject at prefix %d/%d@." path k n
        else begin
          Fmt.pf hpf "prefix %d/%d: reject@." k n;
          Fmt.pf hpf "first violating prefix: %d; %a@." k
            (Repro_core.Reduction.pp_failure ?rel p)
            f
        end;
        if explain then begin
          (* The violation's operational context rides along with the
             forensic evidence: where in the stream it happened, the
             flight-recorder tail leading up to it, and the engine's
             state snapshot at the moment of rejection. *)
          let extra =
            [
              ( "prefix",
                Json.Obj [ ("index", Json.Int k); ("of", Json.Int n) ] );
              ("flight_recorder", Repro_obs.Recorder.to_json recorder);
              ("engine", Repro_core.Engine.introspect s);
            ]
          in
          Cmd_explain.report ~extra ppf format shrink s
        end;
        1
    end
  in
  go 1
