(* compsim: run the composite-system runtime on a standard workload under a
   chosen concurrency-control protocol, report performance statistics, and
   optionally check or dump the emitted history. *)
open Cmdliner
open Repro_runtime

let protocol_of_string = function
  | "serial" -> Ok Sim.Serial
  | "closed" -> Ok (Sim.Locking { closed = true })
  | "open" -> Ok (Sim.Locking { closed = false })
  | "certify" -> Ok Sim.Certify
  | other -> Error other

let write_json path json = Cli_common.write_json ~tool:"compsim" path json

let run workload protocol_name clients txs seed check dump evidence_out
    trace_out metrics_out metrics_format flight_out =
  match (Workloads.find workload, protocol_of_string protocol_name) with
  | None, _ ->
    Fmt.epr "compsim: unknown workload %S (available: %a)@." workload
      Fmt.(list ~sep:comma string)
      (List.map (fun w -> w.Workloads.name) (Workloads.all ()));
    2
  | _, Error other ->
    Fmt.epr "compsim: unknown protocol %S (serial|closed|open|certify)@." other;
    2
  | Some w, Ok protocol ->
    let params =
      {
        Sim.default_params with
        Sim.protocol;
        clients;
        txs_per_client = txs;
        seed;
        lock_timeout = 6.0;
        backoff = 2.0;
      }
    in
    let trace =
      if trace_out = None then Repro_obs.Trace.null else Repro_obs.Trace.create ()
    in
    let metrics =
      if metrics_out = None then Repro_obs.Metrics.null
      else Repro_obs.Metrics.create ()
    in
    let recorder =
      if flight_out = None then Repro_obs.Recorder.null
      else Repro_obs.Recorder.create ()
    in
    let stats =
      Sim.run ~trace ~metrics ~recorder params w.Workloads.topology
        ~gen:w.Workloads.gen
    in
    Fmt.pr "workload=%s protocol=%s clients=%d txs/client=%d seed=%d@." workload protocol_name
      clients txs seed;
    Fmt.pr
      "committed=%d aborts=%d given-up=%d lock-waits=%d makespan=%.2f mean-latency=%.2f throughput=%.3f@."
      stats.Sim.committed stats.Sim.aborts stats.Sim.given_up stats.Sim.lock_waits
      stats.Sim.makespan stats.Sim.mean_latency
      (if stats.Sim.makespan > 0.0 then
         float_of_int stats.Sim.committed /. stats.Sim.makespan
       else 0.0);
    (match trace_out with
    | Some path ->
      write_json path (Repro_obs.Trace.to_json trace);
      Fmt.pr "trace written to %s (%d events; open in Perfetto / chrome://tracing)@."
        path (Repro_obs.Trace.length trace)
    | None -> ());
    (match metrics_out with
    | Some path ->
      Cli_common.write_metrics ~tool:"compsim" ~format:metrics_format path
        metrics;
      Fmt.pr "metrics snapshot written to %s@." path
    | None -> ());
    (match flight_out with
    | Some path ->
      write_json path (Repro_obs.Recorder.to_json recorder);
      Fmt.pr "flight recorder written to %s (%d of %d events retained)@." path
        (Repro_obs.Recorder.length recorder)
        (Repro_obs.Recorder.total recorder)
    | None -> ());
    (match dump with
    | Some path ->
      let oc = open_out path in
      output_string oc (Repro_histlang.Syntax.to_string stats.Sim.history);
      close_out oc;
      Fmt.pr "history written to %s@." path
    | None -> ());
    if check then begin
      let errs = Repro_model.Validate.check stats.Sim.history in
      List.iter
        (fun e -> Fmt.pr "VALIDATION: %a@." (Repro_model.Validate.pp_error stats.Sim.history) e)
        errs;
      let session = Repro_core.Engine.of_history stats.Sim.history in
      let correct = Repro_core.Engine.accepted session in
      Fmt.pr "model-valid=%b comp-c=%b@." (errs = []) correct;
      (match evidence_out with
      | Some path when errs = [] && not correct ->
        (* The forensic dump of the rejection: witness cycle with per-edge
           observed-order provenance and a shrunken reproducer, assembled
           from the session that decided the verdict. *)
        let ev = Repro_forensics.Evidence.of_session ~shrink:true session in
        write_json path (Repro_forensics.Evidence.to_json ev);
        Fmt.pr "evidence written to %s@." path
      | Some _ ->
        Fmt.pr "evidence skipped (history %s)@."
          (if errs <> [] then "violates the model" else "accepted")
      | None -> ());
      if errs <> [] || not correct then 1 else 0
    end
    else 0

let workload_arg =
  let doc = "Workload: banking, layered, or federated." in
  Arg.(value & opt string "banking" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let protocol_arg =
  let doc =
    "Concurrency control: $(b,serial) (one transaction at a time per \
     component), $(b,closed) (semantic 2PL, locks retained to root commit), \
     $(b,open) (semantic 2PL, locks released at subtransaction commit), or \
     $(b,certify) (lock-free, Comp-C-validated at commit)."
  in
  Arg.(value & opt string "closed" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let clients_arg = Arg.(value & opt int 6 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client sessions.")

let txs_arg = Arg.(value & opt int 8 & info [ "txs" ] ~docv:"N" ~doc:"Transactions per client.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let check_arg =
  let doc = "Validate the emitted history and decide Comp-C (exit 1 when incorrect)." in
  Arg.(value & flag & info [ "check" ] ~doc)

let dump_arg =
  let doc = "Write the emitted history to $(docv) (history description language)." in
  Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)

let evidence_arg =
  let doc =
    "With $(b,--check), on a Comp-C rejection write the evidence/1 JSON \
     report (witness cycle, per-edge observed-order provenance, shrunken \
     reproducing history) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "evidence" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record every scheduler event (dispatches, lock waits and grants, \
     aborts, backoffs, retries, commits, certification checks) and write a \
     Chrome trace-event JSON file to $(docv) — load it in Perfetto or \
     chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a metrics snapshot (counters, gauges, latency/lock-time \
     histograms with p50/p90/p99) to $(docv); see $(b,--metrics-format)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let flight_arg =
  let doc =
    "Write the scheduler's flight-recorder tail to $(docv): the last \
     commits, retries, aborts, give-ups and certify rejections, each \
     labeled with client/seq/attempt and stamped with the simulated clock."
  in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "simulate composite transactions over a component topology" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Discrete-event execution of composite transactions over autonomous \
         transactional components, with semantic locking under open or closed \
         nesting.  The emitted history can be fed back to the Comp-C checker: \
         try $(b,compsim -w federated -p open --check) to watch open nesting \
         across autonomous front-ends violate composite correctness.";
    ]
  in
  Cmd.v
    (Cmd.info "compsim" ~version:Cli_common.version ~doc ~man)
    Term.(
      const run $ workload_arg $ protocol_arg $ clients_arg $ txs_arg $ seed_arg
      $ check_arg $ dump_arg $ evidence_arg $ trace_arg $ metrics_arg
      $ Cli_common.metrics_format_arg $ flight_arg)

let () = exit (Cmd.eval' cmd)
