(* compserve: entry point.  The daemon, the drive client and the command
   line all live in {!Cmd_serve}. *)
let () = exit (Cmdliner.Cmd.eval' Cmd_serve.cmd)
