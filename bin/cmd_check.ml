(* The check subcommand: one file's complete batch run.  A single
   {!Repro_core.Engine} session is constructed per history and serves
   every consumer of the analysis — the criterion report (the Comp-C
   column reads the session verdict), the --dot renderings (the session's
   observed order), the --explain evidence report (the session's caches)
   and the --stats reduction profile (the session's telemetry sink) — so
   the closure and the conflict memo are computed exactly once whatever
   combination of flags is given.

   [brief] is batch mode: the verdict is a single [path: ...] line
   (configuration summary suppressed) so a many-file run reads as a table.
   All output goes through [ppf]/[eppf] so batch mode can buffer it per
   file and print blocks in argument order whatever the domain-pool
   interleaving was. *)
open Repro_model

(* --stats: the per-level reduction profile, printed from the events and
   metrics the session's own analysis recorded — not a re-run. *)
let print_stats ppf trace metrics =
  let module Trace = Repro_obs.Trace in
  let module Metrics = Repro_obs.Metrics in
  let module Json = Repro_obs.Json in
  let arg_int e k =
    match List.assoc_opt k e.Trace.args with Some (Json.Int i) -> Some i | _ -> None
  in
  let arg_str e k =
    match List.assoc_opt k e.Trace.args with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let gauge name =
    match Metrics.gauge_value metrics name with
    | Some v -> int_of_float v
    | None -> 0
  in
  Fmt.pf ppf "--- Comp-C reduction profile ---@.";
  (match Metrics.summary metrics "compc.observed_wall_s" with
  | Some s ->
    Fmt.pf ppf
      "observed order: %d base pairs -> %d pairs after closure, %d rounds, %.3f ms@."
      (gauge "compc.obs_base_pairs") (gauge "compc.obs_pairs")
      (gauge "compc.obs_rounds") (s.Metrics.sum *. 1e3)
  | None -> ());
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.name with
      | "front_init" ->
        Fmt.pf ppf "level-0 front: %d members@."
          (Option.value ~default:0 (arg_int e "members"))
      | "reduction_step" ->
        let level = Option.value ~default:0 (arg_int e "level") in
        let prev = Option.value ~default:0 (arg_int e "prev_front") in
        let outcome = Option.value ~default:"?" (arg_str e "outcome") in
        Fmt.pf ppf "step %d: %d -> %s members, %s clusters, %.3f ms [%s]@." level
          prev
          (match arg_int e "front" with Some n -> string_of_int n | None -> "-")
          (match arg_int e "clusters" with Some n -> string_of_int n | None -> "-")
          (e.Trace.dur /. 1e3) outcome
      | "failure" ->
        Fmt.pf ppf "failure: %s@." (Option.value ~default:"?" (arg_str e "kind"))
      | _ -> ())
    (Trace.events trace);
  match Metrics.summary metrics "compc.check_wall_s" with
  | Some s ->
    Fmt.pf ppf "total: %.3f ms, verdict %s@." (s.Metrics.sum *. 1e3)
      (if Metrics.counter_value metrics "compc.accept" > 0 then "accept"
       else "reject")
  | None -> ()

(* --stats enrichment: what the session is holding after the analysis —
   closure/memo sizing, reachable heap, allocation — as the engine-stats/1
   JSON document (one line, greppable and diffable). *)
let print_introspection ppf session =
  Fmt.pf ppf "--- engine state (engine-stats/1) ---@.%s@."
    (Repro_obs.Json.to_string (Repro_core.Engine.introspect session))

(* --stats: conflict-spec lints.  A valid history can still feed its spec
   operation names the spec does not recognize, silently landing on a
   pessimistic or commuting default; off the certification path, so only
   computed when stats were asked for. *)
let print_lint ppf h =
  match Validate.lint h with
  | [] -> ()
  | ws ->
    Fmt.pf ppf "--- conflict-spec lint ---@.";
    List.iter (fun w -> Fmt.pf ppf "warning: %a@." Validate.pp_warning w) ws

let run ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr) ?(obs = Repro_obs.Sink.null)
    ~brief criterion explain format shrink stats skip_validation dot path =
  (* A forensic request is an explain request: --shrink and the machine
     formats only make sense on the evidence report. *)
  let explain = explain || shrink || format <> `Text in
  (* With a machine format the human verdict lines move to stderr so
     stdout is exactly one JSON document / DOT graph, pipeable as is. *)
  let hpf = if format = `Text then ppf else eppf in
  Cli_common.with_history ~ppf ~eppf ~brief ~skip_validation path @@ fun h ->
  let trace =
    if stats then Repro_obs.Trace.create () else Repro_obs.Trace.null
  in
  (* The caller's registry/recorder (per-item private ones in batch mode)
     when enabled; else a local registry exactly when --stats must read
     one back. *)
  let metrics =
    if Repro_obs.Metrics.enabled obs.Repro_obs.Sink.metrics then
      obs.Repro_obs.Sink.metrics
    else if stats then Repro_obs.Metrics.create ()
    else Repro_obs.Metrics.null
  in
  let recorder = obs.Repro_obs.Sink.recorder in
  let session =
    Repro_core.Engine.of_history
      ~obs:(Repro_obs.Sink.v ~trace ~metrics ~recorder ())
      h
  in
  (match dot with
  | Some prefix ->
    let rel = Option.get (Repro_core.Engine.relations session) in
    let write name text =
      Cli_common.write_file (prefix ^ name) text;
      Fmt.pf hpf "wrote %s%s@." prefix name
    in
    write "-forest.dot"
      (Repro_histlang.Dot.forest ~obs:rel.Repro_core.Observed.obs h);
    write "-invocations.dot" (Repro_histlang.Dot.invocation_graph h)
  | None -> ());
  let report =
    Repro_criteria.Classic.accepted_by
      ~compc:(Repro_core.Engine.accepted session)
      h
  in
  let shape = Repro_criteria.Shapes.classify h in
  if not brief then
    Fmt.pf hpf
      "configuration: %a, order %d, %d schedules, %d transactions, %d leaves@."
      Repro_criteria.Shapes.pp shape (History.order h)
      (History.n_schedules h)
      (List.length (History.roots h) + List.length (History.internal_nodes h))
      (List.length (History.leaves h));
  let criterion =
    (* case-insensitive convenience: comp-c, scc, ... all work *)
    let lc = String.lowercase_ascii criterion in
    match
      List.find_opt (fun (n, _) -> String.lowercase_ascii n = lc) report
    with
    | Some (n, _) -> n
    | None -> criterion
  in
  let verdict v = if v then "accept" else "reject" in
  match criterion with
  | "all" | "ALL" | "All" ->
    if brief then
      Fmt.pf ppf "%s: %a@." path
        Fmt.(
          list ~sep:(any "  ") (fun ppf (n, v) ->
              Fmt.pf ppf "%s=%s" n (verdict v)))
        report
    else
      List.iter
        (fun (name, v) -> Fmt.pf hpf "%-8s %s@." name (verdict v))
        report;
    if explain then Cmd_explain.report ppf format shrink session;
    if stats then begin
      print_stats hpf trace metrics;
      print_introspection hpf session;
      print_lint hpf h
    end;
    if List.assoc "Comp-C" report then 0 else 1
  | name -> (
    match List.assoc_opt name report with
    | None ->
      Fmt.pf eppf
        "compcheck: criterion %S does not apply to this configuration \
         (available: %a)@."
        name
        Fmt.(list ~sep:comma string)
        (List.map fst report);
      2
    | Some v ->
      if brief then Fmt.pf ppf "%s: %s: %s@." path name (verdict v)
      else Fmt.pf hpf "%s: %s@." name (verdict v);
      if explain && name = "Comp-C" then
        Cmd_explain.report ppf format shrink session;
      if stats then begin
        print_stats hpf trace metrics;
        print_introspection hpf session;
        print_lint hpf h
      end;
      if v then 0 else 1)
