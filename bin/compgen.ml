(* compgen: emit random composite executions in the history description
   language, for fuzzing and for feeding compcheck. *)
open Cmdliner
open Repro_workload

let run shape seed roots levels branches schedules conflict out =
  match
    Option.map Repro_histlang.Syntax.spec_of_string conflict
  with
  | exception Repro_histlang.Syntax.Parse_error e ->
    Fmt.epr "compgen: --conflict: %a@." Repro_histlang.Syntax.pp_error e;
    2
  | conflict ->
  let rng = Prng.create ~seed in
  let history =
    match shape with
    | "flat" -> Ok (Gen.flat rng ?conflict ~roots)
    | "stack" -> Ok (Gen.stack rng ?conflict ~levels ~roots)
    | "fork" -> Ok (Gen.fork rng ?conflict ~branches ~roots)
    | "join" -> Ok (Gen.join rng ?conflict ~branches ~roots:(max roots branches))
    | "general" -> Ok (Gen.general rng ?conflict ~schedules ~roots)
    | other -> Error other
  in
  match history with
  | Error other ->
    Fmt.epr "compgen: unknown shape %S (flat|stack|fork|join|general)@." other;
    2
  | Ok h ->
    let text = Repro_histlang.Syntax.to_string h in
    (match out with
    | None -> print_string text
    | Some path -> Cli_common.write_file path text);
    0

let shape_arg =
  let doc = "Configuration shape: flat, stack, fork, join, or general." in
  Arg.(value & opt string "general" & info [ "s"; "shape" ] ~docv:"SHAPE" ~doc)

let seed_arg =
  let doc = "Random seed (generation is deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let roots_arg =
  let doc = "Number of root transactions." in
  Arg.(value & opt int 3 & info [ "roots" ] ~docv:"N" ~doc)

let levels_arg =
  let doc = "Stack depth (stack shape only)." in
  Arg.(value & opt int 3 & info [ "levels" ] ~docv:"N" ~doc)

let branches_arg =
  let doc = "Branch count (fork and join shapes)." in
  Arg.(value & opt int 2 & info [ "branches" ] ~docv:"N" ~doc)

let schedules_arg =
  let doc = "Schedule count (general shape)." in
  Arg.(value & opt int 4 & info [ "schedules" ] ~docv:"N" ~doc)

let conflict_arg =
  let doc =
    "Conflict specification for the generated schedules, in .ct syntax: \
     never, always, rw, same_item, counter, queue, set, escrow, \
     table(...), or adt(...).  The shape decides which schedules it \
     replaces (stack: the bottom store; fork: the branches; join: the \
     joined store; flat and general: all of them); leaf labels are drawn \
     from the spec's vocabulary.  Default keeps each generator's stock \
     specs."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "conflict" ] ~docv:"SPEC" ~doc)

let out_arg =
  let doc = "Write to $(docv) instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "generate random composite executions" in
  Cmd.v
    (Cmd.info "compgen" ~version:Cli_common.version ~doc)
    Term.(
      const run $ shape_arg $ seed_arg $ roots_arg $ levels_arg $ branches_arg
      $ schedules_arg $ conflict_arg $ out_arg)

let () = exit (Cmd.eval' cmd)
