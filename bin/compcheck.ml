(* compcheck: decide correctness criteria for a composite execution given in
   the history description language.  Exit code 0 = accepted, 1 = rejected,
   2 = usage/parse/validation trouble. *)
open Cmdliner
open Repro_model

let read_history path =
  try
    if path = "-" then begin
      (* [Buffer.add_channel] raises [End_of_file] on a short read and
         discards the partial chunk, so read through [input], which returns
         what is available and 0 only at end of file. *)
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        let n = input stdin chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          slurp ()
        end
      in
      slurp ();
      Ok (Repro_histlang.Syntax.parse (Buffer.contents buf))
    end
    else Ok (Repro_histlang.Syntax.parse_file path)
  with
  | Repro_histlang.Syntax.Parse_error e ->
    Error (Fmt.str "parse error: %a" Repro_histlang.Syntax.pp_error e)
  | Invalid_argument msg -> Error (Fmt.str "invalid history: %s" msg)
  | Sys_error msg -> Error msg

(* --stats: re-run the Comp-C decision with telemetry attached and print a
   per-level reduction profile from the recorded events and metrics. *)
let print_stats h =
  let module Trace = Repro_obs.Trace in
  let module Metrics = Repro_obs.Metrics in
  let module Json = Repro_obs.Json in
  let trace = Trace.create () in
  let metrics = Metrics.create () in
  ignore (Repro_core.Compc.check ~trace ~metrics h);
  let arg_int e k =
    match List.assoc_opt k e.Trace.args with Some (Json.Int i) -> Some i | _ -> None
  in
  let arg_str e k =
    match List.assoc_opt k e.Trace.args with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let gauge name =
    match Metrics.gauge_value metrics name with
    | Some v -> int_of_float v
    | None -> 0
  in
  Fmt.pr "--- Comp-C reduction profile ---@.";
  (match Metrics.summary metrics "compc.observed_wall_s" with
  | Some s ->
    Fmt.pr "observed order: %d base pairs -> %d pairs after closure, %d rounds, %.3f ms@."
      (gauge "compc.obs_base_pairs") (gauge "compc.obs_pairs")
      (gauge "compc.obs_rounds") (s.Metrics.sum *. 1e3)
  | None -> ());
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.name with
      | "front_init" ->
        Fmt.pr "level-0 front: %d members@."
          (Option.value ~default:0 (arg_int e "members"))
      | "reduction_step" ->
        let level = Option.value ~default:0 (arg_int e "level") in
        let prev = Option.value ~default:0 (arg_int e "prev_front") in
        let outcome = Option.value ~default:"?" (arg_str e "outcome") in
        Fmt.pr "step %d: %d -> %s members, %s clusters, %.3f ms [%s]@." level prev
          (match arg_int e "front" with Some n -> string_of_int n | None -> "-")
          (match arg_int e "clusters" with Some n -> string_of_int n | None -> "-")
          (e.Trace.dur /. 1e3) outcome
      | "failure" ->
        Fmt.pr "failure: %s@." (Option.value ~default:"?" (arg_str e "kind"))
      | _ -> ())
    (Trace.events trace);
  (match Metrics.summary metrics "compc.check_wall_s" with
  | Some s ->
    Fmt.pr "total: %.3f ms, verdict %s@." (s.Metrics.sum *. 1e3)
      (if Metrics.counter_value metrics "compc.accept" > 0 then "accept"
       else "reject")
  | None -> ())

let run path criterion explain stats skip_validation dot =
  match read_history path with
  | Error msg ->
    Fmt.epr "compcheck: %s@." msg;
    2
  | Ok h -> (
    let validation = Validate.check h in
    if validation <> [] then begin
      Fmt.epr "history violates the composite-system model (Defs. 3-4):@.";
      List.iter (fun e -> Fmt.epr "  %a@." (Validate.pp_error h) e) validation;
      if not skip_validation then exit 2
    end;
    (match dot with
    | Some prefix ->
      let rel = Repro_core.Observed.compute h in
      let write name text =
        let oc = open_out (prefix ^ name) in
        output_string oc text;
        close_out oc;
        Fmt.pr "wrote %s%s@." prefix name
      in
      write "-forest.dot"
        (Repro_histlang.Dot.forest ~obs:rel.Repro_core.Observed.obs h);
      write "-invocations.dot" (Repro_histlang.Dot.invocation_graph h)
    | None -> ());
    let report = Repro_criteria.Classic.accepted_by h in
    let shape = Repro_criteria.Shapes.classify h in
    Fmt.pr "configuration: %a, order %d, %d schedules, %d transactions, %d leaves@."
      Repro_criteria.Shapes.pp shape (History.order h) (History.n_schedules h)
      (List.length (History.roots h) + List.length (History.internal_nodes h))
      (List.length (History.leaves h));
    let criterion =
      (* case-insensitive convenience: comp-c, scc, ... all work *)
      let lc = String.lowercase_ascii criterion in
      match List.find_opt (fun (n, _) -> String.lowercase_ascii n = lc) report with
      | Some (n, _) -> n
      | None -> criterion
    in
    match criterion with
    | "all" | "ALL" | "All" ->
      List.iter (fun (name, verdict) ->
          Fmt.pr "%-8s %s@." name (if verdict then "accept" else "reject"))
        report;
      if explain then Repro_core.Compc.explain Fmt.stdout (Repro_core.Compc.check h);
      if stats then print_stats h;
      if List.assoc "Comp-C" report then 0 else 1
    | name -> (
      match List.assoc_opt name report with
      | None ->
        Fmt.epr "compcheck: criterion %S does not apply to this configuration (available: %a)@."
          name
          Fmt.(list ~sep:comma string)
          (List.map fst report);
        2
      | Some verdict ->
        Fmt.pr "%s: %s@." name (if verdict then "accept" else "reject");
        if explain && name = "Comp-C" then
          Repro_core.Compc.explain Fmt.stdout (Repro_core.Compc.check h);
        if stats then print_stats h;
        if verdict then 0 else 1))

let path_arg =
  let doc = "History file in the description language ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let criterion_arg =
  let doc =
    "Criterion to decide: $(b,Comp-C) (default), $(b,SCC), $(b,FCC), $(b,JCC), \
     $(b,LLSR), $(b,OPSR), $(b,FlatCSR), or $(b,all)."
  in
  Arg.(value & opt string "Comp-C" & info [ "c"; "criterion" ] ~docv:"NAME" ~doc)

let explain_arg =
  let doc = "Print the full reduction trace (fronts, witness layouts, verdict)." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let stats_arg =
  let doc =
    "Print a reduction profile: observed-order closure sizing, then per \
     level the front sizes, cluster counts and wall-clock step timings of \
     the Comp-C decision."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let skip_validation_arg =
  let doc = "Check criteria even when the history violates the model." in
  Arg.(value & flag & info [ "force" ] ~doc)

let dot_arg =
  let doc =
    "Write Graphviz renderings ($(docv)-forest.dot with the observed order \
     overlaid, and $(docv)-invocations.dot) of the history."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PREFIX" ~doc)

let cmd =
  let doc = "decide composite correctness (Comp-C) and related criteria" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads a composite execution in the history description language and \
         decides the correctness criteria of Alonso, Fe\xc3\x9fler, Pardon and \
         Schek, \"Correctness in General Configurations of Transactional \
         Components\" (PODS 1999): the general criterion Comp-C via \
         level-by-level reduction, plus the specialised and classical \
         criteria it subsumes.";
      `S Manpage.s_examples;
      `Pre "  compcheck history.ct --criterion all\n  compgen --shape stack | compcheck - --explain";
    ]
  in
  Cmd.v
    (Cmd.info "compcheck" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ path_arg $ criterion_arg $ explain_arg $ stats_arg
      $ skip_validation_arg $ dot_arg)

let () = exit (Cmd.eval' cmd)
