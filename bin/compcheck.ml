(* compcheck: decide correctness criteria for composite executions given in
   the history description language.  Exit code 0 = all accepted, 1 = some
   history rejected, 2 = usage/parse/validation trouble.  With several FILE
   arguments the checks run on a domain pool (--jobs) and print one verdict
   line per file, in argument order. *)
open Cmdliner
open Repro_model

let read_history path =
  try
    if path = "-" then begin
      (* [Buffer.add_channel] raises [End_of_file] on a short read and
         discards the partial chunk, so read through [input], which returns
         what is available and 0 only at end of file. *)
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        let n = input stdin chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          slurp ()
        end
      in
      slurp ();
      Ok (Repro_histlang.Syntax.parse (Buffer.contents buf))
    end
    else Ok (Repro_histlang.Syntax.parse_file path)
  with
  | Repro_histlang.Syntax.Parse_error e ->
    Error (Fmt.str "parse error: %a" Repro_histlang.Syntax.pp_error e)
  | Invalid_argument msg -> Error (Fmt.str "invalid history: %s" msg)
  | Sys_error msg -> Error msg

(* --stats: re-run the Comp-C decision with telemetry attached and print a
   per-level reduction profile from the recorded events and metrics. *)
let print_stats ppf h =
  let module Trace = Repro_obs.Trace in
  let module Metrics = Repro_obs.Metrics in
  let module Json = Repro_obs.Json in
  let trace = Trace.create () in
  let metrics = Metrics.create () in
  ignore (Repro_core.Compc.check ~trace ~metrics h);
  let arg_int e k =
    match List.assoc_opt k e.Trace.args with Some (Json.Int i) -> Some i | _ -> None
  in
  let arg_str e k =
    match List.assoc_opt k e.Trace.args with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let gauge name =
    match Metrics.gauge_value metrics name with
    | Some v -> int_of_float v
    | None -> 0
  in
  Fmt.pf ppf "--- Comp-C reduction profile ---@.";
  (match Metrics.summary metrics "compc.observed_wall_s" with
  | Some s ->
    Fmt.pf ppf
      "observed order: %d base pairs -> %d pairs after closure, %d rounds, %.3f ms@."
      (gauge "compc.obs_base_pairs") (gauge "compc.obs_pairs")
      (gauge "compc.obs_rounds") (s.Metrics.sum *. 1e3)
  | None -> ());
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.name with
      | "front_init" ->
        Fmt.pf ppf "level-0 front: %d members@."
          (Option.value ~default:0 (arg_int e "members"))
      | "reduction_step" ->
        let level = Option.value ~default:0 (arg_int e "level") in
        let prev = Option.value ~default:0 (arg_int e "prev_front") in
        let outcome = Option.value ~default:"?" (arg_str e "outcome") in
        Fmt.pf ppf "step %d: %d -> %s members, %s clusters, %.3f ms [%s]@." level
          prev
          (match arg_int e "front" with Some n -> string_of_int n | None -> "-")
          (match arg_int e "clusters" with Some n -> string_of_int n | None -> "-")
          (e.Trace.dur /. 1e3) outcome
      | "failure" ->
        Fmt.pf ppf "failure: %s@." (Option.value ~default:"?" (arg_str e "kind"))
      | _ -> ())
    (Trace.events trace);
  match Metrics.summary metrics "compc.check_wall_s" with
  | Some s ->
    Fmt.pf ppf "total: %.3f ms, verdict %s@." (s.Metrics.sum *. 1e3)
      (if Metrics.counter_value metrics "compc.accept" > 0 then "accept"
       else "reject")
  | None -> ()

(* --explain rendering: the forensic evidence report in the requested
   format.  Text is [Compc.explain] plus the provenance derivation chain of
   every witness-cycle edge and the shrink summary; json/dot are the
   machine renderings of {!Repro_forensics.Evidence}. *)
let explain_report ?extra ppf format shrink v =
  let ev = Repro_forensics.Evidence.build ~shrink ?extra v in
  match format with
  | `Text -> Repro_forensics.Evidence.pp ppf ev
  | `Json ->
    Fmt.pf ppf "%s@."
      (Repro_obs.Json.to_string (Repro_forensics.Evidence.to_json ev))
  | `Dot -> Fmt.pf ppf "%s" (Repro_forensics.Evidence.dot ev)

(* One file's complete run.  [brief] is batch mode: the verdict is a single
   [path: ...] line (configuration summary suppressed) so a many-file run
   reads as a table.  All output goes through [ppf]/[eppf] so batch mode can
   buffer it per file and print blocks in argument order whatever the
   domain-pool interleaving was. *)
let check_one ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr) ~brief criterion explain
    format shrink stats skip_validation dot path =
  (* A forensic request is an explain request: --shrink and the machine
     formats only make sense on the evidence report. *)
  let explain = explain || shrink || format <> `Text in
  (* With a machine format the human verdict lines move to stderr so
     stdout is exactly one JSON document / DOT graph, pipeable as is. *)
  let hpf = if format = `Text then ppf else eppf in
  match read_history path with
  | Error msg ->
    if brief then Fmt.pf ppf "%s: error: %s@." path msg
    else Fmt.pf eppf "compcheck: %s@." msg;
    2
  | Ok h ->
    let validation = Validate.check h in
    if validation <> [] then begin
      if brief && not skip_validation then
        Fmt.pf ppf "%s: invalid: %d model violation%s@." path
          (List.length validation)
          (if List.length validation = 1 then "" else "s")
      else begin
        Fmt.pf eppf "%s violates the composite-system model (Defs. 3-4):@."
          (if path = "-" then "history" else path);
        List.iter (fun e -> Fmt.pf eppf "  %a@." (Validate.pp_error h) e) validation
      end
    end;
    if validation <> [] && not skip_validation then 2
    else begin
      (match dot with
      | Some prefix ->
        let rel = Repro_core.Observed.compute h in
        let write name text =
          let oc = open_out (prefix ^ name) in
          output_string oc text;
          close_out oc;
          Fmt.pf hpf "wrote %s%s@." prefix name
        in
        write "-forest.dot"
          (Repro_histlang.Dot.forest ~obs:rel.Repro_core.Observed.obs h);
        write "-invocations.dot" (Repro_histlang.Dot.invocation_graph h)
      | None -> ());
      let report = Repro_criteria.Classic.accepted_by h in
      let shape = Repro_criteria.Shapes.classify h in
      if not brief then
        Fmt.pf hpf
          "configuration: %a, order %d, %d schedules, %d transactions, %d leaves@."
          Repro_criteria.Shapes.pp shape (History.order h)
          (History.n_schedules h)
          (List.length (History.roots h) + List.length (History.internal_nodes h))
          (List.length (History.leaves h));
      let criterion =
        (* case-insensitive convenience: comp-c, scc, ... all work *)
        let lc = String.lowercase_ascii criterion in
        match
          List.find_opt (fun (n, _) -> String.lowercase_ascii n = lc) report
        with
        | Some (n, _) -> n
        | None -> criterion
      in
      let verdict v = if v then "accept" else "reject" in
      match criterion with
      | "all" | "ALL" | "All" ->
        if brief then
          Fmt.pf ppf "%s: %a@." path
            Fmt.(
              list ~sep:(any "  ") (fun ppf (n, v) ->
                  Fmt.pf ppf "%s=%s" n (verdict v)))
            report
        else
          List.iter
            (fun (name, v) -> Fmt.pf hpf "%-8s %s@." name (verdict v))
            report;
        if explain then
          explain_report ppf format shrink (Repro_core.Compc.check h);
        if stats then print_stats hpf h;
        if List.assoc "Comp-C" report then 0 else 1
      | name -> (
        match List.assoc_opt name report with
        | None ->
          Fmt.pf eppf
            "compcheck: criterion %S does not apply to this configuration \
             (available: %a)@."
            name
            Fmt.(list ~sep:comma string)
            (List.map fst report);
          2
        | Some v ->
          if brief then Fmt.pf ppf "%s: %s: %s@." path name (verdict v)
          else Fmt.pf hpf "%s: %s@." name (verdict v);
          if explain && name = "Comp-C" then
            explain_report ppf format shrink (Repro_core.Compc.check h);
          if stats then print_stats hpf h;
          if v then 0 else 1)
    end

(* --monitor: streaming certification of one history's root-prefix chain.
   The k-prefix is certified by one incremental [Monitor.append] against the
   (k-1)-prefix's warm state, and the loop stops at the first violating
   prefix index — the monitoring story of the checker: "which commit broke
   the execution", not just "is the final history correct". *)
(* Assemble a [Compc.verdict] for the monitor's current prefix without
   recomputing the observed-order closure: the incrementally maintained
   relations are warm, only the (cold-path) reduction is re-run to obtain a
   certificate for the evidence report. *)
let verdict_of_monitor m fallback =
  match
    (Repro_core.Monitor.history m, Repro_core.Monitor.relations m)
  with
  | Some p, Some rel ->
    {
      Repro_core.Compc.history = p;
      relations = rel;
      certificate = Repro_core.Reduction.reduce ~rel p;
    }
  | _ -> Repro_core.Compc.check fallback

let monitor_one ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr) ~brief explain format
    shrink skip_validation path =
  let explain = explain || shrink || format <> `Text in
  let hpf = if format = `Text then ppf else eppf in
  match read_history path with
  | Error msg ->
    if brief then Fmt.pf ppf "%s: error: %s@." path msg
    else Fmt.pf eppf "compcheck: %s@." msg;
    2
  | Ok h ->
    let validation = Validate.check h in
    if validation <> [] then begin
      if brief && not skip_validation then
        Fmt.pf ppf "%s: invalid: %d model violation%s@." path
          (List.length validation)
          (if List.length validation = 1 then "" else "s")
      else begin
        Fmt.pf eppf "%s violates the composite-system model (Defs. 3-4):@."
          (if path = "-" then "history" else path);
        List.iter (fun e -> Fmt.pf eppf "  %a@." (Validate.pp_error h) e) validation
      end
    end;
    if validation <> [] && not skip_validation then 2
    else begin
      let n = List.length (History.roots h) in
      let m = Repro_core.Monitor.create () in
      let rec go k =
        if k > n then begin
          let fast = (Repro_core.Monitor.stats m).Repro_core.Monitor.fastpath_hits in
          if brief then
            Fmt.pf ppf "%s: monitor: accept (%d prefix%s)@." path n
              (if n = 1 then "" else "es")
          else
            Fmt.pf hpf
              "monitor: accept - all %d prefixes Comp-C (%d reductions skipped \
               on the fast path)@."
              n fast;
          if explain then
            explain_report ppf format shrink (verdict_of_monitor m h);
          0
        end
        else begin
          let p = History.prefix_by_roots h k in
          match Repro_core.Monitor.append m p with
          | Repro_core.Monitor.Accepted _ ->
            if not brief then Fmt.pf hpf "prefix %d/%d: accept@." k n;
            go (k + 1)
          | Repro_core.Monitor.Rejected f ->
            let rel = Repro_core.Monitor.relations m in
            if brief then
              Fmt.pf ppf "%s: monitor: reject at prefix %d/%d@." path k n
            else begin
              Fmt.pf hpf "prefix %d/%d: reject@." k n;
              Fmt.pf hpf "first violating prefix: %d; %a@." k
                (Repro_core.Reduction.pp_failure ?rel p)
                f
            end;
            if explain then begin
              let extra =
                [
                  ( "prefix",
                    Repro_obs.Json.Obj
                      [
                        ("index", Repro_obs.Json.Int k);
                        ("of", Repro_obs.Json.Int n);
                      ] );
                ]
              in
              explain_report ~extra ppf format shrink (verdict_of_monitor m p)
            end;
            1
        end
      in
      go 1
    end

let rec take n = function
  | x :: rest when n > 0 ->
    let hd, tl = take (n - 1) rest in
    (x :: hd, tl)
  | rest -> ([], rest)

let run paths criterion explain format shrink stats skip_validation dot jobs
    monitor fail_fast =
  let monitor_conflict =
    monitor
    && (stats || dot <> None || String.lowercase_ascii criterion <> "comp-c")
  in
  if monitor_conflict then begin
    Fmt.epr
      "compcheck: --monitor decides Comp-C prefix by prefix and cannot be \
       combined with --stats, --dot or another --criterion@.";
    2
  end
  else if format = `Dot && List.length paths > 1 then begin
    Fmt.epr "compcheck: --format dot requires a single FILE@.";
    2
  end
  else
    match paths with
    | [ path ] ->
      if monitor then
        monitor_one ~brief:false explain format shrink skip_validation path
      else
        check_one ~brief:false criterion explain format shrink stats
          skip_validation dot path
    | paths ->
      if dot <> None then begin
        Fmt.epr "compcheck: --dot requires a single FILE@.";
        2
      end
      else begin
        (* Each worker parses its own history (so the per-history conflict
           cache is never shared between domains) and writes into private
           buffers; the main domain prints the blocks in argument order. *)
        let worker path =
          let bo = Buffer.create 256 and be = Buffer.create 64 in
          let ppf = Fmt.with_buffer bo and eppf = Fmt.with_buffer be in
          let code =
            if monitor then
              monitor_one ~ppf ~eppf ~brief:true explain format shrink
                skip_validation path
            else
              check_one ~ppf ~eppf ~brief:true criterion explain format shrink
                stats skip_validation None path
          in
          Format.pp_print_flush ppf ();
          Format.pp_print_flush eppf ();
          (Buffer.contents bo, Buffer.contents be, code)
        in
        let print_wave worst results =
          List.fold_left
            (fun worst (out, err, code) ->
              print_string out;
              prerr_string err;
              max worst code)
            worst results
        in
        if not fail_fast then
          print_wave 0 (Repro_par.Pool.parmap ?jobs worker paths)
        else begin
          (* Fail-fast: dispatch job-sized waves and stop after the first
             wave containing a reject or error.  Output stays buffered and
             in argument order within each wave, so up to jobs-1 files after
             the first failing one may still be checked and reported; files
             in later waves are not touched at all. *)
          let j =
            max 1 (match jobs with Some j -> j | None -> Repro_par.Pool.default_jobs ())
          in
          let rec go worst remaining =
            match remaining with
            | [] -> worst
            | remaining when worst > 0 ->
              flush stdout;
              Fmt.epr "compcheck: fail-fast: %d file(s) not checked@."
                (List.length remaining);
              worst
            | remaining ->
              let wave, rest = take j remaining in
              go (print_wave worst (Repro_par.Pool.parmap ~jobs:j worker wave)) rest
          in
          go 0 paths
        end
      end

let paths_arg =
  let doc =
    "History files in the description language ('-' for stdin).  With more \
     than one FILE, compcheck prints one verdict line per file and exits \
     non-zero if any history is rejected."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)

let criterion_arg =
  let doc =
    "Criterion to decide: $(b,Comp-C) (default), $(b,SCC), $(b,FCC), $(b,JCC), \
     $(b,LLSR), $(b,OPSR), $(b,FlatCSR), or $(b,all)."
  in
  Arg.(value & opt string "Comp-C" & info [ "c"; "criterion" ] ~docv:"NAME" ~doc)

let explain_arg =
  let doc =
    "Print the full reduction trace (fronts, witness layouts, verdict) and, \
     on a rejection, the forensic evidence: the witness cycle with each \
     observed-order edge's Def. 10 derivation chain down to base pairs."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let format_arg =
  let doc =
    "Evidence format for $(b,--explain): $(b,text) (default), $(b,json) \
     (machine-readable evidence/1 report), or $(b,dot) (execution forest \
     with the witness cycle highlighted; single FILE only).  A non-text \
     format implies $(b,--explain)."
  in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("dot", `Dot) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let shrink_arg =
  let doc =
    "On a rejection, delta-debug the history down to a 1-minimal \
     sub-history with the same failure kind and include it in the evidence \
     report.  Implies $(b,--explain)."
  in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let stats_arg =
  let doc =
    "Print a reduction profile: observed-order closure sizing, then per \
     level the front sizes, cluster counts and wall-clock step timings of \
     the Comp-C decision."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let skip_validation_arg =
  let doc = "Check criteria even when the history violates the model." in
  Arg.(value & flag & info [ "force" ] ~doc)

let dot_arg =
  let doc =
    "Write Graphviz renderings ($(docv)-forest.dot with the observed order \
     overlaid, and $(docv)-invocations.dot) of the history.  Single-FILE \
     runs only."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PREFIX" ~doc)

let monitor_arg =
  let doc =
    "Streaming mode: certify the history's committed prefixes incrementally \
     (one monitor append per root transaction, in id order) and report the \
     first violating prefix index instead of one verdict for the whole \
     history.  Comp-C only; incompatible with $(b,--stats), $(b,--dot) and \
     other criteria.  With $(b,--explain) (and $(b,--format)/$(b,--shrink)) \
     the full forensic evidence report is emitted for the first violating \
     prefix."
  in
  Arg.(value & flag & info [ "monitor" ] ~doc)

let fail_fast_arg =
  let doc =
    "Batch mode: stop dispatching remaining FILEs after the first wave of \
     $(b,--jobs) files containing a reject or error (per-file output stays \
     buffered and in argument order within a wave, so up to jobs-1 files \
     after the failing one may still be reported).  Exit codes are \
     unchanged; skipped files are announced on stderr."
  in
  Arg.(value & flag & info [ "fail-fast" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for batch checking several FILEs (default: $(b,REPRO_JOBS) \
     from the environment, else the machine's recommended domain count; 1 \
     checks sequentially).  Verdicts and exit code are identical whatever \
     the value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "decide composite correctness (Comp-C) and related criteria" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads composite executions in the history description language and \
         decides the correctness criteria of Alonso, Fe\xc3\x9fler, Pardon and \
         Schek, \"Correctness in General Configurations of Transactional \
         Components\" (PODS 1999): the general criterion Comp-C via \
         level-by-level reduction, plus the specialised and classical \
         criteria it subsumes.";
      `S Manpage.s_examples;
      `Pre
        "  compcheck history.ct --criterion all\n\
        \  compgen --shape stack | compcheck - --explain\n\
        \  compcheck history.ct --explain --shrink --format json\n\
        \  compcheck history.ct --format dot > forensics.dot\n\
        \  compcheck --jobs 4 histories/*.ct\n\
        \  compcheck --monitor --explain history.ct\n\
        \  compcheck --fail-fast --jobs 4 histories/*.ct";
    ]
  in
  Cmd.v
    (Cmd.info "compcheck" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ paths_arg $ criterion_arg $ explain_arg $ format_arg
      $ shrink_arg $ stats_arg $ skip_validation_arg $ dot_arg $ jobs_arg
      $ monitor_arg $ fail_fast_arg)

let () = exit (Cmd.eval' cmd)
