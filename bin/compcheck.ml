(* compcheck: decide correctness criteria for composite executions given in
   the history description language.  Exit code 0 = all accepted, 1 = some
   history rejected, 2 = usage/parse/validation trouble.  With several FILE
   arguments the checks run on a domain pool (--jobs) and print one verdict
   line per file, in argument order.

   This file is only the command line: flag declarations and the dispatch
   between the subcommand modules.  The work lives in {!Cmd_check} (batch
   verdicts), {!Cmd_monitor} (streaming prefix certification) and
   {!Cmd_batch} (the many-FILE domain pool); all of them drive one
   {!Repro_core.Engine} session per history and render evidence through
   {!Cmd_explain}. *)
open Cmdliner

let run paths criterion explain format shrink stats skip_validation dot jobs
    monitor window fail_fast metrics_out metrics_format trace_out coverage_out
    progress =
  let monitor_conflict =
    monitor
    && (stats || dot <> None || String.lowercase_ascii criterion <> "comp-c")
  in
  if monitor_conflict then begin
    Fmt.epr
      "compcheck: --monitor decides Comp-C prefix by prefix and cannot be \
       combined with --stats, --dot or another --criterion@.";
    2
  end
  else if window <> None && not monitor then begin
    Fmt.epr
      "compcheck: --window bounds a streaming session's memory and requires \
       --monitor@.";
    2
  end
  else if (match window with Some w -> w <= 0 | None -> false) then begin
    Fmt.epr "compcheck: --window must be positive@.";
    2
  end
  else if format = `Dot && List.length paths > 1 then begin
    Fmt.epr "compcheck: --format dot requires a single FILE@.";
    2
  end
  else if trace_out <> None && not monitor then begin
    Fmt.epr
      "compcheck: --trace records per-append span trees and requires \
       --monitor@.";
    2
  end
  else begin
    (* The run-wide registry backing --metrics and --coverage; also
       created for a live single-file monitor so the progress line can
       read the p99 append latency back out of it. *)
    let progress_on = Cli_common.Progress.want progress in
    let metrics =
      if metrics_out <> None || coverage_out <> None || (monitor && progress_on)
      then Repro_obs.Metrics.create ()
      else Repro_obs.Metrics.null
    in
    let spans =
      match trace_out with
      | Some _ -> Repro_obs.Span.create ()
      | None -> Repro_obs.Span.null
    in
    let obs = Repro_obs.Sink.v ~metrics ~spans () in
    let code =
      match paths with
      | [ path ] ->
        if monitor then
          Cmd_monitor.run ~obs
            ~progress:(Cli_common.Progress.create progress_on)
            ?window ~brief:false explain format shrink skip_validation path
        else
          Cmd_check.run ~obs ~brief:false criterion explain format shrink
            stats skip_validation dot path
      | paths ->
        if dot <> None then begin
          Fmt.epr "compcheck: --dot requires a single FILE@.";
          2
        end
        else begin
          let total = List.length paths in
          let bar = Cli_common.Progress.create progress_on in
          let t0 = Repro_obs.Clock.now_wall () in
          let on_done ~completed =
            let dt = Repro_obs.Clock.now_wall () -. t0 in
            let rate = if dt > 0.0 then float_of_int completed /. dt else 0.0 in
            Cli_common.Progress.update bar
              (Fmt.str "compcheck: %d/%d files  %.1f files/s" completed total
                 rate)
          in
          let code =
            Cmd_batch.run ?jobs ~on_done ~obs ~fail_fast
              (fun ~ppf ~eppf ~obs path ->
                if monitor then
                  Cmd_monitor.run ~ppf ~eppf ~obs ?window ~brief:true explain
                    format shrink skip_validation path
                else
                  Cmd_check.run ~ppf ~eppf ~obs ~brief:true criterion explain
                    format shrink stats skip_validation None path)
              paths
          in
          Cli_common.Progress.finish bar;
          code
        end
    in
    (match metrics_out with
    | Some path ->
      Cli_common.write_metrics ~tool:"compcheck" ~format:metrics_format path
        metrics
    | None -> ());
    (match coverage_out with
    | Some path ->
      Cli_common.write_json ~tool:"compcheck" path
        (Repro_obs.Coverage.to_json metrics)
    | None -> ());
    (match trace_out with
    | Some path ->
      let tr = Repro_obs.Trace.create () in
      Repro_obs.Trace.set_process_name tr ~pid:0 "compcheck";
      Repro_obs.Span.export spans tr;
      Cli_common.write_json ~tool:"compcheck" path (Repro_obs.Trace.to_json tr)
    | None -> ());
    code
  end

let paths_arg =
  let doc =
    "History files in the description language ('-' for stdin).  With more \
     than one FILE, compcheck prints one verdict line per file and exits \
     non-zero if any history is rejected."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)

let criterion_arg =
  let doc =
    "Criterion to decide: $(b,Comp-C) (default), $(b,SCC), $(b,FCC), $(b,JCC), \
     $(b,LLSR), $(b,OPSR), $(b,FlatCSR), or $(b,all)."
  in
  Arg.(value & opt string "Comp-C" & info [ "c"; "criterion" ] ~docv:"NAME" ~doc)

let explain_arg =
  let doc =
    "Print the full reduction trace (fronts, witness layouts, verdict) and, \
     on a rejection, the forensic evidence: the witness cycle with each \
     observed-order edge's Def. 10 derivation chain down to base pairs."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let format_arg =
  let doc =
    "Evidence format for $(b,--explain): $(b,text) (default), $(b,json) \
     (machine-readable evidence/1 report), or $(b,dot) (execution forest \
     with the witness cycle highlighted; single FILE only).  A non-text \
     format implies $(b,--explain)."
  in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("dot", `Dot) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let shrink_arg =
  let doc =
    "On a rejection, delta-debug the history down to a 1-minimal \
     sub-history with the same failure kind and include it in the evidence \
     report.  Implies $(b,--explain)."
  in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let stats_arg =
  let doc =
    "Print a reduction profile: observed-order closure sizing, then per \
     level the front sizes, cluster counts and wall-clock step timings of \
     the Comp-C decision."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let skip_validation_arg =
  let doc = "Check criteria even when the history violates the model." in
  Arg.(value & flag & info [ "force" ] ~doc)

let dot_arg =
  let doc =
    "Write Graphviz renderings ($(docv)-forest.dot with the observed order \
     overlaid, and $(docv)-invocations.dot) of the history.  Single-FILE \
     runs only."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PREFIX" ~doc)

let monitor_arg =
  let doc =
    "Streaming mode: certify the history's committed prefixes incrementally \
     (one monitor append per root transaction, in id order) and report the \
     first violating prefix index instead of one verdict for the whole \
     history.  Comp-C only; incompatible with $(b,--stats), $(b,--dot) and \
     other criteria.  With FILE $(b,-) the description is certified as it \
     arrives on stdin, one append per streamed root, so live streams can \
     be piped in.  With $(b,--explain) (and $(b,--format)/$(b,--shrink)) \
     the full forensic evidence report is emitted for the first violating \
     prefix."
  in
  Arg.(value & flag & info [ "monitor" ] ~doc)

let window_arg =
  let doc =
    "Monitor mode: bounded-memory streaming.  Once the active suffix \
     reaches $(docv) nodes after an accepted append, the certified prefix \
     is folded into a compact summary and its dense per-node state \
     released, so the session's resident memory is proportional to the \
     window, not the stream.  Verdicts are unchanged."
  in
  Arg.(value & opt (some int) None & info [ "window" ] ~docv:"NODES" ~doc)

let fail_fast_arg =
  let doc =
    "Batch mode: stop dispatching remaining FILEs after the first wave of \
     $(b,--jobs) files containing a reject or error (per-file output stays \
     buffered and in argument order within a wave, so up to jobs-1 files \
     after the failing one may still be reported).  Exit codes are \
     unchanged; skipped files are announced on stderr."
  in
  Arg.(value & flag & info [ "fail-fast" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the run's metrics snapshot to $(docv): checker counters and \
     latency histograms, the labeled per-path append series and live \
     engine gauges in monitor mode, and the merged per-file registries \
     (deterministic, in argument order) in batch mode."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Monitor mode: write a Chrome trace_event JSON of the run's span trees \
     to $(docv) — one trace per monitor append, each containing the \
     engine's append span with its certification path label \
     (initial/fast/delta/kernel/full) and node/cluster counts.  Load in \
     Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let coverage_out_arg =
  let doc =
    "Write the run's path-coverage document (coverage/1 JSON) to $(docv): \
     every engine, monitor and reduction decision counter under its \
     canonical name, with a stable key set — untaken paths appear with \
     count 0, so diffing two documents shows exactly which decision paths \
     a workload exercised."
  in
  Arg.(value & opt (some string) None & info [ "coverage" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Live single-line progress on stderr (files done and rate in batch \
     mode; prefixes done, rate and p99 append latency in monitor mode).  \
     Default: on exactly when stderr is a terminal; $(b,--no-progress) \
     forces it off."
  in
  let off = "Disable the live progress line." in
  Arg.(
    value
    & vflag None
        [
          (Some true, info [ "progress" ] ~doc);
          (Some false, info [ "no-progress" ] ~doc:off);
        ])

let jobs_arg =
  let doc =
    "Worker domains for batch checking several FILEs (default: $(b,REPRO_JOBS) \
     from the environment, else the machine's recommended domain count; 1 \
     checks sequentially).  Verdicts and exit code are identical whatever \
     the value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "decide composite correctness (Comp-C) and related criteria" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads composite executions in the history description language and \
         decides the correctness criteria of Alonso, Fe\xc3\x9fler, Pardon and \
         Schek, \"Correctness in General Configurations of Transactional \
         Components\" (PODS 1999): the general criterion Comp-C via \
         level-by-level reduction, plus the specialised and classical \
         criteria it subsumes.";
      `S Manpage.s_examples;
      `Pre
        "  compcheck history.ct --criterion all\n\
        \  compgen --shape stack | compcheck - --explain\n\
        \  compcheck history.ct --explain --shrink --format json\n\
        \  compcheck history.ct --format dot > forensics.dot\n\
        \  compcheck --jobs 4 histories/*.ct\n\
        \  compcheck --monitor --explain history.ct\n\
        \  compcheck --fail-fast --jobs 4 histories/*.ct";
    ]
  in
  Cmd.v
    (Cmd.info "compcheck" ~version:Cli_common.version ~doc ~man)
    Term.(
      const run $ paths_arg $ criterion_arg $ explain_arg $ format_arg
      $ shrink_arg $ stats_arg $ skip_validation_arg $ dot_arg $ jobs_arg
      $ monitor_arg $ window_arg $ fail_fast_arg $ metrics_out_arg
      $ Cli_common.metrics_format_arg $ trace_out_arg $ coverage_out_arg
      $ progress_arg)

let () = exit (Cmd.eval' cmd)
