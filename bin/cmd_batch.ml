(* The batch subcommand: run one per-file check over many FILEs on a
   domain pool and print one buffered output block per file, in argument
   order, whatever the pool's interleaving was.  [check] is the per-file
   runner (the check or monitor subcommand partially applied); it receives
   private formatters and returns the file's exit code.  The batch exit
   code is the worst per-file code. *)

let rec take n = function
  | x :: rest when n > 0 ->
    let hd, tl = take (n - 1) rest in
    (x :: hd, tl)
  | rest -> ([], rest)

let run ?jobs ~fail_fast check paths =
  (* Each worker parses its own history (so the per-history conflict
     cache is never shared between domains) and writes into private
     buffers; the main domain prints the blocks in argument order. *)
  let worker path =
    let bo = Buffer.create 256 and be = Buffer.create 64 in
    let ppf = Fmt.with_buffer bo and eppf = Fmt.with_buffer be in
    let code = check ~ppf ~eppf path in
    Format.pp_print_flush ppf ();
    Format.pp_print_flush eppf ();
    (Buffer.contents bo, Buffer.contents be, code)
  in
  let print_wave worst results =
    List.fold_left
      (fun worst (out, err, code) ->
        print_string out;
        prerr_string err;
        max worst code)
      worst results
  in
  if not fail_fast then print_wave 0 (Repro_par.Pool.parmap ?jobs worker paths)
  else begin
    (* Fail-fast: dispatch job-sized waves and stop after the first
       wave containing a reject or error.  Output stays buffered and
       in argument order within each wave, so up to jobs-1 files after
       the first failing one may still be checked and reported; files
       in later waves are not touched at all. *)
    let j =
      max 1
        (match jobs with Some j -> j | None -> Repro_par.Pool.default_jobs ())
    in
    let rec go worst remaining =
      match remaining with
      | [] -> worst
      | remaining when worst > 0 ->
        flush stdout;
        Fmt.epr "compcheck: fail-fast: %d file(s) not checked@."
          (List.length remaining);
        worst
      | remaining ->
        let wave, rest = take j remaining in
        go (print_wave worst (Repro_par.Pool.parmap ~jobs:j worker wave)) rest
    in
    go 0 paths
  end
