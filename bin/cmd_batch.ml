(* The batch subcommand: run one per-file check over many FILEs on a
   domain pool and print one buffered output block per file, in argument
   order, whatever the pool's interleaving was.  [check] is the per-file
   runner (the check or monitor subcommand partially applied); it receives
   private formatters plus a private telemetry sink and returns the file's
   exit code.  The batch exit code is the worst per-file code.

   Telemetry: [obs] (default null) is the run-wide sink — each file gets
   a private registry/recorder from {!Repro_par.Pool.parmap_sink} and the
   pool merges them back in argument order, so a batch --metrics snapshot
   is deterministic.  [on_done] fires on a worker domain as each file
   finishes (the progress-line hook); it must synchronize itself —
   {!Cli_common.Progress.update} does. *)

let rec take n = function
  | x :: rest when n > 0 ->
    let hd, tl = take (n - 1) rest in
    (x :: hd, tl)
  | rest -> ([], rest)

let run ?jobs ?on_done ?(obs = Repro_obs.Sink.null) ~fail_fast check paths =
  (* Each worker parses its own history (so the per-history conflict
     cache is never shared between domains) and writes into private
     buffers; the main domain prints the blocks in argument order. *)
  let worker ~obs path =
    let bo = Buffer.create 256 and be = Buffer.create 64 in
    let ppf = Fmt.with_buffer bo and eppf = Fmt.with_buffer be in
    let code = check ~ppf ~eppf ~obs path in
    Format.pp_print_flush ppf ();
    Format.pp_print_flush eppf ();
    (Buffer.contents bo, Buffer.contents be, code)
  in
  let print_wave worst results =
    List.fold_left
      (fun worst (out, err, code) ->
        print_string out;
        prerr_string err;
        max worst code)
      worst results
  in
  if not fail_fast then
    print_wave 0 (Repro_par.Pool.parmap_sink ?jobs ?on_done ~obs worker paths)
  else begin
    (* Fail-fast: dispatch job-sized waves and stop after the first
       wave containing a reject or error.  Output stays buffered and
       in argument order within each wave, so up to jobs-1 files after
       the first failing one may still be checked and reported; files
       in later waves are not touched at all. *)
    let j =
      max 1
        (match jobs with Some j -> j | None -> Repro_par.Pool.default_jobs ())
    in
    (* The waves share [on_done]'s completed counter so the progress line
       keeps counting across waves. *)
    let completed = Atomic.make 0 in
    let wave_done =
      Option.map
        (fun cb ~completed:_ -> cb ~completed:(1 + Atomic.fetch_and_add completed 1))
        on_done
    in
    let rec go worst remaining =
      match remaining with
      | [] -> worst
      | remaining when worst > 0 ->
        flush stdout;
        Fmt.epr "compcheck: fail-fast: %d file(s) not checked@."
          (List.length remaining);
        worst
      | remaining ->
        let wave, rest = take j remaining in
        go
          (print_wave worst
             (Repro_par.Pool.parmap_sink ~jobs:j ?on_done:wave_done ~obs
                worker wave))
          rest
    in
    go 0 paths
  end
