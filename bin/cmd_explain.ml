(* Evidence rendering shared by the check and monitor subcommands: the
   forensic report of a session's current verdict in the requested format.
   Text is [Compc.explain] plus the provenance derivation chain of every
   witness-cycle edge and the shrink summary; json/dot are the machine
   renderings of {!Repro_forensics.Evidence}.  Everything is assembled
   from the session's caches ([Evidence.of_session]) — the closure,
   conflict memo and certificate the verdict was decided with are the
   ones the report is built from. *)

let report ?extra ppf format shrink session =
  let ev = Repro_forensics.Evidence.of_session ~shrink ?extra session in
  match format with
  | `Text -> Repro_forensics.Evidence.pp ppf ev
  | `Json ->
    Fmt.pf ppf "%s@."
      (Repro_obs.Json.to_string (Repro_forensics.Evidence.to_json ev))
  | `Dot -> Fmt.pf ppf "%s" (Repro_forensics.Evidence.dot ev)
