(* Plumbing shared by the compcheck/compgen/compsim command-line tools:
   the release version, history input (file or stdin) with parse-error
   mapping, the model-validation gate with its exit-code policy, and the
   output-file helpers.  Every subcommand module builds on these so the
   three binaries agree on behaviour at the edges. *)

let version = "1.1.0"

let read_history path =
  try
    if path = "-" then begin
      (* [Buffer.add_channel] raises [End_of_file] on a short read and
         discards the partial chunk, so read through [input], which returns
         what is available and 0 only at end of file. *)
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        let n = input stdin chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          slurp ()
        end
      in
      slurp ();
      Ok (Repro_histlang.Syntax.parse (Buffer.contents buf))
    end
    else Ok (Repro_histlang.Syntax.parse_file path)
  with
  | Repro_histlang.Syntax.Parse_error e ->
    Error (Fmt.str "parse error: %a" Repro_histlang.Syntax.pp_error e)
  | Invalid_argument msg -> Error (Fmt.str "invalid history: %s" msg)
  | Sys_error msg -> Error msg

(* Read [path], validate against the composite-system model, and run [k] on
   the history.  Exit-code policy: 2 on a read/parse error and on model
   violations unless [skip_validation]; [brief] is batch mode, where
   diagnostics become single [path: ...] lines on [ppf].  The violation
   listing itself always goes to [eppf]. *)
let with_history ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr) ~brief
    ~skip_validation path k =
  match read_history path with
  | Error msg ->
    if brief then Fmt.pf ppf "%s: error: %s@." path msg
    else Fmt.pf eppf "compcheck: %s@." msg;
    2
  | Ok h ->
    let validation = Repro_model.Validate.check h in
    if validation <> [] then begin
      if brief && not skip_validation then
        Fmt.pf ppf "%s: invalid: %d model violation%s@." path
          (List.length validation)
          (if List.length validation = 1 then "" else "s")
      else begin
        Fmt.pf eppf "%s violates the composite-system model (Defs. 3-4):@."
          (if path = "-" then "history" else path);
        List.iter
          (fun e -> Fmt.pf eppf "  %a@." (Repro_model.Validate.pp_error h) e)
          validation
      end
    end;
    if validation <> [] && not skip_validation then 2 else k h

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* JSON dump with the tool-prefixed error message and exit 2 on I/O
   trouble, as the simulator's report writers expect. *)
let write_json ~tool path json =
  match open_out path with
  | exception Sys_error msg ->
    Fmt.epr "%s: %s@." tool msg;
    exit 2
  | oc ->
    Repro_obs.Json.to_channel oc json;
    output_char oc '\n';
    close_out oc
