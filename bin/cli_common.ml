(* Plumbing shared by the compcheck/compgen/compsim command-line tools:
   the release version, history input (file or stdin) with parse-error
   mapping, the model-validation gate with its exit-code policy, and the
   output-file helpers.  Every subcommand module builds on these so the
   three binaries agree on behaviour at the edges. *)

let version = "1.5.0"

let read_history path =
  try
    if path = "-" then begin
      (* [Buffer.add_channel] raises [End_of_file] on a short read and
         discards the partial chunk, so read through [input], which returns
         what is available and 0 only at end of file. *)
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        let n = input stdin chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          slurp ()
        end
      in
      slurp ();
      Ok (Repro_histlang.Syntax.parse (Buffer.contents buf))
    end
    else Ok (Repro_histlang.Syntax.parse_file path)
  with
  | Repro_histlang.Syntax.Parse_error e ->
    Error (Fmt.str "parse error: %a" Repro_histlang.Syntax.pp_error e)
  | Invalid_argument msg -> Error (Fmt.str "invalid history: %s" msg)
  | Sys_error msg -> Error msg

(* Read [path], validate against the composite-system model, and run [k] on
   the history.  Exit-code policy: 2 on a read/parse error and on model
   violations unless [skip_validation]; [brief] is batch mode, where
   diagnostics become single [path: ...] lines on [ppf].  The violation
   listing itself always goes to [eppf]. *)
let with_history ?(ppf = Fmt.stdout) ?(eppf = Fmt.stderr) ~brief
    ~skip_validation path k =
  match read_history path with
  | Error msg ->
    if brief then Fmt.pf ppf "%s: error: %s@." path msg
    else Fmt.pf eppf "compcheck: %s@." msg;
    2
  | Ok h ->
    let validation = Repro_model.Validate.check h in
    if validation <> [] then begin
      if brief && not skip_validation then
        Fmt.pf ppf "%s: invalid: %d model violation%s@." path
          (List.length validation)
          (if List.length validation = 1 then "" else "s")
      else begin
        Fmt.pf eppf "%s violates the composite-system model (Defs. 3-4):@."
          (if path = "-" then "history" else path);
        List.iter
          (fun e -> Fmt.pf eppf "  %a@." (Repro_model.Validate.pp_error h) e)
          validation
      end
    end;
    if validation <> [] && not skip_validation then 2 else k h

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* JSON dump with the tool-prefixed error message and exit 2 on I/O
   trouble, as the simulator's report writers expect. *)
let write_json ~tool path json =
  match open_out path with
  | exception Sys_error msg ->
    Fmt.epr "%s: %s@." tool msg;
    exit 2
  | oc ->
    Repro_obs.Json.to_channel oc json;
    output_char oc '\n';
    close_out oc

let write_text ~tool path text =
  match open_out path with
  | exception Sys_error msg ->
    Fmt.epr "%s: %s@." tool msg;
    exit 2
  | oc ->
    output_string oc text;
    close_out oc

(* One metrics snapshot, either machine format: the structured JSON dump
   or the Prometheus text exposition a scraper ingests directly. *)
let write_metrics ~tool ~format path metrics =
  match format with
  | `Json -> write_json ~tool path (Repro_obs.Metrics.to_json metrics)
  | `Prom -> write_text ~tool path (Repro_obs.Metrics.to_prometheus metrics)

let metrics_format_arg =
  let doc =
    "Format of the $(b,--metrics) snapshot: $(b,json) (structured dump, \
     default) or $(b,prom) (Prometheus text exposition 0.0.4, ready for a \
     scrape endpoint or textfile collector).  Ignored without $(b,--metrics)."
  in
  Cmdliner.Arg.(
    value
    & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
    & info [ "metrics-format" ] ~docv:"FMT" ~doc)

(* A single-line stderr progress indicator for long batch/monitor runs:
   carriage-return + erase-to-EOL rewrites in place, nothing when
   disabled.  [update] may be called from pool worker domains, so the
   line is written under a mutex; [finish] erases the line so the final
   report starts on a clean row. *)
module Progress = struct
  type t = { mutable active : bool; mu : Mutex.t }

  let null = { active = false; mu = Mutex.create () }

  let create enabled =
    if enabled then { active = true; mu = Mutex.create () } else null

  let enabled t = t.active

  (* Auto-detection: live rewrites only make sense on an interactive
     stderr; piped/redirected runs stay clean. *)
  let want = function
    | Some b -> b
    | None -> ( try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

  let update t line =
    if t.active then begin
      Mutex.lock t.mu;
      Printf.eprintf "\r\027[K%s%!" line;
      Mutex.unlock t.mu
    end

  let finish t =
    if t.active then begin
      Mutex.lock t.mu;
      Printf.eprintf "\r\027[K%!";
      t.active <- false;
      Mutex.unlock t.mu
    end
end
