(* Tests for serialization orders, schedule conflict consistency, and the
   classical criteria — including hand-built gap witnesses showing that the
   containments of Section 4 are strict. *)
open Repro_model
open Repro_criteria
module B = History.Builder

(* Flat schedule with a given log over two transactions' read/writes. *)
let flat ~log:mk () =
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let r1 = B.leaf b ~parent:t1 (Label.read "x") in
  let w1 = B.leaf b ~parent:t1 (Label.write "y") in
  let r2 = B.leaf b ~parent:t2 (Label.read "y") in
  let w2 = B.leaf b ~parent:t2 (Label.write "x") in
  B.log b ~sched:s (mk (r1, w1, r2, w2));
  (B.seal b, s, (t1, t2))

let test_serialization_order () =
  let h, s, (t1, t2) = flat ~log:(fun (r1, w1, r2, w2) -> [ r1; w1; r2; w2 ]) () in
  let ser = Ser.serialization_order h s in
  Alcotest.(check bool) "t1 before t2" true (Repro_order.Rel.mem t1 t2 ser);
  Alcotest.(check bool) "no reverse" false (Repro_order.Rel.mem t2 t1 ser);
  Alcotest.(check bool) "cc" true (Ser.cc h s);
  match Ser.serial_witness h s with
  | Some [ a; b ] ->
    Alcotest.(check int) "first" t1 a;
    Alcotest.(check int) "second" t2 b
  | _ -> Alcotest.fail "expected a two-transaction witness"

let test_cc_cycle () =
  (* r1(x) w2(x) then r2(y) w1(y): T1 -> T2 and T2 -> T1. *)
  let h, s, _ = flat ~log:(fun (r1, w1, r2, w2) -> [ r1; w2; r2; w1 ]) () in
  Alcotest.(check bool) "not cc" false (Ser.cc h s);
  match Ser.cc_witness h s with
  | Some cycle -> Alcotest.(check int) "cycle of the two roots" 2 (List.length cycle)
  | None -> Alcotest.fail "expected a cycle"

let test_precedes () =
  let h, s, (t1, t2) = flat ~log:(fun (r1, w1, r2, w2) -> [ r1; w1; r2; w2 ]) () in
  let prec = Ser.precedes h s in
  Alcotest.(check bool) "t1 precedes t2" true (Repro_order.Rel.mem t1 t2 prec);
  let h, s, (t1, t2) = flat ~log:(fun (r1, w1, r2, w2) -> [ r1; r2; w1; w2 ]) () in
  let prec = Ser.precedes h s in
  Alcotest.(check bool) "overlapping: no precedence" false
    (Repro_order.Rel.mem t1 t2 prec || Repro_order.Rel.mem t2 t1 prec)

(* A two-level stack where the schedules commute at the top but conflict at
   the bottom, serialized in opposite directions for two different service
   pairs — SCC (= Comp-C) accepts, OPSR and LLSR do not.  This is the gap
   witness for the strict containments. *)
let forgetting_stack () =
  let b = B.create () in
  let top = B.schedule b ~conflict:(Conflict.Table []) "Top" in
  let bot = B.schedule b ~conflict:Conflict.Rw "Bot" in
  let t1 = B.root b ~sched:top (Label.v "T1") in
  let t2 = B.root b ~sched:top (Label.v "T2") in
  let a1 = B.tx b ~parent:t1 ~sched:bot (Label.v ~args:[ "x" ] "add") in
  let b1 = B.tx b ~parent:t1 ~sched:bot (Label.v ~args:[ "y" ] "add") in
  let a2 = B.tx b ~parent:t2 ~sched:bot (Label.v ~args:[ "x" ] "add") in
  let b2 = B.tx b ~parent:t2 ~sched:bot (Label.v ~args:[ "y" ] "add") in
  let wa1 = B.leaf b ~parent:a1 (Label.write "x") in
  let wb1 = B.leaf b ~parent:b1 (Label.write "y") in
  let wa2 = B.leaf b ~parent:a2 (Label.write "x") in
  let wb2 = B.leaf b ~parent:b2 (Label.write "y") in
  (* x: T1's service first; y: T2's service first — and the services
     overlap in real time at the bottom. *)
  B.log b ~sched:bot [ wa1; wb2; wa2; wb1 ];
  B.log b ~sched:top [ a1; b1; a2; b2 ];
  B.seal b

let test_gap_witness_llsr () =
  let h = forgetting_stack () in
  Alcotest.(check bool) "valid" true (Validate.check h = []);
  Alcotest.(check bool) "stack" true (Shapes.is_stack h);
  Alcotest.(check bool) "SCC accepts" true (Special.scc h);
  Alcotest.(check bool) "Comp-C accepts" true (Repro_core.Compc.is_correct h);
  Alcotest.(check bool) "LLSR rejects" false (Classic.llsr h);
  Alcotest.(check bool) "MLSR rejects" false (Classic.mlsr h)

(* Two subtransactions of the SAME root interfere at the bottom level: MLSR
   collapses the pulled orders at the root and accepts, LLSR sees the
   mid-level cycle and rejects - the LLSR/MLSR gap. *)
let llsr_mlsr_gap () =
  let b = B.create () in
  let top = B.schedule b ~conflict:(Conflict.Table []) "Top" in
  let mid = B.schedule b ~conflict:(Conflict.Table []) "Mid" in
  let bot = B.schedule b ~conflict:Conflict.Rw "Bot" in
  let t1 = B.root b ~sched:top (Label.v "T1") in
  let u1 = B.tx b ~parent:t1 ~sched:mid (Label.v ~args:[ "s" ] "svcA") in
  let u2 = B.tx b ~parent:t1 ~sched:mid (Label.v ~args:[ "s" ] "svcB") in
  let v1 = B.tx b ~parent:u1 ~sched:bot (Label.v ~args:[ "x" ] "add") in
  let v2 = B.tx b ~parent:u1 ~sched:bot (Label.v ~args:[ "y" ] "add") in
  let v3 = B.tx b ~parent:u2 ~sched:bot (Label.v ~args:[ "x" ] "add") in
  let v4 = B.tx b ~parent:u2 ~sched:bot (Label.v ~args:[ "y" ] "add") in
  let w1 = B.leaf b ~parent:v1 (Label.write "x") in
  let w2 = B.leaf b ~parent:v2 (Label.write "y") in
  let w3 = B.leaf b ~parent:v3 (Label.write "x") in
  let w4 = B.leaf b ~parent:v4 (Label.write "y") in
  (* x orders u1's work first, y orders u2's work first: a cycle among the
     mid-level siblings, invisible at the root. *)
  B.log b ~sched:bot [ w1; w3; w4; w2 ];
  B.log b ~sched:mid [ v1; v3; v4; v2 ];
  B.log b ~sched:top [ u1; u2 ];
  B.seal b

let test_gap_witness_llsr_vs_mlsr () =
  let h = llsr_mlsr_gap () in
  Alcotest.(check bool) "valid" true (Validate.check h = []);
  Alcotest.(check bool) "stack" true (Shapes.is_stack h);
  Alcotest.(check bool) "MLSR accepts" true (Classic.mlsr h);
  Alcotest.(check bool) "LLSR rejects" false (Classic.llsr h);
  Alcotest.(check bool) "Comp-C accepts" true (Repro_core.Compc.is_correct h)

(* Three flat transactions where the serialization order inverts the real-
   time order of two non-overlapping, non-conflicting transactions: OPSR
   rejects, SCC (= Comp-C) accepts. *)
let opsr_gap () =
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let ta = B.root b ~sched:s (Label.v "A") in
  let tb = B.root b ~sched:s (Label.v "B") in
  let tc = B.root b ~sched:s (Label.v "C") in
  let wa = B.leaf b ~parent:ta (Label.write "p") in
  let wb = B.leaf b ~parent:tb (Label.write "q") in
  let rcp = B.leaf b ~parent:tc (Label.read "p") in
  let rcq = B.leaf b ~parent:tc (Label.read "q") in
  B.log b ~sched:s [ rcp; wa; wb; rcq ];
  B.seal b

let test_gap_witness_opsr () =
  let h = opsr_gap () in
  Alcotest.(check bool) "valid" true (Validate.check h = []);
  Alcotest.(check bool) "SCC accepts" true (Special.scc h);
  Alcotest.(check bool) "Comp-C accepts" true (Repro_core.Compc.is_correct h);
  Alcotest.(check bool) "OPSR rejects" false (Classic.opsr h);
  (* The forgetting stack, by contrast, is order preserving. *)
  Alcotest.(check bool) "OPSR accepts the forgetting stack" true
    (Classic.opsr (forgetting_stack ()))

let test_flat_csr () =
  let h, _, _ = flat ~log:(fun (r1, w1, r2, w2) -> [ r1; w1; r2; w2 ]) () in
  Alcotest.(check bool) "serial flat accepted" true (Classic.flat_csr h);
  let h, _, _ = flat ~log:(fun (r1, w1, r2, w2) -> [ r1; w2; r2; w1 ]) () in
  Alcotest.(check bool) "cyclic flat rejected" false (Classic.flat_csr h)

let test_flat_csr_ignores_levels () =
  (* FlatCSR pulls leaf conflicts straight to the roots: the forgetting
     stack has no leaf-level cycle across roots, so it accepts — but it
     also accepts executions that interleave subtransactions of one root
     incorrectly, which Comp-C rejects.  Check the first claim here. *)
  let h = forgetting_stack () in
  Alcotest.(check bool) "flat csr on the stack" false (Classic.flat_csr h)

let test_accepted_by_report () =
  let h = forgetting_stack () in
  let report = Classic.accepted_by h in
  let get name = List.assoc name report in
  Alcotest.(check bool) "has LLSR entry" true (List.mem_assoc "LLSR" report);
  Alcotest.(check bool) "has SCC entry" true (List.mem_assoc "SCC" report);
  Alcotest.(check bool) "comp-c true" true (get "Comp-C");
  Alcotest.(check bool) "llsr false" false (get "LLSR")

let test_llsr_requires_stack () =
  let h = Repro_workload.Gen.fork (Repro_workload.Prng.create ~seed:1) ~branches:2 ~roots:2 in
  Alcotest.check_raises "llsr on fork" (Invalid_argument "Classic.llsr: not a stack")
    (fun () -> ignore (Classic.llsr h))

let test_ghost_graph () =
  (* A join where the two branches' roots interact through the bottom. *)
  let b = B.create () in
  let j1 = B.schedule b ~conflict:(Conflict.Table Repro_workload.Gen.service_table) "J1" in
  let j2 = B.schedule b ~conflict:(Conflict.Table Repro_workload.Gen.service_table) "J2" in
  let bot = B.schedule b ~conflict:Conflict.Rw "SJ" in
  let t1 = B.root b ~sched:j1 (Label.v "T1") in
  let t2 = B.root b ~sched:j2 (Label.v "T2") in
  let u1 = B.tx b ~parent:t1 ~sched:bot (Label.v ~args:[ "k" ] "add") in
  let u2 = B.tx b ~parent:t2 ~sched:bot (Label.v ~args:[ "k" ] "add") in
  let w1 = B.leaf b ~parent:u1 (Label.write "x") in
  let w2 = B.leaf b ~parent:u2 (Label.write "x") in
  B.log b ~sched:bot [ w1; w2 ];
  B.log b ~sched:j1 [ u1 ];
  B.log b ~sched:j2 [ u2 ];
  let h = B.seal b in
  (match Shapes.classify h with
  | Shapes.Join { branches; bottom } ->
    let g = Special.ghost_graph h ~branches ~bottom in
    Alcotest.(check bool) "t1 ghost-before t2" true (Repro_order.Rel.mem t1 t2 g);
    Alcotest.(check bool) "no reverse" false (Repro_order.Rel.mem t2 t1 g)
  | other -> Alcotest.failf "expected a join, got %a" Shapes.pp other);
  Alcotest.(check bool) "jcc" true (Special.jcc h);
  Alcotest.(check bool) "comp-c" true (Repro_core.Compc.is_correct h)

let suite =
  [
    ( "criteria",
      [
        Alcotest.test_case "serialization order" `Quick test_serialization_order;
        Alcotest.test_case "cc cycle witness" `Quick test_cc_cycle;
        Alcotest.test_case "precedes (non-overlap order)" `Quick test_precedes;
        Alcotest.test_case "gap witness: LLSR strictly contained" `Quick test_gap_witness_llsr;
        Alcotest.test_case "gap witness: LLSR inside MLSR" `Quick test_gap_witness_llsr_vs_mlsr;
        Alcotest.test_case "gap witness: OPSR strictly contained" `Quick test_gap_witness_opsr;
        Alcotest.test_case "flat csr" `Quick test_flat_csr;
        Alcotest.test_case "flat csr on multilevel" `Quick test_flat_csr_ignores_levels;
        Alcotest.test_case "accepted_by report" `Quick test_accepted_by_report;
        Alcotest.test_case "llsr requires a stack" `Quick test_llsr_requires_stack;
        Alcotest.test_case "ghost graph" `Quick test_ghost_graph;
      ] );
  ]
