test/main.mli:
