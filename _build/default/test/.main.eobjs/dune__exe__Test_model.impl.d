test/test_model.ml: Alcotest Clone Conflict Fmt Gen History Ids Int_set Label List Prng Rel Repro_core Repro_criteria Repro_model Repro_order Repro_workload Validate
