test/test_rel.ml: Alcotest Dump Fmt Gen Hashtbl Ids Int_set List QCheck QCheck_alcotest Rel Repro_order
