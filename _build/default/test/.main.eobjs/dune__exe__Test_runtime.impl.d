test/test_runtime.ml: Alcotest Array Conflict Fmt Hashtbl History Label List Lock Prng Repro_core Repro_histlang Repro_model Repro_runtime Repro_workload Sim Template Validate
