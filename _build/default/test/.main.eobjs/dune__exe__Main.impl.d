test/main.ml: Alcotest Test_core Test_criteria Test_histlang Test_model Test_props Test_rel Test_runtime Test_storage Test_workload
