test/test_props.ml: Clone Gen Hashtbl History Int_set List Prng QCheck QCheck_alcotest Repro_core Repro_criteria Repro_histlang Repro_model Repro_order Repro_workload Validate
