test/test_histlang.ml: Alcotest Conflict Dot Fmt Gen History Label List Prng Repro_core Repro_histlang Repro_model Repro_order Repro_workload String Syntax Validate
