test/test_criteria.ml: Alcotest Classic Conflict History Label List Repro_core Repro_criteria Repro_model Repro_order Repro_workload Ser Shapes Special Validate
