test/test_storage.ml: Alcotest Label List Pagemap Repro_model Repro_storage Store String
