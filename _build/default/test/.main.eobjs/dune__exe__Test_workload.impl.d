test/test_workload.ml: Alcotest Array Clone Fmt Fun Gen Hashtbl History Label List Option Prng Repro_core Repro_model Repro_workload Validate
