(* Tests for the storage substrate: store semantics, undo, page mapping. *)
open Repro_model
open Repro_storage

let test_basic_ops () =
  let s = Store.create () in
  let tx = Store.begin_tx s in
  Alcotest.(check int) "read missing" 0 (Store.apply s tx (Label.read "x"));
  Alcotest.(check int) "write returns new value" 1 (Store.apply s tx (Label.write "x"));
  Alcotest.(check int) "read back" 1 (Store.apply s tx (Label.read "x"));
  Alcotest.(check int) "inc" 2 (Store.apply s tx (Label.incr "x"));
  Alcotest.(check int) "dec" 1 (Store.apply s tx (Label.decr "x"));
  Store.commit s tx;
  Alcotest.(check int) "persists" 1 (Store.get s "x");
  Alcotest.(check int) "reads counted" 2 (Store.reads s);
  Alcotest.(check int) "writes counted" 3 (Store.writes s)

let test_abort_undo () =
  let s = Store.create () in
  Store.set s "x" 10;
  Store.set s "y" 20;
  let tx = Store.begin_tx s in
  ignore (Store.apply s tx (Label.write "x"));
  ignore (Store.apply s tx (Label.incr "y"));
  ignore (Store.apply s tx (Label.write "z"));
  Store.abort s tx;
  Alcotest.(check int) "x restored" 10 (Store.get s "x");
  Alcotest.(check int) "y restored" 20 (Store.get s "y");
  Alcotest.(check (list (pair string int))) "z removed" [ ("x", 10); ("y", 20) ]
    (Store.items s)

let test_abort_interleaved () =
  (* Two open transactions; aborting one must not clobber the other's
     committed effect on a different item. *)
  let s = Store.create () in
  let t1 = Store.begin_tx s in
  let t2 = Store.begin_tx s in
  ignore (Store.apply s t1 (Label.write "a"));
  ignore (Store.apply s t2 (Label.write "b"));
  Store.commit s t2;
  Store.abort s t1;
  Alcotest.(check int) "a rolled back" 0 (Store.get s "a");
  Alcotest.(check int) "b committed" 1 (Store.get s "b")

let test_unknown_tx () =
  let s = Store.create () in
  Alcotest.check_raises "commit unknown" (Invalid_argument "Store: transaction is not open")
    (fun () -> Store.commit s 99)

let test_pagemap () =
  let p1 = Pagemap.page_of "alice" in
  Alcotest.(check string) "deterministic" p1 (Pagemap.page_of "alice");
  Alcotest.(check bool) "prefix" true (String.length p1 > 2 && String.sub p1 0 2 = "pg");
  (match Pagemap.page_ops (Label.read "k") with
  | [ l ] -> Alcotest.(check string) "read maps to page read" "r" l.Label.name
  | _ -> Alcotest.fail "read should map to one op");
  (match Pagemap.page_ops (Label.v ~args:[ "k" ] "insert") with
  | [ a; b; c; d ] ->
    Alcotest.(check (list string)) "insert touches page and index"
      [ "r"; "w"; "r"; "w" ]
      [ a.Label.name; b.Label.name; c.Label.name; d.Label.name ];
    Alcotest.(check bool) "index page" true (Label.item c = Some "pgix");
    Alcotest.(check bool) "data page" true (Label.item a = Some (Pagemap.page_of "k"))
  | _ -> Alcotest.fail "insert should map to four ops");
  Alcotest.(check (list unit)) "no item, no ops" []
    (List.map (fun _ -> ()) (Pagemap.page_ops (Label.v "noop")))

let suite =
  [
    ( "storage",
      [
        Alcotest.test_case "basic operations" `Quick test_basic_ops;
        Alcotest.test_case "abort undoes" `Quick test_abort_undo;
        Alcotest.test_case "interleaved abort" `Quick test_abort_interleaved;
        Alcotest.test_case "unknown transaction" `Quick test_unknown_tx;
        Alcotest.test_case "page mapping" `Quick test_pagemap;
      ] );
  ]
