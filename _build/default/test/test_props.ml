(* QCheck property suites over randomly generated composite executions.
   Histories are drawn via a seed (generation is deterministic), so every
   failure reproduces from the printed seed. *)
open Repro_model
open Repro_workload
module Observed = Repro_core.Observed
module Front = Repro_core.Front
module Compc = Repro_core.Compc

let history_of_seed seed =
  let rng = Prng.create ~seed in
  match seed mod 5 with
  | 0 -> Gen.flat rng ~roots:(2 + (seed mod 3))
  | 1 -> Gen.stack rng ~levels:(2 + (seed mod 3)) ~roots:2
  | 2 -> Gen.fork rng ~branches:2 ~roots:3
  | 3 -> Gen.join rng ~branches:2 ~roots:3
  | _ -> Gen.general rng ~schedules:(3 + (seed mod 3)) ~roots:3

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let prop name count f = QCheck.Test.make ~name ~count arb_seed (fun seed -> f (history_of_seed seed))

let generated_histories_are_valid =
  prop "generated histories satisfy Defs. 3-4" 200 (fun h -> Validate.check h = [])

let observed_order_is_transitive =
  prop "observed order is transitively closed" 150 (fun h ->
      Repro_order.Rel.is_transitive (Observed.compute h).Observed.obs)

let generalized_conflict_is_symmetric =
  prop "generalized conflict is symmetric and irreflexive" 100 (fun h ->
      let rel = Observed.compute h in
      let n = History.n_nodes h in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Observed.conflict h rel a b <> Observed.conflict h rel b a then ok := false;
          if a = b && Observed.conflict h rel a b then ok := false
        done
      done;
      !ok)

let fronts_cover_every_leaf_once =
  prop "every front is an antichain covering each leaf exactly once" 100 (fun h ->
      let open Repro_order.Ids in
      let ancestors_or_self l =
        let rec go acc n =
          let acc = Int_set.add n acc in
          match History.parent h n with Some p -> go acc p | None -> acc
        in
        go Int_set.empty l
      in
      let ok = ref true in
      for i = 0 to History.order h do
        let members = Front.members_at h i in
        List.iter
          (fun l ->
            let covering = Int_set.inter (ancestors_or_self l) members in
            if Int_set.cardinal covering <> 1 then ok := false)
          (History.leaves h)
      done;
      !ok)

let serial_witness_respects_constraints =
  prop "the serial witness respects observed and input orders on roots" 150 (fun h ->
      let v = Compc.check h in
      match v.Compc.certificate.Repro_core.Reduction.outcome with
      | Error _ -> true
      | Ok serial ->
        let pos = Hashtbl.create 8 in
        List.iteri (fun i r -> Hashtbl.replace pos r i) serial;
        let rel = v.Compc.relations in
        let roots = History.roots h in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                a = b
                || (not
                      (Repro_order.Rel.mem a b rel.Observed.obs
                      || Repro_order.Rel.mem a b rel.Observed.inp))
                || Hashtbl.find pos a < Hashtbl.find pos b)
              roots)
          roots)

let copy_preserves_verdict =
  prop "rebuilding a history preserves the Comp-C verdict" 100 (fun h ->
      Compc.is_correct h = Compc.is_correct (Clone.copy h))

let roundtrip_preserves_verdict =
  prop "printing and parsing preserves the Comp-C verdict" 100 (fun h ->
      let h' = Repro_histlang.Syntax.parse (Repro_histlang.Syntax.to_string h) in
      Compc.is_correct h = Compc.is_correct h')

let reduction_steps_shrink_fronts =
  prop "fronts shrink (weakly) as reduction proceeds" 100 (fun h ->
      let open Repro_order.Ids in
      let sizes =
        List.init
          (History.order h + 1)
          (fun i -> Int_set.cardinal (Front.members_at h i))
      in
      let rec weakly_decreasing = function
        | a :: (b :: _ as rest) -> a >= b && weakly_decreasing rest
        | _ -> true
      in
      weakly_decreasing sizes
      && List.nth sizes (History.order h) = List.length (History.roots h))

let specialised_criteria_agree =
  prop "the matching specialised criterion agrees with Comp-C" 200 (fun h ->
      match Repro_criteria.Special.check_matching h with
      | None -> true
      | Some (_, verdict) -> verdict = Compc.is_correct h)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let suite =
  [
    qsuite "core:props"
      [
        generated_histories_are_valid;
        observed_order_is_transitive;
        generalized_conflict_is_symmetric;
        fronts_cover_every_leaf_once;
        serial_witness_respects_constraints;
        copy_preserves_verdict;
        roundtrip_preserves_verdict;
        reduction_steps_shrink_fronts;
        specialised_criteria_agree;
      ];
  ]
