(* Tests for the history description language: parsing, printing,
   round-tripping, and error reporting. *)
open Repro_model
open Repro_histlang

let example =
  {|
# the classic non-serializable flat interleaving
schedule S conflict rw
root T1 @ S T1
root T2 @ S T2
leaf r1x parent T1 r(x)
leaf r1y parent T1 r(y)
leaf w2x parent T2 w(x)
leaf w2y parent T2 w(y)
log S : r1x w2x w2y r1y
|}

let test_parse_basic () =
  let h = Syntax.parse example in
  Alcotest.(check int) "nodes" 6 (History.n_nodes h);
  Alcotest.(check int) "schedules" 1 (History.n_schedules h);
  Alcotest.(check bool) "valid" true (Validate.check h = []);
  Alcotest.(check bool) "not comp-c" false (Repro_core.Compc.is_correct h)

let test_parse_two_level () =
  let h =
    Syntax.parse
      {|
schedule Top conflict table(add/get)
schedule Bot conflict rw
root T1 @ Top T1
root T2 @ Top T2
tx a @ Bot parent T1 add(k)
tx c @ Bot parent T2 get(k)
leaf la parent a w(x)
leaf lc parent c r(x)
log Top : a c
log Bot : la lc
input : T1 < T2
|}
  in
  Alcotest.(check int) "order" 2 (History.order h);
  Alcotest.(check bool) "comp-c" true (Repro_core.Compc.is_correct h)

let test_parse_explicit_forward_reference () =
  (* Explicit conflict pairs may name nodes declared later. *)
  let h =
    Syntax.parse
      {|
schedule S conflict explicit(a/b)
root T1 @ S T1
root T2 @ S T2
leaf a parent T1 p
leaf b parent T2 q
log S : a b
|}
  in
  Alcotest.(check bool) "conflict recorded" true (History.conflicts h 0 2 3);
  Alcotest.(check bool) "valid" true (Validate.check h = [])

let test_parse_strong_markers () =
  let h =
    Syntax.parse
      {|
schedule S conflict rw
root T1 @ S T1
root T2 @ S T2
leaf a parent T1 w(x)
leaf b parent T2 w(x)
input! : T1 < T2
log S : a b
|}
  in
  let s = History.schedule h 0 in
  Alcotest.(check bool) "strong input" true (Repro_order.Rel.mem 0 1 s.History.strong_in);
  Alcotest.(check bool) "strong output expanded" true
    (Repro_order.Rel.mem 2 3 s.History.strong_out)

(* Avoid depending on astring: tiny substring check. *)
module Astring = struct
  module String = struct
    let is_infix ~affix s =
      let n = String.length affix and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
      n = 0 || go 0
  end
end

let check_parse_error src fragment =
  match Syntax.parse src with
  | exception Syntax.Parse_error e ->
    let msg = Fmt.str "%a" Syntax.pp_error e in
    Alcotest.(check bool)
      (Fmt.str "error mentions %S (got %S)" fragment msg)
      true
      (Astring.String.is_infix ~affix:fragment msg)
  | _ -> Alcotest.failf "expected a parse error for %S" src

let test_parse_errors () =
  check_parse_error "schedule" "unexpected end";
  check_parse_error "root T1 @ S T1" "unknown schedule";
  check_parse_error "schedule S conflict rw\nleaf a parent T b" "unknown node";
  check_parse_error "schedule S conflict bogus" "unknown conflict specification";
  check_parse_error "frobnicate" "unknown item";
  check_parse_error "schedule S conflict rw\nroot T @ S T\nroot T @ S T" "duplicate node"

let roundtrip h =
  let txt = Syntax.to_string h in
  let h' =
    try Syntax.parse txt
    with Syntax.Parse_error e ->
      Alcotest.failf "re-parse failed: %a@.%s" Syntax.pp_error e txt
  in
  Alcotest.(check int) "nodes" (History.n_nodes h) (History.n_nodes h');
  Alcotest.(check int) "schedules" (History.n_schedules h) (History.n_schedules h');
  List.iter
    (fun (s : History.schedule) ->
      let s' = History.schedule h' s.History.sid in
      Alcotest.(check bool)
        (Fmt.str "weak_out %s" s.History.sname)
        true
        (Repro_order.Rel.equal s.History.weak_out s'.History.weak_out);
      Alcotest.(check bool)
        (Fmt.str "strong_in %s" s.History.sname)
        true
        (Repro_order.Rel.equal s.History.strong_in s'.History.strong_in))
    (History.schedules h);
  Alcotest.(check bool) "same verdict" (Repro_core.Compc.is_correct h)
    (Repro_core.Compc.is_correct h')

let test_roundtrip_generated () =
  let open Repro_workload in
  for i = 0 to 20 do
    let rng = Prng.create ~seed:(600 + i) in
    roundtrip (Gen.general rng ~schedules:3 ~roots:3);
    roundtrip (Gen.stack rng ~levels:2 ~roots:2)
  done

let test_dot_export () =
  let h = Syntax.parse example in
  let rel = Repro_core.Observed.compute h in
  let forest = Dot.forest ~obs:rel.Repro_core.Observed.obs h in
  Alcotest.(check bool) "digraph" true (String.length forest > 0);
  (* one node statement per history node *)
  for i = 0 to History.n_nodes h - 1 do
    Alcotest.(check bool)
      (Fmt.str "node n%d present" i)
      true
      (Astring.String.is_infix ~affix:(Fmt.str "n%d [label=" i) forest)
  done;
  (* tree edges present *)
  Alcotest.(check bool) "tree edge" true (Astring.String.is_infix ~affix:"n0 -> n2;" forest);
  (* observed-order overlay present *)
  Alcotest.(check bool) "obs edge" true (Astring.String.is_infix ~affix:"style=dashed" forest);
  let ig = Dot.invocation_graph h in
  Alcotest.(check bool) "schedule node" true (Astring.String.is_infix ~affix:"level 1" ig)

let test_dot_escaping () =
  (* Labels with quotes and backslashes must not break the DOT syntax. *)
  let b = History.Builder.create () in
  let s = History.Builder.schedule b ~conflict:Conflict.Rw {|S"x\|} in
  let t = History.Builder.root b ~sched:s (Label.v {|T"1|}) in
  ignore (History.Builder.leaf b ~parent:t (Label.read {|a"b|}));
  let h = History.Builder.seal b in
  let forest = Dot.forest h in
  Alcotest.(check bool) "escaped quote" true
    (Astring.String.is_infix ~affix:{|\"|} forest)

let suite =
  [
    ( "histlang",
      [
        Alcotest.test_case "parse: flat example" `Quick test_parse_basic;
        Alcotest.test_case "parse: two-level" `Quick test_parse_two_level;
        Alcotest.test_case "parse: explicit forward refs" `Quick
          test_parse_explicit_forward_reference;
        Alcotest.test_case "parse: strong markers" `Quick test_parse_strong_markers;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "round trip generated histories" `Quick test_roundtrip_generated;
        Alcotest.test_case "dot export" `Quick test_dot_export;
        Alcotest.test_case "dot escaping" `Quick test_dot_escaping;
      ] );
  ]
