(* Tests for labels, conflict specifications, the history builder, seal-time
   order completion, and the Def. 3/4 validator. *)
open Repro_order
open Repro_model
module B = History.Builder

let lbl l = Fmt.str "%a" Label.pp l

let test_labels () =
  Alcotest.(check string) "read" "r(x)" (lbl (Label.read "x"));
  Alcotest.(check string) "custom" "transfer(a,b)" (lbl (Label.v ~args:[ "a"; "b" ] "transfer"));
  Alcotest.(check string) "no args" "commit" (lbl (Label.v "commit"));
  Alcotest.(check bool) "equal" true (Label.equal (Label.read "x") (Label.read "x"));
  Alcotest.(check bool) "item" true (Label.item (Label.write "y") = Some "y");
  Alcotest.(check bool) "no item" true (Label.item (Label.v "c") = None)

let eval spec labels a b =
  Conflict.eval spec ~get_label:(fun i -> List.nth labels i) a b

let test_conflict_rw () =
  let labels = [ Label.read "x"; Label.write "x"; Label.read "y"; Label.incr "x"; Label.incr "x" ] in
  let c = eval Conflict.Rw labels in
  Alcotest.(check bool) "r-w same item" true (c 0 1);
  Alcotest.(check bool) "symmetric" true (c 1 0);
  Alcotest.(check bool) "r-r" false (c 0 0);
  Alcotest.(check bool) "different items" false (c 1 2);
  Alcotest.(check bool) "inc-inc commute" false (c 3 4);
  Alcotest.(check bool) "inc-r conflict" true (c 0 3)

let test_conflict_table () =
  let labels =
    [ Label.v ~args:[ "a" ] "add"; Label.v ~args:[ "a" ] "get"; Label.v ~args:[ "b" ] "get";
      Label.v ~args:[ "a" ] "add" ]
  in
  let c = eval (Conflict.Table [ ("add", "get") ]) labels in
  Alcotest.(check bool) "add-get same arg" true (c 0 1);
  Alcotest.(check bool) "add-get other arg" false (c 0 2);
  Alcotest.(check bool) "add-add unlisted" false (c 0 3)

let test_conflict_explicit () =
  let labels = [ Label.v "a"; Label.v "b"; Label.v "c" ] in
  let c = eval (Conflict.Explicit [ (0, 1) ]) labels in
  Alcotest.(check bool) "listed" true (c 0 1);
  Alcotest.(check bool) "reverse" true (c 1 0);
  Alcotest.(check bool) "unlisted" false (c 0 2);
  Alcotest.(check bool) "never" false (eval Conflict.Never labels 0 1);
  Alcotest.(check bool) "always" true (eval Conflict.Always labels 0 1);
  Alcotest.(check bool) "always irreflexive" false (eval Conflict.Always labels 1 1)

(* A tiny two-root flat history used by several tests. *)
let flat_history ~log:order () =
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let r1 = B.leaf b ~parent:t1 (Label.read "x") in
  let w1 = B.leaf b ~parent:t1 (Label.write "y") in
  let r2 = B.leaf b ~parent:t2 (Label.read "y") in
  let w2 = B.leaf b ~parent:t2 (Label.write "x") in
  B.log b ~sched:s (order (r1, w1, r2, w2));
  (B.seal b, (t1, t2), (r1, w1, r2, w2))

let test_builder_basics () =
  let h, (t1, t2), (r1, w1, r2, w2) = flat_history ~log:(fun (a, b, c, d) -> [ a; b; c; d ]) () in
  Alcotest.(check int) "nodes" 6 (History.n_nodes h);
  Alcotest.(check int) "schedules" 1 (History.n_schedules h);
  Alcotest.(check (list int)) "roots" [ t1; t2 ] (History.roots h);
  Alcotest.(check (list int)) "leaves" [ r1; w1; r2; w2 ] (History.leaves h);
  Alcotest.(check bool) "is_leaf" true (History.is_leaf h r1);
  Alcotest.(check bool) "root not leaf" false (History.is_leaf h t1);
  Alcotest.(check (list int)) "children" [ r1; w1 ] (History.children h t1);
  Alcotest.(check int) "parent_tx of leaf" t1 (History.parent_tx h r1);
  Alcotest.(check int) "parent_tx of root" t2 (History.parent_tx h t2);
  Alcotest.(check int) "order" 1 (History.order h);
  Alcotest.(check int) "level of leaf" 0 (History.level_of_node h r1);
  Alcotest.(check int) "level of root" 1 (History.level_of_node h t1)

let test_seal_minimal_weak_out () =
  let h, _, (r1, w1, r2, w2) = flat_history ~log:(fun (a, b, c, d) -> [ a; c; b; d ]) () in
  let s = History.schedule h 0 in
  (* log: r1 r2 w1 w2; conflicts: (w1,r2) on y ordered r2 < w1; (r1,w2) on x
     ordered r1 < w2.  Non-conflicting pairs are not ordered. *)
  Alcotest.(check bool) "conflict pair x" true (Rel.mem r1 w2 s.History.weak_out);
  Alcotest.(check bool) "conflict pair y" true (Rel.mem r2 w1 s.History.weak_out);
  Alcotest.(check bool) "no commuting pair" false (Rel.mem r1 r2 s.History.weak_out);
  Alcotest.(check bool) "no same-tx pair without intra" false (Rel.mem r1 w1 s.History.weak_out)

let test_seal_input_expansion () =
  (* A strong root input order expands to strong output pairs over all
     operations, which in turn appear in the weak output. *)
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let w1 = B.leaf b ~parent:t1 (Label.write "x") in
  let r2 = B.leaf b ~parent:t2 (Label.read "q") in
  B.input_strong b ~a:t1 ~b:t2;
  B.log b ~sched:s [ w1; r2 ];
  let h = B.seal b in
  let sc = History.schedule h 0 in
  Alcotest.(check bool) "strong out" true (Rel.mem w1 r2 sc.History.strong_out);
  Alcotest.(check bool) "weak out contains strong" true (Rel.mem w1 r2 sc.History.weak_out);
  Alcotest.(check bool) "strong in recorded" true (Rel.mem t1 t2 sc.History.strong_in);
  Alcotest.(check bool) "weak in contains strong" true (Rel.mem t1 t2 sc.History.weak_in)

let test_seal_inheritance () =
  (* Two-level history: the top schedule's output order over two
     subtransactions of the same lower schedule must become the lower
     schedule's input order (Def. 4.7). *)
  let b = B.create () in
  let top = B.schedule b ~conflict:Conflict.Same_item "Top" in
  let bot = B.schedule b ~conflict:Conflict.Rw "Bot" in
  let t1 = B.root b ~sched:top (Label.v "T1") in
  let t2 = B.root b ~sched:top (Label.v "T2") in
  let a = B.tx b ~parent:t1 ~sched:bot (Label.v ~args:[ "k" ] "svc") in
  let c = B.tx b ~parent:t2 ~sched:bot (Label.v ~args:[ "k" ] "svc") in
  let la = B.leaf b ~parent:a (Label.write "x") in
  let lc = B.leaf b ~parent:c (Label.write "x") in
  B.log b ~sched:top [ a; c ];
  B.log b ~sched:bot [ la; lc ];
  let h = B.seal b in
  let bot_s = History.schedule h bot in
  Alcotest.(check bool) "input inherited" true (Rel.mem a c bot_s.History.weak_in);
  Alcotest.(check bool) "leaf order follows" true (Rel.mem la lc bot_s.History.weak_out);
  Alcotest.(check (list unit)) "valid" [] (List.map (fun _ -> ()) (Validate.check h))

let test_seal_rejects_recursion () =
  let b = B.create () in
  let s1 = B.schedule b "A" in
  let s2 = B.schedule b "B" in
  let t = B.root b ~sched:s1 (Label.v "T") in
  let u = B.tx b ~parent:t ~sched:s2 (Label.v "u") in
  let v = B.tx b ~parent:u ~sched:s1 (Label.v "v") in
  ignore (B.leaf b ~parent:v (Label.read "x"));
  Alcotest.check_raises "recursive invocation graph"
    (Invalid_argument "History.Builder.seal: recursive invocation graph") (fun () ->
      ignore (B.seal b))

let test_seal_rejects_self_invocation () =
  let b = B.create () in
  let s = B.schedule b "A" in
  let t = B.root b ~sched:s (Label.v "T") in
  ignore (B.tx b ~parent:t ~sched:s (Label.v "u"));
  Alcotest.check_raises "self invocation"
    (Invalid_argument "History.Builder.seal: schedule invokes itself") (fun () ->
      ignore (B.seal b))

let test_seal_rejects_bad_log () =
  let b = B.create () in
  let s = B.schedule b "S" in
  let t = B.root b ~sched:s (Label.v "T") in
  let l1 = B.leaf b ~parent:t (Label.read "x") in
  ignore l1;
  B.log b ~sched:s [];
  (* An empty log is "absent", fine; a log missing operations is not. *)
  ignore (B.seal b);
  let b = B.create () in
  let s = B.schedule b "S" in
  let t = B.root b ~sched:s (Label.v "T") in
  let l1 = B.leaf b ~parent:t (Label.read "x") in
  let l2 = B.leaf b ~parent:t (Label.read "y") in
  ignore l2;
  B.log b ~sched:s [ l1 ];
  Alcotest.check_raises "incomplete log"
    (Invalid_argument
       "History.Builder.seal: log of schedule S is not a permutation of its operations")
    (fun () -> ignore (B.seal b))

let test_validate_accepts_generated () =
  (* Every generated history across all shapes must validate. *)
  let open Repro_workload in
  for i = 0 to 30 do
    let rng = Prng.create ~seed:(1000 + i) in
    let check h = Alcotest.(check bool) "valid" true (Validate.check h = []) in
    check (Gen.flat rng ~roots:3);
    check (Gen.stack rng ~levels:3 ~roots:2);
    check (Gen.fork rng ~branches:3 ~roots:3);
    check (Gen.join rng ~branches:2 ~roots:3);
    check (Gen.general rng ~schedules:4 ~roots:3)
  done

let test_validate_unordered_conflict () =
  (* Two conflicting leaves with no log and no explicit order: cond 1c. *)
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  ignore (B.leaf b ~parent:t1 (Label.write "x"));
  ignore (B.leaf b ~parent:t2 (Label.write "x"));
  let h = B.seal b in
  match Validate.check h with
  | [ Validate.Unordered_conflict _ ] -> ()
  | errs -> Alcotest.failf "expected one Unordered_conflict, got %d errors" (List.length errs)

let test_validate_log_contradiction () =
  (* Claim an output order opposite to the log on a conflicting pair. *)
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let w1 = B.leaf b ~parent:t1 (Label.write "x") in
  let w2 = B.leaf b ~parent:t2 (Label.write "x") in
  B.weak_out b ~a:w2 ~b:w1;
  B.log b ~sched:s [ w1; w2 ];
  let h = B.seal b in
  let errs = Validate.check h in
  Alcotest.(check bool) "log contradiction reported" true
    (List.exists (function Validate.Log_contradicts_output _ -> true | _ -> false) errs)

let test_validate_log_contradicts_strong () =
  (* A strong root input order demands all of T1's operations before all of
     T2's, but the log interleaves two commuting operations the other way;
     the weak check cannot see it (they do not conflict), the strong check
     must. *)
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let w1 = B.leaf b ~parent:t1 (Label.write "x") in
  let r2 = B.leaf b ~parent:t2 (Label.read "q") in
  B.input_strong b ~a:t1 ~b:t2;
  B.log b ~sched:s [ r2; w1 ];
  let h = B.seal b in
  let errs = Validate.check h in
  Alcotest.(check bool) "strong contradiction reported" true
    (List.exists (function Validate.Log_contradicts_strong _ -> true | _ -> false) errs)

let test_validate_cyclic_output () =
  (* Explicitly claim both directions for a conflicting pair: the closed
     weak output order becomes cyclic. *)
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let w1 = B.leaf b ~parent:t1 (Label.write "x") in
  let w2 = B.leaf b ~parent:t2 (Label.write "x") in
  B.weak_out b ~a:w1 ~b:w2;
  B.weak_out b ~a:w2 ~b:w1;
  let h = B.seal b in
  let errs = Validate.check h in
  Alcotest.(check bool) "cycle reported" true
    (List.exists (function Validate.Cyclic_order _ -> true | _ -> false) errs)

let test_validate_input_order_violated () =
  (* Client orders T1 before T2, but the schedule claims the conflicting
     operations the other way round (explicit outputs suppress the log
     derivation, and the input-derived pair creates the contradiction). *)
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let w1 = B.leaf b ~parent:t1 (Label.write "x") in
  let w2 = B.leaf b ~parent:t2 (Label.write "x") in
  B.input_weak b ~a:t1 ~b:t2;
  B.weak_out b ~a:w2 ~b:w1;
  let h = B.seal b in
  let errs = Validate.check h in
  Alcotest.(check bool) "some violation reported" true (errs <> []);
  Alcotest.(check bool) "as a cyclic output (auto-completed) " true
    (List.exists (function Validate.Cyclic_order _ -> true | _ -> false) errs)

let test_builder_misuse () =
  let b = B.create () in
  let s = B.schedule b ~conflict:Conflict.Rw "S" in
  let t1 = B.root b ~sched:s (Label.v "T1") in
  let l = B.leaf b ~parent:t1 (Label.read "x") in
  Alcotest.check_raises "leaf cannot parent"
    (Invalid_argument "History.Builder.leaf: parent is a leaf") (fun () ->
      ignore (B.leaf b ~parent:l (Label.read "y")));
  Alcotest.check_raises "self order"
    (Invalid_argument "History.Builder.weak_out: 1 ordered against itself") (fun () ->
      B.weak_out b ~a:l ~b:l);
  let t2 = B.root b ~sched:s (Label.v "T2") in
  let m = B.leaf b ~parent:t2 (Label.read "z") in
  Alcotest.check_raises "intra requires siblings"
    (Invalid_argument "History.Builder.intra_weak: 1 and 3 are not siblings") (fun () ->
      B.intra_weak b ~a:l ~b:m);
  Alcotest.check_raises "input requires roots"
    (Invalid_argument "History.Builder.input_weak: 1 and 3 must be roots") (fun () ->
      B.input_weak b ~a:l ~b:m)

let test_descendants () =
  let b = B.create () in
  let top = B.schedule b ~conflict:Conflict.Same_item "Top" in
  let bot = B.schedule b ~conflict:Conflict.Rw "Bot" in
  let t = B.root b ~sched:top (Label.v "T") in
  let u = B.tx b ~parent:t ~sched:bot (Label.v ~args:[ "k" ] "svc") in
  let l = B.leaf b ~parent:u (Label.read "x") in
  B.log b ~sched:bot [ l ];
  B.log b ~sched:top [ u ];
  let h = B.seal b in
  let open Ids in
  Alcotest.(check bool) "descendants" true
    (Int_set.equal (History.descendants h t) (Int_set.of_list [ u; l ]));
  Alcotest.(check bool) "composite tx" true
    (Int_set.equal (History.composite_transaction h t) (Int_set.of_list [ t; u; l ]));
  Alcotest.(check bool) "ig edge" true (Rel.mem top bot (History.invocation_graph h));
  Alcotest.(check int) "top level" 2 (History.level h top);
  Alcotest.(check int) "bot level" 1 (History.level h bot)

let test_clone_roundtrip () =
  let open Repro_workload in
  for i = 0 to 10 do
    let rng = Prng.create ~seed:(77 + i) in
    let h = Gen.general rng ~schedules:3 ~roots:3 in
    let h' = Clone.copy h in
    Alcotest.(check int) "nodes preserved" (History.n_nodes h) (History.n_nodes h');
    Alcotest.(check bool) "same verdict" (Repro_core.Compc.is_correct h)
      (Repro_core.Compc.is_correct h');
    List.iter
      (fun (s : History.schedule) ->
        let s' = History.schedule h' s.History.sid in
        Alcotest.(check bool)
          (Fmt.str "weak_out of %s preserved" s.History.sname)
          true
          (Rel.equal s.History.weak_out s'.History.weak_out))
      (History.schedules h)
  done

let test_shapes () =
  let open Repro_workload in
  let rng = Prng.create ~seed:5 in
  let is_shape f h = f (Repro_criteria.Shapes.classify h) in
  Alcotest.(check bool) "flat" true
    (is_shape (function Repro_criteria.Shapes.Stack [ _ ] -> true | _ -> false)
       (Gen.flat rng ~roots:3));
  Alcotest.(check bool) "stack" true
    (is_shape
       (function Repro_criteria.Shapes.Stack l -> List.length l = 3 | _ -> false)
       (Gen.stack rng ~levels:3 ~roots:2));
  Alcotest.(check bool) "fork" true
    (is_shape
       (function Repro_criteria.Shapes.Fork { branches; _ } -> List.length branches = 3 | _ -> false)
       (Gen.fork rng ~branches:3 ~roots:3));
  Alcotest.(check bool) "join" true
    (is_shape
       (function Repro_criteria.Shapes.Join { branches; _ } -> List.length branches = 2 | _ -> false)
       (Gen.join rng ~branches:2 ~roots:3))

let suite =
  [
    ( "model",
      [
        Alcotest.test_case "labels" `Quick test_labels;
        Alcotest.test_case "conflict: rw" `Quick test_conflict_rw;
        Alcotest.test_case "conflict: table" `Quick test_conflict_table;
        Alcotest.test_case "conflict: explicit/never/always" `Quick test_conflict_explicit;
        Alcotest.test_case "builder basics" `Quick test_builder_basics;
        Alcotest.test_case "seal derives minimal weak output" `Quick test_seal_minimal_weak_out;
        Alcotest.test_case "seal expands strong inputs" `Quick test_seal_input_expansion;
        Alcotest.test_case "seal inherits input orders" `Quick test_seal_inheritance;
        Alcotest.test_case "seal rejects recursion" `Quick test_seal_rejects_recursion;
        Alcotest.test_case "seal rejects self-invocation" `Quick test_seal_rejects_self_invocation;
        Alcotest.test_case "seal rejects bad logs" `Quick test_seal_rejects_bad_log;
        Alcotest.test_case "validator accepts generated histories" `Quick test_validate_accepts_generated;
        Alcotest.test_case "validator: unordered conflict" `Quick test_validate_unordered_conflict;
        Alcotest.test_case "validator: log contradiction" `Quick test_validate_log_contradiction;
        Alcotest.test_case "validator: cyclic explicit output" `Quick test_validate_cyclic_output;
        Alcotest.test_case "validator: log contradicts strong order" `Quick
          test_validate_log_contradicts_strong;
        Alcotest.test_case "validator: input order violated" `Quick
          test_validate_input_order_violated;
        Alcotest.test_case "builder misuse raises" `Quick test_builder_misuse;
        Alcotest.test_case "descendants and structure" `Quick test_descendants;
        Alcotest.test_case "clone round-trips" `Quick test_clone_roundtrip;
        Alcotest.test_case "shape recognizers" `Quick test_shapes;
      ] );
  ]
