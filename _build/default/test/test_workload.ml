(* Tests for the PRNG and the generators (beyond the agreement tests in
   Test_core): determinism, profile effects, structural properties. *)
open Repro_model
open Repro_workload

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create ~seed:8 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_bounds () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_uniformish () =
  let rng = Prng.create ~seed:11 in
  let counts = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Prng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Fmt.str "bucket %d near uniform (%d)" i c)
        true
        (abs (c - (n / 10)) < n / 20))
    counts

let test_shuffle_permutation () =
  let rng = Prng.create ~seed:5 in
  let l = List.init 50 Fun.id in
  let p = Prng.permutation rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare p);
  Alcotest.(check bool) "usually not identity" true (p <> l)

let test_generator_determinism () =
  let h1 = Gen.general (Prng.create ~seed:99) ~schedules:4 ~roots:3 in
  let h2 = Gen.general (Prng.create ~seed:99) ~schedules:4 ~roots:3 in
  Alcotest.(check int) "same size" (History.n_nodes h1) (History.n_nodes h2);
  Alcotest.(check bool) "same verdict" (Repro_core.Compc.is_correct h1)
    (Repro_core.Compc.is_correct h2);
  List.iter2
    (fun (s1 : History.schedule) (s2 : History.schedule) ->
      Alcotest.(check bool) "same logs" true (s1.History.log = s2.History.log))
    (History.schedules h1) (History.schedules h2)

let test_stack_structure () =
  let h = Gen.stack (Prng.create ~seed:21) ~levels:4 ~roots:3 in
  Alcotest.(check int) "order 4" 4 (History.order h);
  Alcotest.(check int) "4 schedules" 4 (History.n_schedules h);
  Alcotest.(check int) "3 roots" 3 (List.length (History.roots h));
  (* Every leaf hangs off a level-1 transaction. *)
  List.iter
    (fun l ->
      match History.parent h l with
      | Some p -> Alcotest.(check int) "leaf under level 1" 1 (History.level_of_node h p)
      | None -> Alcotest.fail "leaf without parent")
    (History.leaves h)

let test_fork_disjoint_items () =
  (* Operations of different branches never touch the same item, as Def. 23
     requires. *)
  let h = Gen.fork (Prng.create ~seed:31) ~branches:3 ~roots:4 in
  let branch_items = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match (History.sched_of_tx h n, Label.item (History.label h n)) with
      | Some s, Some it when s > 0 ->
        let items =
          Option.value ~default:[] (Hashtbl.find_opt branch_items s)
        in
        Hashtbl.replace branch_items s (it :: items)
      | _ -> ())
    (History.internal_nodes h);
  let all = Hashtbl.fold (fun s items acc -> (s, items) :: acc) branch_items [] in
  List.iter
    (fun (s, items) ->
      List.iter
        (fun (s', items') ->
          if s <> s' then
            List.iter
              (fun it ->
                Alcotest.(check bool)
                  (Fmt.str "item %s only in one branch" it)
                  false (List.mem it items'))
              items)
        all)
    all

let test_ops_range () =
  let profile = { Gen.default_profile with Gen.ops_min = 2; ops_max = 2 } in
  let h = Gen.flat ~profile (Prng.create ~seed:41) ~roots:5 in
  List.iter
    (fun r ->
      Alcotest.(check int) "exactly 2 ops" 2 (List.length (History.children h r)))
    (History.roots h)

let test_populate_revalidates () =
  (* populate on an already-populated history re-draws logs and stays
     valid. *)
  let h = Gen.stack (Prng.create ~seed:51) ~levels:3 ~roots:3 in
  let h' = Gen.populate (Prng.create ~seed:52) h in
  Alcotest.(check int) "same nodes" (History.n_nodes h) (History.n_nodes h');
  Alcotest.(check (list unit)) "valid" []
    (List.map (fun _ -> ()) (Validate.check h'))

let test_clone_with_logs_replaces () =
  let h = Gen.flat (Prng.create ~seed:61) ~roots:2 in
  let s = History.schedule h 0 in
  let reversed = List.rev s.History.log in
  let h' = Clone.with_logs h ~logs:(fun _ -> Some reversed) in
  Alcotest.(check (list int)) "log replaced" reversed (History.schedule h' 0).History.log

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
        Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
        Alcotest.test_case "prng uniformity" `Quick test_prng_uniformish;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
        Alcotest.test_case "generators are deterministic" `Quick test_generator_determinism;
        Alcotest.test_case "stack structure" `Quick test_stack_structure;
        Alcotest.test_case "fork branches have disjoint items" `Quick test_fork_disjoint_items;
        Alcotest.test_case "ops per transaction range" `Quick test_ops_range;
        Alcotest.test_case "populate re-draws logs" `Quick test_populate_revalidates;
        Alcotest.test_case "clone with replaced logs" `Quick test_clone_with_logs_replaces;
      ] );
  ]
