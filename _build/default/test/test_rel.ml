(* Unit and property tests for the relation toolkit. *)
open Repro_order

let rel = Alcotest.testable Rel.pp Rel.equal

(* A small generator of relations over nodes 0..9. *)
let arb_rel =
  let open QCheck in
  let pair = Gen.map2 (fun a b -> (a, b)) (Gen.int_bound 9) (Gen.int_bound 9) in
  make
    ~print:(fun r -> Fmt.str "%a" Rel.pp r)
    (Gen.map (fun l -> Rel.of_list (List.filter (fun (a, b) -> a <> b) l)) (Gen.list_size (Gen.int_bound 20) pair))

let test_add_mem () =
  let r = Rel.(add 1 2 (add 3 4 empty)) in
  Alcotest.(check bool) "mem 1 2" true (Rel.mem 1 2 r);
  Alcotest.(check bool) "mem 2 1" false (Rel.mem 2 1 r);
  Alcotest.(check int) "cardinal" 2 (Rel.cardinal r);
  let r = Rel.add 1 2 r in
  Alcotest.(check int) "idempotent add" 2 (Rel.cardinal r)

let test_remove () =
  let r = Rel.(remove 1 2 (of_list [ (1, 2); (1, 3) ])) in
  Alcotest.check rel "removed" (Rel.of_list [ (1, 3) ]) r;
  Alcotest.check rel "remove absent" r (Rel.remove 7 8 r)

let test_set_ops () =
  let r1 = Rel.of_list [ (1, 2); (2, 3) ] and r2 = Rel.of_list [ (2, 3); (3, 4) ] in
  Alcotest.check rel "union" (Rel.of_list [ (1, 2); (2, 3); (3, 4) ]) (Rel.union r1 r2);
  Alcotest.check rel "inter" (Rel.of_list [ (2, 3) ]) (Rel.inter r1 r2);
  Alcotest.check rel "diff" (Rel.of_list [ (1, 2) ]) (Rel.diff r1 r2);
  Alcotest.(check bool) "subset" true (Rel.subset (Rel.of_list [ (2, 3) ]) r1);
  Alcotest.(check bool) "not subset" false (Rel.subset r2 r1)

let test_closure () =
  let r = Rel.of_list [ (1, 2); (2, 3); (3, 4) ] in
  let c = Rel.transitive_closure r in
  Alcotest.(check bool) "1->4" true (Rel.mem 1 4 c);
  Alcotest.(check bool) "4->1 absent" false (Rel.mem 4 1 c);
  Alcotest.(check int) "pair count" 6 (Rel.cardinal c);
  Alcotest.(check bool) "transitive" true (Rel.is_transitive c)

let test_closure_cycle () =
  let r = Rel.of_list [ (1, 2); (2, 1) ] in
  let c = Rel.transitive_closure r in
  Alcotest.(check bool) "self pair 1" true (Rel.mem 1 1 c);
  Alcotest.(check bool) "self pair 2" true (Rel.mem 2 2 c);
  Alcotest.(check bool) "irreflexive detects" false (Rel.irreflexive c)

let test_cycle_detection () =
  Alcotest.(check bool) "acyclic chain" true (Rel.is_acyclic (Rel.of_list [ (1, 2); (2, 3) ]));
  Alcotest.(check bool) "cycle" false (Rel.is_acyclic (Rel.of_list [ (1, 2); (2, 3); (3, 1) ]));
  match Rel.find_cycle (Rel.of_list [ (1, 2); (2, 3); (3, 1); (0, 1) ]) with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    Alcotest.(check int) "cycle length" 3 (List.length cycle);
    (* Each consecutive pair (and the wrap-around) must be an edge. *)
    let r = Rel.of_list [ (1, 2); (2, 3); (3, 1); (0, 1) ] in
    let rec check = function
      | [] -> ()
      | [ last ] -> Alcotest.(check bool) "wrap edge" true (Rel.mem last (List.hd cycle) r)
      | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "edge" true (Rel.mem a b r);
        check rest
    in
    check cycle

let test_topo () =
  let open Ids in
  let nodes = Int_set.of_list [ 0; 1; 2; 3 ] in
  (match Rel.topo_sort ~nodes (Rel.of_list [ (2, 1); (1, 0) ]) with
  | Some [ 2; 1; 0; 3 ] -> ()
  | Some other -> Alcotest.failf "unexpected order %a" Fmt.(Dump.list int) other
  | None -> Alcotest.fail "expected an order");
  Alcotest.(check bool) "cycle gives None" true
    (Rel.topo_sort ~nodes (Rel.of_list [ (0, 1); (1, 0) ]) = None);
  (* Nodes outside the universe are ignored. *)
  match Rel.topo_sort ~nodes:(Int_set.of_list [ 0; 1 ]) (Rel.of_list [ (0, 1); (1, 9); (9, 0) ]) with
  | Some [ 0; 1 ] -> ()
  | _ -> Alcotest.fail "restriction to universe failed"

let test_quotient () =
  (* Clusters {0,1} -> 100 and {2,3} -> 200: edge 1->2 becomes 100->200,
     intra edge 0->1 disappears. *)
  let cls n = if n <= 1 then 100 else 200 in
  let q = Rel.quotient cls (Rel.of_list [ (0, 1); (1, 2); (3, 2) ]) in
  Alcotest.check rel "contracted" (Rel.of_list [ (100, 200) ]) q

let test_total_on () =
  let open Ids in
  let ns = Int_set.of_list [ 1; 2; 3 ] in
  Alcotest.(check bool) "total" true
    (Rel.total_on ns (Rel.of_list [ (1, 2); (2, 3); (1, 3) ]));
  Alcotest.(check bool) "partial" false (Rel.total_on ns (Rel.of_list [ (1, 2) ]))

let test_restrict_map () =
  let r = Rel.of_list [ (1, 2); (2, 3); (3, 4) ] in
  Alcotest.check rel "restrict"
    (Rel.of_list [ (1, 2) ])
    (Rel.restrict ~keep:(fun n -> n <= 2) r)

let test_map_nodes () =
  (* (1,2) -> (0,1); (4,5) -> (2,2) collapses and is dropped. *)
  let r = Rel.of_list [ (1, 2); (4, 5) ] in
  Alcotest.check rel "renamed" (Rel.of_list [ (0, 1) ]) (Rel.map_nodes (fun n -> n / 2) r)

let test_transitive_reduction () =
  let r = Rel.of_list [ (1, 2); (2, 3); (1, 3) ] in
  Alcotest.check rel "chain reduced" (Rel.of_list [ (1, 2); (2, 3) ])
    (Rel.transitive_reduction r);
  let r = Rel.of_list [ (1, 2); (3, 4) ] in
  Alcotest.check rel "already minimal" r (Rel.transitive_reduction r)

(* Properties *)

let prop_closure_transitive =
  QCheck.Test.make ~name:"closure is transitive" ~count:500 arb_rel (fun r ->
      Rel.is_transitive (Rel.transitive_closure r))

let prop_closure_contains =
  QCheck.Test.make ~name:"closure contains original" ~count:500 arb_rel (fun r ->
      Rel.subset r (Rel.transitive_closure r))

let prop_closure_idempotent =
  QCheck.Test.make ~name:"closure is idempotent" ~count:500 arb_rel (fun r ->
      let c = Rel.transitive_closure r in
      Rel.equal c (Rel.transitive_closure c))

let prop_closure_minimal =
  QCheck.Test.make ~name:"closure pairs are reachability" ~count:200 arb_rel (fun r ->
      let c = Rel.transitive_closure r in
      let open Ids in
      Int_set.for_all
        (fun a -> Int_set.equal (Rel.succs c a) (Rel.reachable r a))
        (Rel.nodes r))

let prop_topo_linearizes =
  QCheck.Test.make ~name:"topo sort is a linear extension" ~count:500 arb_rel (fun r ->
      let open Ids in
      let nodes = Int_set.union (Rel.nodes r) (Int_set.of_list [ 0; 1 ]) in
      match Rel.topo_sort ~nodes r with
      | None -> Rel.find_cycle r <> None
      | Some order ->
        List.length order = Int_set.cardinal nodes
        &&
        let pos = Hashtbl.create 16 in
        List.iteri (fun i n -> Hashtbl.replace pos n i) order;
        Rel.fold
          (fun a b ok -> ok && Hashtbl.find pos a < Hashtbl.find pos b)
          r true)

let prop_cycle_is_real =
  QCheck.Test.make ~name:"find_cycle returns a real cycle" ~count:500 arb_rel (fun r ->
      match Rel.find_cycle r with
      | None -> Rel.topo_sort ~nodes:(Rel.nodes r) r <> None
      | Some [] -> false
      | Some (first :: _ as cycle) ->
        let rec edges = function
          | [] -> true
          | [ last ] -> Rel.mem last first r
          | a :: (b :: _ as rest) -> Rel.mem a b r && edges rest
        in
        edges cycle)

let acyclic_of r =
  (* Make an arbitrary relation acyclic by keeping only ascending pairs. *)
  Rel.filter (fun a b -> a < b) r

let prop_reduction_preserves_closure =
  QCheck.Test.make ~name:"reduction preserves closure (acyclic)" ~count:500 arb_rel
    (fun r ->
      let r = acyclic_of r in
      let red = Rel.transitive_reduction r in
      Rel.subset red r
      && Rel.equal (Rel.transitive_closure red) (Rel.transitive_closure r))

let prop_reduction_minimal =
  QCheck.Test.make ~name:"reduction has no implied pair (acyclic)" ~count:300 arb_rel
    (fun r ->
      let r = acyclic_of r in
      let red = Rel.transitive_reduction r in
      Rel.fold
        (fun a b ok ->
          ok
          && not
               (Rel.equal
                  (Rel.transitive_closure (Rel.remove a b red))
                  (Rel.transitive_closure red)))
        red true)

let prop_quotient_sound =
  QCheck.Test.make ~name:"quotient acyclic => contiguous layout exists" ~count:300 arb_rel
    (fun r ->
      let cls n = n mod 3 in
      let q = Rel.quotient cls r in
      match Rel.find_cycle q with
      | Some _ -> true
      | None ->
        (* Lay clusters out in topological order; check inter-cluster pairs. *)
        let open Ids in
        let cq = Int_set.of_list (List.map cls (Int_set.elements (Rel.nodes r))) in
        (match Rel.topo_sort ~nodes:cq q with
        | None -> false
        | Some corder ->
          let cpos = Hashtbl.create 8 in
          List.iteri (fun i c -> Hashtbl.replace cpos c i) corder;
          Rel.fold
            (fun a b ok ->
              ok && (cls a = cls b || Hashtbl.find cpos (cls a) < Hashtbl.find cpos (cls b)))
            r true))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let suite =
  [
    ( "rel",
      [
        Alcotest.test_case "add/mem" `Quick test_add_mem;
        Alcotest.test_case "remove" `Quick test_remove;
        Alcotest.test_case "set operations" `Quick test_set_ops;
        Alcotest.test_case "transitive closure" `Quick test_closure;
        Alcotest.test_case "closure of a cycle" `Quick test_closure_cycle;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        Alcotest.test_case "topological sort" `Quick test_topo;
        Alcotest.test_case "quotient" `Quick test_quotient;
        Alcotest.test_case "total_on" `Quick test_total_on;
        Alcotest.test_case "restrict" `Quick test_restrict_map;
        Alcotest.test_case "map_nodes" `Quick test_map_nodes;
        Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
      ] );
    qsuite "rel:props"
      [
        prop_closure_transitive;
        prop_closure_contains;
        prop_closure_idempotent;
        prop_closure_minimal;
        prop_reduction_preserves_closure;
        prop_reduction_minimal;
        prop_topo_linearizes;
        prop_cycle_is_real;
        prop_quotient_sound;
      ];
  ]
