(* A federated bank as a FORK configuration (Def. 23): one TP monitor
   routing transactions to two autonomous branch banks with disjoint
   accounts.  Shows (a) the fork criterion FCC coinciding with Comp-C
   (Theorem 3) on a hand-built execution, and (b) the runtime executing the
   same architecture under the three protocols. *)

open Repro_model
open Repro_runtime
module B = History.Builder

(* --- (a) a hand-built fork execution ------------------------------- *)

let hand_built () =
  let b = B.create () in
  let monitor =
    B.schedule b "monitor" ~conflict:(Conflict.Table [ ("transfer", "report") ])
  in
  let zurich = B.schedule b "zurich" ~conflict:Conflict.Rw in
  let geneva = B.schedule b "geneva" ~conflict:Conflict.Rw in
  (* Three customers: two transfers and a report, spread over branches. *)
  let t1 = B.root b ~sched:monitor (Label.v "Transfer1") in
  let t2 = B.root b ~sched:monitor (Label.v "Transfer2") in
  let t3 = B.root b ~sched:monitor (Label.v "Report") in
  let svc parent sched name acct =
    let s = B.tx b ~parent ~sched (Label.v ~args:[ acct ] name) in
    let r = B.leaf b ~parent:s (Label.read acct) in
    let w = if name = "report" then r else B.leaf b ~parent:s (Label.write acct) in
    if w <> r then B.intra_weak b ~a:r ~b:w;
    (s, r, w)
  in
  let s1, r1, w1 = svc t1 zurich "transfer" "zrh-100" in
  let s2, r2, w2 = svc t2 zurich "transfer" "zrh-100" in
  let s3, r3, _ = svc t3 geneva "report" "gva-7" in
  let s4, r4, w4 = svc t2 geneva "transfer" "gva-7" in
  (* Branch executions: Zurich serializes T1 before T2; Geneva runs the
     report before T2's transfer. *)
  B.log b ~sched:zurich [ r1; w1; r2; w2 ];
  B.log b ~sched:geneva [ r3; r4; w4 ];
  B.log b ~sched:monitor [ s1; s2; s3; s4 ];
  B.seal b

(* --- (b) the same architecture, executed --------------------------- *)

let topology =
  {
    Template.components =
      [|
        ("monitor", Conflict.Table [ ("transfer", "report") ]);
        ("zurich", Conflict.Rw);
        ("geneva", Conflict.Rw);
      |];
  }

let gen rng ~client ~seq =
  ignore client;
  ignore seq;
  let open Repro_workload in
  let svc () =
    let branch = 1 + Prng.int rng 2 in
    let acct = Fmt.str "%s-%d" (if branch = 1 then "zrh" else "gva") (Prng.int rng 4) in
    if Prng.chance rng 0.3 then
      Template.call ~component:branch (Label.v ~args:[ acct ] "report")
        [ Template.leaf (Label.read acct) ]
    else
      Template.call ~component:branch ~sequential:true (Label.v ~args:[ acct ] "transfer")
        [ Template.leaf (Label.read acct); Template.leaf (Label.write acct) ]
  in
  Template.call ~component:0 (Label.v "txn") (List.init (1 + Prng.int rng 2) (fun _ -> svc ()))

let () =
  let h = hand_built () in
  Fmt.pr "=== hand-built federated execution ===@.";
  Fmt.pr "shape: %a@." Repro_criteria.Shapes.pp (Repro_criteria.Shapes.classify h);
  Fmt.pr "valid: %b@." (Validate.check h = []);
  Fmt.pr "FCC:    %b (fork conflict consistency, [AFPS99])@." (Repro_criteria.Special.fcc h);
  Fmt.pr "Comp-C: %b (they must agree: Theorem 3)@." (Repro_core.Compc.is_correct h);
  let v = Repro_core.Compc.check h in
  Fmt.pr "serial order of the customers: %a@."
    Fmt.(list ~sep:(any " << ") (History.pp_node h))
    (Repro_core.Compc.serial_order v);

  Fmt.pr "@.=== executing the federation under each protocol ===@.";
  List.iter
    (fun (name, protocol) ->
      let params =
        {
          Sim.default_params with
          Sim.protocol;
          clients = 8;
          txs_per_client = 10;
          seed = 11;
          lock_timeout = 6.0;
        }
      in
      let stats = Sim.run params topology ~gen in
      Fmt.pr
        "%-7s committed=%3d aborts=%3d makespan=%7.2f mean-latency=%5.2f comp-c=%b@."
        name stats.Sim.committed stats.Sim.aborts stats.Sim.makespan
        stats.Sim.mean_latency
        (Repro_core.Compc.is_correct stats.Sim.history))
    [
      ("serial", Sim.Serial);
      ("closed", Sim.Locking { closed = true });
      ("open", Sim.Locking { closed = false });
    ]
