(* The paper's figures, reconstructed as executable histories, replayed
   with full reduction traces.  The constructions live in
   [Repro_workload.Figures] (shared with the test suite and the experiment
   harness); see that module's documentation for what each reconstruction
   preserves from the published figure. *)

open Repro_model
module F = Repro_workload.Figures
module Compc = Repro_core.Compc

let banner title = Fmt.pr "@.============ %s ============@." title

let () =
  banner "Figure 1: an order-3 composite configuration";
  let h = F.figure1 () in
  Fmt.pr "%d schedules, %d roots, order %d@." (History.n_schedules h)
    (List.length (History.roots h))
    (History.order h);
  List.iter
    (fun (s : History.schedule) ->
      Fmt.pr "  %s: level %d@." s.History.sname (History.level h s.History.sid))
    (History.schedules h);
  Fmt.pr "T4 and T5 share no schedule with T1's subtree, yet the theory@.";
  Fmt.pr "relates all five roots; the execution is Comp-C: %b@." (Compc.is_correct h);

  banner "Figure 2: conflict and observed order";
  let f = F.figure2 () in
  let h = f.F.h2 in
  let rel = Repro_core.Observed.compute h in
  let obs = rel.Repro_core.Observed.obs in
  let pn = History.pp_node h in
  Fmt.pr "S4 orders the conflicting leaves:  %a <_o %a : %b@." pn f.F.f2_o13 pn
    f.F.f2_o25
    (Repro_order.Rel.mem f.F.f2_o13 f.F.f2_o25 obs);
  Fmt.pr "...which climbs to the parents:    %a <_o %a : %b@." pn f.F.f2_t11 pn
    f.F.f2_t21
    (Repro_order.Rel.mem f.F.f2_t11 f.F.f2_t21 obs);
  Fmt.pr "...and up to the roots:            %a <_o %a : %b@." pn f.F.f2_t1 pn f.F.f2_t2
    (Repro_order.Rel.mem f.F.f2_t1 f.F.f2_t2 obs);
  Fmt.pr "generalized conflict CON(%a,%a): %b@." pn f.F.f2_t1 pn f.F.f2_t2
    (Repro_core.Observed.conflict h rel f.F.f2_t1 f.F.f2_t2);

  banner "Figure 3: an incorrect execution";
  Compc.explain Fmt.stdout (Compc.check (F.figure3 ()).F.ht);

  banner "Figure 4: a correct execution (orders forgotten)";
  Compc.explain Fmt.stdout (Compc.check (F.figure4 ()).F.ht);

  banner "Figure 4 variant: conflicts at the top make it incorrect";
  Compc.explain Fmt.stdout (Compc.check (F.figure4 ~conflicting_top:true ()).F.ht)
