(* Quickstart: build a two-level composite execution, check whether it is
   Comp-C, and print the reduction trace.

   The scenario: two clients of a small accounting component, which executes
   its services on a shared record store.  The accounting component knows
   that two [credit] services commute even though their reads and writes
   conflict below — the knowledge the composite theory lets it exploit. *)

open Repro_model
module B = History.Builder

let () =
  let b = B.create () in

  (* Two schedulers: the accounting component and the record store it
     delegates to.  Each declares what conflicts among ITS operations. *)
  let accounting =
    B.schedule b "accounting"
      ~conflict:(Conflict.Table [ ("credit", "audit"); ("audit", "audit") ])
  in
  let store = B.schedule b "store" ~conflict:Conflict.Rw in

  (* Two root transactions, one per client. *)
  let t1 = B.root b ~sched:accounting (Label.v "T1") in
  let t2 = B.root b ~sched:accounting (Label.v "T2") in

  (* T1 credits account A; T2 credits A and audits it.  Each service is a
     subtransaction of the store schedule, executing read/write leaves. *)
  let credit1 = B.tx b ~parent:t1 ~sched:store (Label.v ~args:[ "A" ] "credit") in
  let credit2 = B.tx b ~parent:t2 ~sched:store (Label.v ~args:[ "A" ] "credit") in
  let audit2 = B.tx b ~parent:t2 ~sched:store (Label.v ~args:[ "A" ] "audit") in
  let r1 = B.leaf b ~parent:credit1 (Label.read "A") in
  let w1 = B.leaf b ~parent:credit1 (Label.write "A") in
  let r2 = B.leaf b ~parent:credit2 (Label.read "A") in
  let w2 = B.leaf b ~parent:credit2 (Label.write "A") in
  let ra = B.leaf b ~parent:audit2 (Label.read "A") in
  B.intra_weak b ~a:r1 ~b:w1;
  B.intra_weak b ~a:r2 ~b:w2;

  (* What actually happened, as each scheduler's execution log. *)
  B.log b ~sched:store [ r2; w2; r1; w1; ra ];
  B.log b ~sched:accounting [ credit2; credit1; audit2 ];

  let history = B.seal b in

  (* 1. Is it a well-formed composite execution (Defs. 3-4)? *)
  (match Validate.check history with
  | [] -> Fmt.pr "history is a valid composite execution@."
  | errs ->
    List.iter (fun e -> Fmt.pr "invalid: %a@." (Validate.pp_error history) e) errs);

  (* 2. Is it composite-correct (Def. 20 / Theorem 1)? *)
  let verdict = Repro_core.Compc.check history in
  Fmt.pr "@.=== reduction trace ===@.";
  Repro_core.Compc.explain Fmt.stdout verdict;

  (* 3. The specialised criteria agree on this stack (Theorem 2). *)
  Fmt.pr "@.=== all criteria ===@.";
  List.iter
    (fun (name, ok) -> Fmt.pr "%-8s %s@." name (if ok then "accept" else "reject"))
    (Repro_criteria.Classic.accepted_by history);

  (* 4. Histories print and parse in the description language. *)
  Fmt.pr "@.=== as text ===@.%s" (Repro_histlang.Syntax.to_string history)
