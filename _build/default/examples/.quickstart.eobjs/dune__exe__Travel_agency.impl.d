examples/travel_agency.ml: Conflict Fmt History Label Repro_core Repro_criteria Repro_model Repro_order Validate
