examples/banking_federation.ml: Conflict Fmt History Label List Prng Repro_core Repro_criteria Repro_model Repro_runtime Repro_workload Sim Template Validate
