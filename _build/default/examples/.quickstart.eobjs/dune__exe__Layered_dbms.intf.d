examples/layered_dbms.mli:
