examples/quickstart.ml: Conflict Fmt History Label List Repro_core Repro_criteria Repro_histlang Repro_model Validate
