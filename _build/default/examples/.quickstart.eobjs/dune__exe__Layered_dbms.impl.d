examples/layered_dbms.ml: Conflict Fmt History Label List Pagemap Repro_core Repro_criteria Repro_model Repro_runtime Repro_storage Validate
