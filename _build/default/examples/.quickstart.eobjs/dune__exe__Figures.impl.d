examples/figures.ml: Fmt History List Repro_core Repro_model Repro_order Repro_workload
