examples/quickstart.mli:
