examples/figures.mli:
