examples/banking_federation.mli:
