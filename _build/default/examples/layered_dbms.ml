(* A layered DBMS as a STACK configuration (Def. 21): a query processor
   over a record manager over a page store — the classical multilevel
   transaction setting.  Two semantically commuting record updates hit the
   same page; the record manager's commutativity knowledge makes the
   interleaved execution correct (SCC = Comp-C, Theorem 2) although
   page-level serializability judged at the roots (flat CSR) and
   level-by-level serializability (LLSR) both reject it — the paper's core
   motivation for composite correctness. *)

open Repro_model
open Repro_storage
module B = History.Builder

let build () =
  let b = B.create () in
  let query = B.schedule b "query" ~conflict:(Conflict.Table [ ("update", "fetch") ]) in
  let records =
    B.schedule b "records" ~conflict:(Conflict.Table [ ("ins", "ins"); ("ins", "get") ])
  in
  let pages = B.schedule b "pages" ~conflict:Conflict.Rw in
  let t1 = B.root b ~sched:query (Label.v "Load1") in
  let t2 = B.root b ~sched:query (Label.v "Load2") in
  (* Both roots update different records living on the same page; inserts
     into different records commute at the record level. *)
  let key1 = "alpha" and key2 = "golf" in
  let page k = Pagemap.page_of ~pages:1 k in
  let upd parent key =
    let u = B.tx b ~parent ~sched:records (Label.v ~args:[ key ] "update") in
    let ins = B.tx b ~parent:u ~sched:pages (Label.v ~args:[ key ] "ins") in
    let rp = B.leaf b ~parent:ins (Label.read (page key)) in
    let wp = B.leaf b ~parent:ins (Label.write (page key)) in
    B.intra_weak b ~a:rp ~b:wp;
    (u, ins, rp, wp)
  in
  let u1, i1, rp1, wp1 = upd t1 key1 in
  let u1b, i1b, rp1b, wp1b = upd t1 key2 in
  let u2, i2, rp2, wp2 = upd t2 key1 in
  let u2b, i2b, rp2b, wp2b = upd t2 key2 in
  (* The page store interleaves the four inserts: T1's insert on alpha wins
     the page first, but T2's insert on golf beats T1's. *)
  B.log b ~sched:pages [ rp1; wp1; rp2b; wp2b; rp2; wp2; rp1b; wp1b ];
  B.log b ~sched:records [ i1; i2b; i2; i1b ];
  B.log b ~sched:query [ u1; u2b; u2; u1b ];
  B.seal b

let () =
  let h = build () in
  Fmt.pr "=== layered DBMS, interleaved record updates ===@.";
  Fmt.pr "shape: %a, valid: %b@."
    Repro_criteria.Shapes.pp
    (Repro_criteria.Shapes.classify h)
    (Validate.check h = []);
  List.iter
    (fun (name, ok) -> Fmt.pr "%-8s %s@." name (if ok then "accept" else "reject"))
    (Repro_criteria.Classic.accepted_by h);
  Fmt.pr
    "@.flat page-level serializability and LLSR reject the execution;@.\
     the record manager's commutativity knowledge makes it Comp-C.@.";

  (* Execute the same architecture: the layered workload over the runtime,
     with the store actually applying the page operations. *)
  Fmt.pr "@.=== executing the layered architecture ===@.";
  let w = Repro_runtime.Workloads.layered () in
  List.iter
    (fun (name, protocol) ->
      let params =
        {
          Repro_runtime.Sim.default_params with
          Repro_runtime.Sim.protocol;
          clients = 6;
          txs_per_client = 8;
          seed = 3;
          lock_timeout = 8.0;
        }
      in
      let stats =
        Repro_runtime.Sim.run params w.Repro_runtime.Workloads.topology
          ~gen:w.Repro_runtime.Workloads.gen
      in
      Fmt.pr "%-7s committed=%3d aborts=%3d makespan=%7.2f comp-c=%b@." name
        stats.Repro_runtime.Sim.committed stats.Repro_runtime.Sim.aborts
        stats.Repro_runtime.Sim.makespan
        (Repro_core.Compc.is_correct stats.Repro_runtime.Sim.history))
    [
      ("serial", Repro_runtime.Sim.Serial);
      ("closed", Repro_runtime.Sim.Locking { closed = true });
      ("open", Repro_runtime.Sim.Locking { closed = false });
    ]
