(* A travel-booking system as a GENERAL composite configuration: two
   autonomous travel agencies (no common scheduler!) book flights with an
   airline and rooms with a hotel chain, and both providers charge through
   one shared payment processor.

       TravelCo   BizTrips        (level 3, independent agencies)
           \\      /  \\
         Airline     Hotel        (level 2, providers w/ own inventories)
               \\     /
               Payment            (level 1, shared processor)

   Two customers interact only transitively, through providers and the
   payment processor — the situation (like T4/T5 in the paper's Figure 1)
   where classical nested-transaction theory has nothing to say but the
   observed order of Def. 10 still relates the roots.  We build one correct
   execution and one where the airline and the hotel serialize the two
   customers in opposite directions; the reduction pinpoints the failure. *)

open Repro_model
module B = History.Builder

type world = {
  h : History.t;
  alice : Repro_order.Ids.id;
  bob : Repro_order.Ids.id;
}

let build ~hotel_first_for_bob () =
  let b = B.create () in
  let travelco = B.schedule b "TravelCo" ~conflict:(Conflict.Table []) in
  let biztrips = B.schedule b "BizTrips" ~conflict:(Conflict.Table []) in
  let airline = B.schedule b "Airline" ~conflict:Conflict.Same_item in
  let hotel = B.schedule b "Hotel" ~conflict:Conflict.Same_item in
  let payment = B.schedule b "Payment" ~conflict:Conflict.Rw in
  (* Alice books through TravelCo, Bob through BizTrips; same flight, same
     hotel night. *)
  let alice = B.root b ~sched:travelco (Label.v "Alice") in
  let bob = B.root b ~sched:biztrips (Label.v "Bob") in
  let book parent sched what item account =
    let svc = B.tx b ~parent ~sched (Label.v ~args:[ item ] what) in
    let inv = B.leaf b ~parent:svc (Label.write item) in
    let charge = B.tx b ~parent:svc ~sched:payment (Label.v ~args:[ account ] "charge") in
    let rc = B.leaf b ~parent:charge (Label.read account) in
    let wc = B.leaf b ~parent:charge (Label.write account) in
    B.intra_weak b ~a:rc ~b:wc;
    B.intra_weak b ~a:inv ~b:charge;
    (svc, inv, charge, rc, wc)
  in
  let af, ainv, acharge, arc, awc = book alice airline "book-flight" "LX318" "acct-alice" in
  let ah, hinv, hcharge, hrc, hwc = book alice hotel "book-room" "suite-9" "acct-alice" in
  let bf, binv, bcharge, brc, bwc = book bob airline "book-flight" "LX318" "acct-bob" in
  let bh, kinv, kcharge, krc, kwc = book bob hotel "book-room" "suite-9" "acct-bob" in
  (* The airline always seats Alice first.  The hotel either also serves
     Alice first (consistent) or serves Bob first (crossing). *)
  B.log b ~sched:airline [ ainv; acharge; binv; bcharge ];
  if hotel_first_for_bob then B.log b ~sched:hotel [ kinv; kcharge; hinv; hcharge ]
  else B.log b ~sched:hotel [ hinv; hcharge; kinv; kcharge ];
  (* Payment processes charges in arrival order; accounts are disjoint, so
     charges of different customers commute there anyway. *)
  B.log b ~sched:payment [ arc; awc; krc; kwc; hrc; hwc; brc; bwc ];
  B.log b ~sched:travelco [ af; ah ];
  B.log b ~sched:biztrips [ bf; bh ];
  { h = B.seal b; alice; bob }

let report name w =
  Fmt.pr "=== %s ===@." name;
  Fmt.pr "shape: %a, order %d, valid: %b@."
    Repro_criteria.Shapes.pp
    (Repro_criteria.Shapes.classify w.h)
    (History.order w.h)
    (Validate.check w.h = []);
  let v = Repro_core.Compc.check w.h in
  let rel = v.Repro_core.Compc.relations in
  let obs = rel.Repro_core.Observed.obs in
  Fmt.pr "observed order between the customers: Alice<Bob:%b Bob<Alice:%b@."
    (Repro_order.Rel.mem w.alice w.bob obs)
    (Repro_order.Rel.mem w.bob w.alice obs);
  (match v.Repro_core.Compc.certificate.Repro_core.Reduction.outcome with
  | Ok serial ->
    Fmt.pr "verdict: Comp-C; equivalent serial order: %a@."
      Fmt.(list ~sep:(any " << ") (History.pp_node w.h))
      serial
  | Error f ->
    Fmt.pr "verdict: NOT Comp-C@.reason: %a@."
      (Repro_core.Reduction.pp_failure w.h) f);
  Fmt.pr "@."

let () =
  report "consistent bookings (airline and hotel agree)" (build ~hotel_first_for_bob:false ());
  report "crossing bookings (providers disagree)" (build ~hotel_first_for_bob:true ())
