bin/compcheck.ml: Arg Buffer Cmd Cmdliner Fmt History List Manpage Repro_core Repro_criteria Repro_histlang Repro_model String Term Validate
