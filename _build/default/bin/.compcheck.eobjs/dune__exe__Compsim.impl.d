bin/compsim.ml: Arg Cmd Cmdliner Fmt List Manpage Repro_core Repro_histlang Repro_model Repro_runtime Sim Term Workloads
