bin/compsim.mli:
