bin/compgen.mli:
