bin/compcheck.mli:
