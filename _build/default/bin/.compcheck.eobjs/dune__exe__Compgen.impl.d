bin/compgen.ml: Arg Cmd Cmdliner Fmt Gen Prng Repro_histlang Repro_workload Term
