(* compcheck: decide correctness criteria for a composite execution given in
   the history description language.  Exit code 0 = accepted, 1 = rejected,
   2 = usage/parse/validation trouble. *)
open Cmdliner
open Repro_model

let read_history path =
  try
    if path = "-" then begin
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf stdin 4096
         done
       with End_of_file -> ());
      Ok (Repro_histlang.Syntax.parse (Buffer.contents buf))
    end
    else Ok (Repro_histlang.Syntax.parse_file path)
  with
  | Repro_histlang.Syntax.Parse_error e ->
    Error (Fmt.str "parse error: %a" Repro_histlang.Syntax.pp_error e)
  | Invalid_argument msg -> Error (Fmt.str "invalid history: %s" msg)
  | Sys_error msg -> Error msg

let run path criterion explain skip_validation dot =
  match read_history path with
  | Error msg ->
    Fmt.epr "compcheck: %s@." msg;
    2
  | Ok h -> (
    let validation = Validate.check h in
    if validation <> [] then begin
      Fmt.epr "history violates the composite-system model (Defs. 3-4):@.";
      List.iter (fun e -> Fmt.epr "  %a@." (Validate.pp_error h) e) validation;
      if not skip_validation then exit 2
    end;
    (match dot with
    | Some prefix ->
      let rel = Repro_core.Observed.compute h in
      let write name text =
        let oc = open_out (prefix ^ name) in
        output_string oc text;
        close_out oc;
        Fmt.pr "wrote %s%s@." prefix name
      in
      write "-forest.dot"
        (Repro_histlang.Dot.forest ~obs:rel.Repro_core.Observed.obs h);
      write "-invocations.dot" (Repro_histlang.Dot.invocation_graph h)
    | None -> ());
    let report = Repro_criteria.Classic.accepted_by h in
    let shape = Repro_criteria.Shapes.classify h in
    Fmt.pr "configuration: %a, order %d, %d schedules, %d transactions, %d leaves@."
      Repro_criteria.Shapes.pp shape (History.order h) (History.n_schedules h)
      (List.length (History.roots h) + List.length (History.internal_nodes h))
      (List.length (History.leaves h));
    let criterion =
      (* case-insensitive convenience: comp-c, scc, ... all work *)
      let lc = String.lowercase_ascii criterion in
      match List.find_opt (fun (n, _) -> String.lowercase_ascii n = lc) report with
      | Some (n, _) -> n
      | None -> criterion
    in
    match criterion with
    | "all" | "ALL" | "All" ->
      List.iter (fun (name, verdict) ->
          Fmt.pr "%-8s %s@." name (if verdict then "accept" else "reject"))
        report;
      if explain then Repro_core.Compc.explain Fmt.stdout (Repro_core.Compc.check h);
      if List.assoc "Comp-C" report then 0 else 1
    | name -> (
      match List.assoc_opt name report with
      | None ->
        Fmt.epr "compcheck: criterion %S does not apply to this configuration (available: %a)@."
          name
          Fmt.(list ~sep:comma string)
          (List.map fst report);
        2
      | Some verdict ->
        Fmt.pr "%s: %s@." name (if verdict then "accept" else "reject");
        if explain && name = "Comp-C" then
          Repro_core.Compc.explain Fmt.stdout (Repro_core.Compc.check h);
        if verdict then 0 else 1))

let path_arg =
  let doc = "History file in the description language ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let criterion_arg =
  let doc =
    "Criterion to decide: $(b,Comp-C) (default), $(b,SCC), $(b,FCC), $(b,JCC), \
     $(b,LLSR), $(b,OPSR), $(b,FlatCSR), or $(b,all)."
  in
  Arg.(value & opt string "Comp-C" & info [ "c"; "criterion" ] ~docv:"NAME" ~doc)

let explain_arg =
  let doc = "Print the full reduction trace (fronts, witness layouts, verdict)." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let skip_validation_arg =
  let doc = "Check criteria even when the history violates the model." in
  Arg.(value & flag & info [ "force" ] ~doc)

let dot_arg =
  let doc =
    "Write Graphviz renderings ($(docv)-forest.dot with the observed order \
     overlaid, and $(docv)-invocations.dot) of the history."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PREFIX" ~doc)

let cmd =
  let doc = "decide composite correctness (Comp-C) and related criteria" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads a composite execution in the history description language and \
         decides the correctness criteria of Alonso, Fe\xc3\x9fler, Pardon and \
         Schek, \"Correctness in General Configurations of Transactional \
         Components\" (PODS 1999): the general criterion Comp-C via \
         level-by-level reduction, plus the specialised and classical \
         criteria it subsumes.";
      `S Manpage.s_examples;
      `Pre "  compcheck history.ct --criterion all\n  compgen --shape stack | compcheck - --explain";
    ]
  in
  Cmd.v
    (Cmd.info "compcheck" ~version:"1.0.0" ~doc ~man)
    Term.(const run $ path_arg $ criterion_arg $ explain_arg $ skip_validation_arg $ dot_arg)

let () = exit (Cmd.eval' cmd)
