type t = { name : string; args : string list }

let v ?(args = []) name = { name; args }

let read item = v ~args:[ item ] "r"

let write item = v ~args:[ item ] "w"

let incr item = v ~args:[ item ] "inc"

let decr item = v ~args:[ item ] "dec"

let equal a b = String.equal a.name b.name && List.equal String.equal a.args b.args

let compare a b =
  match String.compare a.name b.name with
  | 0 -> List.compare String.compare a.args b.args
  | n -> n

let item l = match l.args with [] -> None | x :: _ -> Some x

let pp ppf l =
  match l.args with
  | [] -> Fmt.string ppf l.name
  | args -> Fmt.pf ppf "%s(%a)" l.name Fmt.(list ~sep:(any ",") string) args

let to_string l = Fmt.str "%a" pp l
