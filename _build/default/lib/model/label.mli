(** Operation labels.

    Every node of a composite execution — leaf operation, subtransaction
    invocation, or root transaction — carries a label: a service name plus
    string arguments.  Labels are what conflict specifications inspect
    ({!Conflict}), and what printers and the history language display.

    Conventional leaf names used by the read/write conflict model and by the
    {!Repro_storage} substrate: ["r"] (read), ["w"] (write), ["inc"], ["dec"]
    (commutative increment/decrement), each taking the data item as first
    argument. *)

type t = { name : string; args : string list }

val v : ?args:string list -> string -> t
(** [v name ~args] builds a label. *)

val read : string -> t
(** [read item] is the conventional read label [r(item)]. *)

val write : string -> t
(** [write item] is the conventional write label [w(item)]. *)

val incr : string -> t
(** [incr item] is the commutative increment label [inc(item)]. *)

val decr : string -> t
(** [decr item] is the commutative decrement label [dec(item)]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val item : t -> string option
(** First argument, if any — the data item of conventional leaf labels. *)

val pp : Format.formatter -> t -> unit
(** Prints [name(arg1,arg2)] or just [name] when there are no arguments. *)

val to_string : t -> string
