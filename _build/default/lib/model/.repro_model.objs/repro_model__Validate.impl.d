lib/model/validate.ml: Array Fmt Hashtbl History Ids Int_set List Rel Repro_order
