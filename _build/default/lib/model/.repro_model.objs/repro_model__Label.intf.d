lib/model/label.mli: Format
