lib/model/conflict.ml: Fmt Ids Label List Repro_order String
