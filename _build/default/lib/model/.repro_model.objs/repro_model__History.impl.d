lib/model/history.ml: Array Conflict Fmt Hashtbl Ids Int_set Label List Rel Repro_order
