lib/model/label.ml: Fmt List String
