lib/model/conflict.mli: Format Label Repro_order
