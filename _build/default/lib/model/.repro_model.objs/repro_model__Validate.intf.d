lib/model/validate.mli: Format History Repro_order
