lib/model/history.mli: Conflict Format Ids Int_set Label Rel Repro_order
