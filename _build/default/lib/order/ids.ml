(* Node identifiers and the container modules used throughout the library.

   Every object of the composite-system model (leaf operation, internal
   transaction, root transaction, schedule) is designated by a dense integer
   identifier allocated by the structure that owns it.  All relations of the
   paper (weak/strong orders, observed order, conflicts) are finite binary
   relations over these identifiers. *)

type id = int

module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

(* A pair of identifiers, ordered lexicographically; used for unordered
   conflict pairs where we normalise to [min, max]. *)
module Pair = struct
  type t = id * id

  let compare (a, b) (c, d) =
    match Int.compare a c with 0 -> Int.compare b d | n -> n

  let normalise (a, b) = if a <= b then (a, b) else (b, a)
end

module Pair_set = Set.Make (Pair)

let pp_id = Fmt.int

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (Int_set.elements s)
