(** Node identifiers and the container modules used throughout the library.

    Every object of the composite-system model (leaf operation, internal
    transaction, root transaction, schedule) is designated by a dense
    integer identifier allocated by the structure that owns it; all
    relations of the paper (weak/strong orders, observed order, conflicts)
    are finite binary relations over these identifiers. *)

type id = int

module Int_set : Set.S with type elt = int
module Int_map : Map.S with type key = int

(** Ordered pairs of identifiers, for sets of (conflict) pairs. *)
module Pair : sig
  type t = id * id

  val compare : t -> t -> int

  val normalise : t -> t
  (** Smaller identifier first — the canonical form for unordered pairs. *)
end

module Pair_set : Set.S with type elt = Pair.t

val pp_id : Format.formatter -> id -> unit

val pp_set : Format.formatter -> Int_set.t -> unit
