open Ids

type t = Int_set.t Int_map.t
(* Adjacency: [a -> set of b with (a, b) in the relation].  Empty successor
   sets are never stored. *)

let empty = Int_map.empty

let is_empty = Int_map.is_empty

let succs r a = match Int_map.find_opt a r with Some s -> s | None -> Int_set.empty

let add a b r =
  let s = succs r a in
  if Int_set.mem b s then r else Int_map.add a (Int_set.add b s) r

let remove a b r =
  match Int_map.find_opt a r with
  | None -> r
  | Some s ->
    let s' = Int_set.remove b s in
    if Int_set.is_empty s' then Int_map.remove a r else Int_map.add a s' r

let mem a b r = Int_set.mem b (succs r a)

let of_list l = List.fold_left (fun r (a, b) -> add a b r) empty l

let fold f r acc =
  Int_map.fold (fun a s acc -> Int_set.fold (fun b acc -> f a b acc) s acc) r acc

let iter f r = Int_map.iter (fun a s -> Int_set.iter (fun b -> f a b) s) r

let to_list r = List.rev (fold (fun a b acc -> (a, b) :: acc) r [])

let cardinal r = Int_map.fold (fun _ s n -> n + Int_set.cardinal s) r 0

let union r1 r2 =
  Int_map.union (fun _ s1 s2 -> Some (Int_set.union s1 s2)) r1 r2

let inter r1 r2 =
  Int_map.merge
    (fun _ s1 s2 ->
      match (s1, s2) with
      | Some s1, Some s2 ->
        let s = Int_set.inter s1 s2 in
        if Int_set.is_empty s then None else Some s
      | _ -> None)
    r1 r2

let diff r1 r2 =
  Int_map.merge
    (fun _ s1 s2 ->
      match (s1, s2) with
      | Some s1, Some s2 ->
        let s = Int_set.diff s1 s2 in
        if Int_set.is_empty s then None else Some s
      | Some s1, None -> Some s1
      | None, _ -> None)
    r1 r2

let subset r1 r2 =
  Int_map.for_all (fun a s1 -> Int_set.subset s1 (succs r2 a)) r1

let equal r1 r2 = Int_map.equal Int_set.equal r1 r2

let preds r b =
  Int_map.fold
    (fun a s acc -> if Int_set.mem b s then Int_set.add a acc else acc)
    r Int_set.empty

let filter f r =
  Int_map.filter_map
    (fun a s ->
      let s' = Int_set.filter (fun b -> f a b) s in
      if Int_set.is_empty s' then None else Some s')
    r

let restrict ~keep r = filter (fun a b -> keep a && keep b) r

let map_nodes f r =
  fold
    (fun a b acc ->
      let a' = f a and b' = f b in
      if a' = b' then acc else add a' b' acc)
    r empty

let nodes r =
  Int_map.fold
    (fun a s acc -> Int_set.add a (Int_set.union s acc))
    r Int_set.empty

let reachable r start =
  let rec go seen = function
    | [] -> seen
    | n :: stack ->
      let fresh = Int_set.diff (succs r n) seen in
      go (Int_set.union seen fresh) (Int_set.elements fresh @ stack)
  in
  let init = succs r start in
  go init (Int_set.elements init)

(* Tarjan's strongly-connected-components algorithm, iterative to survive
   long chains.  Returns components in reverse topological order of the
   condensation (a component is emitted after all components it reaches). *)
let sccs r =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    Int_set.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs r v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  Int_set.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes r);
  !components
(* Note: [!components] lists components such that earlier components cannot
   reach later ones (Tarjan emits sinks first; we cons, so sources first). *)

let transitive_closure r =
  (* Closure via condensation: within an SCC every ordered pair of distinct
     nodes is related (and self-pairs if the SCC has a cycle); across SCCs we
     merge successor reach-sets in reverse topological order. *)
  let comps = sccs r in
  (* Process in reverse topological order: sinks first. *)
  let comps_rev = List.rev comps in
  let comp_of = Hashtbl.create 64 in
  List.iteri (fun i c -> List.iter (fun v -> Hashtbl.replace comp_of v i) c) comps_rev;
  let n = List.length comps_rev in
  let comp_arr = Array.make n [] in
  List.iteri (fun i c -> comp_arr.(i) <- c) comps_rev;
  (* reach.(i): set of nodes reachable from component i (including the
     component's own nodes when it is cyclic). *)
  let reach = Array.make n Int_set.empty in
  for i = 0 to n - 1 do
    let members = comp_arr.(i) in
    let member_set = Int_set.of_list members in
    let cyclic =
      match members with
      | [ v ] -> Int_set.mem v (succs r v)
      | _ -> true
    in
    let out =
      List.fold_left
        (fun acc v ->
          Int_set.fold
            (fun w acc ->
              let j = Hashtbl.find comp_of w in
              if j = i then acc
              else Int_set.union acc (Int_set.union (Int_set.of_list comp_arr.(j)) reach.(j)))
            (succs r v) acc)
        Int_set.empty members
    in
    reach.(i) <- (if cyclic then Int_set.union member_set out else out)
  done;
  let result = ref empty in
  for i = 0 to n - 1 do
    List.iter
      (fun v ->
        if not (Int_set.is_empty reach.(i)) then
          result :=
            Int_map.add v (Int_set.union (succs !result v) reach.(i)) !result)
      comp_arr.(i)
  done;
  !result

let is_transitive r =
  try
    iter
      (fun a b ->
        Int_set.iter (fun c -> if not (mem a c r) then raise Exit) (succs r b))
      r;
    true
  with Exit -> false

let irreflexive r = Int_map.for_all (fun a s -> not (Int_set.mem a s)) r

let transitive_reduction r =
  (* Drop (a, b) when b is reachable from a through some intermediate
     successor; on a DAG this yields the unique minimal reduction. *)
  let closure = transitive_closure r in
  filter
    (fun a b ->
      not
        (Int_set.exists
           (fun m -> m <> b && Int_set.mem b (succs closure m))
           (succs r a)))
    r

(* Depth-first search for a cycle; colours: 0 = white, 1 = grey, 2 = black. *)
let find_cycle r =
  let colour = Hashtbl.create 64 in
  let col v = match Hashtbl.find_opt colour v with Some c -> c | None -> 0 in
  let parent = Hashtbl.create 64 in
  let cycle = ref None in
  let rec dfs v =
    Hashtbl.replace colour v 1;
    Int_set.iter
      (fun w ->
        if !cycle = None then
          match col w with
          | 0 ->
            Hashtbl.replace parent w v;
            dfs w
          | 1 ->
            (* Found a back edge v -> w: reconstruct w -> ... -> v. *)
            let rec walk acc u = if u = w then u :: acc else walk (u :: acc) (Hashtbl.find parent u) in
            cycle := Some (walk [] v)
          | _ -> ())
      (succs r v);
    Hashtbl.replace colour v 2
  in
  Int_set.iter (fun v -> if !cycle = None && col v = 0 then dfs v) (nodes r);
  !cycle

let is_acyclic r = find_cycle r = None

let topo_sort ~nodes:universe r =
  let r = restrict ~keep:(fun v -> Int_set.mem v universe) r in
  (* Kahn's algorithm with a sorted frontier for determinism. *)
  let indeg = Hashtbl.create 64 in
  Int_set.iter (fun v -> Hashtbl.replace indeg v 0) universe;
  iter
    (fun _ b ->
      Hashtbl.replace indeg b (1 + Option.value ~default:0 (Hashtbl.find_opt indeg b)))
    r;
  let module Frontier = Set.Make (Int) in
  let frontier =
    Int_set.fold
      (fun v acc -> if Hashtbl.find indeg v = 0 then Frontier.add v acc else acc)
      universe Frontier.empty
  in
  let rec go frontier acc count =
    match Frontier.min_elt_opt frontier with
    | None -> if count = Int_set.cardinal universe then Some (List.rev acc) else None
    | Some v ->
      let frontier = Frontier.remove v frontier in
      let frontier =
        Int_set.fold
          (fun w acc ->
            let d = Hashtbl.find indeg w - 1 in
            Hashtbl.replace indeg w d;
            if d = 0 then Frontier.add w acc else acc)
          (succs r v) frontier
      in
      go frontier (v :: acc) (count + 1)
  in
  go frontier [] 0

let quotient cls r = map_nodes cls r

let total_on ns r =
  Int_set.for_all
    (fun a -> Int_set.for_all (fun b -> a = b || mem a b r || mem b a r) ns)
    ns

let pp ppf r =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any "->") int int))
    (to_list r)
