lib/order/ids.ml: Fmt Int Map Set
