lib/order/ids.mli: Format Map Set
