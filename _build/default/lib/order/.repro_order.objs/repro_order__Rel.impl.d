lib/order/rel.ml: Array Fmt Hashtbl Ids Int Int_map Int_set List Option Set
