lib/order/rel.mli: Format Ids Int_set
