lib/workload/gen.ml: Array Clone Conflict Fmt Fun Hashtbl History Ids Int_set Label List Prng Rel Repro_model Repro_order
