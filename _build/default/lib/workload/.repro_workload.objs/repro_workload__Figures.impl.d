lib/workload/figures.ml: Conflict History Label Repro_model Repro_order
