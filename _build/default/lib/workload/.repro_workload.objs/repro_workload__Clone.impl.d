lib/workload/clone.ml: History List Rel Repro_model Repro_order
