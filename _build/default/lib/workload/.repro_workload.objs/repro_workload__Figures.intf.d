lib/workload/figures.mli: History Repro_model Repro_order
