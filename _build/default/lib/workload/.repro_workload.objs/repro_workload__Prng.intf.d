lib/workload/prng.mli:
