lib/workload/gen.mli: History Prng Repro_model
