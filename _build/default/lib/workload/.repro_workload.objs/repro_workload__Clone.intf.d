lib/workload/clone.mli: History Repro_model Repro_order
