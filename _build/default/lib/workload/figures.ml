open Repro_model
open Repro_order.Ids
module B = History.Builder

let figure1 () =
  let b = B.create () in
  let s1 = B.schedule b "S1" ~conflict:(Conflict.Table [ ("add", "get") ]) in
  let s2 = B.schedule b "S2" ~conflict:(Conflict.Table [ ("add", "get") ]) in
  let s3 = B.schedule b "S3" ~conflict:(Conflict.Table [ ("add", "get") ]) in
  let s4 = B.schedule b "S4" ~conflict:Conflict.Rw in
  let s5 = B.schedule b "S5" ~conflict:Conflict.Rw in
  let t1 = B.root b ~sched:s1 (Label.v "T1") in
  let t2 = B.root b ~sched:s1 (Label.v "T2") in
  let t3 = B.root b ~sched:s2 (Label.v "T3") in
  let t4 = B.root b ~sched:s3 (Label.v "T4") in
  let t5 = B.root b ~sched:s3 (Label.v "T5") in
  let t1a = B.tx b ~parent:t1 ~sched:s2 (Label.v ~args:[ "m" ] "add") in
  let t2a = B.tx b ~parent:t2 ~sched:s2 (Label.v ~args:[ "m" ] "get") in
  let l1 = B.leaf b ~parent:t1a (Label.write "u") in
  let t3a = B.tx b ~parent:t3 ~sched:s4 (Label.v ~args:[ "k" ] "add") in
  let t2b = B.tx b ~parent:t2a ~sched:s4 (Label.v ~args:[ "k" ] "get") in
  let l3 = B.leaf b ~parent:t3a (Label.write "p") in
  let l2 = B.leaf b ~parent:t2b (Label.read "p") in
  let t4a = B.tx b ~parent:t4 ~sched:s5 (Label.v ~args:[ "n" ] "add") in
  let t5a = B.tx b ~parent:t5 ~sched:s5 (Label.v ~args:[ "n" ] "add") in
  let l4 = B.leaf b ~parent:t4a (Label.write "q") in
  let l5 = B.leaf b ~parent:t5a (Label.write "q") in
  B.log b ~sched:s4 [ l3; l2 ];
  B.log b ~sched:s5 [ l4; l5 ];
  B.log b ~sched:s2 [ l1; t3a; t2b ];
  B.log b ~sched:s3 [ t4a; t5a ];
  B.log b ~sched:s1 [ t1a; t2a ];
  B.seal b

type fig2 = {
  h2 : History.t;
  f2_t1 : id;
  f2_t2 : id;
  f2_t11 : id;
  f2_t21 : id;
  f2_o13 : id;
  f2_o25 : id;
}

let figure2 () =
  let b = B.create () in
  let sa = B.schedule b "SA" ~conflict:Conflict.Same_item in
  let sb = B.schedule b "SB" ~conflict:Conflict.Same_item in
  let s4 = B.schedule b "S4" ~conflict:Conflict.Rw in
  let t1 = B.root b ~sched:sa (Label.v "T1") in
  let t2 = B.root b ~sched:sb (Label.v "T2") in
  let t11 = B.tx b ~parent:t1 ~sched:s4 (Label.v ~args:[ "x" ] "svc") in
  let t21 = B.tx b ~parent:t2 ~sched:s4 (Label.v ~args:[ "x" ] "svc") in
  let o13 = B.leaf b ~parent:t11 (Label.write "x") in
  let o25 = B.leaf b ~parent:t21 (Label.write "x") in
  B.log b ~sched:s4 [ o13; o25 ];
  B.log b ~sched:sa [ t11 ];
  B.log b ~sched:sb [ t21 ];
  {
    h2 = B.seal b;
    f2_t1 = t1;
    f2_t2 = t2;
    f2_t11 = t11;
    f2_t21 = t21;
    f2_o13 = o13;
    f2_o25 = o25;
  }

type tension = {
  ht : History.t;
  tt_t1 : id;
  tt_t2 : id;
  tt_t11 : id;
  tt_t12 : id;
  tt_t21 : id;
  tt_t22 : id;
}

let tension ~shared_top ~top_conflict () =
  let b = B.create () in
  let sp, sq =
    if shared_top then begin
      let sr = B.schedule b "SR" ~conflict:top_conflict in
      (sr, sr)
    end
    else
      ( B.schedule b "SP" ~conflict:top_conflict,
        B.schedule b "SQ" ~conflict:top_conflict )
  in
  let sa = B.schedule b "SA" ~conflict:Conflict.Rw in
  let sb = B.schedule b "SB" ~conflict:Conflict.Rw in
  let t1 = B.root b ~sched:sp (Label.v "T1") in
  let t2 = B.root b ~sched:sq (Label.v "T2") in
  let sub parent sched item =
    let t = B.tx b ~parent ~sched (Label.v ~args:[ item ] "add") in
    (t, B.leaf b ~parent:t (Label.write item))
  in
  let t11, w11 = sub t1 sa "x" in
  let t12, w12 = sub t1 sb "y" in
  let t21, w21 = sub t2 sa "x" in
  let t22, w22 = sub t2 sb "y" in
  (* SA serializes T1's part first; SB serializes T2's part first. *)
  B.log b ~sched:sa [ w11; w21 ];
  B.log b ~sched:sb [ w22; w12 ];
  if shared_top then B.log b ~sched:sp [ t11; t22; t21; t12 ]
  else begin
    B.log b ~sched:sp [ t11; t12 ];
    B.log b ~sched:sq [ t21; t22 ]
  end;
  {
    ht = B.seal b;
    tt_t1 = t1;
    tt_t2 = t2;
    tt_t11 = t11;
    tt_t12 = t12;
    tt_t21 = t21;
    tt_t22 = t22;
  }

let figure3 () = tension ~shared_top:false ~top_conflict:Conflict.Same_item ()

let figure4 ?(conflicting_top = false) () =
  tension ~shared_top:true
    ~top_conflict:(if conflicting_top then Conflict.Same_item else Conflict.Table [])
    ()

let input_order_chain () =
  let b = B.create () in
  let top = B.schedule b "Top" ~conflict:(Conflict.Table [ ("a", "b") ]) in
  let store = B.schedule b "Store" ~conflict:Conflict.Rw in
  let t1 = B.root b ~sched:top (Label.v "T1") in
  let t2 = B.root b ~sched:top (Label.v "T2") in
  let t3 = B.root b ~sched:top (Label.v "T3") in
  let t = B.tx b ~parent:t1 ~sched:store (Label.v ~args:[ "k" ] "a") in
  let t' = B.tx b ~parent:t2 ~sched:store (Label.v ~args:[ "k" ] "b") in
  let x = B.tx b ~parent:t3 ~sched:store (Label.v ~args:[ "m" ] "c") in
  let wt = B.leaf b ~parent:t (Label.write "p") in
  let wt' = B.leaf b ~parent:t' (Label.write "q") in
  let xr_q = B.leaf b ~parent:x (Label.read "q") in
  let xr_p = B.leaf b ~parent:x (Label.read "p") in
  (* Top commits the conflicting pair a(k) before b(k); the store chains
     b's work before x's and x's before a's. *)
  B.log b ~sched:top [ t; x; t' ];
  B.log b ~sched:store [ wt'; xr_q; xr_p; wt ];
  B.seal b
