(** Reconstructions of the paper's figures as executable histories.

    The published figures are drawings absent from the machine-readable
    text; these reconstructions exhibit exactly the behaviour each figure's
    narrative describes and are shared by the test suite, the examples and
    the experiment harness.  Node identifiers of interest are returned so
    callers can assert on the relations. *)

open Repro_model
open Repro_order.Ids

val figure1 : unit -> History.t
(** An order-3 configuration: five roots over five schedules, with two roots
    ([T4], [T5]) sharing no schedule with the others' subtrees.  Correct. *)

type fig2 = {
  h2 : History.t;
  f2_t1 : id;
  f2_t2 : id;
  f2_t11 : id;
  f2_t21 : id;
  f2_o13 : id;
  f2_o25 : id;
}

val figure2 : unit -> fig2
(** Two roots on different schedules whose subtransactions conflict at a
    shared leaf schedule: the observed order climbs [o13 <_o o25] →
    [t11 <_o t21] → [T1 <_o T2], and the cross-schedule pairs are
    generalized conflicts. *)

type tension = {
  ht : History.t;
  tt_t1 : id;
  tt_t2 : id;
  tt_t11 : id;
  tt_t12 : id;
  tt_t21 : id;
  tt_t22 : id;
}

val figure3 : unit -> tension
(** Two roots on {e different} schedules, each splitting work over two
    shared lower schedules that serialize them in opposite directions.  The
    reduction builds the level-1 front and then cannot isolate the roots —
    incorrect (the paper's Figure 3). *)

val figure4 : ?conflicting_top:bool -> unit -> tension
(** The same low-level tension, but the roots share one top schedule.  With
    the default commuting top the pulled-up orders are forgotten and the
    execution is correct (the paper's Figure 4); with
    [~conflicting_top:true] the top schedule's own serialization decisions
    climb to the roots both ways and the execution is incorrect. *)

val input_order_chain : unit -> History.t
(** A two-level stack in which the top schedule input-orders two conflicting
    services while the store's serialization chains them the other way
    around through a third, commuting service: SCC (and the final Comp-C
    reading) reject it, but a reading that drops pulled-up pairs between
    same-schedule operations ({!Repro_core.Observed.Eager_forgetting})
    wrongly accepts it.  The ablation experiment's over-acceptance
    witness. *)
