type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to 62 bits so the conversion to a native 63-bit int stays
     non-negative. *)
  let v = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod n

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let chance t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_arr: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a
