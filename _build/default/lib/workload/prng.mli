(** Deterministic pseudo-random numbers (splitmix64).

    Every generator and simulation in this repository draws randomness from
    an explicit {!t} seeded by the caller, so experiments and property tests
    are reproducible bit-for-bit across runs and machines. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from the current state; the original
    stream advances by one draw. *)

val bits64 : t -> int64

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_arr : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> 'a list -> 'a list
