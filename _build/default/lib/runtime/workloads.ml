open Repro_model
open Repro_workload

type workload = {
  name : string;
  topology : Template.topology;
  gen : Prng.t -> client:int -> seq:int -> Template.t;
}

let rw_leaves it =
  [ Template.leaf (Label.read it); Template.leaf (Label.write it) ]

(* A single read-modify-write leaf.  Two-leaf read-then-write services can
   deadlock on the classical lock upgrade (both read, then both try to
   write); real record managers take update locks up front, which this
   models. *)
let upd_leaf it = [ Template.leaf (Label.v ~args:[ it ] "upd") ]

let banking ?(accounts = 6) ?(services_per_tx = 2) () =
  let topology =
    {
      Template.components =
        [|
          ( "bank",
            Conflict.Table
              [
                ("withdraw", "withdraw"); ("withdraw", "deposit");
                ("balance", "withdraw"); ("balance", "deposit");
              ] );
          ("store", Conflict.Rw);
        |];
    }
  in
  let gen rng ~client ~seq =
    ignore client;
    ignore seq;
    let svc () =
      let a = Fmt.str "acct%d" (Prng.int rng accounts) in
      match Prng.int rng 4 with
      | 0 | 1 ->
        Template.call ~component:1 (Label.v ~args:[ a ] "deposit") (upd_leaf a)
      | 2 ->
        Template.call ~component:1 (Label.v ~args:[ a ] "withdraw") (upd_leaf a)
      | _ ->
        Template.call ~component:1 (Label.v ~args:[ a ] "balance")
          [ Template.leaf (Label.read a) ]
    in
    Template.call ~component:0 (Label.v "txn")
      (List.init (1 + Prng.int rng services_per_tx) (fun _ -> svc ()))
  in
  { name = "banking"; topology; gen }

let layered ?(records = 12) ?(ops_per_tx = 3) () =
  let topology =
    {
      Template.components =
        [|
          ( "query",
            Conflict.Table [ ("fetch", "update"); ("update", "update") ] );
          ( "records",
            Conflict.Table [ ("r", "w"); ("w", "w") ] );
          ("pages", Conflict.Rw);
        |];
    }
  in
  let gen rng ~client ~seq =
    ignore client;
    ignore seq;
    let record_op () =
      let key = Fmt.str "rec%d" (Prng.int rng records) in
      let update = Prng.int rng 2 = 0 in
      let name = if update then "update" else "fetch" in
      let record_leaf_name = if update then "w" else "r" in
      let record_label = Label.v ~args:[ key ] record_leaf_name in
      (* The record operation expands to page-level leaves. *)
      let page_leaves = Repro_storage.Pagemap.page_ops record_label in
      Template.call ~component:1 (Label.v ~args:[ key ] name)
        [
          Template.call ~component:2 ~sequential:true record_label
            (List.map Template.leaf page_leaves);
        ]
    in
    Template.call ~component:0 (Label.v "query")
      (List.init (1 + Prng.int rng ops_per_tx) (fun _ -> record_op ()))
  in
  { name = "layered"; topology; gen }

let federated ?(items_per_rm = 2) () =
  let topology =
    {
      Template.components =
        [|
          ("frontP", Conflict.Never);
          ("frontQ", Conflict.Never);
          ("rmA", Conflict.Rw);
          ("rmB", Conflict.Rw);
        |];
    }
  in
  let gen rng ~client ~seq =
    ignore seq;
    let svc rm =
      let prefix = if rm = 2 then "a" else "b" in
      let it = Fmt.str "%s%d" prefix (Prng.int rng items_per_rm) in
      Template.call ~component:rm (Label.v ~args:[ it ] "svc") (rw_leaves it)
    in
    Template.call ~component:(client mod 2) (Label.v "txn") [ svc 2; svc 3 ]
  in
  { name = "federated"; topology; gen }

let all () = [ banking (); layered (); federated () ]

let find name = List.find_opt (fun w -> w.name = name) (all ())
