lib/runtime/lock.ml: Conflict Hashtbl Label List Repro_model
