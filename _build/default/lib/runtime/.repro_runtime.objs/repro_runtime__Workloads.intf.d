lib/runtime/workloads.mli: Repro_workload Template
