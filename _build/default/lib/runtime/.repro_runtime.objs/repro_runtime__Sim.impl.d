lib/runtime/sim.ml: Array Conflict Fmt Hashtbl History Label List Lock Option Prng Repro_core Repro_model Repro_storage Repro_workload Template
