lib/runtime/workloads.ml: Conflict Fmt Label List Prng Repro_model Repro_storage Repro_workload Template
