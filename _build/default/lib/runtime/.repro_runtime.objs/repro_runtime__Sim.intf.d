lib/runtime/sim.mli: History Repro_model Repro_workload Template
