lib/runtime/template.ml: Array Conflict Fmt Label List Option Repro_model
