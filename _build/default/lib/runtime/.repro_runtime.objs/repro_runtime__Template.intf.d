lib/runtime/template.mli: Conflict Format Label Repro_model
