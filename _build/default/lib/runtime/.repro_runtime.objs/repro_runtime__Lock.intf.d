lib/runtime/lock.mli: Conflict Label Repro_model
