(** Ready-made topologies and transaction-template generators for the
    runtime: the three application families the paper's introduction
    motivates (TP-monitor banking, layered DBMS storage, federated
    multi-component systems).  Used by the [compsim] tool, the examples and
    the benchmarks. *)



type workload = {
  name : string;
  topology : Template.topology;
  gen : Repro_workload.Prng.t -> client:int -> seq:int -> Template.t;
      (** Template for client [client]'s [seq]-th transaction. *)
}

val banking : ?accounts:int -> ?services_per_tx:int -> unit -> workload
(** A bank component over a record store: deposits and withdrawals commute
    unless they touch the same account and one checks the balance.  The
    bank's conflict table is {e faithful} to the store, so even open nesting
    is safe.  Components: 0 = bank, 1 = store. *)

val layered : ?records:int -> ?ops_per_tx:int -> unit -> workload
(** A three-level stack: query layer over a record manager over a page
    manager ({!Repro_storage.Pagemap} maps records to pages).  Semantically
    commuting record operations conflict on pages — the classical multilevel
    motivation.  Components: 0 = query, 1 = records, 2 = pages. *)

val federated : ?items_per_rm:int -> unit -> workload
(** Two autonomous front-ends (clients are split between them) sharing two
    resource managers — the paper's Figure-3 shape.  The front-ends see no
    conflicts of their own, so nothing above the resource managers relates
    transactions of different front-ends: open nesting can serialize a root
    pair in opposite directions at the two managers, which the Comp-C
    checker detects.  Components: 0/1 = front-ends, 2/3 = resource
    managers. *)

val all : unit -> workload list

val find : string -> workload option
