(** Transaction templates and component topologies for the runtime.

    A template is the {e static} shape of a composite transaction: a tree of
    service invocations ending in leaf operations.  Each internal node names
    the component that will schedule its children — the runtime turns a
    template instance into one execution tree of the emitted history, with
    the node a transaction of its component and an operation of its
    parent's component.

    Nodes are addressed by {e paths} (child-index lists from the root), the
    stable identity the simulator uses to relate lock grants, completions
    and history nodes across retries. *)

open Repro_model

type t = {
  label : Label.t;
  component : int option;
      (** The component scheduling this node's children; [None] for leaves.
          A node with children must name a component. *)
  sequential : bool;
      (** Execute the children one after another (a strong intra-transaction
          order); otherwise they are dispatched concurrently. *)
  children : t list;
}

val leaf : Label.t -> t

val call : ?sequential:bool -> component:int -> Label.t -> t list -> t
(** An internal node: a service call whose children run under [component].
    Raises [Invalid_argument] when [children] is empty. *)

type topology = {
  components : (string * Conflict.spec) array;
      (** One entry per component; the index is the component id used in
          templates. *)
}

val validate : topology -> t -> unit
(** Check component ids are in range and leaves/internals are well-formed;
    raises [Invalid_argument] otherwise. *)

type path = int list
(** Root is [[]]; the k-th child of [p] is [p @ [k]].  (Paths are built
    reversed internally; this type is the public, root-first form.) *)

val size : t -> int
(** Number of nodes in the template (root included). *)

val pp : Format.formatter -> t -> unit
