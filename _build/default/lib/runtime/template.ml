open Repro_model

type t = {
  label : Label.t;
  component : int option;
  sequential : bool;
  children : t list;
}

let leaf label = { label; component = None; sequential = false; children = [] }

let call ?(sequential = false) ~component label children =
  if children = [] then invalid_arg "Template.call: empty children";
  { label; component = Some component; sequential; children }

type topology = { components : (string * Conflict.spec) array }

let rec validate topo t =
  match (t.component, t.children) with
  | None, [] -> ()
  | None, _ :: _ -> invalid_arg "Template.validate: children without a component"
  | Some _, [] -> invalid_arg "Template.validate: component without children"
  | Some c, children ->
    if c < 0 || c >= Array.length topo.components then
      invalid_arg (Fmt.str "Template.validate: unknown component %d" c);
    List.iter (validate topo) children

type path = int list

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec pp ppf t =
  match t.children with
  | [] -> Label.pp ppf t.label
  | cs ->
    Fmt.pf ppf "@[<hov 2>%a@@%d%s[%a]@]" Label.pp t.label
      (Option.get t.component)
      (if t.sequential then "!" else "")
      (Fmt.list ~sep:Fmt.comma pp) cs
