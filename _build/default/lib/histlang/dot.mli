(** Graphviz (DOT) export of composite executions.

    Two views:

    - {!forest}: the computational forest — execution-tree edges solid,
      nodes clustered by the schedule they are transactions of, leaves as
      boxes; optionally overlaid with the observed order (dashed red
      edges), which makes reduction failures visually obvious;
    - {!invocation_graph}: the schedules and their invocation edges with
      levels (Defs. 7–9).

    Render with e.g. [dot -Tsvg]. *)

open Repro_model

val forest : ?obs:Repro_order.Rel.t -> History.t -> string
(** [forest ?obs h] is a DOT digraph of the execution trees; when [obs] is
    given, its pairs are drawn as dashed constraint edges. *)

val invocation_graph : History.t -> string
