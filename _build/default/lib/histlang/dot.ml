open Repro_model

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_label h i = escape (Fmt.str "%a" (History.pp_node h) i)

(* Stable pastel fill per schedule. *)
let fill sid =
  let palette =
    [| "#cfe2ff"; "#d1e7dd"; "#fff3cd"; "#f8d7da"; "#e2d9f3"; "#d2f4ea"; "#ffe5d0" |]
  in
  palette.(sid mod Array.length palette)

let forest ?obs h =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "digraph forest {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  for i = 0 to History.n_nodes h - 1 do
    let shape, style =
      if History.is_leaf h i then ("box", "filled")
      else if History.is_root h i then ("doubleoctagon", "filled")
      else ("ellipse", "filled")
    in
    let color =
      match History.sched_of_tx h i with Some s -> fill s | None -> "#f5f5f5"
    in
    let sched_note =
      match History.sched_of_tx h i with
      | Some s -> Fmt.str "\\n@%s" (escape (History.schedule h s).History.sname)
      | None -> ""
    in
    pf "  n%d [label=\"%s%s\", shape=%s, style=%s, fillcolor=\"%s\"];\n" i
      (node_label h i) sched_note shape style color
  done;
  for i = 0 to History.n_nodes h - 1 do
    List.iter (fun c -> pf "  n%d -> n%d;\n" i c) (History.children h i)
  done;
  (match obs with
  | None -> ()
  | Some r ->
    (* Render the transitive reduction: the closure would bury the trees in
       implied edges. *)
    Repro_order.Rel.iter
      (fun a b ->
        pf "  n%d -> n%d [style=dashed, color=\"#c0392b\", constraint=false];\n" a b)
      (Repro_order.Rel.transitive_reduction r));
  pf "}\n";
  Buffer.contents buf

let invocation_graph h =
  let buf = Buffer.create 256 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "digraph invocations {\n  rankdir=TB;\n  node [fontname=\"Helvetica\", shape=component, style=filled];\n";
  List.iter
    (fun (s : History.schedule) ->
      pf "  s%d [label=\"%s\\nlevel %d\", fillcolor=\"%s\"];\n" s.History.sid
        (escape s.History.sname)
        (History.level h s.History.sid)
        (fill s.History.sid))
    (History.schedules h);
  Repro_order.Rel.iter
    (fun a b -> pf "  s%d -> s%d;\n" a b)
    (History.invocation_graph h);
  pf "}\n";
  Buffer.contents buf
