lib/histlang/dot.ml: Array Buffer Fmt History List Repro_model Repro_order String
