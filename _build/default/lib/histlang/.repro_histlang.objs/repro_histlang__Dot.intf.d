lib/histlang/dot.mli: History Repro_model Repro_order
