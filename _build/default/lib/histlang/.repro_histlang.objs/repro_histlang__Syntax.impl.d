lib/histlang/syntax.ml: Conflict Fmt Hashtbl History Label List Repro_model Repro_order String
