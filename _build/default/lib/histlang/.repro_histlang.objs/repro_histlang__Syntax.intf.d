lib/histlang/syntax.mli: Format Repro_model
