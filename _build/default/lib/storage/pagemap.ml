open Repro_model

let page_of ?(pages = 8) key = Fmt.str "pg%d" (Hashtbl.hash key mod pages)

let page_ops ?(pages = 8) (lbl : Label.t) =
  match Label.item lbl with
  | None -> []
  | Some key -> (
    let pg = page_of ~pages key in
    match lbl.Label.name with
    | "r" | "read" | "get" | "fetch" -> [ Label.read pg ]
    | "insert" | "delete" ->
      [ Label.read pg; Label.write pg; Label.read "pgix"; Label.write "pgix" ]
    | _ -> [ Label.read pg; Label.write pg ])
