(** In-memory versioned key-value store — the data substrate under leaf
    schedulers.

    The paper's leaf operations are reads and writes over shared items; this
    store executes them (plus the commutative increment/decrement pair that
    motivates semantic schedulers), supports transactional undo so the
    runtime can abort and retry subtransactions, and counts accesses for the
    benchmarks.

    Values are integers; missing items read as [0].  The store is not
    thread-safe: the simulation is single-threaded discrete-event. *)

type t

val create : unit -> t

val get : t -> string -> int

val set : t -> string -> int -> unit

type txid = int

val begin_tx : t -> txid
(** Open an undo scope. *)

val apply : t -> txid -> Repro_model.Label.t -> int
(** Execute a leaf operation within a transaction: ["r"] returns the value;
    ["w"] writes [1 + current] (a distinct value, so effects are
    observable) and returns the written value; ["inc"]/["dec"] adjust by one
    and return the new value.  The first argument of the label names the
    item.  Unknown operation names behave like writes.  Raises
    [Invalid_argument] if the label has no item or the transaction is not
    open. *)

val commit : t -> txid -> unit
(** Discard the undo log. *)

val abort : t -> txid -> unit
(** Roll the store back to the state at [begin_tx] (with respect to this
    transaction's writes, applied in reverse). *)

val items : t -> (string * int) list
(** Current contents, sorted by item, for assertions and reports. *)

val reads : t -> int
(** Total read accesses executed so far. *)

val writes : t -> int
(** Total write/increment/decrement accesses executed so far. *)
