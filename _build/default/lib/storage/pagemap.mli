(** Record-to-page mapping for multilevel storage examples.

    Classical multilevel transaction papers (and this paper's stack
    configuration) layer a record manager over a page manager: a record
    operation touches the page holding the record (and sometimes an index
    page), so two record operations that commute semantically may still
    conflict on pages.  This module provides the deterministic mapping the
    layered-DBMS example and workloads use. *)

val page_of : ?pages:int -> string -> string
(** [page_of key] is the page holding [key] ("pg0" … "pg<n-1>"); the default
    page count is 8.  Deterministic hash of the key. *)

val page_ops : ?pages:int -> Repro_model.Label.t -> Repro_model.Label.t list
(** Expand a record-level operation into its page-level leaf operations:
    a record read reads the record's page; a record write/insert/delete
    reads and writes it; an insert or delete additionally reads and writes
    the index page ("pgix"). *)
