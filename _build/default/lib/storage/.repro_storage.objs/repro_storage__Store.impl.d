lib/storage/store.ml: Hashtbl List Option Repro_model String
