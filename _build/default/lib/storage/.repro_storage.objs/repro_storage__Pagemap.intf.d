lib/storage/pagemap.mli: Repro_model
