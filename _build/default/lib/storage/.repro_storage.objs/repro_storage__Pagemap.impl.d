lib/storage/pagemap.ml: Fmt Hashtbl Label Repro_model
