lib/storage/store.mli: Repro_model
