type txid = int

type t = {
  table : (string, int) Hashtbl.t;
  undo : (txid, (string * int option) list ref) Hashtbl.t;
  mutable next_tx : txid;
  mutable reads : int;
  mutable writes : int;
}

let create () =
  { table = Hashtbl.create 64; undo = Hashtbl.create 16; next_tx = 0; reads = 0; writes = 0 }

let get t item = Option.value ~default:0 (Hashtbl.find_opt t.table item)

let set t item v = Hashtbl.replace t.table item v

let begin_tx t =
  let id = t.next_tx in
  t.next_tx <- id + 1;
  Hashtbl.replace t.undo id (ref []);
  id

let undo_log t tx =
  match Hashtbl.find_opt t.undo tx with
  | Some l -> l
  | None -> invalid_arg "Store: transaction is not open"

let record_old t tx item =
  let l = undo_log t tx in
  l := (item, Hashtbl.find_opt t.table item) :: !l

let write t tx item v =
  record_old t tx item;
  t.writes <- t.writes + 1;
  Hashtbl.replace t.table item v;
  v

let apply t tx (lbl : Repro_model.Label.t) =
  match Repro_model.Label.item lbl with
  | None -> invalid_arg "Store.apply: leaf operation without an item"
  | Some item -> (
    match lbl.Repro_model.Label.name with
    | "r" | "read" ->
      t.reads <- t.reads + 1;
      get t item
    | "inc" -> write t tx item (get t item + 1)
    | "dec" -> write t tx item (get t item - 1)
    | _ -> write t tx item (get t item + 1))

let commit t tx =
  ignore (undo_log t tx);
  Hashtbl.remove t.undo tx

let abort t tx =
  let l = undo_log t tx in
  List.iter
    (fun (item, old) ->
      match old with
      | Some v -> Hashtbl.replace t.table item v
      | None -> Hashtbl.remove t.table item)
    !l;
  Hashtbl.remove t.undo tx

let items t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reads t = t.reads

let writes t = t.writes
