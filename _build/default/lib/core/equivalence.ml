open Repro_model
open Repro_order
open Ids

type front_spec = {
  fs_members : Int_set.t;
  fs_input : Rel.t;
  fs_con : Pair_set.t;
}

let con_pairs h rel (f : Front.t) =
  Observed.conflict_pairs h rel f.Front.members
  |> List.map Pair.normalise
  |> Pair_set.of_list

let of_front h rel (f : Front.t) =
  { fs_members = f.Front.members; fs_input = f.Front.inp; fs_con = con_pairs h rel f }

let is_serial fs = Rel.total_on fs.fs_members fs.fs_input

let level_front h i =
  let cert = Reduction.reduce h in
  let reached =
    match cert.Reduction.outcome with
    | Ok _ -> true
    | Error
        ( Reduction.Front_not_cc { index; _ }
        | Reduction.No_calculation { level = index; _ }
        | Reduction.Intra_contradiction { level = index; _ } ) ->
      index > i
  in
  if not reached then None
  else if i = 0 then Some cert.Reduction.initial
  else
    List.find_map
      (fun (s : Reduction.step) ->
        if s.Reduction.level = i then Some s.Reduction.front else None)
      cert.Reduction.steps

let level_equivalent h i fs =
  match level_front h i with
  | None -> false
  | Some f ->
    let rel = Observed.compute h in
    Int_set.equal f.Front.members fs.fs_members
    && Rel.equal f.Front.inp fs.fs_input
    && Pair_set.equal (con_pairs h rel f) fs.fs_con

let level_contained h i fs =
  match level_front h i with
  | None -> false
  | Some f ->
    let rel = Observed.compute h in
    Int_set.equal f.Front.members fs.fs_members
    && Pair_set.equal (con_pairs h rel f) fs.fs_con
    && Rel.subset (Front.constraint_graph f) fs.fs_input

let comp_c_via_containment h =
  let n = History.order h in
  match level_front h n with
  | None -> false
  | Some f -> (
    let rel = Observed.compute h in
    (* Theorem 1 (if): topologically sort the front's constraints into a
       total order — the serial front — then verify Defs. 17 and 19. *)
    match Rel.topo_sort ~nodes:f.Front.members (Front.constraint_graph f) with
    | None -> false
    | Some order ->
      let rec chain acc = function
        | a :: (b :: _ as rest) -> chain (Rel.add a b acc) rest
        | _ -> acc
      in
      let serial =
        {
          fs_members = f.Front.members;
          fs_input = Rel.transitive_closure (chain Rel.empty order);
          fs_con = con_pairs h rel f;
        }
      in
      is_serial serial && level_contained h n serial)
