(** Computational fronts (Defs. 12–13, 15, 17).

    A front is a maximal antichain of the computational forest together with
    the relations the theory needs on it: the observed order [<_o], the input
    orders [→], and (derived) the generalized conflicts.  The level-0 front
    holds every leaf; the level-i front replaces the operations of all
    level-i schedules by their transactions while root transactions of lower
    levels are carried along (Def. 16.5), so the level-N front holds exactly
    the root transactions. *)

open Repro_order
open Repro_model
open Ids

type t = private {
  index : int;  (** The [i] of "level [i] front". *)
  members : Int_set.t;
  obs : Rel.t;  (** Observed order restricted to [members]. *)
  inp : Rel.t;  (** Weak input orders restricted to [members] — the front's [→]. *)
}

val initial : History.t -> Observed.relations -> t
(** The level-0 front: all leaves (Def. 15). *)

val members_at : History.t -> int -> Int_set.t
(** Members of the level-[i] front of the history, computed structurally:
    leaves and transactions of level ≤ [i] schedules that are not operations
    of any schedule of level ≤ [i]. *)

val make : History.t -> Observed.relations -> int -> t
(** The level-[i] front with its restricted relations. *)

val constraint_graph : t -> Rel.t
(** [obs ∪ inp] — the relation whose acyclicity is conflict consistency. *)

val layout_constraints : History.t -> Observed.relations -> t -> Rel.t
(** The pairs whose order a rearrangement of the front must preserve
    (Def. 16 step 1): the input orders, plus the observed pairs that are
    generalized conflicts (commuting pairs may be swapped). *)

val cc_cycle : t -> id list option
(** A witness cycle in [obs ∪ inp], or [None] when the front is conflict
    consistent (Def. 13). *)

val is_cc : t -> bool

val is_serial : History.t -> t -> bool
(** Def. 17: the strong input orders totally order the front's members.  The
    union of the members' schedules' strong input orders is consulted. *)

val conflict_pairs : History.t -> Observed.relations -> t -> (id * id) list
(** Generalized-conflict pairs among the members (for display). *)

val pp : History.t -> Format.formatter -> t -> unit
