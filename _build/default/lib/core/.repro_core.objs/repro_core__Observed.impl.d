lib/core/observed.ml: History Ids Int_set List Rel Repro_model Repro_order
