lib/core/compc.ml: Fmt Front History Int_set List Observed Reduction Repro_model Repro_order
