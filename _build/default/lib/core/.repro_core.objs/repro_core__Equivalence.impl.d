lib/core/equivalence.ml: Front History Ids Int_set List Observed Pair Pair_set Reduction Rel Repro_model Repro_order
