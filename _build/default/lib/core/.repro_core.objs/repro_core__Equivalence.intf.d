lib/core/equivalence.mli: Front History Ids Int_set Observed Pair_set Rel Repro_model Repro_order
