lib/core/reduction.mli: Format Front History Ids Observed Repro_model Repro_order
