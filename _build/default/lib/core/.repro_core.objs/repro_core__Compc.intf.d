lib/core/compc.mli: Format History Observed Reduction Repro_model Repro_order
