lib/core/front.ml: Array Fmt Fun History Ids Int_set List Observed Rel Repro_model Repro_order
