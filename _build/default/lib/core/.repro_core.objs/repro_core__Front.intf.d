lib/core/front.mli: Format History Ids Int_set Observed Rel Repro_model Repro_order
