lib/core/observed.mli: History Ids Rel Repro_model Repro_order
