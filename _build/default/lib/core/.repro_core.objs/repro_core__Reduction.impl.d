lib/core/reduction.ml: Fmt Front Hashtbl History Ids Int_set List Observed Option Rel Repro_model Repro_order Result
