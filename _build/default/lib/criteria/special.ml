open Repro_order
open Repro_model

let all_schedules_cc h =
  List.for_all (fun (s : History.schedule) -> Ser.cc h s.History.sid) (History.schedules h)

let scc h =
  if not (Shapes.is_stack h) then invalid_arg "Special.scc: not a stack";
  all_schedules_cc h

let fcc h =
  if not (Shapes.is_fork h) then invalid_arg "Special.fcc: not a fork";
  all_schedules_cc h

let ghost_graph h ~branches ~bottom =
  let ser = Ser.serialization_order h bottom in
  let branch_of t =
    match History.sched_of_op h t with
    | Some s when List.mem s branches -> Some s
    | _ -> None
  in
  Rel.fold
    (fun t t' acc ->
      match (branch_of t, branch_of t') with
      | Some b, Some b' when b <> b' ->
        let p = History.parent_tx h t and p' = History.parent_tx h t' in
        if p <> p' then Rel.add p p' acc else acc
      | _ -> acc)
    ser Rel.empty

let jcc h =
  match Shapes.classify h with
  | Shapes.Join { branches; bottom } ->
    Ser.cc h bottom
    &&
    let ghost = ghost_graph h ~branches ~bottom in
    let upper =
      List.fold_left
        (fun acc b ->
          let s = History.schedule h b in
          Rel.union acc (Rel.union (Ser.serialization_order h b) s.History.weak_in))
        ghost branches
    in
    Rel.is_acyclic upper
  | _ -> invalid_arg "Special.jcc: not a join"

let check_matching h =
  match Shapes.classify h with
  | Shapes.Stack _ -> Some ("SCC", all_schedules_cc h)
  | Shapes.Fork _ -> Some ("FCC", all_schedules_cc h)
  | Shapes.Join _ -> Some ("JCC", jcc h)
  | Shapes.Flat | Shapes.General -> None
