lib/criteria/special.mli: History Rel Repro_model Repro_order
