lib/criteria/ser.mli: History Rel Repro_model Repro_order
