lib/criteria/classic.mli: History Repro_model
