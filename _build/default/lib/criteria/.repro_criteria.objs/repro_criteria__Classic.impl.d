lib/criteria/classic.ml: Hashtbl History Int_set List Rel Repro_core Repro_model Repro_order Ser Shapes Special
