lib/criteria/shapes.ml: Fmt History Ids Int_set List Repro_model Repro_order
