lib/criteria/shapes.mli: Format History Repro_model
