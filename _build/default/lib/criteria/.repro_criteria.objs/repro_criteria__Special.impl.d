lib/criteria/special.ml: History List Rel Repro_model Repro_order Ser Shapes
