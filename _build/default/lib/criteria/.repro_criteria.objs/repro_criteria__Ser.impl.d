lib/criteria/ser.ml: Hashtbl History Ids Int_set List Rel Repro_model Repro_order
