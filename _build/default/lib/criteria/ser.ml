open Repro_order
open Repro_model
open Ids

let serialization_order h sid =
  let s = History.schedule h sid in
  Rel.fold
    (fun o o' acc ->
      if History.conflicts h sid o o' then begin
        let t = History.parent_tx h o and t' = History.parent_tx h o' in
        if t <> t' then Rel.add t t' acc else acc
      end
      else acc)
    s.History.weak_out Rel.empty

let constraint_graph h sid =
  let s = History.schedule h sid in
  Rel.union (serialization_order h sid) s.History.weak_in

let cc_witness h sid = Rel.find_cycle (constraint_graph h sid)

let cc h sid = cc_witness h sid = None

let precedes h sid =
  let s = History.schedule h sid in
  match s.History.log with
  | [] -> Rel.empty
  | log ->
    (* First and last log position of each transaction's operations. *)
    let first = Hashtbl.create 16 and last = Hashtbl.create 16 in
    List.iteri
      (fun i o ->
        let t = History.parent_tx h o in
        if not (Hashtbl.mem first t) then Hashtbl.replace first t i;
        Hashtbl.replace last t i)
      log;
    let txs = Int_set.elements s.History.transactions in
    List.fold_left
      (fun acc t ->
        List.fold_left
          (fun acc t' ->
            if t <> t' then
              match (Hashtbl.find_opt last t, Hashtbl.find_opt first t') with
              | Some e, Some b when e < b -> Rel.add t t' acc
              | _ -> acc
            else acc)
          acc txs)
      Rel.empty txs

let serial_witness h sid =
  let s = History.schedule h sid in
  Rel.topo_sort ~nodes:s.History.transactions (constraint_graph h sid)
