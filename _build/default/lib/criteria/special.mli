(** The specialised correctness criteria that predate the general theory:
    stack conflict consistency (SCC, Def. 22), fork conflict consistency
    (FCC, Def. 24) and join conflict consistency (JCC, Def. 27 with the
    ghost graph of Def. 26).

    Theorems 2–4 prove each equivalent to Comp-C on its configuration; the
    test suite and experiment E5–E7 validate those equivalences empirically
    against {!Repro_core.Compc}. *)

open Repro_order
open Repro_model

val all_schedules_cc : History.t -> bool
(** Every schedule of the history is conflict consistent ({!Ser.cc}).  This
    {e is} SCC on stacks and FCC on forks (branch relations live on disjoint
    transaction sets, so their union is acyclic iff each is). *)

val scc : History.t -> bool
(** Stack conflict consistency.  Raises [Invalid_argument] when the history
    is not a stack ({!Shapes.is_stack}). *)

val fcc : History.t -> bool
(** Fork conflict consistency.  Raises [Invalid_argument] when the history
    is not a fork. *)

val ghost_graph : History.t -> branches:History.sched_id list -> bottom:History.sched_id -> Rel.t
(** Def. 26 (join ghost graph): [T 𝒢 T'] for transactions of {e different}
    branch schedules whenever children [t] of [T] and [t'] of [T'] are both
    transactions of the shared bottom schedule and the bottom schedule
    serializes [t] before [t'].  (The published definition's order relation
    on the bottom schedule is garbled by OCR; the appendix's identity
    [<_o = 𝒢 ∪ ⋃ ser] fixes the intended reading as the bottom schedule's
    serialization order.) *)

val jcc : History.t -> bool
(** Join conflict consistency: the bottom schedule is CC and the union of
    the ghost graph with every branch's serialization order and weak input
    order is acyclic.  Raises [Invalid_argument] when the history is not a
    join. *)

val check_matching : History.t -> (string * bool) option
(** Dispatch on the configuration: [Some ("SCC", scc h)] for stacks, and
    likewise for forks and joins; [None] for other shapes. *)
