open Repro_order
open Repro_model
open Ids

type shape =
  | Flat
  | Stack of History.sched_id list
  | Fork of { top : History.sched_id; branches : History.sched_id list }
  | Join of { branches : History.sched_id list; bottom : History.sched_id }
  | General

let all_ops_are_leaves h sid =
  List.for_all (History.is_leaf h) (History.ops_of_schedule h sid)

(* Every transaction of [sid] is an operation of some schedule in [clients]. *)
let all_txs_invoked_by h sid clients =
  Int_set.for_all
    (fun t ->
      match History.sched_of_op h t with
      | Some c -> List.mem c clients
      | None -> false)
    (History.schedule h sid).History.transactions

let roots_all_in h sids =
  List.for_all
    (fun r ->
      match History.sched_of_tx h r with Some s -> List.mem s sids | None -> false)
    (History.roots h)

let try_stack h =
  let n = History.order h in
  let per_level = List.init n (fun i -> History.schedules_at_level h (n - i)) in
  if List.for_all (fun l -> List.length l = 1) per_level then begin
    let chain = List.concat per_level (* top first *) in
    let rec ok = function
      | [] -> true
      | [ bottom ] -> all_ops_are_leaves h bottom
      | upper :: (lower :: _ as rest) ->
        (* O_{upper} = T_{lower}: every op of upper is a transaction of
           lower, and every transaction of lower is invoked by upper. *)
        List.for_all
          (fun o -> History.sched_of_tx h o = Some lower)
          (History.ops_of_schedule h upper)
        && all_txs_invoked_by h lower [ upper ]
        && ok rest
    in
    match chain with
    | top :: _ when roots_all_in h [ top ] && ok chain -> Some chain
    | _ -> None
  end
  else None

let try_fork h =
  if History.order h <> 2 then None
  else
    match History.schedules_at_level h 2 with
    | [ top ] ->
      let branches = History.schedules_at_level h 1 in
      if
        List.length branches >= 2
        && roots_all_in h [ top ]
        && List.for_all
             (fun o ->
               match History.sched_of_tx h o with
               | Some s -> List.mem s branches
               | None -> false)
             (History.ops_of_schedule h top)
        && List.for_all
             (fun b -> all_ops_are_leaves h b && all_txs_invoked_by h b [ top ])
             branches
      then Some (top, branches)
      else None
    | _ -> None

let try_join h =
  if History.order h <> 2 then None
  else
    match History.schedules_at_level h 1 with
    | [ bottom ] ->
      let branches = History.schedules_at_level h 2 in
      if
        List.length branches >= 2
        && roots_all_in h branches
        && all_ops_are_leaves h bottom
        && all_txs_invoked_by h bottom branches
        && List.for_all
             (fun b ->
               List.for_all
                 (fun o -> History.sched_of_tx h o = Some bottom)
                 (History.ops_of_schedule h b))
             branches
      then Some (branches, bottom)
      else None
    | _ -> None

let classify h =
  match try_stack h with
  | Some chain -> Stack chain
  | None -> (
    match try_fork h with
    | Some (top, branches) -> Fork { top; branches }
    | None -> (
      match try_join h with
      | Some (branches, bottom) -> Join { branches; bottom }
      | None -> if History.order h <= 1 then Flat else General))

let is_stack h = match classify h with Stack _ -> true | _ -> false
let is_fork h = match classify h with Fork _ -> true | _ -> false
let is_join h = match classify h with Join _ -> true | _ -> false

let pp ppf = function
  | Flat -> Fmt.string ppf "flat"
  | Stack chain -> Fmt.pf ppf "stack(%d levels)" (List.length chain)
  | Fork { branches; _ } -> Fmt.pf ppf "fork(%d branches)" (List.length branches)
  | Join { branches; _ } -> Fmt.pf ppf "join(%d branches)" (List.length branches)
  | General -> Fmt.string ppf "general"
