(** Recognizers for the special configurations studied before the general
    theory: stacks ([ABFS97]), forks and joins ([AFPS99], Defs. 21, 23, 25).

    The general composite model subsumes them all; these recognizers let the
    test suite and the experiments dispatch the matching specialised
    criterion (SCC, FCC, JCC) and compare its verdict with Comp-C
    (Theorems 2–4). *)

open Repro_model

type shape =
  | Flat
      (** Order 1: every schedule is a leaf schedule (ordinary single-level
          histories; several independent schedulers allowed). *)
  | Stack of History.sched_id list
      (** One schedule per level, each one's operations being exactly the
          transactions of the next; listed top (highest level) first.  A
          single leaf schedule holding all roots is a 1-level stack. *)
  | Fork of { top : History.sched_id; branches : History.sched_id list }
      (** One level-2 schedule holding every root, delegating to two or more
          level-1 branch schedules. *)
  | Join of { branches : History.sched_id list; bottom : History.sched_id }
      (** Two or more level-2 schedules holding the roots, all delegating to
          one shared level-1 schedule. *)
  | General  (** Anything else: the paper's arbitrary configurations. *)

val classify : History.t -> shape

val is_stack : History.t -> bool
val is_fork : History.t -> bool
val is_join : History.t -> bool

val pp : Format.formatter -> shape -> unit
