(** Per-schedule serialization machinery shared by all correctness criteria.

    Classical concurrency theory derives, from a schedule's output, the
    {e serialization order} it induces on its transactions: [t] before [t']
    whenever some operation of [t] precedes a conflicting operation of [t'].
    Conflict consistency of a single schedule — the building block of SCC,
    FCC and JCC ([ABFS97], [AFPS99]) — is acyclicity of that order joined
    with the schedule's weak input order; the paper's Def. 13 restates the
    same property on fronts. *)

open Repro_order
open Repro_model

val serialization_order : History.t -> History.sched_id -> Rel.t
(** [(t, t')] iff some operation of [t] is weak-output-ordered before a
    conflicting operation of [t'] (both transactions of the schedule). *)

val cc : History.t -> History.sched_id -> bool
(** Conflict consistency of one schedule: [serialization_order ∪ weak_in]
    acyclic. *)

val cc_witness : History.t -> History.sched_id -> Repro_order.Ids.id list option
(** A cycle witnessing non-CC, or [None] when the schedule is CC. *)

val precedes : History.t -> History.sched_id -> Rel.t
(** Non-overlap order from the schedule's execution log: [(t, t')] iff every
    logged operation of [t] precedes every logged operation of [t'].  Empty
    when the schedule has no log.  Used by order-preserving criteria. *)

val serial_witness : History.t -> History.sched_id -> Repro_order.Ids.id list option
(** A serial transaction order compatible with the serialization order and
    the weak input order, or [None] when not CC. *)
