(** ADT commutativity algebra.

    The paper treats a schedule's conflict predicate [CON_S] (Def. 3) as an
    abstract commutativity relation; Malta & Martinez ("Limits of
    Commutativity on Abstract Data Types") supply the concrete families this
    module encodes: operations are grouped into {e classes}, and a symmetric
    table of class pairs declares which classes conflict, each pair guarded
    by an argument-sensitive {!cond} (same item, same item and element,
    overlapping escrow range).  Class pairs not listed commute.

    Two evaluation paths exist on purpose.  {!eval} interprets the
    declaration lists directly and is the qcheck reference oracle; {!compile}
    interns the operation vocabulary once and builds a dense class-pair
    matrix so {!probe} decides a pair with two hash lookups and one array
    read — that is the form the conflict-memo fill path uses. *)

type cond =
  | Always  (** The class pair conflicts regardless of arguments. *)
  | Item
      (** Conflict iff the operations share their first argument.  Pairs
          where either side lacks a first argument conflict pessimistically:
          without an item we cannot prove commutation. *)
  | Args
      (** Conflict iff the operations share their first argument {e and}
          their remaining argument lists intersect (set [add]/[remove] on
          the same element).  Missing arguments are pessimistic: no first
          argument, or no remaining arguments on either side, conflicts. *)
  | Range
      (** Conflict iff the operations share their first argument and the
          numeric intervals read from their second and third arguments
          overlap (escrow reservations).  Unparseable or missing bounds are
          pessimistic: same item conflicts. *)

type decl = {
  classes : (string * string list) list;
      (** Class name to member operation names, in declaration order.  When
          an operation name appears in several classes the first declaration
          wins.  Operation names not in any class are pessimistic: they
          conflict with every operation sharing their first argument (and
          with argument-free operations). *)
  rules : (string * string * cond) list;
      (** Symmetric conflicting class pairs with their argument guard; the
          first matching rule wins, unlisted pairs commute.  Rules naming
          undeclared classes are inert. *)
}

type family =
  | Counter
      (** [inc]/[dec] (class [upd]) commute with each other; [get]/[read]/[r]
          (class [get]) commute with each other; [set]/[write]/[w] (class
          [set]) conflict with everything on the same item, and [get]
          conflicts with [upd] on the same item. *)
  | Queue
      (** [enq]/[push] conflict with each other on the same queue (order
          decides queue order), [deq]/[pop] likewise; enqueues and dequeues
          operate on opposite ends of the FIFO and commute. *)
  | Set
      (** [add]/[insert], [remove]/[delete], [contains]/[member]/[mem]:
          same-class pairs commute, cross-class pairs conflict only on the
          same set {e and} the same element ({!Args}). *)
  | Escrow
      (** [escrow]/[reserve] carry a numeric range over their account:
          two reservations conflict iff their ranges overlap ({!Range});
          [take]/[put]/[deposit]/[withdraw] (class [move]) commute with each
          other but conflict with reservations on the same account. *)
  | Custom of decl  (** A user-declared table from the [.ct] language. *)

val decl_of : family -> decl
(** The declaration a family denotes; [Custom d] returns [d]. *)

val vocabulary : family -> string list
(** All operation names declared by the family's classes, in declaration
    order, duplicates included. *)

val known : family -> string -> bool
(** Whether the operation name belongs to a declared class (i.e. is not
    handled by the pessimistic unknown-name fallback). *)

val eval : family -> Label.t -> Label.t -> bool
(** Reference interpreter: resolves both labels' classes by scanning the
    declaration lists and applies the first matching rule.  Symmetric.
    {!probe} on the compiled family agrees with this on every pair — the
    qcheck suites pin that equivalence. *)

type compiled
(** Interned form: operation name -> class id hash table plus a dense
    [(nclasses+1)^2] matrix of condition codes, the extra row and column
    holding the pessimistic unknown-name class. *)

val compile : family -> compiled

val probe : compiled -> Label.t -> Label.t -> bool
(** Same decision as {!eval}, via the dense matrix. *)

val pp : Format.formatter -> family -> unit
(** Prints the [.ct] concrete syntax: [counter], [queue], [set], [escrow],
    or [adt(cls=op/op,...;cls/cls=cond,...)]. *)

val pp_cond : Format.formatter -> cond -> unit

val equal : family -> family -> bool
