(** Well-formedness of composite executions against Defs. 3–4.

    {!History.Builder.seal} already guarantees the structural conditions
    (tree shape, acyclic invocation graph, orders over the right carriers)
    and performs order completion.  This module checks the remaining
    semantic conditions that a set of well-behaved schedulers must satisfy,
    and reports every violation:

    - output orders are partial orders (irreflexive after transitive
      closure) and strong is contained in weak (Def. 3, conditions 1–4);
    - conflicting operations of weakly-input-ordered transactions are
      output-ordered the same way (condition 1a/1b);
    - conflicting operations of different, unordered transactions are
      output-ordered one way or the other (condition 1c);
    - output orders extend intra-transaction orders (condition 2);
    - strong input orders expand to strong output orders (condition 3);
    - execution logs, when present, agree with the weak output order on
      conflicting pairs and with the strong output order on every pair;
    - clients' output orders were passed down as input orders (Def. 4.7). *)

open Repro_order.Ids

type error =
  | Cyclic_order of { sched : History.sched_id; which : string; cycle : id list }
      (** An input or output order of the schedule has a cycle ([which] is
          one of ["weak-in"], ["strong-in"], ["weak-out"], ["strong-out"]). *)
  | Strong_not_in_weak of { sched : History.sched_id; which : string; pair : id * id }
  | Input_order_violated of { sched : History.sched_id; txs : id * id; ops : id * id }
      (** Transactions were weakly input-ordered but a conflicting operation
          pair is ordered against them (or left unordered). *)
  | Unordered_conflict of { sched : History.sched_id; ops : id * id }
      (** A conflicting operation pair of different transactions that the
          schedule failed to order (condition 1c). *)
  | Intra_order_dropped of { sched : History.sched_id; tx : id; pair : id * id; strong : bool }
  | Strong_input_not_expanded of { sched : History.sched_id; txs : id * id; ops : id * id }
  | Log_contradicts_output of { sched : History.sched_id; ops : id * id }
      (** The weak output order claims [fst ops] before [snd ops] although
          they conflict and the log executed them in the other order. *)
  | Log_contradicts_strong of { sched : History.sched_id; ops : id * id }
      (** The strong output order claims strict temporal precedence of
          [fst ops] but the log executed [snd ops] first (strong orders
          bind every pair, commuting or not). *)
  | Input_not_inherited of { parent : History.sched_id; child : History.sched_id; ops : id * id }
      (** Def. 4.7: a client's output pair over two transactions of [child]
          does not appear in [child]'s input order. *)

val pp_error : History.t -> Format.formatter -> error -> unit

val check : History.t -> error list
(** All violations, in schedule order; [[]] means the history is a valid
    composite execution in the sense of the paper. *)

val is_valid : History.t -> bool

(** {1 Lints}

    Histories that are {e valid} but silently hit a pessimistic default of
    their conflict specification.  Off the certification hot path: surfaced
    by [compcheck --stats] and the server's [stats] frame. *)

type warning =
  | Unknown_op_name of { sched : string; name : string; count : int }
      (** The schedule's operations use a name its spec does not recognize
          — [Rw] treats it as a writer, [Table] as commuting with
          everything, an ADT family as conflicting with anything sharing
          its item (see {!Conflict.known_name}).  Usually a typo in the
          workload or a spec that lags the workload's vocabulary. *)
  | Explicit_lock_fallback
      (** A lock table was built over an [Explicit] spec, whose node pairs
          have no label-level meaning: every label pair is treated as
          conflicting, so the component serializes completely. *)

val pp_warning : Format.formatter -> warning -> unit

val lint : History.t -> warning list
(** Unknown-operation warnings for every schedule whose spec discriminates
    by name, in schedule order (first-occurrence order within one
    schedule), with occurrence counts. *)

val warn_explicit_fallback : unit -> unit
(** Print {!Explicit_lock_fallback} to stderr — once per process, further
    calls are free and silent.  {!Repro_runtime.Lock.create} calls this
    when given an [Explicit] spec. *)
