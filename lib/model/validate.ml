open Repro_order
open Ids

type error =
  | Cyclic_order of { sched : History.sched_id; which : string; cycle : id list }
  | Strong_not_in_weak of { sched : History.sched_id; which : string; pair : id * id }
  | Input_order_violated of { sched : History.sched_id; txs : id * id; ops : id * id }
  | Unordered_conflict of { sched : History.sched_id; ops : id * id }
  | Intra_order_dropped of { sched : History.sched_id; tx : id; pair : id * id; strong : bool }
  | Strong_input_not_expanded of { sched : History.sched_id; txs : id * id; ops : id * id }
  | Log_contradicts_output of { sched : History.sched_id; ops : id * id }
  | Log_contradicts_strong of { sched : History.sched_id; ops : id * id }
  | Input_not_inherited of { parent : History.sched_id; child : History.sched_id; ops : id * id }

let pp_error h ppf e =
  let sname s = (History.schedule h s).History.sname in
  let pn = History.pp_node h in
  match e with
  | Cyclic_order { sched; which; cycle } ->
    Fmt.pf ppf "schedule %s: %s order is cyclic: %a" (sname sched) which
      Fmt.(list ~sep:(any " -> ") pn) cycle
  | Strong_not_in_weak { sched; which; pair = a, b } ->
    Fmt.pf ppf "schedule %s: strong %s pair %a -> %a missing from weak order"
      (sname sched) which pn a pn b
  | Input_order_violated { sched; txs = t, t'; ops = o, o' } ->
    Fmt.pf ppf
      "schedule %s: input order %a -> %a not honoured on conflicting operations %a, %a"
      (sname sched) pn t pn t' pn o pn o'
  | Unordered_conflict { sched; ops = o, o' } ->
    Fmt.pf ppf "schedule %s: conflicting operations %a, %a left unordered"
      (sname sched) pn o pn o'
  | Intra_order_dropped { sched; tx; pair = a, b; strong } ->
    Fmt.pf ppf
      "schedule %s: %s intra-transaction order %a -> %a of %a missing from output"
      (sname sched)
      (if strong then "strong" else "weak")
      pn a pn b pn tx
  | Strong_input_not_expanded { sched; txs = t, t'; ops = o, o' } ->
    Fmt.pf ppf
      "schedule %s: strong input order %a -> %a not expanded to operations %a, %a"
      (sname sched) pn t pn t' pn o pn o'
  | Log_contradicts_output { sched; ops = o, o' } ->
    Fmt.pf ppf
      "schedule %s: output claims %a before %a but the log executed them conflicting in the other order"
      (sname sched) pn o pn o'
  | Log_contradicts_strong { sched; ops = o, o' } ->
    Fmt.pf ppf
      "schedule %s: strong output claims %a strictly before %a but the log executed them in the other order"
      (sname sched) pn o pn o'
  | Input_not_inherited { parent; child; ops = o, o' } ->
    Fmt.pf ppf "schedule %s: output pair %a -> %a not inherited by schedule %s"
      (sname parent) pn o pn o' (sname child)

let check_schedule h (s : History.schedule) errs =
  let errs = ref errs in
  let add e = errs := e :: !errs in
  let cyclic which r =
    match Rel.find_cycle r with
    | Some cycle -> add (Cyclic_order { sched = s.sid; which; cycle })
    | None -> ()
  in
  cyclic "weak-in" s.weak_in;
  cyclic "strong-in" s.strong_in;
  cyclic "weak-out" s.weak_out;
  cyclic "strong-out" s.strong_out;
  Rel.iter
    (fun a b ->
      if not (Rel.mem a b s.weak_in) then
        add (Strong_not_in_weak { sched = s.sid; which = "input"; pair = (a, b) }))
    s.strong_in;
  Rel.iter
    (fun a b ->
      if not (Rel.mem a b s.weak_out) then
        add (Strong_not_in_weak { sched = s.sid; which = "output"; pair = (a, b) }))
    s.strong_out;
  (* Conditions 1a/1b: conflicting operations of input-ordered transactions
     must follow the input order. *)
  Rel.iter
    (fun t t' ->
      List.iter
        (fun o ->
          List.iter
            (fun o' ->
              if History.conflicts h s.sid o o' && not (Rel.mem o o' s.weak_out)
              then add (Input_order_violated { sched = s.sid; txs = (t, t'); ops = (o, o') }))
            (History.children h t'))
        (History.children h t))
    s.weak_in;
  (* Condition 1c: every conflicting pair of different transactions is
     ordered one way or the other. *)
  let ops = Array.of_list (History.ops_of_schedule h s.sid) in
  let n = Array.length ops in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let o = ops.(i) and o' = ops.(j) in
      if
        History.conflicts h s.sid o o'
        && (not (Rel.mem o o' s.weak_out))
        && not (Rel.mem o' o s.weak_out)
      then add (Unordered_conflict { sched = s.sid; ops = (o, o') })
    done
  done;
  (* Condition 2: output orders extend intra-transaction orders. *)
  Int_set.iter
    (fun t ->
      let node = History.node h t in
      Rel.iter
        (fun a b ->
          if not (Rel.mem a b s.weak_out) then
            add (Intra_order_dropped { sched = s.sid; tx = t; pair = (a, b); strong = false }))
        node.History.intra_weak;
      Rel.iter
        (fun a b ->
          if not (Rel.mem a b s.strong_out) then
            add (Intra_order_dropped { sched = s.sid; tx = t; pair = (a, b); strong = true }))
        node.History.intra_strong)
    s.transactions;
  (* Condition 3: strong input orders expand over all operation pairs. *)
  Rel.iter
    (fun t t' ->
      List.iter
        (fun o ->
          List.iter
            (fun o' ->
              if not (Rel.mem o o' s.strong_out) then
                add
                  (Strong_input_not_expanded
                     { sched = s.sid; txs = (t, t'); ops = (o, o') }))
            (History.children h t'))
        (History.children h t))
    s.strong_in;
  (* The log, when present, must agree with the weak output order on
     conflicting pairs. *)
  (match s.log with
  | [] -> ()
  | log ->
    let pos = Hashtbl.create 16 in
    List.iteri (fun i o -> Hashtbl.replace pos o i) log;
    Rel.iter
      (fun o o' ->
        if History.conflicts h s.sid o o' then
          match (Hashtbl.find_opt pos o, Hashtbl.find_opt pos o') with
          | Some i, Some j when i > j ->
            add (Log_contradicts_output { sched = s.sid; ops = (o, o') })
          | _ -> ())
      s.weak_out;
    Rel.iter
      (fun o o' ->
        match (Hashtbl.find_opt pos o, Hashtbl.find_opt pos o') with
        | Some i, Some j when i > j ->
          add (Log_contradicts_strong { sched = s.sid; ops = (o, o') })
        | _ -> ())
      s.strong_out);
  !errs

let check_inheritance h errs =
  (* Def. 4.7: when two output-ordered operations of one schedule are both
     transactions of another, the order must appear in the latter's input. *)
  let errs = ref errs in
  List.iter
    (fun (s : History.schedule) ->
      Rel.iter
        (fun o o' ->
          match (History.sched_of_tx h o, History.sched_of_tx h o') with
          | Some c, Some c' when c = c' ->
            let child = History.schedule h c in
            if not (Rel.mem o o' child.History.weak_in) then
              errs :=
                Input_not_inherited { parent = s.sid; child = c; ops = (o, o') }
                :: !errs
          | _ -> ())
        s.weak_out)
    (History.schedules h);
  !errs

let check h =
  let errs = List.fold_left (fun acc s -> check_schedule h s acc) [] (History.schedules h) in
  let errs = check_inheritance h errs in
  List.rev errs

let is_valid h = check h = []

(* ------------------------------------------------------------------ *)
(* Lints: legal histories that silently hit a pessimistic default      *)
(* ------------------------------------------------------------------ *)

type warning =
  | Unknown_op_name of { sched : string; name : string; count : int }
  | Explicit_lock_fallback

let pp_warning ppf = function
  | Unknown_op_name { sched; name; count } ->
    Fmt.pf ppf
      "schedule %s: operation name %S is not recognized by its conflict \
       specification (%d occurrence%s fall%s to the pessimistic default)"
      sched name count
      (if count = 1 then "" else "s")
      (if count = 1 then "s" else "")
  | Explicit_lock_fallback ->
    Fmt.pf ppf
      "lock table over an 'explicit' conflict specification: node pairs \
       have no label-level meaning, so every label pair is treated as \
       conflicting and the component serializes completely"

let lint h =
  List.concat_map
    (fun (s : History.schedule) ->
      if not (Conflict.discriminates s.conflict) then []
      else begin
        let counts = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun o ->
            let name = (History.label h o).Label.name in
            if not (Conflict.known_name s.conflict name) then
              match Hashtbl.find_opt counts name with
              | Some n -> Hashtbl.replace counts name (n + 1)
              | None ->
                Hashtbl.add counts name 1;
                order := name :: !order)
          (History.ops_of_schedule h s.sid);
        List.rev_map
          (fun name ->
            Unknown_op_name
              { sched = s.sname; name; count = Hashtbl.find counts name })
          !order
      end)
    (History.schedules h)

(* One process-wide warning the first time a lock table is built over an
   [Explicit] spec (see [Lock.create]); [Atomic] because the simulator's
   components are driven from several domains. *)
let explicit_fallback_warned = Atomic.make false

let warn_explicit_fallback () =
  if not (Atomic.exchange explicit_fallback_warned true) then
    Fmt.epr "validate: warning: %a@." pp_warning Explicit_lock_fallback
