open Repro_order

type spec =
  | Never
  | Always
  | Rw
  | Same_item
  | Table of (string * string) list
  | Explicit of (Ids.id * Ids.id) list

(* Access classes of the read/write model; [Other] behaves like a writer so
   that unknown operation names are treated pessimistically. *)
type access = Reader | Writer | Bumper | Other

let access_of_name = function
  | "r" | "read" -> Reader
  | "w" | "write" -> Writer
  | "inc" | "dec" -> Bumper
  | _ -> Other

let rw_labels (a : Label.t) (b : Label.t) =
  match (Label.item a, Label.item b) with
  | Some ia, Some ib when String.equal ia ib -> (
    match (access_of_name a.name, access_of_name b.name) with
    | Reader, Reader -> false
    | Bumper, Bumper -> false
    | _ -> true)
  | _ -> false

let share_arg (a : Label.t) (b : Label.t) =
  match (a.args, b.args) with
  | [], _ | _, [] -> true (* argument-free operations conflict on name alone *)
  | args_a, args_b -> List.exists (fun x -> List.mem x args_b) args_a

let table_conflict pairs (a : Label.t) (b : Label.t) =
  let listed =
    List.exists
      (fun (x, y) ->
        (String.equal x a.name && String.equal y b.name)
        || (String.equal x b.name && String.equal y a.name))
      pairs
  in
  listed && share_arg a b

let eval_labels spec a b =
  match spec with
  | Never -> false
  | Always -> true
  | Rw -> rw_labels a b
  | Same_item -> (
    match (Label.item a, Label.item b) with
    | Some ia, Some ib -> String.equal ia ib
    | _ -> false)
  | Table pairs -> table_conflict pairs a b
  | Explicit _ -> true

(* Process-global count of label interpretations, so tests can pin that a
   memo (or a memo transfer) really prevented re-evaluation.  Atomic: the
   batch drivers evaluate from several domains at once. *)
let eval_count = Atomic.make 0

let evals () = Atomic.get eval_count

let eval spec ~get_label a b =
  Atomic.incr eval_count;
  if a = b then false
  else
    match spec with
    | Never -> false
    | Always -> true
    | Rw -> rw_labels (get_label a) (get_label b)
    | Same_item -> (
      match (Label.item (get_label a), Label.item (get_label b)) with
      | Some ia, Some ib -> String.equal ia ib
      | _ -> false)
    | Table pairs -> table_conflict pairs (get_label a) (get_label b)
    | Explicit pairs ->
      List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) pairs

let pp ppf = function
  | Never -> Fmt.string ppf "never"
  | Always -> Fmt.string ppf "always"
  | Rw -> Fmt.string ppf "rw"
  | Same_item -> Fmt.string ppf "same-item"
  | Table pairs ->
    Fmt.pf ppf "table{%a}"
      Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any "/") string string))
      pairs
  | Explicit pairs ->
    Fmt.pf ppf "explicit{%a}"
      Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any ",") int int))
      pairs

let equal s1 s2 =
  match (s1, s2) with
  | Never, Never | Always, Always | Rw, Rw | Same_item, Same_item -> true
  | Table p1, Table p2 ->
    List.equal (fun (a, b) (c, d) -> String.equal a c && String.equal b d) p1 p2
  | Explicit p1, Explicit p2 ->
    List.equal (fun (a, b) (c, d) -> a = c && b = d) p1 p2
  | (Never | Always | Rw | Same_item | Table _ | Explicit _), _ -> false
