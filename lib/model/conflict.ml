open Repro_order

type spec =
  | Never
  | Always
  | Rw
  | Same_item
  | Table of (string * string) list
  | Explicit of (Ids.id * Ids.id) list
  | Adt of Adt.family

(* Access classes of the read/write model; [Other] behaves like a writer so
   that unknown operation names are treated pessimistically. *)
type access = Reader | Writer | Bumper | Other

let access_of_name = function
  | "r" | "read" -> Reader
  | "w" | "write" -> Writer
  | "inc" | "dec" -> Bumper
  | _ -> Other

let rw_labels (a : Label.t) (b : Label.t) =
  match (Label.item a, Label.item b) with
  | Some ia, Some ib when String.equal ia ib -> (
    match (access_of_name a.name, access_of_name b.name) with
    | Reader, Reader -> false
    | Bumper, Bumper -> false
    | _ -> true)
  | _ -> false

let share_arg (a : Label.t) (b : Label.t) =
  match (a.args, b.args) with
  | [], _ | _, [] -> true (* argument-free operations conflict on name alone *)
  | args_a, args_b -> List.exists (fun x -> List.mem x args_b) args_a

let table_conflict pairs (a : Label.t) (b : Label.t) =
  let listed =
    List.exists
      (fun (x, y) ->
        (String.equal x a.name && String.equal y b.name)
        || (String.equal x b.name && String.equal y a.name))
      pairs
  in
  listed && share_arg a b

let eval_labels spec a b =
  match spec with
  | Never -> false
  | Always -> true
  | Rw -> rw_labels a b
  | Same_item -> (
    match (Label.item a, Label.item b) with
    | Some ia, Some ib -> String.equal ia ib
    | _ -> false)
  | Table pairs -> table_conflict pairs a b
  | Explicit _ -> true
  | Adt f -> Adt.eval f a b

(* Process-global count of label interpretations, so tests can pin that a
   memo (or a memo transfer) really prevented re-evaluation.  Atomic: the
   batch drivers evaluate from several domains at once. *)
let eval_count = Atomic.make 0

let evals () = Atomic.get eval_count

let eval spec ~get_label a b =
  Atomic.incr eval_count;
  if a = b then false
  else
    match spec with
    | Never -> false
    | Always -> true
    | Rw -> rw_labels (get_label a) (get_label b)
    | Same_item -> (
      match (Label.item (get_label a), Label.item (get_label b)) with
      | Some ia, Some ib -> String.equal ia ib
      | _ -> false)
    | Table pairs -> table_conflict pairs (get_label a) (get_label b)
    | Explicit pairs ->
      List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) pairs
    | Adt f -> Adt.eval f (get_label a) (get_label b)

(* Compiled specifications.  A spec compiles once per schedule; the probes
   below are what the conflict-memo fill path, the lock tables, and the
   generators use, so no list is re-interpreted on a hot path.  [Table]
   lowers to an interned name matrix (unknown names get the extra id
   [width - 1] and commute, as the interpreter's "not listed" case);
   [Explicit] lowers to a hash set over (lo, hi) node pairs; [Adt] reuses
   the family's own dense class matrix. *)

type compiled =
  | Cnever
  | Calways
  | Crw
  | Csame_item
  | Ctable of {
      ids : (string, int) Hashtbl.t;
      width : int;
      matrix : Bytes.t; (* row-major booleans; unknown row/column zero *)
    }
  | Cexplicit of (Ids.id * Ids.id, unit) Hashtbl.t
  | Cadt of Adt.compiled

let compile = function
  | Never -> Cnever
  | Always -> Calways
  | Rw -> Crw
  | Same_item -> Csame_item
  | Table pairs ->
    let ids = Hashtbl.create 16 in
    let intern n =
      match Hashtbl.find_opt ids n with
      | Some i -> i
      | None ->
        let i = Hashtbl.length ids in
        Hashtbl.add ids n i;
        i
    in
    List.iter
      (fun (x, y) ->
        ignore (intern x);
        ignore (intern y))
      pairs;
    let width = Hashtbl.length ids + 1 in
    let matrix = Bytes.make (width * width) '\000' in
    List.iter
      (fun (x, y) ->
        let i = Hashtbl.find ids x and j = Hashtbl.find ids y in
        Bytes.set matrix ((i * width) + j) '\001';
        Bytes.set matrix ((j * width) + i) '\001')
      pairs;
    Ctable { ids; width; matrix }
  | Explicit pairs ->
    let tbl = Hashtbl.create (List.length pairs * 2) in
    List.iter
      (fun (x, y) ->
        Hashtbl.replace tbl (if x <= y then (x, y) else (y, x)) ())
      pairs;
    Cexplicit tbl
  | Adt f -> Cadt (Adt.compile f)

(* The one label-level compatibility decision shared by the checker's memo
   fill and the lock tables; [Explicit] has no label-level meaning and is
   pessimistic, exactly like [eval_labels]. *)
let probe_labels_quiet c (a : Label.t) (b : Label.t) =
  match c with
  | Cnever -> false
  | Calways -> true
  | Crw -> rw_labels a b
  | Csame_item -> (
    match (Label.item a, Label.item b) with
    | Some ia, Some ib -> String.equal ia ib
    | _ -> false)
  | Ctable { ids; width; matrix } ->
    let unknown = width - 1 in
    let ca =
      match Hashtbl.find_opt ids a.name with Some i -> i | None -> unknown
    in
    let cb =
      match Hashtbl.find_opt ids b.name with Some i -> i | None -> unknown
    in
    Bytes.get matrix ((ca * width) + cb) <> '\000' && share_arg a b
  | Cexplicit _ -> true
  | Cadt c -> Adt.probe c a b

let probe_labels c a b =
  Atomic.incr eval_count;
  probe_labels_quiet c a b

let probe_ids c ~get_label a b =
  Atomic.incr eval_count;
  if a = b then false
  else
    match c with
    | Cexplicit tbl -> Hashtbl.mem tbl (if a <= b then (a, b) else (b, a))
    | _ -> probe_labels_quiet c (get_label a) (get_label b)

let known_name spec name =
  match spec with
  | Never | Always | Same_item | Explicit _ -> true
  | Rw -> access_of_name name <> Other
  | Table pairs ->
    List.exists
      (fun (x, y) -> String.equal x name || String.equal y name)
      pairs
  | Adt f -> Adt.known f name

let discriminates = function
  | Never | Always | Same_item | Explicit _ -> false
  | Rw | Table _ | Adt _ -> true

let pp ppf = function
  | Never -> Fmt.string ppf "never"
  | Always -> Fmt.string ppf "always"
  | Rw -> Fmt.string ppf "rw"
  | Same_item -> Fmt.string ppf "same-item"
  | Table pairs ->
    Fmt.pf ppf "table{%a}"
      Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any "/") string string))
      pairs
  | Explicit pairs ->
    Fmt.pf ppf "explicit{%a}"
      Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any ",") int int))
      pairs
  | Adt f -> Adt.pp ppf f

let equal s1 s2 =
  match (s1, s2) with
  | Never, Never | Always, Always | Rw, Rw | Same_item, Same_item -> true
  | Table p1, Table p2 ->
    List.equal (fun (a, b) (c, d) -> String.equal a c && String.equal b d) p1 p2
  | Explicit p1, Explicit p2 ->
    List.equal (fun (a, b) (c, d) -> a = c && b = d) p1 p2
  | Adt f1, Adt f2 -> Adt.equal f1 f2
  | (Never | Always | Rw | Same_item | Table _ | Explicit _ | Adt _), _ ->
    false
