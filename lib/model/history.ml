open Repro_order
open Ids

type sched_id = int

type node = {
  id : id;
  label : Label.t;
  parent : id option;
  children : id list;
  sched : sched_id option;
  intra_weak : Rel.t;
  intra_strong : Rel.t;
}

type schedule = {
  sid : sched_id;
  sname : string;
  conflict : Conflict.spec;
  transactions : Int_set.t;
  weak_in : Rel.t;
  strong_in : Rel.t;
  weak_out : Rel.t;
  strong_out : Rel.t;
  log : id list;
}

(* Per-history memoization of the conflict predicate (see [conflicts]):
   operations get a dense index within their schedule, and each schedule
   lazily fills a symmetric triangular bitmatrix of conflict decisions —
   one "known" bit and one "value" bit per unordered pair.  The
   observed-order fixpoint probes the same pairs over and over (every
   propagation round re-examines every observed pair), so the label
   interpretation must run at most once per pair.  Each schedule's spec is
   compiled once ([Conflict.compile]) when the cache is built, so the fill
   itself is a dense matrix probe, never a list re-interpretation.

   The cache is created on first use and is invisible in the interface;
   histories remain semantically immutable.  It is not domain-safe: the
   batch drivers give each domain its own history values. *)
type ccache = {
  op_index : int array; (* node id -> index among its schedule's ops; -1 *)
  op_sched : int array; (* node id -> schedule it is an operation of; -1 *)
  op_count : int array; (* per schedule: number of operations *)
  compiled : Conflict.compiled array; (* per schedule: compiled spec *)
  floors : int array;
      (* per schedule: ranks below this are released — their memo rows were
         dropped by [memo_release] and those pairs evaluate uncached.  The
         triangular tables index by {e windowed} rank (absolute rank minus
         floor), so releasing a prefix actually frees its bytes instead of
         leaving a dead lower triangle in place. *)
  tables : (Bytes.t * Bytes.t) option array; (* per schedule: known, value *)
  mutable donated : bool;
      (* arrays and tables lent to one extension's cache (see
         [extend_cache]); a second extension of the same snapshot must
         deep-copy its share instead *)
}

type t = {
  nodes : node array;
  scheds : schedule array;
  levels : int array; (* per schedule, Def. 9 *)
  ig : Rel.t; (* invocation graph over schedule ids *)
  mutable ccache : ccache option;
}

let node h i = h.nodes.(i)

let schedule h s = h.scheds.(s)

let n_nodes h = Array.length h.nodes

let n_schedules h = Array.length h.scheds

let schedules h = Array.to_list h.scheds

let label h i = h.nodes.(i).label

let parent h i = h.nodes.(i).parent

let parent_tx h i = match h.nodes.(i).parent with Some p -> p | None -> i

let children h i = h.nodes.(i).children

let is_leaf h i = h.nodes.(i).sched = None

let is_root h i = h.nodes.(i).parent = None

let roots h =
  Array.to_list h.nodes
  |> List.filter_map (fun n -> if n.parent = None then Some n.id else None)

let leaves h =
  Array.to_list h.nodes
  |> List.filter_map (fun n -> if n.sched = None then Some n.id else None)

let internal_nodes h =
  Array.to_list h.nodes
  |> List.filter_map (fun n ->
         if n.sched <> None && n.parent <> None then Some n.id else None)

let sched_of_tx h i = h.nodes.(i).sched

let sched_of_op h i =
  match h.nodes.(i).parent with None -> None | Some p -> h.nodes.(p).sched

let cache h =
  match h.ccache with
  | Some c -> c
  | None ->
    let n = Array.length h.nodes and ns = Array.length h.scheds in
    let op_index = Array.make n (-1) in
    let op_sched = Array.make n (-1) in
    let op_count = Array.make ns 0 in
    (* Ranks are assigned in ascending node-id order — NOT in the
       schedules' transaction-traversal order.  Under the monitor's
       extension contract new nodes always take larger ids, so id-ordered
       ranks of shared operations never shift, whatever transaction the
       new operations hang under; that is what lets [extend_cache] carry
       the triangular tables across every extension (a traversal-ordered
       rank shifts as soon as an operation is appended to a non-final
       transaction). *)
    for v = 0 to n - 1 do
      match h.nodes.(v).parent with
      | None -> ()
      | Some p -> (
        match h.nodes.(p).sched with
        | None -> ()
        | Some s ->
          op_index.(v) <- op_count.(s);
          op_sched.(v) <- s;
          op_count.(s) <- op_count.(s) + 1)
    done;
    let c =
      {
        op_index;
        op_sched;
        op_count;
        compiled = Array.map (fun s -> Conflict.compile s.conflict) h.scheds;
        floors = Array.make ns 0;
        tables = Array.make ns None;
        donated = false;
      }
    in
    h.ccache <- Some c;
    c

let compiled_spec h s = (cache h).compiled.(s)

let common_op_schedule_id h a b =
  let c = cache h in
  let sa = c.op_sched.(a) in
  if sa >= 0 && sa = c.op_sched.(b) then sa else -1

let common_op_schedule h a b =
  match common_op_schedule_id h a b with -1 -> None | s -> Some s

let ops_of_schedule h s =
  Int_set.fold
    (fun t acc -> List.rev_append (List.rev h.nodes.(t).children) acc)
    h.scheds.(s).transactions []
  |> List.rev

let conflicts_uncached h s a b =
  if parent h a = parent h b then false
  else Conflict.eval h.scheds.(s).conflict ~get_label:(label h) a b

let conflicts h s a b =
  if parent h a = parent h b then false
  else begin
    let c = cache h in
    if
      c.op_sched.(a) <> s || c.op_sched.(b) <> s
      || c.op_index.(a) < c.floors.(s)
      || c.op_index.(b) < c.floors.(s)
    then
      (* Not a pair of [s]'s operations, or at least one endpoint's memo
         row was released by [memo_release]: evaluate directly.  (Callers
         that respect the Def. 10/11 side conditions only take the first
         branch for cross-schedule probes; the second is the truncated
         monitor touching a boundary pair, which is rare by design.) *)
      Conflict.probe_ids c.compiled.(s) ~get_label:(label h) a b
    else begin
      let floor = c.floors.(s) in
      let known, value =
        match c.tables.(s) with
        | Some kv -> kv
        | None ->
          let m = c.op_count.(s) - floor in
          let bytes = max 1 (((m * (m - 1) / 2) + 7) / 8) in
          let kv = (Bytes.make bytes '\000', Bytes.make bytes '\000') in
          c.tables.(s) <- Some kv;
          kv
      in
      let ia = c.op_index.(a) - floor and ib = c.op_index.(b) - floor in
      let lo = min ia ib and hi = max ia ib in
      let bit = (hi * (hi - 1) / 2) + lo in
      let byte = bit lsr 3 and mask = 1 lsl (bit land 7) in
      if Char.code (Bytes.unsafe_get known byte) land mask <> 0 then
        Char.code (Bytes.unsafe_get value byte) land mask <> 0
      else begin
        let v = Conflict.probe_ids c.compiled.(s) ~get_label:(label h) a b in
        Bytes.unsafe_set known byte
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get known byte) lor mask));
        if v then
          Bytes.unsafe_set value byte
            (Char.unsafe_chr (Char.code (Bytes.unsafe_get value byte) lor mask));
        v
      end
    end
  end

(* Carry a previous snapshot's conflict memo into an extension of it.  The
   monitor certifies a growing prefix: each snapshot repeats every node of
   the previous one (same ids, labels, parents, children lists that only
   grow) and appends new nodes with strictly larger ids.  [cache] ranks
   operations in ascending id order, so every shared operation keeps its
   rank in the extension — even when new operations hang under old
   transactions — and the triangular layout ([bit (hi, lo) =
   hi*(hi-1)/2 + lo]) puts every old pair at the same slot, with all old
   slots packed below [m_old*(m_old-1)/2].

   That prefix property is what makes the transfer O(delta) amortized
   instead of O(n) per append: along a linear extension chain (the
   monitor's shape) the dense rank arrays and the tables are {e lent} to
   the extension — the new cache indexes the new operations into the very
   same arrays (ids >= n_old are dead to [from]) and keeps the same table
   bytes, growing either geometrically when capacity runs out.  Lending is
   linear: the first extension flips [donated], and a second extension of
   the same snapshot (the monitor's undo-then-reappend fork) deep-copies
   the old prefix instead, so diverging extensions can never write into
   each other's slots.  [op_count] is always copied — it is the record of
   [from]'s own rank range, needed to bound a later fork's copy.

   No-op when [h] already has a cache (both caches memoize the same pure
   predicate, so nothing would be gained) or when [from] has none. *)
let extend_cache ~from h =
  let n_old = Array.length from.nodes and n = Array.length h.nodes in
  if n < n_old then
    invalid_arg "History.extend_cache: target has fewer nodes than source";
  if Array.length h.scheds <> Array.length from.scheds then
    invalid_arg "History.extend_cache: schedule counts differ";
  match (from.ccache, h.ccache) with
  | None, _ | _, Some _ -> ()
  | Some old, None ->
    let fork = old.donated in
    old.donated <- true;
    (* Valid prefix of each table in bits: [from]'s own pairs only.  A
       lent table may carry the extension's bits above this range; a
       forked copy must not inherit them (its new operations reuse the
       same slots for different labels).  Ranks below the schedule's
       floor were released and the table indexes by windowed rank, so
       the prefix is the windowed pair count. *)
    let prefix_bits sid =
      let m = old.op_count.(sid) - old.floors.(sid) in
      m * (m - 1) / 2
    in
    let copy_prefix src bits =
      let bytes = Bytes.make (max 1 ((bits + 7) / 8)) '\000' in
      Bytes.blit src 0 bytes 0 (bits / 8);
      if bits land 7 <> 0 then
        Bytes.set bytes (bits / 8)
          (Char.chr (Char.code (Bytes.get src (bits / 8)) land ((1 lsl (bits land 7)) - 1)));
      bytes
    in
    let op_index, op_sched =
      if (not fork) && Array.length old.op_index >= n then
        (old.op_index, old.op_sched)
      else begin
        (* A fork is a fresh copy, not amortized growth of the lineage: it
           must size to the extension, never double the source's capacity
           (along an extend/undo/extend chain each accepted fork becomes
           the next source, and doubling here compounds exponentially). *)
        let cap = if fork then n else max n (2 * Array.length old.op_index) in
        let oi = Array.make cap (-1) and os = Array.make cap (-1) in
        Array.blit old.op_index 0 oi 0 n_old;
        Array.blit old.op_sched 0 os 0 n_old;
        (oi, os)
      end
    in
    let op_count = Array.copy old.op_count in
    let floors = Array.copy old.floors in
    for v = n_old to n - 1 do
      (match h.nodes.(v).parent with
      | None -> op_index.(v) <- -1; op_sched.(v) <- -1
      | Some p -> (
        match h.nodes.(p).sched with
        | None -> op_index.(v) <- -1; op_sched.(v) <- -1
        | Some s ->
          op_index.(v) <- op_count.(s);
          op_sched.(v) <- s;
          op_count.(s) <- op_count.(s) + 1))
    done;
    let tables =
      if fork then
        Array.mapi
          (fun sid kv ->
            match kv with
            | None -> None
            | Some (oknown, ovalue) ->
              let bits = prefix_bits sid in
              Some (copy_prefix oknown bits, copy_prefix ovalue bits))
          old.tables
      else old.tables
    in
    (* Grow any lent or copied table whose capacity no longer covers the
       extension's pair range (geometric, so a streaming chain amortizes
       the reallocation over the appends that filled the capacity). *)
    Array.iteri
      (fun sid kv ->
        match kv with
        | None -> ()
        | Some (known, value) ->
          let m = op_count.(sid) - floors.(sid) in
          let need = max 1 (((m * (m - 1) / 2) + 7) / 8) in
          if need > Bytes.length known then begin
            let cap = max need (2 * Bytes.length known) in
            let grow src =
              let bytes = Bytes.make cap '\000' in
              Bytes.blit src 0 bytes 0 (Bytes.length src);
              bytes
            in
            tables.(sid) <- Some (grow known, grow value)
          end)
      tables;
    (* Specs are recompiled from the extension's own schedules: along a
       stream an [Explicit] pair list may grow with the appended text, and
       compiling is O(spec size) — noise next to the table transfer. *)
    let compiled = Array.map (fun s -> Conflict.compile s.conflict) h.scheds in
    h.ccache <-
      Some
        { op_index; op_sched; op_count; compiled; floors; tables;
          donated = false }

(* Introspection: how much of the conflict-pair space the memo has decided.
   The total counts one slot per unordered pair of same-schedule operations
   (the triangular bitmatrix layout); the known count is the popcount of
   the allocated "known" planes.  No memo yet means nothing decided. *)
let memo_stats h =
  let popcount_byte =
    let tbl = Array.init 256 (fun b ->
        let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
        go b 0)
    in
    fun c -> tbl.(Char.code c)
  in
  let total =
    Array.fold_left
      (fun acc (s : schedule) ->
        let m =
          Int_set.fold
            (fun t acc -> acc + List.length h.nodes.(t).children)
            s.transactions 0
        in
        acc + (m * (m - 1) / 2))
      0 h.scheds
  in
  let known =
    match h.ccache with
    | None -> 0
    | Some c ->
      Array.fold_left
        (fun acc -> function
          | None -> acc
          | Some (k, _) ->
            let n = ref acc in
            Bytes.iter (fun byte -> n := !n + popcount_byte byte) k;
            !n)
        0 c.tables
  in
  (* Tables lent along an extension chain (see [extend_cache]) can carry
     decided bits for the extension's pairs above this history's own
     range; clamp so the ratio stays a ratio. *)
  (min known total, total)

(* Release every schedule's memo rows: raise the floor to the current
   operation count and drop the triangular tables.  Pairs wholly below
   the floor evaluate uncached from then on; pairs among operations
   appended {e after} the release re-memoize in fresh, windowed tables
   (see [floors] and [conflicts]).  The engine calls this when it folds a
   certified prefix — the released pairs belong to the folded region and
   are re-probed at most on its boundary.  Forcing the cache first makes
   release idempotent and keeps a later [extend_cache] carrying the
   floors forward. *)
let memo_release h =
  let c = cache h in
  Array.iteri
    (fun s _ ->
      c.floors.(s) <- c.op_count.(s);
      c.tables.(s) <- None)
    c.tables

(* Bytes held by the allocated memo planes — the cheap memory-accounting
   probe ([memo_stats] counts decided pairs, not storage). *)
let memo_bytes h =
  match h.ccache with
  | None -> 0
  | Some c ->
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some (k, v) -> acc + Bytes.length k + Bytes.length v)
      0 c.tables

let descendants h i =
  let rec go acc = function
    | [] -> acc
    | x :: rest -> go (Int_set.add x acc) (List.rev_append h.nodes.(x).children rest)
  in
  go Int_set.empty h.nodes.(i).children

let composite_transaction h r =
  if not (is_root h r) then invalid_arg "History.composite_transaction: not a root";
  Int_set.add r (descendants h r)

let invocation_graph h = h.ig

let level h s = h.levels.(s)

let order h = Array.fold_left max 0 h.levels

let level_of_node h i =
  match h.nodes.(i).sched with None -> 0 | Some s -> h.levels.(s)

let schedules_at_level h l =
  Array.to_list h.scheds
  |> List.filter_map (fun s -> if h.levels.(s.sid) = l then Some s.sid else None)

let pp_node h ppf i = Fmt.pf ppf "%a#%d" Label.pp h.nodes.(i).label i

let pp_node_sched h ppf i =
  (* The owning schedule: the one the node is an operation of; a root is
     nobody's operation, so fall back to the schedule it is a transaction
     of.  Leaves always have an owner, so the bare fallback never fires. *)
  match (sched_of_op h i, sched_of_tx h i) with
  | Some s, _ | None, Some s ->
    Fmt.pf ppf "%a@@%s" (pp_node h) i h.scheds.(s).sname
  | None, None -> pp_node h ppf i

let pp ppf h =
  let pp_rel_named name ppf r =
    if not (Rel.is_empty r) then Fmt.pf ppf "@ %s: %a" name Rel.pp r
  in
  Array.iter
    (fun s ->
      Fmt.pf ppf "@[<v 2>schedule %s (level %d, conflict %a)%a%a%a%a@ txs: %a@]@."
        s.sname h.levels.(s.sid) Conflict.pp s.conflict
        (pp_rel_named "weak-in") s.weak_in (pp_rel_named "strong-in") s.strong_in
        (pp_rel_named "weak-out") s.weak_out (pp_rel_named "strong-out")
        s.strong_out Ids.pp_set s.transactions)
    h.scheds;
  let rec pp_tree ppf i =
    let n = h.nodes.(i) in
    match n.children with
    | [] -> pp_node h ppf i
    | cs ->
      Fmt.pf ppf "@[<v 2>%a@ %a@]" (pp_node h) i
        (Fmt.list ~sep:Fmt.cut pp_tree) cs
  in
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_tree r) (roots h)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type bnode = {
    bid : id;
    blabel : Label.t;
    bparent : id option;
    mutable bchildren : id list; (* reversed *)
    bsched : sched_id option;
    mutable bintra_weak : Rel.t;
    mutable bintra_strong : Rel.t;
  }

  type bsched = {
    bsid : sched_id;
    bsname : string;
    bconflict : Conflict.spec;
    mutable btxs : Int_set.t;
    mutable bweak_in : Rel.t;
    mutable bstrong_in : Rel.t;
    mutable bweak_out : Rel.t;
    mutable bstrong_out : Rel.t;
    mutable blog : id list;
  }

  type t = {
    bnodes : (id, bnode) Hashtbl.t;
    bscheds : (sched_id, bsched) Hashtbl.t;
    mutable next_node : int;
    mutable next_sched : int;
  }

  let create () =
    { bnodes = Hashtbl.create 64; bscheds = Hashtbl.create 8; next_node = 0; next_sched = 0 }

  let get_node b i =
    match Hashtbl.find_opt b.bnodes i with
    | Some n -> n
    | None -> invalid_arg (Fmt.str "History.Builder: unknown node %d" i)

  let get_sched b s =
    match Hashtbl.find_opt b.bscheds s with
    | Some s -> s
    | None -> invalid_arg (Fmt.str "History.Builder: unknown schedule %d" s)

  let schedule b ?(conflict = Conflict.Rw) sname =
    let bsid = b.next_sched in
    b.next_sched <- bsid + 1;
    Hashtbl.replace b.bscheds bsid
      {
        bsid;
        bsname = sname;
        bconflict = conflict;
        btxs = Int_set.empty;
        bweak_in = Rel.empty;
        bstrong_in = Rel.empty;
        bweak_out = Rel.empty;
        bstrong_out = Rel.empty;
        blog = [];
      };
    bsid

  let fresh_node b blabel bparent bsched =
    let bid = b.next_node in
    b.next_node <- bid + 1;
    let n =
      {
        bid;
        blabel;
        bparent;
        bchildren = [];
        bsched;
        bintra_weak = Rel.empty;
        bintra_strong = Rel.empty;
      }
    in
    Hashtbl.replace b.bnodes bid n;
    (match bparent with
    | Some p ->
      let pn = get_node b p in
      pn.bchildren <- bid :: pn.bchildren
    | None -> ());
    (match bsched with
    | Some s ->
      let sc = get_sched b s in
      sc.btxs <- Int_set.add bid sc.btxs
    | None -> ());
    bid

  let root b ~sched lbl =
    ignore (get_sched b sched);
    fresh_node b lbl None (Some sched)

  let tx b ~parent ~sched lbl =
    ignore (get_sched b sched);
    let pn = get_node b parent in
    if pn.bsched = None then invalid_arg "History.Builder.tx: parent is a leaf";
    fresh_node b lbl (Some parent) (Some sched)

  let leaf b ~parent lbl =
    let pn = get_node b parent in
    if pn.bsched = None then invalid_arg "History.Builder.leaf: parent is a leaf";
    fresh_node b lbl (Some parent) None

  (* The schedule of which node [i] is an operation. *)
  let op_sched b i =
    match (get_node b i).bparent with
    | None -> None
    | Some p -> (get_node b p).bsched

  let common_sched_exn b what a b' =
    match (op_sched b a, op_sched b b') with
    | Some sa, Some sb when sa = sb -> get_sched b sa
    | _ ->
      invalid_arg
        (Fmt.str "History.Builder.%s: %d and %d are not operations of one schedule"
           what a b')

  let distinct what a b' =
    if a = b' then
      invalid_arg (Fmt.str "History.Builder.%s: %d ordered against itself" what a)

  let weak_out b ~a ~b:b' =
    distinct "weak_out" a b';
    let s = common_sched_exn b "weak_out" a b' in
    s.bweak_out <- Rel.add a b' s.bweak_out

  let strong_out b ~a ~b:b' =
    distinct "strong_out" a b';
    let s = common_sched_exn b "strong_out" a b' in
    s.bstrong_out <- Rel.add a b' s.bstrong_out;
    s.bweak_out <- Rel.add a b' s.bweak_out

  let intra_pair b what a b' =
    let na = get_node b a and nb = get_node b b' in
    match (na.bparent, nb.bparent) with
    | Some pa, Some pb when pa = pb -> get_node b pa
    | _ -> invalid_arg (Fmt.str "History.Builder.%s: %d and %d are not siblings" what a b')

  let intra_weak b ~a ~b:b' =
    distinct "intra_weak" a b';
    let p = intra_pair b "intra_weak" a b' in
    p.bintra_weak <- Rel.add a b' p.bintra_weak

  let intra_strong b ~a ~b:b' =
    distinct "intra_strong" a b';
    let p = intra_pair b "intra_strong" a b' in
    p.bintra_strong <- Rel.add a b' p.bintra_strong;
    p.bintra_weak <- Rel.add a b' p.bintra_weak

  let root_sched_exn b what a b' =
    let na = get_node b a and nb = get_node b b' in
    if na.bparent <> None || nb.bparent <> None then
      invalid_arg (Fmt.str "History.Builder.%s: %d and %d must be roots" what a b');
    match (na.bsched, nb.bsched) with
    | Some sa, Some sb when sa = sb -> get_sched b sa
    | _ ->
      invalid_arg
        (Fmt.str "History.Builder.%s: %d and %d are not roots of one schedule" what a b')

  let input_weak b ~a ~b:b' =
    distinct "input_weak" a b';
    let s = root_sched_exn b "input_weak" a b' in
    s.bweak_in <- Rel.add a b' s.bweak_in

  let input_strong b ~a ~b:b' =
    distinct "input_strong" a b';
    let s = root_sched_exn b "input_strong" a b' in
    s.bstrong_in <- Rel.add a b' s.bstrong_in;
    s.bweak_in <- Rel.add a b' s.bweak_in

  let log b ~sched entries =
    let s = get_sched b sched in
    s.blog <- entries

  (* --- seal ------------------------------------------------------- *)

  let build_ig b =
    let ig = ref Rel.empty in
    Hashtbl.iter
      (fun _ n ->
        match (n.bsched, n.bparent) with
        | Some s, Some p -> (
          match (Hashtbl.find b.bnodes p).bsched with
          | Some ps ->
            if ps = s then
              invalid_arg "History.Builder.seal: schedule invokes itself";
            ig := Rel.add ps s !ig
          | None -> assert false)
        | _ -> ())
      b.bnodes;
    !ig

  let compute_levels b ig =
    let n = b.next_sched in
    let levels = Array.make n 0 in
    let sched_ids = List.init n (fun i -> i) in
    match Rel.topo_sort ~nodes:(Int_set.of_list sched_ids) ig with
    | None -> invalid_arg "History.Builder.seal: recursive invocation graph"
    | Some order ->
      (* Longest path: process in reverse topological order. *)
      List.iter
        (fun s ->
          let succ_max =
            Int_set.fold (fun s' m -> max m levels.(s')) (Rel.succs ig s) 0
          in
          levels.(s) <- succ_max + 1)
        (List.rev order);
      levels

  let seal b =
    let nnodes = b.next_node and nscheds = b.next_sched in
    let bnode i = Hashtbl.find b.bnodes i in
    let bsched s = Hashtbl.find b.bscheds s in
    let ig = build_ig b in
    let levels = compute_levels b ig in
    (* Validate logs: each must be a permutation of the schedule's ops. *)
    Hashtbl.iter
      (fun _ s ->
        if s.blog <> [] then begin
          let ops =
            Int_set.fold
              (fun t acc ->
                List.fold_left (fun acc c -> Int_set.add c acc) acc (bnode t).bchildren)
              s.btxs Int_set.empty
          in
          let logged = Int_set.of_list s.blog in
          if
            (not (Int_set.equal ops logged))
            || List.length s.blog <> Int_set.cardinal logged
          then
            invalid_arg
              (Fmt.str
                 "History.Builder.seal: log of schedule %s is not a permutation of its operations"
                 s.bsname)
        end)
      b.bscheds;
    let get_label i = (bnode i).blabel in
    (* Order completion probes every conflicting pair of each schedule;
       compile each spec once so the loops below never re-interpret a
       list.  Lazy: schedules without logs or input orders never pay it. *)
    let compiled = Hashtbl.create 8 in
    let compiled_of s =
      match Hashtbl.find_opt compiled s.bsid with
      | Some c -> c
      | None ->
        let c = Conflict.compile s.bconflict in
        Hashtbl.add compiled s.bsid c;
        c
    in
    let conflict_in s a b' =
      let na = bnode a and nb = bnode b' in
      if na.bparent = nb.bparent then false
      else Conflict.probe_ids (compiled_of s) ~get_label a b'
    in
    (* Process schedules from the highest level down, completing output
       orders (Def. 3) and pushing them to invoked schedules' input orders
       (Def. 4.7). *)
    let by_level =
      List.sort
        (fun s1 s2 -> compare levels.(s2) levels.(s1))
        (List.init nscheds (fun i -> i))
    in
    List.iter
      (fun sid ->
        let s = bsched sid in
        (* 0. Close the input orders first: every client (strictly higher
           level) has already pushed its pairs, and obligations derived below
           must see their transitive consequences (e.g. orders composing
           across two clients of a shared schedule). *)
        s.bstrong_in <- Rel.transitive_closure s.bstrong_in;
        s.bweak_in <- Rel.transitive_closure (Rel.union s.bweak_in s.bstrong_in);
        (* 1. Derive a minimal weak output order from the log, if present and
           nothing explicit was given: log order on conflicting pairs of
           different transactions. *)
        if s.blog <> [] && Rel.is_empty s.bweak_out then begin
          let rec pairs = function
            | [] -> ()
            | o :: rest ->
              List.iter
                (fun o' ->
                  if conflict_in s o o' then s.bweak_out <- Rel.add o o' s.bweak_out)
                rest;
              pairs rest
          in
          pairs s.blog
        end;
        (* 2. Output orders extend intra-transaction orders (Def. 3.2). *)
        Int_set.iter
          (fun t ->
            let n = bnode t in
            s.bweak_out <- Rel.union s.bweak_out n.bintra_weak;
            s.bstrong_out <- Rel.union s.bstrong_out n.bintra_strong)
          s.btxs;
        (* 3. Conflicting operations of weakly-input-ordered transactions
           follow the input order (Def. 3.1a). *)
        Rel.iter
          (fun t t' ->
            List.iter
              (fun o ->
                List.iter
                  (fun o' ->
                    if conflict_in s o o' then s.bweak_out <- Rel.add o o' s.bweak_out)
                  (bnode t').bchildren)
              (bnode t).bchildren)
          s.bweak_in;
        (* 4. Strong input orders expand to strong output orders over all
           operation pairs (Def. 3.3). *)
        Rel.iter
          (fun t t' ->
            List.iter
              (fun o ->
                List.iter
                  (fun o' -> s.bstrong_out <- Rel.add o o' s.bstrong_out)
                  (bnode t').bchildren)
              (bnode t).bchildren)
          s.bstrong_in;
        (* 5. Strong is contained in weak (Def. 3.4); close transitively. *)
        s.bstrong_out <- Rel.transitive_closure s.bstrong_out;
        s.bweak_out <- Rel.transitive_closure (Rel.union s.bweak_out s.bstrong_out);
        (* 6. Push output orders down as input orders (Def. 4.7). *)
        let push rel strong =
          Rel.iter
            (fun o o' ->
              match ((bnode o).bsched, (bnode o').bsched) with
              | Some c, Some c' when c = c' ->
                let cs = bsched c in
                if strong then cs.bstrong_in <- Rel.add o o' cs.bstrong_in
                else cs.bweak_in <- Rel.add o o' cs.bweak_in
              | _ -> ())
            rel
        in
        push s.bweak_out false;
        push s.bstrong_out true)
      by_level;
    (* Close input orders. *)
    Hashtbl.iter
      (fun _ s ->
        s.bstrong_in <- Rel.transitive_closure s.bstrong_in;
        s.bweak_in <- Rel.transitive_closure (Rel.union s.bweak_in s.bstrong_in))
      b.bscheds;
    let nodes =
      Array.init nnodes (fun i ->
          let n = bnode i in
          {
            id = n.bid;
            label = n.blabel;
            parent = n.bparent;
            children = List.rev n.bchildren;
            sched = n.bsched;
            intra_weak = Rel.transitive_closure n.bintra_weak;
            intra_strong = Rel.transitive_closure n.bintra_strong;
          })
    in
    let scheds =
      Array.init nscheds (fun i ->
          let s = bsched i in
          {
            sid = s.bsid;
            sname = s.bsname;
            conflict = s.bconflict;
            transactions = s.btxs;
            weak_in = s.bweak_in;
            strong_in = s.bstrong_in;
            weak_out = s.bweak_out;
            strong_out = s.bstrong_out;
            log = s.blog;
          })
    in
    { nodes; scheds; levels; ig; ccache = None }
end

(* ------------------------------------------------------------------ *)
(* Root-prefix extraction                                              *)
(* ------------------------------------------------------------------ *)

(* The sub-execution of the first [k] root transactions (ascending id),
   rebuilt through the Builder in root-major depth-first order.  That
   order gives prefix histories the extension shape the incremental
   monitor relies on: [prefix_by_roots h k] and [prefix_by_roots h (k+1)]
   assign identical ids to shared nodes, and the larger prefix only
   appends nodes and grows relations.  Schedules are all retained (an
   empty schedule is a valid prefix state); explicit output orders, logs,
   intra orders and root input orders are restricted to kept nodes and
   re-sealed — seal's completion rules are monotone and idempotent on the
   restriction of an already-completed history, so [prefix_by_roots h
   (List.length (roots h))] is the whole of [h] up to the id relabelling
   (criteria verdicts are invariant under it). *)
let prefix_by_roots h k =
  let module B = Builder in
  let all_roots = roots h in
  if k < 0 || k > List.length all_roots then
    invalid_arg
      (Fmt.str "History.prefix_by_roots: %d not within 0..%d roots" k
         (List.length all_roots));
  let b = B.create () in
  Array.iter
    (fun (s : schedule) -> ignore (B.schedule b ~conflict:s.conflict s.sname))
    h.scheds;
  let kept_roots = List.filteri (fun i _ -> i < k) all_roots in
  let idmap = Hashtbl.create 64 in
  let rec build parent i =
    let n = h.nodes.(i) in
    let nid =
      match (parent, n.sched) with
      | None, Some s -> B.root b ~sched:s n.label
      | Some p, Some s -> B.tx b ~parent:p ~sched:s n.label
      | Some p, None -> B.leaf b ~parent:p n.label
      | None, None ->
        invalid_arg "History.prefix_by_roots: root without a schedule"
    in
    Hashtbl.replace idmap i nid;
    List.iter (fun c -> build (Some nid) c) n.children
  in
  List.iter (fun r -> build None r) kept_roots;
  let kept i = Hashtbl.mem idmap i in
  let m i = Hashtbl.find idmap i in
  let replay rel emit =
    Rel.iter (fun a b' -> if kept a && kept b' then emit ~a:(m a) ~b:(m b')) rel
  in
  Array.iter
    (fun (n : node) ->
      if n.children <> [] && kept n.id then begin
        replay n.intra_strong (B.intra_strong b);
        replay (Rel.diff n.intra_weak n.intra_strong) (B.intra_weak b)
      end)
    h.nodes;
  Array.iter
    (fun (s : schedule) ->
      let root_pair rel =
        Rel.filter (fun a b' -> is_root h a && is_root h b') rel
      in
      replay (root_pair s.strong_in) (B.input_strong b);
      replay (Rel.diff (root_pair s.weak_in) (root_pair s.strong_in))
        (B.input_weak b);
      replay s.strong_out (B.strong_out b);
      replay (Rel.diff s.weak_out s.strong_out) (B.weak_out b);
      if s.log <> [] then
        B.log b ~sched:s.sid
          (List.filter_map (fun i -> if kept i then Some (m i) else None) s.log))
    h.scheds;
  B.seal b

(* ------------------------------------------------------------------ *)
(* Read-only restricted views                                          *)
(* ------------------------------------------------------------------ *)

module View = struct
  type history = t

  type t = {
    vbase : history;
    kept : bool array; (* downward-closed survival, by original id *)
    map : int array; (* original id -> dense new id; -1 when dropped *)
    n_kept : int;
  }

  let make h ~keep =
    let n = Array.length h.nodes in
    (* Downward closure: parents have smaller ids than their children
       (builder allocation order), so one ascending pass settles
       survival. *)
    let kept = Array.make n false in
    for i = 0 to n - 1 do
      kept.(i) <-
        Int_set.mem i keep
        && (match h.nodes.(i).parent with None -> true | Some p -> kept.(p))
    done;
    let map = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if kept.(i) then begin
        map.(i) <- !next;
        incr next
      end
    done;
    { vbase = h; kept; map; n_kept = !next }

  let base v = v.vbase
  let n_nodes v = v.n_kept
  let mem v i = i >= 0 && i < Array.length v.kept && v.kept.(i)
  let new_id v i = if mem v i then v.map.(i) else -1

  (* Transfer the base history's conflict memo onto the materialized
     restriction.  [cache] ranks a schedule's operations in ascending node-id
     order; a restriction keeps relative id order, so the old-rank ->
     new-rank map over surviving operations is monotone and every surviving
     unordered pair keeps its (hi, lo) orientation.  Conflict decisions
     depend only on labels (unchanged) and on Explicit id pairs (remapped by
     [to_history] along the same id map), so known bits transfer
     verbatim. *)
  let seed_cache v (h' : history) =
    match v.vbase.ccache with
    | None -> ()
    | Some old ->
      let c = cache h' in
      Array.iter
        (fun (s : schedule) ->
          match old.tables.(s.sid) with
          | None -> ()
          | Some _ when old.floors.(s.sid) > 0 ->
            (* A released prefix shifted the table to windowed ranks; the
               old-rank -> new-rank transfer below assumes floor-0 ranks,
               so skip — the restriction re-memoizes lazily. *)
            ()
          | Some (oknown, ovalue) ->
            let m_old = old.op_count.(s.sid) in
            (* New rank of each surviving operation, indexed by old rank;
               ascending id order matches the rank assignment of [cache]. *)
            let nr = Array.make (max 1 m_old) (-1) in
            let survivors = ref 0 in
            Array.iteri
              (fun o _ ->
                if old.op_sched.(o) = s.sid && v.kept.(o) then begin
                  nr.(old.op_index.(o)) <- !survivors;
                  incr survivors
                end)
              v.vbase.nodes;
            if !survivors > 1 && !survivors = c.op_count.(s.sid) then begin
              let m_new = !survivors in
              let known, value =
                match c.tables.(s.sid) with
                | Some kv -> kv
                | None ->
                  let bytes = max 1 (((m_new * (m_new - 1) / 2) + 7) / 8) in
                  let kv = (Bytes.make bytes '\000', Bytes.make bytes '\000') in
                  c.tables.(s.sid) <- Some kv;
                  kv
              in
              let get b bit =
                Char.code (Bytes.unsafe_get b (bit lsr 3))
                land (1 lsl (bit land 7))
                <> 0
              in
              let set b bit =
                Bytes.unsafe_set b (bit lsr 3)
                  (Char.unsafe_chr
                     (Char.code (Bytes.unsafe_get b (bit lsr 3))
                     lor (1 lsl (bit land 7))))
              in
              for hi = 1 to m_old - 1 do
                if nr.(hi) >= 0 then
                  for lo = 0 to hi - 1 do
                    if nr.(lo) >= 0 then begin
                      let obit = (hi * (hi - 1) / 2) + lo in
                      if get oknown obit then begin
                        (* Monotone rank map: nr.(hi) > nr.(lo). *)
                        let nbit = (nr.(hi) * (nr.(hi) - 1) / 2) + nr.(lo) in
                        set known nbit;
                        if get ovalue obit then set value nbit
                      end
                    end
                  done
              done
            end)
        v.vbase.scheds

  let to_history v =
    let h = v.vbase in
    let n = Array.length h.nodes in
    let kept = v.kept and map = v.map in
    let both x y = x < n && y < n && kept.(x) && kept.(y) in
    let b = Builder.create () in
    List.iter
      (fun (s : schedule) ->
        let conflict =
          match s.conflict with
          | Conflict.Explicit pairs ->
            (* Explicit specs carry node ids; pairs with a dropped endpoint
               are gone along with the endpoint. *)
            Conflict.Explicit
              (List.filter_map
                 (fun (x, y) ->
                   if both x y then Some (map.(x), map.(y)) else None)
                 pairs)
          | spec -> spec
        in
        let sid = Builder.schedule b ~conflict s.sname in
        assert (sid = s.sid))
      (schedules h);
    for i = 0 to n - 1 do
      if kept.(i) then begin
        let nd = h.nodes.(i) in
        let id =
          match (nd.parent, nd.sched) with
          | None, Some sched -> Builder.root b ~sched nd.label
          | Some p, Some sched -> Builder.tx b ~parent:map.(p) ~sched nd.label
          | Some p, None -> Builder.leaf b ~parent:map.(p) nd.label
          | None, None -> assert false
        in
        assert (id = map.(i))
      end
    done;
    for i = 0 to n - 1 do
      if kept.(i) then begin
        let nd = h.nodes.(i) in
        Rel.iter
          (fun x y -> if both x y then Builder.intra_weak b ~a:map.(x) ~b:map.(y))
          nd.intra_weak;
        Rel.iter
          (fun x y ->
            if both x y then Builder.intra_strong b ~a:map.(x) ~b:map.(y))
          nd.intra_strong
      end
    done;
    List.iter
      (fun (s : schedule) ->
        (* Root input orders; non-root input orders are re-derived by
           seal. *)
        let root_pair x y = is_root h x && is_root h y in
        Rel.iter
          (fun x y ->
            if root_pair x y && both x y then
              Builder.input_weak b ~a:map.(x) ~b:map.(y))
          s.weak_in;
        Rel.iter
          (fun x y ->
            if root_pair x y && both x y then
              Builder.input_strong b ~a:map.(x) ~b:map.(y))
          s.strong_in;
        if s.log <> [] then begin
          (* The restricted execution's log: the kept operations in the
             original serialization order.  Explicit outputs are dropped and
             re-derived from it — a stale output restriction next to a
             changed log is the same hazard {!Clone.with_logs} guards
             against. *)
          match
            List.filter_map (fun v -> if kept.(v) then Some map.(v) else None) s.log
          with
          | [] -> ()
          | log -> Builder.log b ~sched:s.sid log
        end
        else begin
          Rel.iter
            (fun x y -> if both x y then Builder.weak_out b ~a:map.(x) ~b:map.(y))
            s.weak_out;
          Rel.iter
            (fun x y ->
              if both x y then Builder.strong_out b ~a:map.(x) ~b:map.(y))
            s.strong_out
        end)
      (schedules h);
    let h' = Builder.seal b in
    seed_cache v h';
    h'
end
