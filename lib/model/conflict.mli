(** Conflict specifications.

    Each schedule of a composite system owns a conflict predicate [CON_S]
    over its operations (Def. 3).  Two operations conflict when they do not
    commute — when their relative execution order matters for the net effect.
    The paper treats [CON_S] as an abstract symmetric predicate; we represent
    it as a declarative {!spec} value so that histories can be printed,
    parsed, and generated, and compile it to a predicate on labelled nodes.

    A specification only ever decides conflicts between {e distinct}
    operations of {e different} transactions of the same schedule; intra-
    transaction ordering is governed by the transaction's own orders
    (Def. 2), and the theory never consults [CON_S] on a pair of operations
    of the same transaction. *)

type spec =
  | Never  (** Everything commutes; the schedule never sees a conflict. *)
  | Always  (** Every pair of operations (of different transactions) conflicts. *)
  | Rw
      (** The classical read/write model on the first argument: two
          operations conflict iff they touch the same item and at least one
          of them is a writer, where ["r"] reads; ["w"] writes; ["inc"] and
          ["dec"] commute with each other but conflict with reads and
          writes.  Unknown names are treated as writers of their item. *)
  | Same_item
      (** Operations conflict iff they share their first argument,
          whatever their names — a coarse semantic model. *)
  | Table of (string * string) list
      (** [Table pairs] declares the {e conflicting} name pairs; the list is
          interpreted symmetrically.  A pair conflicts iff its name pair is
          listed {e and} the operations share at least one argument (if both
          have arguments; operations without arguments conflict on name
          alone).  Everything not listed commutes. *)
  | Explicit of (Repro_order.Ids.id * Repro_order.Ids.id) list
      (** Exact conflicting node pairs, interpreted symmetrically.  Used by
          reconstructed paper figures and by generators that draw random
          conflicts. *)

val eval : spec -> get_label:(Repro_order.Ids.id -> Label.t) -> Repro_order.Ids.id -> Repro_order.Ids.id -> bool
(** [eval spec ~get_label a b] decides whether operations [a] and [b]
    conflict under [spec].  Symmetric; [eval spec ~get_label a a] is
    [false]. *)

val evals : unit -> int
(** Process-global count of {!eval} invocations (label interpretations),
    monotonically increasing.  Purely observational — the conflict-memo
    tests difference it around an operation to assert that warm caches
    prevent re-interpretation.  Atomic, so safe to read under the parallel
    batch drivers. *)

val eval_labels : spec -> Label.t -> Label.t -> bool
(** Conflict decision on raw labels, for lock tables and other uses where no
    node identity exists.  Identical to {!eval} except that [Explicit] —
    which needs node identities — is treated pessimistically as [Always],
    and no same-transaction exemption applies.  Reflexive pairs follow the
    spec (two equal write labels conflict). *)

val rw_labels : Label.t -> Label.t -> bool
(** The raw read/write commutativity test on labels used by {!Rw}, exposed
    for the storage substrate and lock tables. *)

val pp : Format.formatter -> spec -> unit

val equal : spec -> spec -> bool
