(** Conflict specifications.

    Each schedule of a composite system owns a conflict predicate [CON_S]
    over its operations (Def. 3).  Two operations conflict when they do not
    commute — when their relative execution order matters for the net effect.
    The paper treats [CON_S] as an abstract symmetric predicate; we represent
    it as a declarative {!spec} value so that histories can be printed,
    parsed, and generated, and compile it to a predicate on labelled nodes.

    A specification only ever decides conflicts between {e distinct}
    operations of {e different} transactions of the same schedule; intra-
    transaction ordering is governed by the transaction's own orders
    (Def. 2), and the theory never consults [CON_S] on a pair of operations
    of the same transaction. *)

type spec =
  | Never  (** Everything commutes; the schedule never sees a conflict. *)
  | Always  (** Every pair of operations (of different transactions) conflicts. *)
  | Rw
      (** The classical read/write model on the first argument: two
          operations conflict iff they touch the same item and at least one
          of them is a writer, where ["r"] reads; ["w"] writes; ["inc"] and
          ["dec"] commute with each other but conflict with reads and
          writes.  Unknown names are treated as writers of their item. *)
  | Same_item
      (** Operations conflict iff they share their first argument,
          whatever their names — a coarse semantic model. *)
  | Table of (string * string) list
      (** [Table pairs] declares the {e conflicting} name pairs; the list is
          interpreted symmetrically.  A pair conflicts iff its name pair is
          listed {e and} the operations share at least one argument (if both
          have arguments; operations without arguments conflict on name
          alone).  Everything not listed commutes. *)
  | Explicit of (Repro_order.Ids.id * Repro_order.Ids.id) list
      (** Exact conflicting node pairs, interpreted symmetrically.  Used by
          reconstructed paper figures and by generators that draw random
          conflicts. *)
  | Adt of Adt.family
      (** Semantic commutativity of an abstract data type: operation
          classes with argument-sensitive conflict rules — see {!Adt} for
          the canonical counter/queue/set/escrow families and the
          user-declared form. *)

val eval : spec -> get_label:(Repro_order.Ids.id -> Label.t) -> Repro_order.Ids.id -> Repro_order.Ids.id -> bool
(** [eval spec ~get_label a b] decides whether operations [a] and [b]
    conflict under [spec].  Symmetric; [eval spec ~get_label a a] is
    [false].  This is the interpreted reference; hot paths go through
    {!compile} and the probes, whose agreement with [eval] the qcheck
    suites pin. *)

type compiled
(** A specification compiled for repeated probing: [Table] becomes an
    interned-name matrix, [Explicit] a hash set over node pairs, [Adt] the
    family's dense class matrix (see {!Adt.compile}).  Each schedule
    compiles its spec once; the conflict memo, the lock tables, and the
    workload generators all probe the same compiled form. *)

val compile : spec -> compiled

val probe_ids :
  compiled ->
  get_label:(Repro_order.Ids.id -> Label.t) ->
  Repro_order.Ids.id ->
  Repro_order.Ids.id ->
  bool
(** Same decision as {!eval} on the originating spec (including exact
    [Explicit] pairs), without re-interpreting any list.  Counts toward
    {!evals} exactly like {!eval} so the memo tests keep their meaning. *)

val probe_labels : compiled -> Label.t -> Label.t -> bool
(** Same decision as {!eval_labels} on the originating spec: the one
    label-level compatibility function shared by the checker and the
    semantic 2PL lock tables.  [Explicit] is pessimistically [true] (no
    node identities exist at the label level); {!Lock} emits a one-time
    {!Validate} warning when it hits that fallback.  Counts toward
    {!evals}. *)

val known_name : spec -> string -> bool
(** Whether the spec recognizes the operation name, i.e. the name does not
    fall to a pessimistic or silent default: [Rw]'s unknown-names-are-
    writers, [Table]'s unlisted-names-commute, [Adt]'s unknown-class
    fallback.  Specs that never discriminate by name ([Never], [Always],
    [Same_item], [Explicit]) recognize everything.  The {!Validate} lint
    builds on this. *)

val discriminates : spec -> bool
(** Whether {!known_name} can ever be [false] for the spec — i.e. whether
    the unknown-operation lint is meaningful for it. *)

val evals : unit -> int
(** Process-global count of {!eval} invocations (label interpretations),
    monotonically increasing.  Purely observational — the conflict-memo
    tests difference it around an operation to assert that warm caches
    prevent re-interpretation.  Atomic, so safe to read under the parallel
    batch drivers. *)

val eval_labels : spec -> Label.t -> Label.t -> bool
(** Conflict decision on raw labels, for lock tables and other uses where no
    node identity exists.  Identical to {!eval} except that [Explicit] —
    which needs node identities — is treated pessimistically as [Always],
    and no same-transaction exemption applies.  Reflexive pairs follow the
    spec (two equal write labels conflict). *)

val rw_labels : Label.t -> Label.t -> bool
(** The raw read/write commutativity test on labels used by {!Rw}, exposed
    for the storage substrate and lock tables. *)

val pp : Format.formatter -> spec -> unit

val equal : spec -> spec -> bool
