(** Composite executions.

    A {e composite system} (Def. 4) is a set of schedules that invoke one
    another's services without recursion; its dynamic behaviour is a
    {e computational forest}: every root transaction spawns a tree whose
    internal nodes are subtransactions (operations of one schedule,
    transactions of another) and whose leaves are atomic operations.

    A value of type {!t} packages one complete composite execution:

    - the forest of {e nodes} (roots, internal transactions, leaves), each
      carrying a {!Label.t} and its intra-transaction weak and strong orders
      (Def. 2);
    - the set of {e schedules}, each with its conflict specification, its
      weak/strong {e input} orders over its transactions and weak/strong
      {e output} orders over its operations (Def. 3), and optionally the
      total execution log it produced.

    Histories are immutable; construct them with {!Builder}.  Construction
    performs the {e order completion} that Def. 3 requires of any well-formed
    schedule (output orders extend intra-transaction orders; strong input
    orders expand to strong output orders over all operation pairs; orders
    are transitively closed) and derives the input orders of invoked
    schedules from their clients' output orders (Def. 4.7).  Full validation
    against Defs. 3–4 is separate: see {!Validate}. *)

open Repro_order
open Ids

type sched_id = int

type node = private {
  id : id;
  label : Label.t;
  parent : id option;  (** [None] exactly for root transactions. *)
  children : id list;  (** In creation order; empty for leaves. *)
  sched : sched_id option;
      (** Schedule this node is a {e transaction} of; [None] exactly for
          leaves.  Roots and internal nodes always belong to a schedule. *)
  intra_weak : Rel.t;  (** Weak intra-transaction order over [children]. *)
  intra_strong : Rel.t;  (** Strong intra-transaction order over [children]. *)
}

type schedule = private {
  sid : sched_id;
  sname : string;
  conflict : Conflict.spec;
  transactions : Int_set.t;
  weak_in : Rel.t;  (** [→]: weak input order over [transactions]. *)
  strong_in : Rel.t;  (** [⇒]: strong input order over [transactions]. *)
  weak_out : Rel.t;  (** [≺]: weak output order over the operations. *)
  strong_out : Rel.t;  (** [≪]: strong output order over the operations. *)
  log : id list;
      (** Total execution log of the schedule's operations, oldest first;
          [[]] when the history was not produced by an execution. *)
}

type t

(** {1 Accessors} *)

val node : t -> id -> node
val schedule : t -> sched_id -> schedule
val n_nodes : t -> int
val n_schedules : t -> int
val schedules : t -> schedule list
val label : t -> id -> Label.t

val parent : t -> id -> id option
(** Structural parent; [None] for roots. *)

val parent_tx : t -> id -> id
(** Def. 5: the parent of a non-root node, and the node itself for roots. *)

val children : t -> id -> id list
val is_leaf : t -> id -> bool
val is_root : t -> id -> bool

val roots : t -> id list
val leaves : t -> id list
val internal_nodes : t -> id list
(** Nodes that are transactions of some schedule and operations of another. *)

val sched_of_tx : t -> id -> sched_id option
(** The schedule a node is a transaction of ([None] for leaves). *)

val sched_of_op : t -> id -> sched_id option
(** The schedule a node is an operation of — the schedule of its parent
    transaction ([None] for roots). *)

val common_op_schedule : t -> id -> id -> sched_id option
(** The schedule of which both nodes are operations, if any.  Central to
    Defs. 10–11: observed order stops propagating, and conflicts are decided
    locally, at a common schedule. *)

val common_op_schedule_id : t -> id -> id -> sched_id
(** Allocation-free variant of {!common_op_schedule} for hot paths: the
    common schedule, or [-1] when there is none. *)

val ops_of_schedule : t -> sched_id -> id list
(** All operations of a schedule (children of its transactions). *)

val conflicts : t -> sched_id -> id -> id -> bool
(** [conflicts h s a b]: does schedule [s]'s own conflict predicate [CON_S]
    relate operations [a] and [b]?  Only meaningful when both are operations
    of [s] and belong to different transactions; returns [false] for
    operations of the same transaction.

    Results are memoized per history in a lazily filled symmetric bitmatrix
    (one bit pair per unordered operation pair of [s]), filled by probing
    the schedule's {e compiled} spec ({!Conflict.compile}, built once per
    history alongside the memo), so repeated probes — the observed-order
    fixpoint revisits every pair each round — interpret the labels at most
    once and never re-scan a spec's lists.  The cache is invisible
    semantically but makes histories unsafe to probe from several domains
    at once; batch checkers must give each domain its own history. *)

val conflicts_uncached : t -> sched_id -> id -> id -> bool
(** The direct, non-memoizing evaluation path through the {e interpreted}
    {!Conflict.eval}.  Slow; exists as the reference implementation for
    equivalence tests (which thereby also cross-check the compiled form
    against the interpreter). *)

val compiled_spec : t -> sched_id -> Conflict.compiled
(** The schedule's conflict spec in compiled form, shared with the conflict
    memo (compiled once per history, on first use).  The lock tables and
    the workload generators probe this instead of re-interpreting the
    spec. *)

val extend_cache : from:t -> t -> unit
(** [extend_cache ~from h] seeds [h]'s conflict memo with every pair
    already decided in [from], assuming [h] {e extends} [from]: same
    schedules, shared nodes keep their identifiers and labels, new
    operations get strictly larger identifiers (the shape produced by
    {!prefix_by_roots} chains and by the simulator's deterministic history
    assembly).  Because each schedule's triangular bitmatrix is indexed by
    per-schedule operation rank, the old matrix is a bit-prefix of the new
    one and transfers by blit.  No-op when [from] has no cache yet or [h]
    already has one; raises [Invalid_argument] when [h] has fewer nodes,
    fewer operations in some schedule, or a different schedule count.
    Semantically invisible — only the memo warmth changes. *)

val memo_stats : t -> int * int
(** [(known, total)]: how many unordered same-schedule operation pairs the
    conflict memo has decided, out of the total pair space (one slot per
    pair, summed over schedules).  [(0, total)] before any probe.  Pure
    introspection for the engine's state report — reads the memo, never
    fills it. *)

val memo_release : t -> unit
(** Release the conflict memo's storage for every operation currently in
    the history: the triangular planes are dropped and those pairs
    evaluate uncached from then on, while operations appended {e after}
    the release memoize again in fresh tables covering only the new
    window.  Semantically invisible (the memo caches a pure predicate);
    this is the engine's frontier-truncation hook, where the released
    pairs belong to a folded prefix and are re-probed at most on its
    boundary.  Idempotent, and {!extend_cache} carries the release
    forward along an extension chain. *)

val memo_bytes : t -> int
(** Bytes currently held by the allocated memo planes — the storage-side
    counterpart of {!memo_stats}, for cheap resident-memory estimates. *)

val descendants : t -> id -> Int_set.t
(** Proper descendants ([Act] of Def. 4.6, transitively). *)

val composite_transaction : t -> id -> Int_set.t
(** Def. 6: the root together with all its descendants.  Raises
    [Invalid_argument] if the node is not a root. *)

(** {1 Structure (Defs. 7–9)} *)

val invocation_graph : t -> Rel.t
(** Edge [s -> s'] iff schedule [s] invokes [s'] (some operation of [s] is a
    transaction of [s']). *)

val level : t -> sched_id -> int
(** Def. 9: 1 + length of the longest invocation path starting at the
    schedule.  Leaf schedules have level 1. *)

val order : t -> int
(** The order N of the composite system: the highest schedule level. *)

val level_of_node : t -> id -> int
(** Level of the schedule a node is a transaction of; 0 for leaves. *)

val schedules_at_level : t -> int -> sched_id list

val prefix_by_roots : t -> int -> t
(** [prefix_by_roots h k] is the sub-execution spanned by the first [k]
    root transactions of [h] (ascending identifier): their subtrees, all
    schedules (possibly left empty), and every explicit order and log
    entry restricted to the kept nodes, re-sealed.  Nodes are rebuilt in
    root-major depth-first order, so the prefixes of one history form an
    extension chain — [prefix_by_roots h k] and [prefix_by_roots h (k+1)]
    agree on the identifiers and labels of shared nodes, which is the
    contract {!extend_cache} and the incremental monitor's delta
    computation rely on.  [prefix_by_roots h (List.length (roots h))]
    equals [h] up to that relabelling.  Raises [Invalid_argument] when [k]
    is outside [0..#roots]. *)

(** {1 Restricted views} *)

(** Read-only restrictions of a history to a downward-closed node subset.

    A view is cheap — two arrays, no history copy — and is the engine's
    window onto candidate sub-histories: the shrinker probes restrictions
    of one base history over and over, and materializing each one through
    {!Builder} used to discard everything the base had already paid for.
    {!View.to_history} still re-seals (the model's order-completion rules
    must run on the restriction), but it {e seeds the conflict memo} of the
    materialized history from the base's: surviving operation pairs keep
    their decided conflict bits, so the label interpreter never re-runs on
    pairs the base session already probed. *)
module View : sig
  type history := t

  type t
  (** A restriction of one base history to a kept node subset. *)

  val make : history -> keep:Ids.Int_set.t -> t
  (** [make h ~keep] restricts [h] to [keep], closed downward: a node
      survives iff it and all its ancestors are in [keep] (dropping a node
      drops its whole subtree).  O(nodes); nothing is copied. *)

  val base : t -> history
  val n_nodes : t -> int
  (** Surviving nodes. *)

  val mem : t -> id -> bool
  (** Does the original node survive the restriction? *)

  val new_id : t -> id -> id
  (** The surviving node's identifier in {!to_history}'s output — dense,
      in original id order — or [-1] when dropped. *)

  val to_history : t -> history
  (** Materialize the restriction as a full history: surviving nodes are
      renumbered densely in original id order, schedules all survive
      (possibly emptied), [Explicit] conflict pairs are remapped, intra and
      root input orders are restricted, and a schedule with a log gets the
      restricted log with re-derived minimal outputs (a schedule described
      by explicit output orders keeps their restriction).  The base
      history's conflict memo is transferred onto the result: pairs of
      surviving operations keep their decided bits, so probing the
      materialized restriction re-interprets no label the base already
      decided. *)
end

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering of the whole history. *)

val pp_node : t -> Format.formatter -> id -> unit
(** Renders a node as [name(args)#id]. *)

val pp_node_sched : t -> Format.formatter -> id -> unit
(** Renders a node as [name(args)#id@schedule], where the schedule is the
    one the node is an {e operation} of (for roots: the schedule they are a
    transaction of).  The forensic rendering — a bare id means nothing once
    a cycle spans several components. *)

(** {1 Construction} *)

module Builder : sig
  type history := t

  type t
  (** A mutable history under construction. *)

  val create : unit -> t

  val schedule : t -> ?conflict:Conflict.spec -> string -> sched_id
  (** Declare a schedule.  Default conflict specification is {!Conflict.Rw}. *)

  val root : t -> sched:sched_id -> Label.t -> id
  (** Declare a root transaction belonging to [sched]. *)

  val tx : t -> parent:id -> sched:sched_id -> Label.t -> id
  (** Declare a subtransaction: an operation of [parent]'s schedule and a
      transaction of [sched]. *)

  val leaf : t -> parent:id -> Label.t -> id
  (** Declare a leaf operation of [parent]. *)

  val weak_out : t -> a:id -> b:id -> unit
  (** Record that the schedule of which [a] and [b] are operations weakly
      ordered [a] before [b].  Both must share a parent schedule. *)

  val strong_out : t -> a:id -> b:id -> unit
  (** Strong output order; implies the weak output pair. *)

  val intra_weak : t -> a:id -> b:id -> unit
  (** Weak intra-transaction order between two children of one node. *)

  val intra_strong : t -> a:id -> b:id -> unit

  val input_weak : t -> a:id -> b:id -> unit
  (** Client-imposed weak input order between two root transactions of the
      same schedule.  Input orders of non-root transactions are derived from
      their clients' output orders (Def. 4.7) and cannot be set directly. *)

  val input_strong : t -> a:id -> b:id -> unit

  val log : t -> sched:sched_id -> id list -> unit
  (** Record the total execution log of a schedule (all its operations,
      oldest first).  At {!seal} time, any schedule with a log and no
      explicit weak output order gets the {e minimal} valid output derived
      from it: the log order restricted to conflicting operation pairs,
      completed as Def. 3 requires. *)

  val seal : t -> history
  (** Freeze the history: derive outputs from logs, complete orders per
      Def. 3, derive input orders per Def. 4.7, transitively close all
      orders.  Raises [Invalid_argument] on structurally malformed input
      (unknown ids, an operation pair of different schedules given to
      {!weak_out}, a recursive invocation graph, a log that is not a
      permutation of the schedule's operations). *)
end
