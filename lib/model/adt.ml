type cond = Always | Item | Args | Range

type decl = {
  classes : (string * string list) list;
  rules : (string * string * cond) list;
}

type family = Counter | Queue | Set | Escrow | Custom of decl

(* Canonical families after Malta & Martinez: update classes that commute
   internally, observers that conflict with updates on the same item, and
   escrow ranges that conflict only when the reserved intervals overlap. *)

let counter_decl =
  {
    classes =
      [ ("upd", [ "inc"; "dec" ]);
        ("get", [ "get"; "read"; "r" ]);
        ("set", [ "set"; "write"; "w" ]) ];
    rules =
      [ ("get", "upd", Item);
        ("get", "set", Item);
        ("set", "set", Item);
        ("set", "upd", Item) ];
  }

let queue_decl =
  {
    classes = [ ("enq", [ "enq"; "push" ]); ("deq", [ "deq"; "pop" ]) ];
    rules = [ ("enq", "enq", Item); ("deq", "deq", Item) ];
  }

let set_decl =
  {
    classes =
      [ ("add", [ "add"; "insert" ]);
        ("remove", [ "remove"; "delete" ]);
        ("contains", [ "contains"; "member"; "mem" ]) ];
    rules =
      [ ("add", "remove", Args);
        ("add", "contains", Args);
        ("remove", "contains", Args) ];
  }

let escrow_decl =
  {
    classes =
      [ ("escrow", [ "escrow"; "reserve" ]);
        ("move", [ "take"; "put"; "deposit"; "withdraw" ]) ];
    rules = [ ("escrow", "escrow", Range); ("escrow", "move", Item) ];
  }

let decl_of = function
  | Counter -> counter_decl
  | Queue -> queue_decl
  | Set -> set_decl
  | Escrow -> escrow_decl
  | Custom d -> d

let vocabulary f = List.concat_map snd (decl_of f).classes

let known f name =
  List.exists (fun (_, ops) -> List.mem name ops) (decl_of f).classes

(* The numeric interval of an escrow label, read from the second and third
   arguments; [None] when either bound is missing or unparseable. *)
let range_of (l : Label.t) =
  match l.args with
  | _ :: lo :: hi :: _ -> (
    match (float_of_string_opt lo, float_of_string_opt hi) with
    | Some l, Some h -> Some (min l h, max l h)
    | _ -> None)
  | _ -> None

let cond_holds cond (a : Label.t) (b : Label.t) =
  match cond with
  | Always -> true
  | Item -> (
    match (Label.item a, Label.item b) with
    | Some ia, Some ib -> String.equal ia ib
    | _ -> true (* no item to discriminate on: pessimistic *))
  | Args -> (
    match (a.args, b.args) with
    | ia :: ra, ib :: rb ->
      String.equal ia ib
      && (match (ra, rb) with
         | [], _ | _, [] -> true (* element unknown: pessimistic *)
         | _ -> List.exists (fun x -> List.mem x rb) ra)
    | _ -> true)
  | Range -> (
    match (Label.item a, Label.item b) with
    | Some ia, Some ib ->
      String.equal ia ib
      && (match (range_of a, range_of b) with
         | Some (l1, h1), Some (l2, h2) -> l1 <= h2 && l2 <= h1
         | _ -> true (* unparseable bounds: pessimistic *))
    | _ -> true)

(* Reference interpreter.  Class resolution scans the declaration list
   (first declaration wins); unknown names resolve to no class and fall to
   the pessimistic same-item rule.  [compile]/[probe] must agree with this
   on every pair — the qcheck parity property pins it. *)

let class_of decl name =
  let rec go = function
    | [] -> None
    | (cls, ops) :: rest -> if List.mem name ops then Some cls else go rest
  in
  go decl.classes

let rule_of decl ca cb =
  let rec go = function
    | [] -> None
    | (x, y, cond) :: rest ->
      if
        (String.equal x ca && String.equal y cb)
        || (String.equal x cb && String.equal y ca)
      then Some cond
      else go rest
  in
  go decl.rules

let eval f (a : Label.t) (b : Label.t) =
  let decl = decl_of f in
  match (class_of decl a.name, class_of decl b.name) with
  | Some ca, Some cb -> (
    match rule_of decl ca cb with
    | Some cond -> cond_holds cond a b
    | None -> false)
  | _ -> cond_holds Item a b

(* Compiled form: operation names interned to class ids, rules lowered to a
   dense [(ncls+1)^2] matrix of condition codes.  Class id [ncls] is the
   pessimistic unknown-name class; its row and column carry the [Item]
   code everywhere, so the probe needs no unknown-name branch. *)

type compiled = {
  ids : (string, int) Hashtbl.t;
  width : int; (* ncls + 1 *)
  matrix : int array; (* 0 commute, 1 always, 2 item, 3 args, 4 range *)
}

let code_of = function Always -> 1 | Item -> 2 | Args -> 3 | Range -> 4

let cond_of_code = function
  | 1 -> Always
  | 2 -> Item
  | 3 -> Args
  | 4 -> Range
  | c -> invalid_arg (Printf.sprintf "Adt.cond_of_code: %d" c)

let compile f =
  let decl = decl_of f in
  let ncls = List.length decl.classes in
  let width = ncls + 1 in
  let cls_id = Hashtbl.create 8 in
  List.iteri (fun i (cls, _) -> if not (Hashtbl.mem cls_id cls) then Hashtbl.add cls_id cls i) decl.classes;
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (cls, ops) ->
      let i = Hashtbl.find cls_id cls in
      List.iter
        (fun op -> if not (Hashtbl.mem ids op) then Hashtbl.add ids op i)
        ops)
    decl.classes;
  let matrix = Array.make (width * width) 0 in
  (* Unknown names conflict with everything sharing their item. *)
  let item = code_of Item in
  for i = 0 to width - 1 do
    matrix.((i * width) + ncls) <- item;
    matrix.((ncls * width) + i) <- item
  done;
  (* First matching rule wins, like the interpreter's scan. *)
  let seen = Array.make (width * width) false in
  List.iter
    (fun (x, y, cond) ->
      match (Hashtbl.find_opt cls_id x, Hashtbl.find_opt cls_id y) with
      | Some i, Some j ->
        let c = code_of cond in
        if not seen.((i * width) + j) then begin
          seen.((i * width) + j) <- true;
          seen.((j * width) + i) <- true;
          matrix.((i * width) + j) <- c;
          matrix.((j * width) + i) <- c
        end
      | _ -> () (* rule over undeclared classes: inert *))
    decl.rules;
  { ids; width; matrix }

let probe c (a : Label.t) (b : Label.t) =
  let unknown = c.width - 1 in
  let ca = match Hashtbl.find_opt c.ids a.name with Some i -> i | None -> unknown in
  let cb = match Hashtbl.find_opt c.ids b.name with Some i -> i | None -> unknown in
  match c.matrix.((ca * c.width) + cb) with
  | 0 -> false
  | 1 -> true
  | code -> cond_holds (cond_of_code code) a b

let pp_cond ppf c =
  Fmt.string ppf
    (match c with
    | Always -> "always"
    | Item -> "item"
    | Args -> "args"
    | Range -> "range")

let pp ppf = function
  | Counter -> Fmt.string ppf "counter"
  | Queue -> Fmt.string ppf "queue"
  | Set -> Fmt.string ppf "set"
  | Escrow -> Fmt.string ppf "escrow"
  | Custom d ->
    let pp_class ppf (cls, ops) =
      Fmt.pf ppf "%s=%a" cls Fmt.(list ~sep:(any "/") string) ops
    in
    let pp_rule ppf (x, y, cond) =
      Fmt.pf ppf "%s/%s=%a" x y pp_cond cond
    in
    Fmt.pf ppf "adt(%a;%a)"
      Fmt.(list ~sep:(any ",") pp_class)
      d.classes
      Fmt.(list ~sep:(any ",") pp_rule)
      d.rules

let equal_decl d1 d2 =
  List.equal
    (fun (c1, o1) (c2, o2) -> String.equal c1 c2 && List.equal String.equal o1 o2)
    d1.classes d2.classes
  && List.equal
       (fun (x1, y1, c1) (x2, y2, c2) ->
         String.equal x1 x2 && String.equal y1 y2 && c1 = c2)
       d1.rules d2.rules

let equal f1 f2 =
  match (f1, f2) with
  | Counter, Counter | Queue, Queue | Set, Set | Escrow, Escrow -> true
  | Custom d1, Custom d2 -> equal_decl d1 d2
  | (Counter | Queue | Set | Escrow | Custom _), _ -> false
