(** Finite binary relations over integer node identifiers.

    This module implements the relation algebra on which the whole composite
    correctness theory rests: the weak and strong input/output orders of
    schedules, the observed order [<_o], the generalized conflict relation
    CON, and the combined constraint graphs of computational fronts are all
    values of type {!t}.

    The representation is persistent (balanced maps of sets), so fronts of a
    reduction can share structure between levels.  A relation only knows the
    nodes that appear in at least one pair; algorithms that need a universe
    take an explicit [nodes] argument. *)

open Ids

type t
(** A finite binary relation on {!Ids.id}. *)

val empty : t

val is_empty : t -> bool

val add : id -> id -> t -> t
(** [add a b r] is [r] with the pair [(a, b)] added.  Self-pairs are allowed
    by the representation; validity checks reject them where the theory
    requires irreflexivity. *)

val remove : id -> id -> t -> t

val mem : id -> id -> t -> bool

val of_list : (id * id) list -> t

val to_list : t -> (id * id) list
(** Pairs in ascending lexicographic order. *)

val cardinal : t -> int
(** Number of pairs. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset r s] is [true] iff every pair of [r] is in [s]. *)

val equal : t -> t -> bool

val succs : t -> id -> Int_set.t
(** Direct successors of a node (empty if unknown). *)

val preds : t -> id -> Int_set.t
(** Direct predecessors of a node.  O(size of relation); callers probing
    more than one node should use {!inverse} once instead. *)

val inverse : t -> t
(** The converse relation, computed in one pass: [mem b a (inverse r)] iff
    [mem a b r], and [succs (inverse r) b] is [preds r b]. *)

val fold : (id -> id -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (id -> id -> unit) -> t -> unit

val filter : (id -> id -> bool) -> t -> t

val restrict : keep:(id -> bool) -> t -> t
(** Sub-relation induced by the nodes satisfying [keep]: a pair survives iff
    both endpoints do. *)

val map_nodes : (id -> id) -> t -> t
(** Rename nodes; pairs that collapse to self-pairs are dropped.  Used to
    project a relation on operations to a relation on their parents during
    reduction. *)

val nodes : t -> Int_set.t
(** All nodes appearing in at least one pair. *)

val reachable : t -> id -> Int_set.t
(** Nodes reachable from a node by a non-empty path. *)

val transitive_closure : t -> t
(** Smallest transitive relation containing the argument.  Runs in the dense
    kernel ({!Bitrel.transitive_closure}: SCC condensation, then word-parallel
    row-OR merges in reverse topological order) and converts back at the
    boundary. *)

val to_bitrel : ?universe:Int_set.t -> t -> Bitrel.t
(** Dense snapshot over [universe ∪ nodes r].  Mutations of the result do not
    affect the source. *)

val of_bitrel : Bitrel.t -> t
(** Persistent copy of a dense relation; universe nodes without pairs vanish
    (a {!t} only knows nodes appearing in some pair). *)

val is_transitive : t -> bool

val transitive_reduction : t -> t
(** Smallest relation with the same transitive closure, for {e acyclic}
    inputs: a pair is kept iff it is not implied by a two-step (or longer)
    path.  Used to declutter rendered constraint graphs.  On cyclic inputs
    the result still has the same closure but is not guaranteed minimal. *)

val irreflexive : t -> bool
(** No pair [(a, a)]. *)

val is_acyclic : t -> bool

val find_cycle : t -> id list option
(** [find_cycle r] is [Some [n1; ...; nk]] such that [n1 -> n2 -> ... -> nk ->
    n1] are pairs of [r], if any cycle exists; [None] for acyclic relations.
    Used to produce rejection certificates. *)

val topo_sort : nodes:Int_set.t -> t -> id list option
(** A linear extension of the relation over the given node universe (nodes of
    the relation outside [nodes] are ignored), or [None] if the restriction of
    the relation to [nodes] has a cycle.  Deterministic: ties are broken by
    ascending identifier, so certificates are reproducible. *)

val quotient : (id -> id) -> t -> t
(** [quotient cls r] contracts the relation by the clustering function [cls]:
    pair [(a, b)] becomes [(cls a, cls b)]; intra-cluster pairs are dropped.
    The result is acyclic iff the nodes of [r] can be laid out in a line with
    each cluster contiguous while respecting all inter-cluster pairs — the
    core of the calculation step of the reduction (Def. 16, step 1). *)

val total_on : Int_set.t -> t -> bool
(** [total_on ns r] is [true] iff for every two distinct [a], [b] in [ns],
    [mem a b r || mem b a r].  A front is serial (Def. 17) when its strong
    order is total on its nodes. *)

val pp : Format.formatter -> t -> unit
