(* Flat Bigarray-backed bit matrices: the mutable, growable counterpart of
   {!Bitrel} for the append path.  One [(char, int8_unsigned_elt, c_layout)]
   Bigarray.Array1.t backs the whole relation; row [i] lives at byte offset
   [i * stride].  Bits are unboxed and off the OCaml heap, so the monitor's
   per-append membership probes and bit sets allocate nothing and the minor
   heap stays flat no matter how large the prefix grows.  Capacity grows
   geometrically in both dimensions; rows move with plain blits. *)

type buffer =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable buf : buffer;
  mutable nrows : int; (* active rows *)
  mutable ncols : int; (* active columns (bits per row) *)
  mutable stride : int; (* bytes per row in [buf] *)
  mutable cap_rows : int; (* allocated rows *)
}

let alloc bytes : buffer =
  let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (max 1 bytes) in
  Bigarray.Array1.fill b '\000';
  b

let bytes_for cols = (cols + 7) lsr 3

let make ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Arena.make: negative dimension";
  let stride = max 1 (bytes_for cols) in
  let cap_rows = max 1 rows in
  {
    buf = alloc (stride * cap_rows);
    nrows = rows;
    ncols = cols;
    stride;
    cap_rows;
  }

let rows t = t.nrows

let cols t = t.ncols

(* Grow the active window to at least [rows] x [cols].  Existing bits keep
   their (row, column) coordinates; fresh space is zero.  Both dimensions
   over-allocate geometrically so a streaming caller pays O(1) amortized
   blit work per appended row. *)
let ensure t ~rows ~cols =
  let need_stride = bytes_for cols in
  if need_stride > t.stride || rows > t.cap_rows then begin
    let stride =
      if need_stride > t.stride then max need_stride (2 * t.stride)
      else t.stride
    in
    let cap_rows =
      if rows > t.cap_rows then max rows (2 * t.cap_rows) else t.cap_rows
    in
    let buf = alloc (stride * cap_rows) in
    let old_bytes = bytes_for t.ncols in
    for i = 0 to t.nrows - 1 do
      let src = Bigarray.Array1.sub t.buf (i * t.stride) old_bytes in
      let dst = Bigarray.Array1.sub buf (i * stride) old_bytes in
      Bigarray.Array1.blit src dst
    done;
    t.buf <- buf;
    t.stride <- stride;
    t.cap_rows <- cap_rows
  end;
  if rows > t.nrows then t.nrows <- rows;
  if cols > t.ncols then t.ncols <- cols

(* Zero the active window and shrink it to [rows] x [cols], reusing the
   backing buffer when capacity allows — the rebuild path of incremental
   mirrors, which would otherwise churn large allocations. *)
let reset t ~rows ~cols =
  Bigarray.Array1.fill t.buf '\000';
  t.nrows <- 0;
  t.ncols <- 0;
  ensure t ~rows ~cols

(* Like {!reset}, but also give capacity back when the backing buffer is
   more than 4x what the new window needs — the truncation path, where a
   mirror built over a long prefix rebases onto a small active window and
   should stop pinning O(prefix^2) bits. *)
let shrink t ~rows ~cols =
  let stride = max 1 (bytes_for cols) in
  let cap_rows = max 1 rows in
  let need = stride * cap_rows in
  if Bigarray.Array1.dim t.buf > 4 * need then begin
    t.buf <- alloc need;
    t.stride <- stride;
    t.cap_rows <- cap_rows;
    t.nrows <- rows;
    t.ncols <- cols
  end
  else reset t ~rows ~cols

let resident_bytes t = Bigarray.Array1.dim t.buf

let check t what i j =
  if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols then
    invalid_arg
      (Printf.sprintf "Arena.%s: (%d, %d) outside %d x %d" what i j t.nrows
         t.ncols)

let set t i j =
  check t "set" i j;
  let k = (i * t.stride) + (j lsr 3) in
  let b = Char.code (Bigarray.Array1.unsafe_get t.buf k) in
  Bigarray.Array1.unsafe_set t.buf k (Char.unsafe_chr (b lor (1 lsl (j land 7))))

let unset t i j =
  check t "unset" i j;
  let k = (i * t.stride) + (j lsr 3) in
  let b = Char.code (Bigarray.Array1.unsafe_get t.buf k) in
  Bigarray.Array1.unsafe_set t.buf k
    (Char.unsafe_chr (b land lnot (1 lsl (j land 7))))

let get t i j =
  check t "get" i j;
  let k = (i * t.stride) + (j lsr 3) in
  Char.code (Bigarray.Array1.unsafe_get t.buf k) land (1 lsl (j land 7)) <> 0

(* Unchecked probe that treats out-of-window coordinates as absent — the
   saturation loop's membership test, where fresh nodes may not have been
   ensured yet. *)
let mem t i j =
  i >= 0 && i < t.nrows && j >= 0 && j < t.ncols
  &&
  let k = (i * t.stride) + (j lsr 3) in
  Char.code (Bigarray.Array1.unsafe_get t.buf k) land (1 lsl (j land 7)) <> 0

let row_iter t i f =
  if i < 0 || i >= t.nrows then invalid_arg "Arena.row_iter: bad row";
  let base = i * t.stride in
  let nb = bytes_for t.ncols in
  for k = 0 to nb - 1 do
    let b = Char.code (Bigarray.Array1.unsafe_get t.buf (base + k)) in
    if b <> 0 then begin
      let col0 = k lsl 3 in
      let bits = ref b in
      while !bits <> 0 do
        let low = !bits land - !bits in
        let bit =
          match low with
          | 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3
          | 16 -> 4 | 32 -> 5 | 64 -> 6 | _ -> 7
        in
        f (col0 + bit);
        bits := !bits land (!bits - 1)
      done
    end
  done

(* First set bit of row [i] at column >= [j], or -1: the cursor step of the
   iterative graph searches below. *)
let next_in_row t i j =
  let base = i * t.stride in
  let nb = bytes_for t.ncols in
  let res = ref (-1) in
  let k = ref (j lsr 3) in
  if !k < nb then begin
    (* Partial first byte. *)
    let b =
      Char.code (Bigarray.Array1.unsafe_get t.buf (base + !k))
      land lnot ((1 lsl (j land 7)) - 1)
    in
    if b <> 0 then begin
      let bits = ref b and bit = ref 0 in
      while !bits land 1 = 0 do incr bit; bits := !bits lsr 1 done;
      res := (!k lsl 3) + !bit
    end
    else begin
      incr k;
      while !res < 0 && !k < nb do
        let b = Char.code (Bigarray.Array1.unsafe_get t.buf (base + !k)) in
        if b <> 0 then begin
          let bits = ref b and bit = ref 0 in
          while !bits land 1 = 0 do incr bit; bits := !bits lsr 1 done;
          res := (!k lsl 3) + !bit
        end;
        incr k
      done
    end
  end;
  if !res >= t.ncols then -1 else !res

let row_is_empty t i =
  if i < 0 || i >= t.nrows then invalid_arg "Arena.row_is_empty: bad row";
  next_in_row t i 0 < 0

let iter f t =
  for i = 0 to t.nrows - 1 do
    row_iter t i (fun j -> f i j)
  done

let cardinal t =
  let n = ref 0 in
  iter (fun _ _ -> incr n) t;
  !n

let copy t =
  let r = make ~rows:t.nrows ~cols:t.ncols in
  iter (fun i j -> set r i j) t;
  r

let equal t1 t2 =
  t1.nrows = t2.nrows && t1.ncols = t2.ncols
  &&
  let ok = ref true in
  (try
     iter (fun i j -> if not (get t2 i j) then raise Exit) t1;
     iter (fun i j -> if not (get t1 i j) then raise Exit) t2
   with Exit -> ok := false);
  !ok

let to_list t =
  let acc = ref [] in
  iter (fun i j -> acc := (i, j) :: !acc) t;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Graph algorithms over square arenas (indices 0 .. rows-1).  Ports of
   the {!Bitrel} kernels at byte granularity: same traversal orders, so
   the outputs agree bit for bit with the word-parallel versions — the
   qcheck equivalence suite pins this.                                  *)
(* ------------------------------------------------------------------ *)

let square t what =
  if t.nrows <> t.ncols then
    invalid_arg (Printf.sprintf "Arena.%s: %d x %d is not square" what t.nrows t.ncols)

(* Tarjan SCC over compact indices; ascending component number is reverse
   topological, exactly as in [Bitrel.scc_condensation]. *)
let scc_condensation t =
  square t "scc_condensation";
  let n = t.nrows in
  let index = Array.make (max 1 n) (-1) in
  let lowlink = Array.make (max 1 n) 0 in
  let on_stack = Array.make (max 1 n) false in
  let comp_of = Array.make (max 1 n) (-1) in
  let cursor = Array.make (max 1 n) 0 in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomps = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let dfs = ref [ root ] in
      index.(root) <- !counter;
      lowlink.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      cursor.(root) <- 0;
      while !dfs <> [] do
        let v = List.hd !dfs in
        let next = ref (-1) in
        let continue = ref true in
        while !continue do
          let cand = next_in_row t v cursor.(v) in
          if cand < 0 then continue := false
          else begin
            cursor.(v) <- cand + 1;
            if index.(cand) < 0 then begin
              next := cand;
              continue := false
            end
            else if on_stack.(cand) then
              lowlink.(v) <- min lowlink.(v) index.(cand)
          end
        done;
        match !next with
        | -1 ->
          dfs := List.tl !dfs;
          (match !dfs with
          | parent :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            let c = !ncomps in
            incr ncomps;
            let rec pop () =
              match !stack with
              | [] -> ()
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp_of.(w) <- c;
                if w <> v then pop ()
            in
            pop ()
          end
        | w ->
          index.(w) <- !counter;
          lowlink.(w) <- !counter;
          incr counter;
          stack := w :: !stack;
          on_stack.(w) <- true;
          cursor.(w) <- 0;
          dfs := w :: !dfs
      done
    end
  done;
  (comp_of, !ncomps)

(* Byte-wise OR of row [src] of [from] into row [dst] of [into]; both
   arenas must share the column count. *)
let or_row_into ~into dst from src =
  let nb = bytes_for into.ncols in
  let db = dst * into.stride and sb = src * from.stride in
  for k = 0 to nb - 1 do
    let b =
      Char.code (Bigarray.Array1.unsafe_get into.buf (db + k))
      lor Char.code (Bigarray.Array1.unsafe_get from.buf (sb + k))
    in
    Bigarray.Array1.unsafe_set into.buf (db + k) (Char.unsafe_chr b)
  done

let transitive_closure t =
  square t "transitive_closure";
  let n = t.nrows in
  let comp_of, ncomps = scc_condensation t in
  (* Component member masks and reach sets, one bit row per component. *)
  let members = make ~rows:(max 1 ncomps) ~cols:(max 1 n) in
  let reach = make ~rows:(max 1 ncomps) ~cols:(max 1 n) in
  let csize = Array.make (max 1 ncomps) 0 in
  let cyclic = Array.make (max 1 ncomps) false in
  for v = 0 to n - 1 do
    let c = comp_of.(v) in
    set members c v;
    csize.(c) <- csize.(c) + 1;
    if get t v v then cyclic.(c) <- true
  done;
  for c = 0 to ncomps - 1 do
    if csize.(c) > 1 then cyclic.(c) <- true
  done;
  let comp_members = Array.make (max 1 ncomps) [] in
  for v = n - 1 downto 0 do
    comp_members.(comp_of.(v)) <- v :: comp_members.(comp_of.(v))
  done;
  let stamp = Array.make (max 1 ncomps) (-1) in
  for c = 0 to ncomps - 1 do
    List.iter
      (fun v ->
        row_iter t v (fun w ->
            let d = comp_of.(w) in
            if d <> c && stamp.(d) <> c then begin
              stamp.(d) <- c;
              or_row_into ~into:reach c members d;
              or_row_into ~into:reach c reach d
            end))
      comp_members.(c);
    if cyclic.(c) then or_row_into ~into:reach c members c
  done;
  let r = make ~rows:n ~cols:n in
  for v = 0 to n - 1 do
    or_row_into ~into:r v reach comp_of.(v)
  done;
  r

let find_cycle t =
  square t "find_cycle";
  let n = t.nrows in
  let colour = Array.make (max 1 n) 0 in
  let parent = Array.make (max 1 n) (-1) in
  let cursor = Array.make (max 1 n) 0 in
  let result = ref None in
  let root = ref 0 in
  while !result = None && !root < n do
    if colour.(!root) = 0 then begin
      let dfs = ref [ !root ] in
      colour.(!root) <- 1;
      cursor.(!root) <- 0;
      while !result = None && !dfs <> [] do
        let v = List.hd !dfs in
        let next = ref (-1) in
        let continue = ref true in
        while !continue do
          let cand = next_in_row t v cursor.(v) in
          if cand < 0 then continue := false
          else begin
            cursor.(v) <- cand + 1;
            match colour.(cand) with
            | 0 ->
              next := cand;
              continue := false
            | 1 ->
              let rec walk acc u =
                if u = cand then u :: acc else walk (u :: acc) parent.(u)
              in
              result := Some (walk [] v);
              continue := false
            | _ -> ()
          end
        done;
        if !result = None then
          match !next with
          | -1 ->
            colour.(v) <- 2;
            dfs := List.tl !dfs
          | w ->
            parent.(w) <- v;
            colour.(w) <- 1;
            cursor.(w) <- 0;
            dfs := w :: !dfs
      done
    end;
    incr root
  done;
  !result

let is_acyclic t = find_cycle t = None

let topo_sort t =
  square t "topo_sort";
  let n = t.nrows in
  let indeg = Array.make (max 1 n) 0 in
  iter (fun _ j -> indeg.(j) <- indeg.(j) + 1) t;
  (* Frontier as a bit row of its own, minimum index extracted first: the
     same ascending tie-break as [Bitrel.topo_sort]. *)
  let frontier = make ~rows:1 ~cols:(max 1 n) in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then set frontier 0 v
  done;
  let acc = ref [] in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    let v = next_in_row frontier 0 0 in
    if v < 0 then continue := false
    else begin
      unset frontier 0 v;
      acc := v :: !acc;
      incr count;
      row_iter t v (fun w ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then set frontier 0 w)
    end
  done;
  if !count = n then Some (List.rev !acc) else None

let quotient ~n cls t =
  square t "quotient";
  let q = make ~rows:n ~cols:n in
  iter
    (fun a b ->
      let a' = cls a and b' = cls b in
      if a' <> b' then set q a' b')
    t;
  q
