(** Flat Bigarray-backed bit matrices for the append path.

    The dense counterpart of {!Bitrel} when the universe {e grows}: one
    [(char, int8_unsigned_elt, c_layout) Bigarray.Array1.t] backs every
    row of the relation, row [i] at byte offset [i * stride].  The bits
    live off the OCaml heap, so membership probes and bit sets on the
    monitor's append path allocate nothing; capacity grows geometrically
    in both dimensions with plain blits, so appending a node is O(1)
    amortized.

    Rows and columns are plain dense indices (the codebase's node
    identifiers are dense by construction); there is no id compaction
    layer.  The square-matrix algorithms at the bottom are byte-granular
    ports of the {!Bitrel} kernels with identical traversal orders, so
    their outputs — closures, cycle witnesses, topological sorts,
    quotients — agree with the word-parallel versions bit for bit (pinned
    by the qcheck equivalence suite).

    Values are mutable and single-domain, like {!Bitrel}. *)

type t

val make : rows:int -> cols:int -> t
(** Zeroed arena with the given active window.  Raises [Invalid_argument]
    on negative dimensions. *)

val rows : t -> int
(** Active row count. *)

val cols : t -> int
(** Active column count (bits per row). *)

val ensure : t -> rows:int -> cols:int -> unit
(** Grow the active window (never shrinks).  Existing bits keep their
    coordinates; fresh space is zero.  Over-allocates geometrically. *)

val reset : t -> rows:int -> cols:int -> unit
(** Zero everything and set the active window, reusing the backing buffer
    when capacity allows — the cheap-rebuild path for incremental
    mirrors. *)

val shrink : t -> rows:int -> cols:int -> unit
(** Like {!reset}, but reallocates the backing buffer down when it holds
    more than 4x the bytes the new window needs — the truncation path,
    where a mirror rebases from a long prefix onto a small window and
    must release, not just zero, the dense bits. *)

val resident_bytes : t -> int
(** Bytes of backing store currently allocated (off the OCaml heap, so
    invisible to [Obj.reachable_words]) — the memory-accounting probe. *)

val set : t -> int -> int -> unit
(** [set t i j] sets bit [(i, j)].  Raises [Invalid_argument] outside the
    active window. *)

val unset : t -> int -> int -> unit

val get : t -> int -> int -> bool
(** Raises [Invalid_argument] outside the active window. *)

val mem : t -> int -> int -> bool
(** Like {!get} but [false] outside the active window — the probe for
    saturation loops where a node may not have been ensured yet. *)

val row_iter : t -> int -> (int -> unit) -> unit
(** Set columns of a row, ascending. *)

val next_in_row : t -> int -> int -> int
(** [next_in_row t i j] is the first set column of row [i] at or after
    [j], or [-1] — the cursor step of iterative searches. *)

val row_is_empty : t -> int -> bool

val iter : (int -> int -> unit) -> t -> unit
(** Ascending lexicographic order of [(row, col)]. *)

val cardinal : t -> int

val copy : t -> t
(** Snapshot with a tight capacity. *)

val equal : t -> t -> bool
(** Same active window and same bits. *)

val to_list : t -> (int * int) list

(** {1 Graph algorithms}

    These require a square arena ([rows t = cols t]) read as an adjacency
    matrix over indices [0 .. rows t - 1]; they raise [Invalid_argument]
    otherwise. *)

val scc_condensation : t -> int array * int
(** [comp_of] and component count; components are numbered in Tarjan
    completion order, so ascending component number is reverse
    topological. *)

val transitive_closure : t -> t
(** Fresh closure over the same index space; self-pairs appear exactly
    for nodes on cycles, matching [Bitrel.transitive_closure]. *)

val find_cycle : t -> int list option
(** Some cycle [n1 -> ... -> nk -> n1], or [None] when acyclic; the same
    witness [Bitrel.find_cycle] returns on the same pairs. *)

val is_acyclic : t -> bool

val topo_sort : t -> int list option
(** Kahn with minimum-index-first tie-break, equal to [Bitrel.topo_sort]
    over a dense universe; [None] on a cycle. *)

val quotient : n:int -> (int -> int) -> t -> t
(** Contract by a clustering function into a fresh [n] x [n] arena;
    intra-cluster pairs are dropped. *)
