open Ids

(* Bits per word: OCaml native ints carry [Sys.int_size] usable bits (63 on
   64-bit platforms); we use all of them, including the sign bit — the
   bitwise operators are oblivious to signedness. *)
let bpw = Sys.int_size

(* External id -> compact index.  Universes in this codebase are dense id
   ranges (node ids are allocated consecutively), so the common case is a
   plain offset array; a hashtable covers pathologically sparse universes
   without blowing up memory. *)
type index =
  | Direct of { off : int; map : int array } (* map.(id - off) = idx or -1 *)
  | Table of (int, int) Hashtbl.t

type t = {
  ids : int array; (* compact index -> external id, strictly increasing *)
  index : index;
  words : int; (* words per row *)
  rows : int array array; (* bit j of rows.(i): edge i -> j (compact) *)
}

(* 16-bit popcount table, built once. *)
let pop16 =
  lazy
    (let t = Bytes.create 65536 in
     for i = 0 to 65535 do
       let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
       Bytes.unsafe_set t i (Char.chr (count i 0))
     done;
     t)

let popcount x =
  let t = Lazy.force pop16 in
  let b i = Char.code (Bytes.unsafe_get t ((x lsr i) land 0xffff)) in
  b 0 + b 16 + b 32 + b 48

(* Number of trailing zeros of a non-zero word. *)
let ntz x =
  let x = x land (-x) in
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

let size t = Array.length t.ids

let universe t = Int_set.of_list (Array.to_list t.ids)

let id_of_idx t i = t.ids.(i)

let idx_of_id t v =
  match t.index with
  | Direct { off; map } ->
    let k = v - off in
    if k < 0 || k >= Array.length map || map.(k) < 0 then None else Some map.(k)
  | Table tbl -> Hashtbl.find_opt tbl v

let of_ids ids =
  let n = Array.length ids in
  for i = 1 to n - 1 do
    if ids.(i - 1) >= ids.(i) then
      invalid_arg "Bitrel.of_ids: ids must be strictly increasing"
  done;
  let ids = Array.copy ids in
  let index =
    if n = 0 then Direct { off = 0; map = [||] }
    else
      let span = ids.(n - 1) - ids.(0) + 1 in
      if span <= (4 * n) + 1024 then begin
        let map = Array.make span (-1) in
        Array.iteri (fun i v -> map.(v - ids.(0)) <- i) ids;
        Direct { off = ids.(0); map }
      end
      else begin
        let tbl = Hashtbl.create (max 16 n) in
        Array.iteri (fun i v -> Hashtbl.replace tbl v i) ids;
        Table tbl
      end
  in
  let words = max 1 ((n + bpw - 1) / bpw) in
  { ids; index; words; rows = Array.init n (fun _ -> Array.make words 0) }

let create us = of_ids (Array.of_list (Int_set.elements us))

let copy t = { t with rows = Array.map Array.copy t.rows }

let same_universe t1 t2 =
  t1.ids == t2.ids
  || (Array.length t1.ids = Array.length t2.ids
     && Array.for_all2 ( = ) t1.ids t2.ids)

let idx_exn t what v =
  match idx_of_id t v with
  | Some i -> i
  | None -> invalid_arg (Fmt.str "Bitrel.%s: node %d outside the universe" what v)

let set_bit row j = row.(j / bpw) <- row.(j / bpw) lor (1 lsl (j mod bpw))

let get_bit row j = row.(j / bpw) land (1 lsl (j mod bpw)) <> 0

let add t a b = set_bit t.rows.(idx_exn t "add" a) (idx_exn t "add" b)

let mem t a b =
  match (idx_of_id t a, idx_of_id t b) with
  | Some i, Some j -> get_bit t.rows.(i) j
  | _ -> false

let cardinal t =
  let n = ref 0 in
  Array.iter (fun row -> Array.iter (fun w -> n := !n + popcount w) row) t.rows;
  !n

let is_empty t = Array.for_all (fun row -> Array.for_all (( = ) 0) row) t.rows

(* Iterate the set bits of [row], ascending, as compact indices. *)
let iter_row_bits f row =
  Array.iteri
    (fun w bits ->
      let base = w * bpw in
      let bits = ref bits in
      while !bits <> 0 do
        f (base + ntz !bits);
        bits := !bits land (!bits - 1)
      done)
    row

let iter f t =
  Array.iteri
    (fun i row -> iter_row_bits (fun j -> f t.ids.(i) t.ids.(j)) row)
    t.rows

let fold f t acc =
  let acc = ref acc in
  iter (fun a b -> acc := f a b !acc) t;
  !acc

let to_list t = List.rev (fold (fun a b acc -> (a, b) :: acc) t [])

let equal t1 t2 =
  same_universe t1 t2 && Array.for_all2 (fun r1 r2 -> Array.for_all2 ( = ) r1 r2) t1.rows t2.rows

let union_into ~into t =
  if not (same_universe into t) then
    invalid_arg "Bitrel.union_into: different universes";
  Array.iteri
    (fun i row ->
      let dst = into.rows.(i) in
      Array.iteri (fun w bits -> dst.(w) <- dst.(w) lor bits) row)
    t.rows

(* Universe growth for the incremental monitor: appended ids sort after
   every existing id, so existing compact indices (and therefore existing
   bit positions) survive unchanged and rows copy with one blit each. *)
let extend t new_ids =
  let n_old = Array.length t.ids in
  let n_new = Array.length new_ids in
  if n_new = 0 then copy t
  else begin
    for i = 1 to n_new - 1 do
      if new_ids.(i - 1) >= new_ids.(i) then
        invalid_arg "Bitrel.extend: ids must be strictly increasing"
    done;
    if n_old > 0 && new_ids.(0) <= t.ids.(n_old - 1) then
      invalid_arg "Bitrel.extend: ids must exceed the existing universe";
    let ids = Array.append t.ids new_ids in
    let n = n_old + n_new in
    let index =
      let span = ids.(n - 1) - ids.(0) + 1 in
      if span <= (4 * n) + 1024 then begin
        let map = Array.make span (-1) in
        Array.iteri (fun i v -> map.(v - ids.(0)) <- i) ids;
        Direct { off = ids.(0); map }
      end
      else begin
        let tbl = Hashtbl.create (max 16 n) in
        Array.iteri (fun i v -> Hashtbl.replace tbl v i) ids;
        Table tbl
      end
    in
    let words = max 1 ((n + bpw - 1) / bpw) in
    let rows =
      Array.init n (fun i ->
          let row = Array.make words 0 in
          if i < n_old then Array.blit t.rows.(i) 0 row 0 t.words;
          row)
    in
    { ids; index; words; rows }
  end

let restrict ~keep t =
  let r = create (Int_set.filter keep (universe t)) in
  iter (fun a b -> if keep a && keep b then add r a b) t;
  r

(* ------------------------------------------------------------------ *)
(* Tarjan SCC (iterative), over compact indices.                       *)
(* ------------------------------------------------------------------ *)

(* Returns [comp_of] (compact index -> component number) and the component
   count.  Components are numbered in completion order, so every component
   reachable from component [c] has a number strictly below [c] — i.e.
   ascending component number is reverse topological (sinks first). *)
let scc_condensation t =
  let n = size t in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp_of = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomps = ref 0 in
  (* Explicit DFS stack: (node, saved word index, saved bits) frames are
     emulated by re-scanning from a per-node cursor over the successor
     row.  The cursor stores the next bit position to examine. *)
  let cursor = Array.make n 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let dfs = ref [ root ] in
      index.(root) <- !counter;
      lowlink.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      cursor.(root) <- 0;
      while !dfs <> [] do
        let v = List.hd !dfs in
        let row = t.rows.(v) in
        (* Find the next unvisited successor at or after the cursor. *)
        let next = ref (-1) in
        let j = ref cursor.(v) in
        while !next < 0 && !j < n do
          let w = !j / bpw in
          let bits = row.(w) lsr (!j mod bpw) in
          if bits = 0 then j := (w + 1) * bpw
          else begin
            let cand = !j + ntz bits in
            if cand >= n then j := n
            else begin
              cursor.(v) <- cand + 1;
              if index.(cand) < 0 then next := cand
              else begin
                if on_stack.(cand) then
                  lowlink.(v) <- min lowlink.(v) index.(cand);
                j := cand + 1
              end
            end
          end
        done;
        match !next with
        | -1 ->
          (* v is finished. *)
          dfs := List.tl !dfs;
          (match !dfs with
          | parent :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            let c = !ncomps in
            incr ncomps;
            let rec pop () =
              match !stack with
              | [] -> ()
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp_of.(w) <- c;
                if w <> v then pop ()
            in
            pop ()
          end
        | w ->
          index.(w) <- !counter;
          lowlink.(w) <- !counter;
          incr counter;
          stack := w :: !stack;
          on_stack.(w) <- true;
          cursor.(w) <- 0;
          dfs := w :: !dfs
      done
    end
  done;
  (comp_of, !ncomps)

(* Purdom-style closure: condense into SCCs, accumulate reach sets as bit
   rows in reverse topological order with word-parallel ORs, then expand
   component reach sets back onto their member rows. *)
let transitive_closure t =
  let n = size t in
  let words = t.words in
  let comp_of, ncomps = scc_condensation t in
  (* Per component: member mask, cyclicity, reach set (node-bit space).
     Masks and reach sets live in two flat backing arrays ([c * words ..])
     rather than one small array per component — the allocator, not the
     bit-twiddling, dominates on small universes. *)
  let members = Array.make (ncomps * words) 0 in
  let csize = Array.make ncomps 0 in
  let cyclic = Array.make ncomps false in
  for v = 0 to n - 1 do
    let c = comp_of.(v) in
    let k = (c * words) + (v / bpw) in
    members.(k) <- members.(k) lor (1 lsl (v mod bpw));
    csize.(c) <- csize.(c) + 1;
    if get_bit t.rows.(v) v then cyclic.(c) <- true
  done;
  for c = 0 to ncomps - 1 do
    if csize.(c) > 1 then cyclic.(c) <- true
  done;
  let comp_members = Array.make ncomps [] in
  for v = n - 1 downto 0 do
    comp_members.(comp_of.(v)) <- v :: comp_members.(comp_of.(v))
  done;
  let reach = Array.make (ncomps * words) 0 in
  (* stamp.(d) = c marks successor component d as already merged into c. *)
  let stamp = Array.make ncomps (-1) in
  (* Ascending component number is reverse topological order: successors of
     a component always carry smaller numbers and are thus already done. *)
  for c = 0 to ncomps - 1 do
    let cb = c * words in
    List.iter
      (fun v ->
        iter_row_bits
          (fun w ->
            let d = comp_of.(w) in
            if d <> c && stamp.(d) <> c then begin
              stamp.(d) <- c;
              let db = d * words in
              for k = 0 to words - 1 do
                reach.(cb + k) <-
                  reach.(cb + k) lor members.(db + k) lor reach.(db + k)
              done
            end)
          t.rows.(v))
      comp_members.(c);
    if cyclic.(c) then
      for k = 0 to words - 1 do
        reach.(cb + k) <- reach.(cb + k) lor members.(cb + k)
      done
  done;
  let rows = Array.init n (fun v -> Array.sub reach (comp_of.(v) * words) words) in
  { t with rows }

(* ------------------------------------------------------------------ *)
(* Cycle detection and topological sort                                *)
(* ------------------------------------------------------------------ *)

let find_cycle t =
  let n = size t in
  let colour = Array.make n 0 (* 0 white, 1 grey, 2 black *) in
  let parent = Array.make n (-1) in
  let cursor = Array.make n 0 in
  let result = ref None in
  let root = ref 0 in
  while !result = None && !root < n do
    if colour.(!root) = 0 then begin
      let dfs = ref [ !root ] in
      colour.(!root) <- 1;
      cursor.(!root) <- 0;
      while !result = None && !dfs <> [] do
        let v = List.hd !dfs in
        let row = t.rows.(v) in
        let next = ref (-1) in
        let j = ref cursor.(v) in
        while !result = None && !next < 0 && !j < n do
          let w = !j / bpw in
          let bits = row.(w) lsr (!j mod bpw) in
          if bits = 0 then j := (w + 1) * bpw
          else begin
            let cand = !j + ntz bits in
            if cand >= n then j := n
            else begin
              cursor.(v) <- cand + 1;
              match colour.(cand) with
              | 0 -> next := cand
              | 1 ->
                (* Back edge v -> cand: reconstruct cand -> ... -> v. *)
                let rec walk acc u =
                  if u = cand then u :: acc else walk (u :: acc) parent.(u)
                in
                result := Some (List.map (fun i -> t.ids.(i)) (walk [] v))
              | _ -> j := cand + 1
            end
          end
        done;
        if !result = None then
          match !next with
          | -1 ->
            colour.(v) <- 2;
            dfs := List.tl !dfs
          | w ->
            parent.(w) <- v;
            colour.(w) <- 1;
            cursor.(w) <- 0;
            dfs := w :: !dfs
      done
    end;
    incr root
  done;
  !result

let is_acyclic t = find_cycle t = None

(* Kahn's algorithm with a frontier bitset; the minimum compact index is
   extracted first, and compaction preserves identifier order, so ties
   break by ascending external identifier exactly like [Rel.topo_sort]. *)
let topo_sort t =
  let n = size t in
  let words = t.words in
  let indeg = Array.make n 0 in
  Array.iter
    (fun row -> iter_row_bits (fun j -> indeg.(j) <- indeg.(j) + 1) row)
    t.rows;
  let frontier = Array.make words 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then set_bit frontier v
  done;
  let acc = ref [] in
  let count = ref 0 in
  let rec min_bit w =
    if w >= words then -1
    else if frontier.(w) <> 0 then (w * bpw) + ntz frontier.(w)
    else min_bit (w + 1)
  in
  let rec go () =
    let v = min_bit 0 in
    if v >= 0 && v < n then begin
      frontier.(v / bpw) <- frontier.(v / bpw) land lnot (1 lsl (v mod bpw));
      acc := t.ids.(v) :: !acc;
      incr count;
      iter_row_bits
        (fun w ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then set_bit frontier w)
        t.rows.(v);
      go ()
    end
  in
  go ();
  if !count = n then Some (List.rev !acc) else None

let quotient ~universe cls t =
  let q = create universe in
  iter
    (fun a b ->
      let a' = cls a and b' = cls b in
      if a' <> b' then add q a' b')
    t;
  q

let pp ppf t =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any "->") int int))
    (to_list t)
