(** Incremental topological order with strongly-connected-component
    maintenance — the O(δ)-per-edge kernel of the monitor's append path.

    A {!t} holds a growing directed graph over dense node indices
    [0 .. n_nodes t - 1] and maintains, across {!add_edge} calls, a
    union-find contraction of its strongly connected components together
    with a valid topological order of the condensation (Pearce–Kelly:
    inserting an edge reorders only the representatives inside the
    affected key window, discovered by a forward and a backward search
    bounded by the window).  Inserting an edge that closes a cycle
    contracts every representative on a path between its endpoints into
    one component in the same pass; the structure keeps answering order
    and acyclicity queries afterwards, which is what lets the engine
    report {e which} cluster went cyclic without re-running a batch
    reduction.

    Nodes only accumulate and edges are never removed: the monitor's
    extension contract (relations only grow) is the intended regime.
    Duplicate edge insertions are accepted and idempotent for the order
    and component state.  Values are mutable and single-domain. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty graph; [capacity] pre-sizes the node arrays. *)

val n_nodes : t -> int

val n_edges : t -> int
(** Inserted edge count, duplicates included. *)

val resident_words : t -> int
(** Approximate heap words held by the backing arrays (adjacency
    vectors, order/union-find state, search scratch) — the cheap
    memory-accounting probe for engine introspection. *)

val ensure_nodes : t -> int -> unit
(** Grow the node universe to at least the given count; fresh nodes are
    isolated and ordered after every existing one. *)

val add_node : t -> unit

val add_edge : t -> int -> int -> unit
(** [add_edge t a b] inserts a -> b, restoring the maintained order (and
    contracting a component when the edge closes a cycle) in time
    proportional to the affected region.  Raises [Invalid_argument] when
    either node is outside the universe. *)

val rep : t -> int -> int
(** Union-find representative of the node's component. *)

val same_component : t -> int -> int -> bool

val component : t -> int -> int list
(** Members of the node's component. *)

val acyclic : t -> bool
(** O(1): no component contains a cycle (a multi-node component or a
    self-loop). *)

val pos : t -> int -> int
(** The maintained order key of the node's component: distinct across
    components, and for every inserted edge (a, b) spanning two
    components, [pos t a < pos t b].  When {!acyclic} holds, sorting any
    node subset by [pos] therefore yields a linear extension of the
    inserted edges — the monitor's O(k log k) witness path. *)

val find_cycle : t -> int list option
(** Some cycle [n1 -> ... -> nk -> n1] over inserted edges, or [None]
    exactly when {!acyclic}. *)

val topo_sort : t -> int list option
(** Canonical Kahn sort of the whole node universe with ascending-index
    tie-breaks — equal to [Bitrel.topo_sort] over the same dense universe
    and pairs, [None] on a cycle.  O(n²/8) scratch; test and
    witness-canonicalization path, not the append path. *)
