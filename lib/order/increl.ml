(* Incremental topological order with strongly-connected-component
   maintenance — the Pearce–Kelly algorithm extended with union-find
   contraction, so the structure answers "is this graph still acyclic,
   and in what order?" in time proportional to the affected region of
   each inserted edge rather than to the whole graph.

   Invariants, with [rep v] the union-find representative of [v]:
   - the contracted graph (nodes = representatives, edges mapped through
     [rep]) is the condensation of the inserted edge set, so it is acyclic
     up to self-loops on representatives marked cyclic;
   - [ord] assigns every representative a distinct integer key that is a
     valid topological order of the condensation: for every inserted edge
     (a, b) with [rep a <> rep b], [ord (rep a) < ord (rep b)].

   On [add_edge a b] with [ord (rep b) < ord (rep a)] the affected region
   is the key window [[ord (rep b), ord (rep a)]]: a forward search from
   [rep b] and a backward search from [rep a], both confined to the
   window, discover exactly the representatives whose keys must move (the
   current order is valid, so keys increase strictly along any path — a
   path between the endpoints cannot leave the window).  If the searches
   meet, every representative lying on a path b ->* a (their
   intersection) is contracted into one component; the discovered keys
   are then redistributed — backward side first, contracted component
   next, forward side last, each side keeping its relative order — which
   restores the invariant while touching no key outside the region
   (correctness: backward nodes only move down, forward nodes only move
   up, and any neighbour of a moved node either lies outside the key
   window or was itself discovered). *)

type t = {
  mutable n : int; (* active nodes 0 .. n-1 *)
  mutable cap : int;
  (* Adjacency as append-only edge vectors ([out_e.(v)] valid up to
     [out_n.(v)]): the searches iterate successor lists of the affected
     region only, so edge vectors beat bit rows here — O(edges) memory
     and no full-row scans on sparse graphs. *)
  mutable out_e : int array array;
  mutable out_n : int array;
  mutable in_e : int array array;
  mutable in_n : int array;
  mutable uf : int array; (* union-find parent, path-halving *)
  mutable rank : int array;
  mutable nxt : int array; (* circular member list within each component *)
  mutable ord : int array; (* representative -> order key *)
  mutable key : int; (* next fresh key *)
  mutable cyc : Bytes.t; (* per representative: component contains a cycle *)
  mutable n_cyclic : int;
  mutable stamp_f : int array; (* forward-search visit marks, epoch-based *)
  mutable stamp_b : int array;
  mutable epoch : int;
  mutable edges : int;
  (* Scratch for the searches: DFS stack and the two discovered sets. *)
  mutable stk : int array;
  mutable stk_n : int;
  mutable fwd : int array;
  mutable fwd_n : int;
  mutable bwd : int array;
  mutable bwd_n : int;
}

let create ?(capacity = 16) () =
  let cap = max 1 capacity in
  {
    n = 0;
    cap;
    out_e = Array.make cap [||];
    out_n = Array.make cap 0;
    in_e = Array.make cap [||];
    in_n = Array.make cap 0;
    uf = Array.make cap 0;
    rank = Array.make cap 0;
    nxt = Array.make cap 0;
    ord = Array.make cap 0;
    key = 0;
    cyc = Bytes.make cap '\000';
    n_cyclic = 0;
    stamp_f = Array.make cap 0;
    stamp_b = Array.make cap 0;
    epoch = 0;
    edges = 0;
    stk = Array.make 64 0;
    stk_n = 0;
    fwd = Array.make 64 0;
    fwd_n = 0;
    bwd = Array.make 64 0;
    bwd_n = 0;
  }

let n_nodes t = t.n

let n_edges t = t.edges

let resident_words t =
  let nested a =
    Array.fold_left (fun acc (v : int array) -> acc + Array.length v + 1) 0 a
  in
  nested t.out_e + nested t.in_e
  + Array.length t.out_n
  + Array.length t.in_n + Array.length t.uf + Array.length t.rank
  + Array.length t.nxt + Array.length t.ord
  + ((Bytes.length t.cyc + 7) / 8)
  + Array.length t.stamp_f + Array.length t.stamp_b + Array.length t.stk
  + Array.length t.fwd + Array.length t.bwd

let grow t want =
  let cap = ref t.cap in
  while !cap < want do
    cap := 2 * !cap
  done;
  let cap = !cap in
  let extend_arr a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.cap;
    b
  in
  t.out_e <- extend_arr t.out_e [||];
  t.out_n <- extend_arr t.out_n 0;
  t.in_e <- extend_arr t.in_e [||];
  t.in_n <- extend_arr t.in_n 0;
  t.uf <- extend_arr t.uf 0;
  t.rank <- extend_arr t.rank 0;
  t.nxt <- extend_arr t.nxt 0;
  t.ord <- extend_arr t.ord 0;
  t.stamp_f <- extend_arr t.stamp_f 0;
  t.stamp_b <- extend_arr t.stamp_b 0;
  let c = Bytes.make cap '\000' in
  Bytes.blit t.cyc 0 c 0 t.cap;
  t.cyc <- c;
  t.cap <- cap

let ensure_nodes t n =
  if n > t.cap then grow t n;
  while t.n < n do
    let v = t.n in
    t.uf.(v) <- v;
    t.rank.(v) <- 0;
    t.nxt.(v) <- v;
    t.ord.(v) <- t.key;
    t.key <- t.key + 1;
    t.n <- t.n + 1
  done

let add_node t = ensure_nodes t (t.n + 1)

let rec find t v =
  let p = t.uf.(v) in
  if p = v then v
  else begin
    let g = t.uf.(p) in
    t.uf.(v) <- g;
    if g = p then p else find t g
  end

let rep = find

let same_component t a b = find t a = find t b

let acyclic t = t.n_cyclic = 0

let pos t v = t.ord.(find t v)

let push_adj e n_arr v x =
  let len = n_arr.(v) in
  let arr = e.(v) in
  let arr =
    if len >= Array.length arr then begin
      let b = Array.make (max 4 (2 * Array.length arr)) 0 in
      Array.blit arr 0 b 0 len;
      e.(v) <- b;
      b
    end
    else arr
  in
  arr.(len) <- x;
  n_arr.(v) <- len + 1

let mark_cyclic t r =
  if Bytes.get t.cyc r = '\000' then begin
    Bytes.set t.cyc r '\001';
    t.n_cyclic <- t.n_cyclic + 1
  end

let push_stk t v =
  if t.stk_n >= Array.length t.stk then begin
    let b = Array.make (2 * Array.length t.stk) 0 in
    Array.blit t.stk 0 b 0 t.stk_n;
    t.stk <- b
  end;
  t.stk.(t.stk_n) <- v;
  t.stk_n <- t.stk_n + 1

let push_fwd t v =
  if t.fwd_n >= Array.length t.fwd then begin
    let b = Array.make (2 * Array.length t.fwd) 0 in
    Array.blit t.fwd 0 b 0 t.fwd_n;
    t.fwd <- b
  end;
  t.fwd.(t.fwd_n) <- v;
  t.fwd_n <- t.fwd_n + 1

let push_bwd t v =
  if t.bwd_n >= Array.length t.bwd then begin
    let b = Array.make (2 * Array.length t.bwd) 0 in
    Array.blit t.bwd 0 b 0 t.bwd_n;
    t.bwd <- b
  end;
  t.bwd.(t.bwd_n) <- v;
  t.bwd_n <- t.bwd_n + 1

(* Search over representatives: neighbours of a component are the mapped
   adjacency entries of all its members (circular list from the
   representative). *)
let search t ~forward ~start ~lo ~hi ~ep =
  let stamp = if forward then t.stamp_f else t.stamp_b in
  t.stk_n <- 0;
  stamp.(start) <- ep;
  push_stk t start;
  while t.stk_n > 0 do
    t.stk_n <- t.stk_n - 1;
    let r = t.stk.(t.stk_n) in
    if forward then push_fwd t r else push_bwd t r;
    let m = ref r in
    let continue = ref true in
    while !continue do
      let v = !m in
      let e = if forward then t.out_e.(v) else t.in_e.(v) in
      let len = if forward then t.out_n.(v) else t.in_n.(v) in
      for k = 0 to len - 1 do
        let x = find t e.(k) in
        if stamp.(x) <> ep && t.ord.(x) >= lo && t.ord.(x) <= hi then begin
          stamp.(x) <- ep;
          push_stk t x
        end
      done;
      m := t.nxt.(v);
      if !m = r then continue := false
    done
  done

let add_edge t a b =
  if a < 0 || a >= t.n || b < 0 || b >= t.n then
    invalid_arg
      (Printf.sprintf "Increl.add_edge: (%d, %d) outside 0..%d" a b (t.n - 1));
  push_adj t.out_e t.out_n a b;
  push_adj t.in_e t.in_n b a;
  t.edges <- t.edges + 1;
  let ra = find t a and rb = find t b in
  if ra = rb then mark_cyclic t ra
  else if t.ord.(ra) < t.ord.(rb) then ()
  else begin
    let lo = t.ord.(rb) and hi = t.ord.(ra) in
    t.epoch <- t.epoch + 1;
    let ep = t.epoch in
    t.fwd_n <- 0;
    t.bwd_n <- 0;
    search t ~forward:true ~start:rb ~lo ~hi ~ep;
    let cycle = t.stamp_f.(ra) = ep in
    search t ~forward:false ~start:ra ~lo ~hi ~ep;
    (* The two discovered sets overlap exactly on the representatives
       lying on a b ->* a path; with the new edge a -> b those form one
       strongly connected component. *)
    let base = ref (-1) in
    if cycle then begin
      for i = 0 to t.fwd_n - 1 do
        let r = t.fwd.(i) in
        if t.stamp_b.(r) = ep then
          if !base < 0 || t.rank.(r) > t.rank.(!base) then base := r
      done;
      let base = !base in
      for i = 0 to t.fwd_n - 1 do
        let r = t.fwd.(i) in
        if t.stamp_b.(r) = ep && r <> base then begin
          if Bytes.get t.cyc r = '\001' then begin
            Bytes.set t.cyc r '\000';
            t.n_cyclic <- t.n_cyclic - 1
          end;
          t.uf.(r) <- base;
          (* Splice the two circular member lists in O(1). *)
          let tmp = t.nxt.(base) in
          t.nxt.(base) <- t.nxt.(r);
          t.nxt.(r) <- tmp
        end
      done;
      t.rank.(base) <- t.rank.(base) + 1;
      mark_cyclic t base
    end;
    let base = !base in
    (* Redistribute the discovered keys: backward-only representatives
       first (they only move down), the contracted component next, the
       forward-only ones last (they only move up), each side in its old
       relative order. *)
    let dminus =
      let a = Array.make t.bwd_n 0 and j = ref 0 in
      for i = 0 to t.bwd_n - 1 do
        let r = t.bwd.(i) in
        if t.stamp_f.(r) <> ep then begin
          a.(!j) <- r;
          incr j
        end
      done;
      Array.sub a 0 !j
    in
    let dplus =
      let a = Array.make t.fwd_n 0 and j = ref 0 in
      for i = 0 to t.fwd_n - 1 do
        let r = t.fwd.(i) in
        if t.stamp_b.(r) <> ep then begin
          a.(!j) <- r;
          incr j
        end
      done;
      Array.sub a 0 !j
    in
    let pool =
      let a = Array.make (t.fwd_n + Array.length dminus) 0 in
      for i = 0 to t.fwd_n - 1 do
        a.(i) <- t.ord.(t.fwd.(i))
      done;
      Array.iteri (fun i r -> a.(t.fwd_n + i) <- t.ord.(r)) dminus;
      Array.sort compare a;
      a
    in
    let byord r r' = compare t.ord.(r) t.ord.(r') in
    Array.sort byord dminus;
    Array.sort byord dplus;
    let np = Array.length pool in
    let nplus = Array.length dplus in
    Array.iteri (fun i r -> t.ord.(r) <- pool.(i)) dminus;
    Array.iteri (fun i r -> t.ord.(r) <- pool.(np - nplus + i)) dplus;
    if cycle then t.ord.(base) <- pool.(Array.length dminus)
  end

(* Members of [v]'s component, in member-list order starting at [v]. *)
let component t v =
  let acc = ref [ v ] in
  let m = ref t.nxt.(v) in
  while !m <> v do
    acc := !m :: !acc;
    m := t.nxt.(!m)
  done;
  List.rev !acc

let find_cycle t =
  if t.n_cyclic = 0 then None
  else begin
    (* First node whose component is cyclic. *)
    let v0 = ref (-1) in
    let v = ref 0 in
    while !v0 < 0 do
      if Bytes.get t.cyc (find t !v) = '\001' then v0 := !v else incr v
    done;
    let v0 = !v0 in
    let r = find t v0 in
    if t.nxt.(v0) = v0 then Some [ v0 ] (* singleton: a self-loop *)
    else begin
      (* Strongly connected, so a DFS over intra-component edges from [v0]
         meets an edge back into [v0]; the parent chain closes the cycle. *)
      t.epoch <- t.epoch + 1;
      let ep = t.epoch in
      let parent = Hashtbl.create 16 in
      t.stk_n <- 0;
      t.stamp_f.(v0) <- ep;
      push_stk t v0;
      let result = ref None in
      while !result = None && t.stk_n > 0 do
        t.stk_n <- t.stk_n - 1;
        let u = t.stk.(t.stk_n) in
        let k = ref 0 in
        while !result = None && !k < t.out_n.(u) do
          let x = t.out_e.(u).(!k) in
          incr k;
          if x = v0 then begin
            let rec walk acc w =
              if w = v0 then w :: acc else walk (w :: acc) (Hashtbl.find parent w)
            in
            result := Some (walk [] u)
          end
          else if find t x = r && t.stamp_f.(x) <> ep then begin
            t.stamp_f.(x) <- ep;
            Hashtbl.replace parent x u;
            push_stk t x
          end
        done
      done;
      !result
    end
  end

(* Canonical Kahn sort over the node graph, identical tie-breaks to
   [Bitrel.topo_sort] over the dense universe; test-path only (the hot
   path reads the maintained [pos] keys instead). *)
let topo_sort t =
  if t.n_cyclic > 0 then None
  else if t.n = 0 then Some []
  else begin
    let a = Arena.make ~rows:t.n ~cols:t.n in
    for v = 0 to t.n - 1 do
      for k = 0 to t.out_n.(v) - 1 do
        Arena.set a v t.out_e.(v).(k)
      done
    done;
    Arena.topo_sort a
  end
