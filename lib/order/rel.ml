open Ids

type t = Int_set.t Int_map.t
(* Adjacency: [a -> set of b with (a, b) in the relation].  Empty successor
   sets are never stored. *)

let empty = Int_map.empty

let is_empty = Int_map.is_empty

(* [find]/[Not_found] rather than [find_opt]: a probe must not allocate a
   [Some] box, because the monitor's delta recovery probes every operation
   of every schedule per append and the misses/hits would otherwise put an
   O(n) floor under the per-append garbage. *)
let succs r a = try Int_map.find a r with Not_found -> Int_set.empty

let add a b r =
  let s = succs r a in
  if Int_set.mem b s then r else Int_map.add a (Int_set.add b s) r

let remove a b r =
  match Int_map.find_opt a r with
  | None -> r
  | Some s ->
    let s' = Int_set.remove b s in
    if Int_set.is_empty s' then Int_map.remove a r else Int_map.add a s' r

let mem a b r = Int_set.mem b (succs r a)

let of_list l = List.fold_left (fun r (a, b) -> add a b r) empty l

let fold f r acc =
  Int_map.fold (fun a s acc -> Int_set.fold (fun b acc -> f a b acc) s acc) r acc

let iter f r = Int_map.iter (fun a s -> Int_set.iter (fun b -> f a b) s) r

let to_list r = List.rev (fold (fun a b acc -> (a, b) :: acc) r [])

let cardinal r = Int_map.fold (fun _ s n -> n + Int_set.cardinal s) r 0

let union r1 r2 =
  Int_map.union (fun _ s1 s2 -> Some (Int_set.union s1 s2)) r1 r2

let inter r1 r2 =
  Int_map.merge
    (fun _ s1 s2 ->
      match (s1, s2) with
      | Some s1, Some s2 ->
        let s = Int_set.inter s1 s2 in
        if Int_set.is_empty s then None else Some s
      | _ -> None)
    r1 r2

let diff r1 r2 =
  Int_map.merge
    (fun _ s1 s2 ->
      match (s1, s2) with
      | Some s1, Some s2 ->
        let s = Int_set.diff s1 s2 in
        if Int_set.is_empty s then None else Some s
      | Some s1, None -> Some s1
      | None, _ -> None)
    r1 r2

let subset r1 r2 =
  Int_map.for_all (fun a s1 -> Int_set.subset s1 (succs r2 a)) r1

let equal r1 r2 = Int_map.equal Int_set.equal r1 r2

let preds r b =
  Int_map.fold
    (fun a s acc -> if Int_set.mem b s then Int_set.add a acc else acc)
    r Int_set.empty

let inverse r =
  (* One pass over the pairs: the predecessors of every node at once.
     [succs (inverse r) b] is [preds r b], so a caller that probes
     predecessors of more than one node should invert once instead of
     paying the O(size) scan of [preds] per probe. *)
  Int_map.fold
    (fun a s acc ->
      Int_set.fold
        (fun b acc ->
          Int_map.update b
            (function
              | Some pre -> Some (Int_set.add a pre)
              | None -> Some (Int_set.singleton a))
            acc)
        s acc)
    r Int_map.empty

let filter f r =
  Int_map.filter_map
    (fun a s ->
      let s' = Int_set.filter (fun b -> f a b) s in
      if Int_set.is_empty s' then None else Some s')
    r

let restrict ~keep r = filter (fun a b -> keep a && keep b) r

let map_nodes f r =
  fold
    (fun a b acc ->
      let a' = f a and b' = f b in
      if a' = b' then acc else add a' b' acc)
    r empty

let nodes r =
  Int_map.fold
    (fun a s acc -> Int_set.add a (Int_set.union s acc))
    r Int_set.empty

let reachable r start =
  let rec go seen = function
    | [] -> seen
    | n :: stack ->
      let fresh = Int_set.diff (succs r n) seen in
      go (Int_set.union seen fresh) (Int_set.elements fresh @ stack)
  in
  let init = succs r start in
  go init (Int_set.elements init)

(* --- dense-representation boundary ---------------------------------- *)

let to_bitrel ?(universe = Int_set.empty) r =
  let b = Bitrel.create (Int_set.union universe (nodes r)) in
  iter (fun x y -> Bitrel.add b x y) r;
  b

let of_bitrel b =
  (* [Bitrel.iter] visits pairs in ascending lexicographic order, so the
     successor set of each node arrives as one sorted run. *)
  let m = ref Int_map.empty in
  let cur_a = ref min_int and cur = ref [] in
  let flush () =
    match !cur with
    | [] -> ()
    | l -> m := Int_map.add !cur_a (Int_set.of_list (List.rev l)) !m
  in
  Bitrel.iter
    (fun a b' ->
      if a <> !cur_a then begin
        flush ();
        cur_a := a;
        cur := []
      end;
      cur := b' :: !cur)
    b;
  flush ();
  !m

let transitive_closure r =
  (* The closure itself runs in the dense kernel (SCC condensation +
     word-parallel row-OR, see {!Bitrel.transitive_closure}); only the
     conversion at the boundary touches the persistent representation. *)
  if Int_map.is_empty r then r
  else of_bitrel (Bitrel.transitive_closure (to_bitrel r))

let is_transitive r =
  try
    iter
      (fun a b ->
        Int_set.iter (fun c -> if not (mem a c r) then raise Exit) (succs r b))
      r;
    true
  with Exit -> false

let irreflexive r = Int_map.for_all (fun a s -> not (Int_set.mem a s)) r

let transitive_reduction r =
  (* Drop (a, b) when b is reachable from a through some intermediate
     successor; on a DAG this yields the unique minimal reduction. *)
  let closure = transitive_closure r in
  filter
    (fun a b ->
      not
        (Int_set.exists
           (fun m -> m <> b && Int_set.mem b (succs closure m))
           (succs r a)))
    r

(* Depth-first search for a cycle; colours: 0 = white, 1 = grey, 2 = black. *)
let find_cycle r =
  let colour = Hashtbl.create 64 in
  let col v = match Hashtbl.find_opt colour v with Some c -> c | None -> 0 in
  let parent = Hashtbl.create 64 in
  let cycle = ref None in
  let rec dfs v =
    Hashtbl.replace colour v 1;
    Int_set.iter
      (fun w ->
        if !cycle = None then
          match col w with
          | 0 ->
            Hashtbl.replace parent w v;
            dfs w
          | 1 ->
            (* Found a back edge v -> w: reconstruct w -> ... -> v. *)
            let rec walk acc u = if u = w then u :: acc else walk (u :: acc) (Hashtbl.find parent u) in
            cycle := Some (walk [] v)
          | _ -> ())
      (succs r v);
    Hashtbl.replace colour v 2
  in
  Int_set.iter (fun v -> if !cycle = None && col v = 0 then dfs v) (nodes r);
  !cycle

let is_acyclic r = find_cycle r = None

let topo_sort ~nodes:universe r =
  let r = restrict ~keep:(fun v -> Int_set.mem v universe) r in
  (* Kahn's algorithm with a sorted frontier for determinism. *)
  let indeg = Hashtbl.create 64 in
  Int_set.iter (fun v -> Hashtbl.replace indeg v 0) universe;
  iter
    (fun _ b ->
      Hashtbl.replace indeg b (1 + Option.value ~default:0 (Hashtbl.find_opt indeg b)))
    r;
  let module Frontier = Set.Make (Int) in
  let frontier =
    Int_set.fold
      (fun v acc -> if Hashtbl.find indeg v = 0 then Frontier.add v acc else acc)
      universe Frontier.empty
  in
  let rec go frontier acc count =
    match Frontier.min_elt_opt frontier with
    | None -> if count = Int_set.cardinal universe then Some (List.rev acc) else None
    | Some v ->
      let frontier = Frontier.remove v frontier in
      let frontier =
        Int_set.fold
          (fun w acc ->
            let d = Hashtbl.find indeg w - 1 in
            Hashtbl.replace indeg w d;
            if d = 0 then Frontier.add w acc else acc)
          (succs r v) frontier
      in
      go frontier (v :: acc) (count + 1)
  in
  go frontier [] 0

let quotient cls r = map_nodes cls r

let total_on ns r =
  Int_set.for_all
    (fun a -> Int_set.for_all (fun b -> a = b || mem a b r || mem b a r) ns)
    ns

let pp ppf r =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any "->") int int))
    (to_list r)
