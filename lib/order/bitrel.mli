(** Dense bitset-backed relations over a compacted node universe.

    This is the performance kernel behind {!Rel}: a relation over a fixed,
    known universe of nodes, stored as one bit row per node ([Sys.int_size]
    adjacency bits per word).  The graph algorithms that dominate the
    Comp-C decision path — transitive closure, cycle detection,
    topological sorting, quotients — run word-parallel here, and the
    observed-order fixpoint of {!Repro_core.Observed} runs entirely in this
    representation, converting to the persistent {!Rel.t} only at the
    boundary (see [Rel.of_bitrel] / [Rel.to_bitrel]).

    Values are {e mutable} (in contrast to {!Rel.t}): [add] and
    [union_into] update in place; [copy] takes an independent snapshot.
    The universe of a value is fixed at creation; [add] outside it raises
    [Invalid_argument].

    A value must not be mutated from two domains concurrently; the batch
    drivers hand each domain its own values. *)

open Ids

type t

val create : Int_set.t -> t
(** The empty relation over the given universe.  Compaction preserves
    identifier order, so deterministic tie-breaks (ascending identifier)
    carry over from {!Rel}. *)

val of_ids : id array -> t
(** {!create} from a strictly increasing identifier array (raises
    [Invalid_argument] otherwise) — the allocation-free-universe path for
    hot callers that already hold the sorted node array. *)

val copy : t -> t

val size : t -> int
(** Number of universe nodes. *)

val universe : t -> Int_set.t

val id_of_idx : t -> int -> id
(** External identifier of a compact index (0-based, ascending). *)

val idx_of_id : t -> id -> int option

val add : t -> id -> id -> unit
(** In-place.  Raises [Invalid_argument] if either node is outside the
    universe. *)

val mem : t -> id -> id -> bool
(** [false] (rather than an error) when either node is outside the
    universe, matching [Rel.mem] on unknown nodes. *)

val cardinal : t -> int
(** Number of pairs (population count over all rows). *)

val is_empty : t -> bool

val iter : (id -> id -> unit) -> t -> unit
(** Ascending lexicographic order of external identifiers. *)

val fold : (id -> id -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> (id * id) list

val equal : t -> t -> bool
(** Same universe and same pairs. *)

val union_into : into:t -> t -> unit
(** Word-parallel in-place union.  Raises [Invalid_argument] when the
    universes differ. *)

val restrict : keep:(id -> bool) -> t -> t
(** Sub-relation (and sub-universe) induced by the nodes satisfying
    [keep]. *)

val extend : t -> id array -> t
(** [extend t ids] is a fresh relation over [universe t] enlarged with
    [ids] (strictly increasing, every one greater than the largest node of
    [t] — raises [Invalid_argument] otherwise), holding the same pairs.
    Because appended identifiers are larger than every existing one,
    compact indices of existing nodes are preserved and rows are copied
    word-wise; [t] itself is untouched, so a monitor can keep the previous
    value for rollback.  Cost: O(size · words). *)

val transitive_closure : t -> t
(** Smallest transitive super-relation, over the same universe: SCC
    condensation (Purdom), then word-parallel row-OR accumulation of reach
    sets in reverse topological order.  Self-pairs appear exactly for nodes
    on cycles, matching {!Rel.transitive_closure}. *)

val find_cycle : t -> id list option
(** Some cycle [n1 -> ... -> nk -> n1], or [None] when acyclic. *)

val is_acyclic : t -> bool

val topo_sort : t -> id list option
(** A linear extension over the {e whole} universe (isolated nodes
    included), or [None] on a cycle.  Ties break by ascending external
    identifier, so the output equals [Rel.topo_sort ~nodes:(universe t)]
    on the same pairs. *)

val quotient : universe:Int_set.t -> (id -> id) -> t -> t
(** Contract by a clustering function into a fresh relation over the given
    cluster universe; intra-cluster pairs are dropped.  Raises
    [Invalid_argument] if the function maps a pair outside [universe]. *)

val pp : Format.formatter -> t -> unit
