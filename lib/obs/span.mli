(** Causal spans: per-request trace trees over the monotonic clock.

    A span is a named, labeled wall-clock interval belonging to a {e
    trace} (one request) and linked to a parent span, so the spans of one
    request form a tree: frame decode → shard queue wait → engine append →
    verdict encode.  Spans complement the registry ({!Metrics}: what
    happens on average) and the flight recorder ({!Recorder}: what
    happened recently) with the third observability surface: where one
    particular request's time went.

    {b Collection model.}  A collector is single-writer: the transport
    loop and each shard worker domain own one each, and a quiescent
    reader combines them with {!drain} in a fixed (shard-index) order —
    the same input-order determinism discipline as [Metrics.merge] and
    [Recorder.absorb], so a parallel run's drained span list is
    reproducible.  Ids are minted per collector with the collector's
    [tag] in the high bits, so ids from different collectors never
    collide within a trace and no cross-domain coordination (or RNG) is
    needed.

    {b Sampling.}  Head-based: the keep/drop decision is a deterministic
    hash of the trace id tested against [rate], made once per trace —
    every collector a request crosses agrees on it without
    communicating.  {!start}/{!emit} on an unsampled trace return
    {!none}/0 after the hash test, recording nothing.

    {b Null.}  {!null} is permanently disabled: every recording operation
    returns after one branch without allocating, so hot paths may be
    instrumented unconditionally. *)

type t

val create : ?rate:float -> ?tag:int -> unit -> t
(** A fresh collector.  [rate] (default 1.0) is the head-sampling
    probability in [0,1]; [tag] (default 0, max 2^22-1) is OR-ed into the
    high bits of every minted id.  Raises [Invalid_argument] on values
    outside those ranges. *)

val null : t
(** The disabled collector: never samples, never records. *)

val enabled : t -> bool

val rate : t -> float

val length : t -> int
(** Spans recorded (and not yet drained away). *)

val fresh_trace : t -> int
(** Mint a new trace id (0 on a disabled collector — 0 is never a valid
    trace id, so it doubles as "no context"). *)

val sampled : t -> int -> bool
(** [sampled t trace]: the head-sampling decision for [trace] — false on
    a disabled collector, on trace id 0, and on hash-test failure. *)

(** {1 Recording} *)

type active
(** Handle to a started, not yet finished span. *)

val none : active
(** The dropped-span handle: {!finish} on it is a no-op, {!id} is 0.
    Returned by {!start} when the trace is not sampled. *)

val id : active -> int
(** The span id to parent children onto (0 for {!none}). *)

val start :
  t ->
  ?parent:int ->
  ?cat:string ->
  ?labels:Labels.t ->
  trace:int ->
  ts:float ->
  string ->
  active
(** Open a span at [ts] ({!Clock.now_wall} seconds).  [parent] is the
    enclosing span's id (0 = root of the trace). *)

val finish : t -> active -> ts:float -> unit
(** Close a started span.  A span never finished exports as zero-length. *)

val emit :
  t ->
  ?parent:int ->
  ?cat:string ->
  ?labels:Labels.t ->
  trace:int ->
  t0:float ->
  t1:float ->
  string ->
  int
(** Record a complete span in one call (both endpoints already known) and
    return its id, or 0 when the trace is not sampled. *)

(** {1 Ambient context}

    The owning domain's "request being executed right now", so layers
    below the request loop (the engine) can attach spans without every
    signature threading a context.  Single-writer like the collector
    itself: set before the nested call, cleared after. *)

val set_ctx : t -> trace:int -> parent:int -> unit

val clear_ctx : t -> unit

val ctx_trace : t -> int
(** 0 when no context is set. *)

val ctx_parent : t -> int

(** {1 Reading and combining} *)

type view = {
  v_trace : int;
  v_id : int;
  v_parent : int;  (** 0 = trace root. *)
  v_name : string;
  v_cat : string;
  v_labels : Labels.t;
  v_t0 : float;
  v_t1 : float;  (** = [v_t0] for spans never finished. *)
}

val spans : t -> view list
(** Recorded spans in recording order. *)

val drain : into:t -> t -> unit
(** [drain ~into src] moves every span of [src] (appended after [into]'s,
    preserving [src]'s recording order) and empties [src].  No-op when
    [into] is disabled.  Both collectors must be quiescent — call only
    when their owning domains are idle or joined. *)

(** {1 Export} *)

val export : t -> Trace.t -> unit
(** Emit every span as a Chrome async begin/end pair ([ph] "b"/"e") into
    a {!Trace} sink, grouped by trace id — one track per request in
    Perfetto, with span/parent ids and labels in [args]. *)

val to_json : t -> Json.t
(** The compact [spans/1] document:
    [{"schema":"spans/1","spans":[{"trace","span","parent"?,"name","cat",
    "start_us","dur_us","labels"?}]}] with ids as hex strings, spans in
    recording order. *)
