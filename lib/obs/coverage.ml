(* The path-coverage registry: every engine/monitor/reduction decision
   counter under a canonical, stable name.

   A point is (canonical key, metric name, required labels): a counter
   series contributes to the point when its decoded name matches and it
   carries every required label with the required value — extra labels
   (the server's [shard=i]) are summed away.  The point list is the
   contract: the exported key set never shrinks and never depends on
   which paths a run happened to hit, so a fuzzer can diff two dumps
   point-wise and steer toward the zeros. *)

let schema = "coverage/1"

let points : (string * string * (string * string) list) list =
  [
    (* Which append machinery decided each monitored advance. *)
    ("engine.append.path.initial", "monitor.append", [ ("path", "initial") ]);
    ("engine.append.path.fast", "monitor.append", [ ("path", "fast") ]);
    ("engine.append.path.delta", "monitor.append", [ ("path", "delta") ]);
    ("engine.append.path.kernel", "monitor.append", [ ("path", "kernel") ]);
    ("engine.append.path.full", "monitor.append", [ ("path", "full") ]);
    ("engine.appends", "monitor.appends", []);
    (* Bounded-memory streaming decisions. *)
    ("engine.truncations", "engine.truncations", []);
    ("engine.restores", "engine.restores", []);
    (* Level-by-level reduction decisions. *)
    ("reduction.checks", "compc.checks", []);
    ("reduction.steps", "compc.steps", []);
    ("reduction.accept", "compc.accept", []);
    ("reduction.reject", "compc.reject", []);
    ( "reduction.failure.front_not_cc",
      "compc.failure.front_not_cc",
      [] );
    ( "reduction.failure.no_calculation",
      "compc.failure.no_calculation",
      [] );
    ( "reduction.failure.intra_contradiction",
      "compc.failure.intra_contradiction",
      [] );
    (* Server request handling (summed across shards). *)
    ("serve.open", "serve.open", []);
    ("serve.append", "serve.append", []);
    ("serve.close", "serve.close", []);
  ]

let keys = List.map (fun (k, _, _) -> k) points

let matches labels required =
  List.for_all
    (fun (k, v) -> Labels.find k labels = Some v)
    required

let of_metrics m =
  let tally = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.replace tally k 0) keys;
  List.iter
    (fun (series_key, value) ->
      let name, labels = Labels.decode_series series_key in
      List.iter
        (fun (canonical, metric, required) ->
          if name = metric && matches labels required then
            Hashtbl.replace tally canonical
              (Hashtbl.find tally canonical + value))
        points)
    (Metrics.counters m);
  List.map (fun k -> (k, Hashtbl.find tally k)) keys

let to_json m =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "points",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (of_metrics m)) );
    ]
