(** The flight recorder: a bounded ring buffer of structured operational
    events, recorded unconditionally on the engine's and simulator's hot
    paths and dumped when something goes wrong.

    Unlike {!Trace} (unbounded, opt-in, for offline profiling), a recorder
    is sized for always-on production use: capacity is fixed at creation,
    the slots are preallocated, and recording a new event overwrites the
    oldest — memory is O(capacity) by construction, independent of stream
    length.  When a monitored stream is rejected, the retained tail is the
    violation's immediate operational prehistory and ships inside the
    evidence report.

    Events carry a monotonically increasing sequence number, a monotonic
    wall-clock timestamp ({!Clock.now_wall}), a severity, a category
    naming the emitting subsystem ([engine], [sim], [cli], ...), a name
    and a {!Labels.t} payload.

    The {!null} recorder is permanently disabled: {!record} returns after
    one load and branch without allocating, so hot paths are instrumented
    unconditionally and pay nothing when recording is off. *)

type severity = Debug | Info | Warn | Error

val severity_string : severity -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

type event = {
  seq : int;  (** 0-based position in the full stream, never reused. *)
  ts : float;  (** {!Clock.now_wall} seconds at record time. *)
  severity : severity;
  cat : string;
  name : string;
  labels : Labels.t;
}

type t

val default_capacity : int
(** 256 events. *)

val create : ?capacity:int -> unit -> t
(** A fresh recorder retaining the last [capacity] (default
    {!default_capacity}, must be [>= 1]) events. *)

val null : t
(** The disabled recorder: recording is a no-op, {!events} is always
    empty. *)

val enabled : t -> bool

val capacity : t -> int

(** {1 Recording} *)

val record :
  t -> ?severity:severity -> ?cat:string -> ?labels:Labels.t -> string -> unit
(** Record an event timestamped with {!Clock.now_wall}, evicting the
    oldest retained event when full.  Defaults: [Info], empty category,
    no labels. *)

val event :
  t ->
  ?severity:severity ->
  ?cat:string ->
  ?labels:Labels.t ->
  ts:float ->
  string ->
  unit
(** {!record} with a caller-supplied timestamp — used by {!absorb} and by
    subsystems that batch their own clock reads. *)

(** {1 Reading} *)

val total : t -> int
(** Events ever recorded (= the next sequence number). *)

val length : t -> int
(** Events currently retained: [min total capacity]. *)

val dropped : t -> int
(** Events evicted by the ring: [total - length]. *)

val events : t -> event list
(** The retained tail, oldest first. *)

val iter : (event -> unit) -> t -> unit

val absorb : into:t -> t -> unit
(** [absorb ~into src] replays [src]'s retained events into [into] —
    original timestamps, severities and payloads, fresh sequence numbers.
    No-op when [into] is disabled.  This is how per-worker recorders of a
    parallel run are drained back in input order. *)

val to_json : t -> Json.t
(** [{"capacity", "recorded", "dropped", "events": [{"seq", "ts",
    "severity", "cat", "name", "labels"?, "series"?}]}] — the
    flight-recorder dump.  A labeled event also carries ["series"], its
    canonical [Labels.series] encoding (label values escaped), so
    [Labels.decode_series] round-trips it from any dump, including the
    tail embedded in evidence reports. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one retained event per line, oldest first. *)
