(** Label sets: the dimensions of a labeled metric series or flight-recorder
    event, e.g. [monitor.append{path="fast"}].

    A label set is a canonical finite map from label keys to string values:
    keys are sorted, each key bound once, so structural {!equal} is set
    equality and {!encode} is injective.  Keys must match
    [[a-zA-Z_][a-zA-Z0-9_]*] (the Prometheus label-name grammar without the
    leading-[__] reserved forms); values are arbitrary strings, escaped on
    encoding.

    The encoded form [{k="v",k2="v2"}] appended to a metric name
    ({!series}) is how the metrics registry stores labeled series in its
    flat tables — one series per distinct (name, label set) — which keeps
    {!Metrics.merge}'s per-key semantics and the null-registry zero-cost
    guarantee unchanged.  {!decode_series} splits such a key back apart for
    the Prometheus exposition writer. *)

type t

val empty : t

val is_empty : t -> bool

val v : (string * string) list -> t
(** Build a label set; on duplicate keys the last binding wins.  Raises
    [Invalid_argument] on a key that does not match the label-name
    grammar. *)

val add : string -> string -> t -> t
(** [add k v t] binds [k] to [v], replacing any previous binding.  Raises
    [Invalid_argument] on an invalid key. *)

val to_list : t -> (string * string) list
(** Bindings in canonical (key-sorted) order. *)

val find : string -> t -> string option

val cardinal : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val union : t -> t -> t
(** [union a b]: every binding of [b], plus the bindings of [a] whose keys
    [b] does not mention (right bias). *)

val encode : t -> string
(** Canonical encoding: [""] for {!empty}, else [{k="v",...}] with keys
    sorted and values escaped (backslash, double quote, newline — the
    Prometheus label-value escapes). *)

val series : string -> t -> string
(** [series name t] is [name ^ encode t] — the registry key of the labeled
    series. *)

val decode_series : string -> string * t
(** Split a registry key back into (name, labels).  Keys without a
    well-formed canonical label suffix decode as (key, {!empty}). *)

val pp : Format.formatter -> t -> unit
