(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    A registry is a flat namespace of metrics created on first use, so
    instrumentation sites never need set-up code:

    {[
      let m = Metrics.create () in
      Metrics.incr m "sim.committed";
      Metrics.observe m "sim.latency" 3.7;
      Json.to_string (Metrics.to_json m)
    ]}

    The {!null} registry is permanently disabled: every recording operation
    returns immediately without allocating, so hot paths can be
    unconditionally instrumented and pay (one load and branch) nothing when
    metrics are off.

    Histograms use fixed upper-bound buckets ({!default_buckets} spans
    [1e-6 .. ~1e13] geometrically, fitting both sub-microsecond wall times
    and simulated-time latencies); percentile summaries (p50/p90/p99) are
    estimated by linear interpolation inside the covering bucket and
    clamped to the exact observed [min]/[max].

    Every recording and reading operation takes an optional {!Labels.t}:
    [incr m ~labels:(Labels.v [("path", "fast")]) "monitor.append"]
    records into the series [monitor.append{path="fast"}].  A labeled
    series is stored in the same flat tables under its canonical encoded
    key, so {!merge}, {!to_json} and the zero-cost null-registry guarantee
    are label-transparent; {!to_prometheus} decodes the keys back into
    native Prometheus series. *)

type t

val create : unit -> t
(** A fresh, enabled, empty registry. *)

val null : t
(** The disabled registry: all recording operations are no-ops, every
    reading operation sees an empty registry. *)

val enabled : t -> bool

(** {1 Recording} *)

val incr : t -> ?by:int -> ?labels:Labels.t -> string -> unit
(** Increment a counter (created at 0). *)

val set : t -> ?labels:Labels.t -> string -> float -> unit
(** Set a gauge. *)

val observe :
  t -> ?buckets:float array -> ?labels:Labels.t -> string -> float -> unit
(** Record a value into a histogram.  [buckets] (strictly increasing upper
    bounds) is honoured only when the histogram is first created; values
    above the last bound land in an implicit overflow bucket.  Labeled
    series of one name are distinct histograms and may in principle carry
    distinct buckets, but {!merge} and Prometheus convention both expect a
    family to share them. *)

val default_buckets : float array

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src]'s contents into [into]: counters add,
    gauges overwrite (last writer wins), histograms add bucket-wise.
    Raises [Invalid_argument] if both registries hold a histogram of the
    same name with different bucket bounds.  No-op when [into] is
    disabled.  This is how per-worker registries of a parallel run are
    combined back into the caller's registry. *)

(** {1 Reading} *)

val counter_value : t -> ?labels:Labels.t -> string -> int
(** Current value of a counter (0 when absent). *)

val counters : t -> (string * int) list
(** Every counter series as [(encoded key, value)], sorted by key —
    labeled series appear under their canonical [name{k="v"}] key
    ({!Labels.decode_series} splits them back apart).  This is the
    enumeration the {!Coverage} registry folds over. *)

val gauge_value : t -> ?labels:Labels.t -> string -> float option

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summary : t -> ?labels:Labels.t -> string -> summary option
(** Percentile summary of a histogram ([None] when absent or empty). *)

val percentile : t -> ?labels:Labels.t -> string -> float -> float option
(** [percentile m name q] estimates the [q]-quantile ([0 <= q <= 1]). *)

val to_json : t -> Json.t
(** Snapshot: [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {"count", "sum", "min", "max", "p50", "p90", "p99"}}}].  Keys are
    sorted (labeled series appear under their encoded key), so snapshots
    are stable across runs. *)

val to_prometheus : t -> string
(** The registry in Prometheus text exposition format (version 0.0.4):
    one [# TYPE] header per metric family, one line per labeled series,
    histograms as cumulative [_bucket{le=...}] series plus [_sum] and
    [_count].  Dotted registry names sanitize to underscore form
    ([monitor.append] -> [monitor_append]); families and series are
    sorted, so scrapes are stable across runs. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-metric-per-line dump (sorted). *)
