type histogram = {
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  on : bool;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    on = true;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let null =
  {
    on = false;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    histograms = Hashtbl.create 1;
  }

let enabled t = t.on

(* 1e-6 .. ~1.1e13 in 64 geometric steps of x2: wide enough for wall-clock
   seconds at the bottom and simulated-time latencies at the top. *)
let default_buckets =
  Array.init 64 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

(* Labeled series live in the same flat tables under their canonical
   encoded key [name{k="v",...}], so merge/read/export semantics need no
   label-aware cases; the key is built only after the [t.on] check, so the
   null registry stays allocation-free. *)
let key name labels =
  if Labels.is_empty labels then name else Labels.series name labels

let incr t ?(by = 1) ?(labels = Labels.empty) name =
  if t.on then
    let name = key name labels in
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t.counters name (ref by)

let set t ?(labels = Labels.empty) name v =
  if t.on then
    let name = key name labels in
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace t.gauges name (ref v)

let bucket_index bounds v =
  (* first index with v <= bounds.(i), or length bounds (overflow) *)
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe t ?(buckets = default_buckets) ?(labels = Labels.empty) name v =
  if t.on then begin
    let name = key name labels in
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
        let n = Array.length buckets in
        if n = 0 then invalid_arg "Metrics.observe: empty bucket array";
        for i = 1 to n - 1 do
          if buckets.(i) <= buckets.(i - 1) then
            invalid_arg "Metrics.observe: buckets must be strictly increasing"
        done;
        let h =
          {
            bounds = Array.copy buckets;
            counts = Array.make (n + 1) 0;
            h_count = 0;
            h_sum = 0.0;
            h_min = Float.infinity;
            h_max = Float.neg_infinity;
          }
        in
        Hashtbl.replace t.histograms name h;
        h
    in
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

(* Fold the contents of [src] into [into]: counters add, gauges overwrite,
   histograms with identical bounds add bucket-wise.  Used to combine the
   per-worker registries of a parallel run back into the caller's
   registry. *)
let merge ~into src =
  if into.on then begin
    Hashtbl.iter (fun k r -> incr into ~by:!r k) src.counters;
    Hashtbl.iter (fun k r -> set into k !r) src.gauges;
    Hashtbl.iter
      (fun k h ->
        match Hashtbl.find_opt into.histograms k with
        | None ->
          Hashtbl.replace into.histograms k
            { h with bounds = Array.copy h.bounds; counts = Array.copy h.counts }
        | Some dst ->
          if dst.bounds <> h.bounds then
            invalid_arg ("Metrics.merge: incompatible buckets for " ^ k);
          Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts;
          dst.h_count <- dst.h_count + h.h_count;
          dst.h_sum <- dst.h_sum +. h.h_sum;
          if h.h_min < dst.h_min then dst.h_min <- h.h_min;
          if h.h_max > dst.h_max then dst.h_max <- h.h_max)
      src.histograms
  end

let counter_value t ?(labels = Labels.empty) name =
  match Hashtbl.find_opt t.counters (key name labels) with
  | Some r -> !r
  | None -> 0

let gauge_value t ?(labels = Labels.empty) name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges (key name labels))

(* Estimate the q-quantile: find the bucket holding the ceil(q*count)-th
   observation, interpolate linearly between its bounds, clamp to the exact
   observed extremes (so single-valued histograms report that value). *)
let estimate h q =
  let target = Float.max 1.0 (Float.round (q *. float_of_int h.h_count)) in
  let n = Array.length h.bounds in
  let rec go i cum =
    if i > n then h.h_max
    else
      let cum' = cum +. float_of_int h.counts.(i) in
      if cum' >= target then
        if i = n then h.h_max
        else
          let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
          let hi = h.bounds.(i) in
          let frac =
            if h.counts.(i) = 0 then 1.0
            else (target -. cum) /. float_of_int h.counts.(i)
          in
          lo +. ((hi -. lo) *. frac)
      else go (i + 1) cum'
  in
  let raw = go 0 0.0 in
  Float.min h.h_max (Float.max h.h_min raw)

let percentile t ?(labels = Labels.empty) name q =
  match Hashtbl.find_opt t.histograms (key name labels) with
  | Some h when h.h_count > 0 -> Some (estimate h q)
  | _ -> None

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    p50 = estimate h 0.50;
    p90 = estimate h 0.90;
    p99 = estimate h 0.99;
  }

let summary t ?(labels = Labels.empty) name =
  match Hashtbl.find_opt t.histograms (key name labels) with
  | Some h when h.h_count > 0 -> Some (summary_of h)
  | _ -> None

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let to_json t =
  let counters =
    List.map (fun k -> (k, Json.Int (counter_value t k))) (sorted_keys t.counters)
  in
  let gauges =
    List.map
      (fun k -> (k, Json.Float (Option.get (gauge_value t k))))
      (sorted_keys t.gauges)
  in
  let histograms =
    List.filter_map
      (fun k ->
        match summary t k with
        | None -> None
        | Some s ->
          Some
            ( k,
              Json.Obj
                [
                  ("count", Json.Int s.count);
                  ("sum", Json.Float s.sum);
                  ("min", Json.Float s.min);
                  ("max", Json.Float s.max);
                  ("p50", Json.Float s.p50);
                  ("p90", Json.Float s.p90);
                  ("p99", Json.Float s.p99);
                ] ))
      (sorted_keys t.histograms)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

(* ---- Prometheus text exposition (version 0.0.4) ---- *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  The registry's dotted names
   ([monitor.append_wall_s]) sanitize by mapping every other character to
   an underscore. *)
let prom_name name =
  let name = if name = "" then "_" else name in
  String.concat ""
    (List.init (String.length name) (fun i ->
         match name.[i] with
         | ('a' .. 'z' | 'A' .. 'Z' | '_' | ':') as c -> String.make 1 c
         | ('0' .. '9') as c when i > 0 -> String.make 1 c
         | _ -> "_"))

(* Shortest float rendering that re-reads exactly, mirroring Json's. *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e16 then
    Printf.sprintf "%.1f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let prom_series buf name labels value =
  Buffer.add_string buf (prom_name name);
  Buffer.add_string buf (Labels.encode labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

(* Group the registry's flat keys by decoded base name so each family gets
   one TYPE header followed by its labeled series, keys sorted. *)
let families tbl =
  let by_name = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k v ->
      let name, labels = Labels.decode_series k in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_name name) in
      Hashtbl.replace by_name name ((labels, v) :: prev))
    tbl;
  Hashtbl.fold
    (fun name series acc ->
      (name, List.sort (fun (a, _) (b, _) -> Labels.compare a b) series) :: acc)
    by_name []
  |> List.sort compare

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let header name kind =
    Buffer.add_string buf ("# TYPE " ^ prom_name name ^ " " ^ kind ^ "\n")
  in
  List.iter
    (fun (name, series) ->
      header name "counter";
      List.iter
        (fun (labels, r) -> prom_series buf name labels (string_of_int !r))
        series)
    (families t.counters);
  List.iter
    (fun (name, series) ->
      header name "gauge";
      List.iter
        (fun (labels, r) -> prom_series buf name labels (prom_float !r))
        series)
    (families t.gauges);
  List.iter
    (fun (name, series) ->
      header name "histogram";
      List.iter
        (fun (labels, h) ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.bounds then prom_float h.bounds.(i)
                else "+Inf"
              in
              prom_series buf (name ^ "_bucket")
                (Labels.add "le" le labels)
                (string_of_int !cum))
            h.counts;
          prom_series buf (name ^ "_sum") labels (prom_float h.h_sum);
          prom_series buf (name ^ "_count") labels (string_of_int h.h_count))
        series)
    (families t.histograms);
  Buffer.contents buf

let pp ppf t =
  List.iter
    (fun k -> Format.fprintf ppf "%-40s %d@." k (counter_value t k))
    (sorted_keys t.counters);
  List.iter
    (fun k -> Format.fprintf ppf "%-40s %g@." k (Option.get (gauge_value t k)))
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      match summary t k with
      | None -> ()
      | Some s ->
        Format.fprintf ppf "%-40s n=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g@."
          k s.count s.sum s.min s.p50 s.p90 s.p99 s.max)
    (sorted_keys t.histograms)
