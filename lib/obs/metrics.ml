type histogram = {
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  on : bool;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    on = true;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let null =
  {
    on = false;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    histograms = Hashtbl.create 1;
  }

let enabled t = t.on

(* 1e-6 .. ~1.1e13 in 64 geometric steps of x2: wide enough for wall-clock
   seconds at the bottom and simulated-time latencies at the top. *)
let default_buckets =
  Array.init 64 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

let incr t ?(by = 1) name =
  if t.on then
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t.counters name (ref by)

let set t name v =
  if t.on then
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace t.gauges name (ref v)

let bucket_index bounds v =
  (* first index with v <= bounds.(i), or length bounds (overflow) *)
  let n = Array.length bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe t ?(buckets = default_buckets) name v =
  if t.on then begin
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
        let n = Array.length buckets in
        if n = 0 then invalid_arg "Metrics.observe: empty bucket array";
        for i = 1 to n - 1 do
          if buckets.(i) <= buckets.(i - 1) then
            invalid_arg "Metrics.observe: buckets must be strictly increasing"
        done;
        let h =
          {
            bounds = Array.copy buckets;
            counts = Array.make (n + 1) 0;
            h_count = 0;
            h_sum = 0.0;
            h_min = Float.infinity;
            h_max = Float.neg_infinity;
          }
        in
        Hashtbl.replace t.histograms name h;
        h
    in
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

(* Fold the contents of [src] into [into]: counters add, gauges overwrite,
   histograms with identical bounds add bucket-wise.  Used to combine the
   per-worker registries of a parallel run back into the caller's
   registry. *)
let merge ~into src =
  if into.on then begin
    Hashtbl.iter (fun k r -> incr into ~by:!r k) src.counters;
    Hashtbl.iter (fun k r -> set into k !r) src.gauges;
    Hashtbl.iter
      (fun k h ->
        match Hashtbl.find_opt into.histograms k with
        | None ->
          Hashtbl.replace into.histograms k
            { h with bounds = Array.copy h.bounds; counts = Array.copy h.counts }
        | Some dst ->
          if dst.bounds <> h.bounds then
            invalid_arg ("Metrics.merge: incompatible buckets for " ^ k);
          Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts;
          dst.h_count <- dst.h_count + h.h_count;
          dst.h_sum <- dst.h_sum +. h.h_sum;
          if h.h_min < dst.h_min then dst.h_min <- h.h_min;
          if h.h_max > dst.h_max then dst.h_max <- h.h_max)
      src.histograms
  end

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge_value t name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

(* Estimate the q-quantile: find the bucket holding the ceil(q*count)-th
   observation, interpolate linearly between its bounds, clamp to the exact
   observed extremes (so single-valued histograms report that value). *)
let estimate h q =
  let target = Float.max 1.0 (Float.round (q *. float_of_int h.h_count)) in
  let n = Array.length h.bounds in
  let rec go i cum =
    if i > n then h.h_max
    else
      let cum' = cum +. float_of_int h.counts.(i) in
      if cum' >= target then
        if i = n then h.h_max
        else
          let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
          let hi = h.bounds.(i) in
          let frac =
            if h.counts.(i) = 0 then 1.0
            else (target -. cum) /. float_of_int h.counts.(i)
          in
          lo +. ((hi -. lo) *. frac)
      else go (i + 1) cum'
  in
  let raw = go 0 0.0 in
  Float.min h.h_max (Float.max h.h_min raw)

let percentile t name q =
  match Hashtbl.find_opt t.histograms name with
  | Some h when h.h_count > 0 -> Some (estimate h q)
  | _ -> None

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    p50 = estimate h 0.50;
    p90 = estimate h 0.90;
    p99 = estimate h 0.99;
  }

let summary t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h when h.h_count > 0 -> Some (summary_of h)
  | _ -> None

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let to_json t =
  let counters =
    List.map (fun k -> (k, Json.Int (counter_value t k))) (sorted_keys t.counters)
  in
  let gauges =
    List.map
      (fun k -> (k, Json.Float (Option.get (gauge_value t k))))
      (sorted_keys t.gauges)
  in
  let histograms =
    List.filter_map
      (fun k ->
        match summary t k with
        | None -> None
        | Some s ->
          Some
            ( k,
              Json.Obj
                [
                  ("count", Json.Int s.count);
                  ("sum", Json.Float s.sum);
                  ("min", Json.Float s.min);
                  ("max", Json.Float s.max);
                  ("p50", Json.Float s.p50);
                  ("p90", Json.Float s.p90);
                  ("p99", Json.Float s.p99);
                ] ))
      (sorted_keys t.histograms)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let pp ppf t =
  List.iter
    (fun k -> Format.fprintf ppf "%-40s %d@." k (counter_value t k))
    (sorted_keys t.counters);
  List.iter
    (fun k -> Format.fprintf ppf "%-40s %g@." k (Option.get (gauge_value t k)))
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      match summary t k with
      | None -> ()
      | Some s ->
        Format.fprintf ppf "%-40s n=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g@."
          k s.count s.sum s.min s.p50 s.p90 s.p99 s.max)
    (sorted_keys t.histograms)
