(* Causal spans: the per-request "where did the time go" layer.

   A collector is single-writer by construction — the transport loop and
   each shard worker own one each — and collectors are combined after the
   fact with {!drain} in a fixed order, the same input-order determinism
   discipline as [Metrics.merge] and [Recorder.absorb].  Identifiers are
   therefore allocated without any cross-domain coordination: every
   collector carries a [tag] that is OR-ed into the high bits of the ids
   it mints, so ids from distinct collectors never collide within one
   trace and a run's id assignment is deterministic (no RNG, no global
   counter). *)

type span = {
  trace : int;
  id : int;
  parent : int; (* 0 = root *)
  name : string;
  cat : string;
  labels : Labels.t;
  t0 : float; (* Clock.now_wall seconds *)
  mutable t1 : float; (* neg_infinity while the span is open *)
}

type t = {
  on : bool;
  rate : float;
  tag : int;
  mutable next : int; (* id counter, shared by span and trace ids *)
  mutable rev_spans : span list; (* newest first *)
  mutable n : int;
  (* Ambient trace context: which request the owning domain is currently
     executing, so deeper layers (the engine) can attach their spans
     without threading the context through every signature.  0 = none. *)
  mutable ctx_trace : int;
  mutable ctx_parent : int;
}

(* The tag rides bits 40.. of every id; 2^40 ids per collector and 2^22
   collectors fit comfortably in OCaml's 63-bit ints. *)
let tag_shift = 40

let max_tag = (1 lsl 22) - 1

let create ?(rate = 1.0) ?(tag = 0) () =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Span.create: rate must be within [0,1]";
  if tag < 0 || tag > max_tag then invalid_arg "Span.create: tag out of range";
  {
    on = true;
    rate;
    tag;
    next = 0;
    rev_spans = [];
    n = 0;
    ctx_trace = 0;
    ctx_parent = 0;
  }

let null =
  {
    on = false;
    rate = 0.0;
    tag = 0;
    next = 0;
    rev_spans = [];
    n = 0;
    ctx_trace = 0;
    ctx_parent = 0;
  }

let enabled t = t.on

let rate t = t.rate

let length t = t.n

let fresh_id t =
  t.next <- t.next + 1;
  (t.tag lsl tag_shift) lor t.next

let fresh_trace t = if t.on then fresh_id t else 0

(* Head-based sampling: the keep/drop decision is a pure function of the
   trace id (a SplitMix64-style finalizer down to 16 bits against the
   rate), so every collector a request crosses — client, transport,
   shards — agrees on it without communicating, and a replayed run
   samples the same traces. *)
let mix x =
  let x = x * 0x9E3779B97F4A7C1 land max_int in
  let x = x lxor (x lsr 29) * 0xBF58476D1CE4E5B land max_int in
  x lxor (x lsr 32)

let sampled t trace =
  t.on && trace <> 0
  && (t.rate >= 1.0
     || (t.rate > 0.0
        && float_of_int (mix trace land 0xFFFF) < t.rate *. 65536.0))

(* ---- recording ---- *)

type active = span

let none : active =
  {
    trace = 0;
    id = 0;
    parent = 0;
    name = "";
    cat = "";
    labels = Labels.empty;
    t0 = 0.0;
    t1 = 0.0;
  }

let id (a : active) = a.id

let push t s =
  t.rev_spans <- s :: t.rev_spans;
  t.n <- t.n + 1

let start t ?(parent = 0) ?(cat = "") ?(labels = Labels.empty) ~trace ~ts name
    =
  if not (sampled t trace) then none
  else begin
    let s =
      {
        trace;
        id = fresh_id t;
        parent;
        name;
        cat;
        labels;
        t0 = ts;
        t1 = neg_infinity;
      }
    in
    push t s;
    s
  end

let finish _t (a : active) ~ts = if a != none then a.t1 <- ts

let emit t ?(parent = 0) ?(cat = "") ?(labels = Labels.empty) ~trace ~t0 ~t1
    name =
  if not (sampled t trace) then 0
  else begin
    let id = fresh_id t in
    push t { trace; id; parent; name; cat; labels; t0; t1 };
    id
  end

(* ---- ambient context ---- *)

let set_ctx t ~trace ~parent =
  if t.on then begin
    t.ctx_trace <- trace;
    t.ctx_parent <- parent
  end

let clear_ctx t =
  if t.on then begin
    t.ctx_trace <- 0;
    t.ctx_parent <- 0
  end

let ctx_trace t = t.ctx_trace

let ctx_parent t = t.ctx_parent

(* ---- reading and combining ---- *)

type view = {
  v_trace : int;
  v_id : int;
  v_parent : int;
  v_name : string;
  v_cat : string;
  v_labels : Labels.t;
  v_t0 : float;
  v_t1 : float; (* = v_t0 for spans never finished *)
}

let view_of (s : span) =
  {
    v_trace = s.trace;
    v_id = s.id;
    v_parent = s.parent;
    v_name = s.name;
    v_cat = s.cat;
    v_labels = s.labels;
    v_t0 = s.t0;
    v_t1 = (if s.t1 = neg_infinity then s.t0 else s.t1);
  }

let spans t = List.rev_map view_of t.rev_spans

let drain ~into src =
  if into.on then begin
    (* Keep [src]'s recording order: its list is newest-first, so
       prepending it reversed onto [into]'s newest-first list appends the
       spans oldest-first. *)
    into.rev_spans <- List.rev_append (List.rev src.rev_spans) into.rev_spans;
    into.n <- into.n + src.n;
    src.rev_spans <- [];
    src.n <- 0
  end

(* ---- export ---- *)

let us s = s *. 1e6

let export t trace_sink =
  if Trace.enabled trace_sink then
    List.iter
      (fun (s : span) ->
        let v = view_of s in
        let args =
          ("span", Json.String (Printf.sprintf "0x%x" v.v_id))
          :: (if v.v_parent = 0 then []
              else
                [ ("parent", Json.String (Printf.sprintf "0x%x" v.v_parent)) ])
          @ List.map
              (fun (k, value) -> (k, Json.String value))
              (Labels.to_list v.v_labels)
        in
        Trace.async_begin trace_sink ~cat:(if s.cat = "" then "span" else s.cat)
          ~args ~id:v.v_trace ~ts:(us v.v_t0) s.name;
        Trace.async_end trace_sink ~cat:(if s.cat = "" then "span" else s.cat)
          ~id:v.v_trace ~ts:(us v.v_t1) s.name)
      (List.rev t.rev_spans)

let span_json (v : view) =
  Json.Obj
    ([
       ("trace", Json.String (Printf.sprintf "%x" v.v_trace));
       ("span", Json.String (Printf.sprintf "%x" v.v_id));
     ]
    @ (if v.v_parent = 0 then []
       else [ ("parent", Json.String (Printf.sprintf "%x" v.v_parent)) ])
    @ [
        ("name", Json.String v.v_name);
        ("cat", Json.String v.v_cat);
        ("start_us", Json.Float (us v.v_t0));
        ("dur_us", Json.Float (us (v.v_t1 -. v.v_t0)));
      ]
    @
    match Labels.to_list v.v_labels with
    | [] -> []
    | pairs ->
      [
        ( "labels",
          Json.Obj (List.map (fun (k, value) -> (k, Json.String value)) pairs)
        );
      ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "spans/1");
      ("spans", Json.List (List.map span_json (spans t)));
    ]
