type phase = Instant | Complete | Async_begin | Async_end

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;
  dur : float;
  pid : int;
  tid : int;
  id : int;
  args : (string * Json.t) list;
}

type t = {
  on : bool;
  mutable rev_events : event list; (* newest first *)
  mutable n : int;
  mutable rev_meta : (int * int option * string) list; (* pid, tid?, name *)
}

let create () = { on = true; rev_events = []; n = 0; rev_meta = [] }

let null = { on = false; rev_events = []; n = 0; rev_meta = [] }

let enabled t = t.on

let now_us () = Clock.now_wall () *. 1e6

let push t ev =
  t.rev_events <- ev :: t.rev_events;
  t.n <- t.n + 1

let instant t ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) ~ts name =
  if t.on then
    push t
      { name; cat; phase = Instant; ts; dur = 0.0; pid; tid; id = 0; args }

let complete t ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) ~ts ~dur name =
  if t.on then
    push t { name; cat; phase = Complete; ts; dur; pid; tid; id = 0; args }

let async_begin t ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) ~id ~ts name =
  if t.on then
    push t
      { name; cat; phase = Async_begin; ts; dur = 0.0; pid; tid; id; args }

let async_end t ?(cat = "") ?(pid = 0) ?(tid = 0) ?(args = []) ~id ~ts name =
  if t.on then
    push t { name; cat; phase = Async_end; ts; dur = 0.0; pid; tid; id; args }

let set_process_name t ~pid name =
  if t.on then t.rev_meta <- (pid, None, name) :: t.rev_meta

let set_thread_name t ~pid ~tid name =
  if t.on then t.rev_meta <- (pid, Some tid, name) :: t.rev_meta

let events t = List.rev t.rev_events

let length t = t.n

let event_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String (if e.cat = "" then "default" else e.cat));
      ( "ph",
        Json.String
          (match e.phase with
          | Instant -> "i"
          | Complete -> "X"
          | Async_begin -> "b"
          | Async_end -> "e") );
      ("ts", Json.Float e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
    ]
  in
  let base =
    match e.phase with
    | Complete -> base @ [ ("dur", Json.Float e.dur) ]
    | Instant -> base @ [ ("s", Json.String "t") ]
    | Async_begin | Async_end ->
      (* Chrome groups async events by (cat, id, name); the id is rendered
         as a hex string, the viewer's conventional form. *)
      base @ [ ("id", Json.String (Printf.sprintf "0x%x" e.id)) ]
  in
  let base =
    match e.args with [] -> base | args -> base @ [ ("args", Json.Obj args) ]
  in
  Json.Obj base

let meta_json (pid, tid, name) =
  let which, tid_fields =
    match tid with
    | None -> ("process_name", [])
    | Some tid -> ("thread_name", [ ("tid", Json.Int tid) ])
  in
  Json.Obj
    ([
       ("name", Json.String which);
       ("ph", Json.String "M");
       ("pid", Json.Int pid);
     ]
    @ tid_fields
    @ [ ("args", Json.Obj [ ("name", Json.String name) ]) ])

let to_json t =
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map meta_json (List.rev t.rev_meta)
          @ List.map event_json (events t)) );
      ("displayTimeUnit", Json.String "ms");
    ]

let pp_log ppf t =
  let by_time =
    List.stable_sort (fun a b -> compare a.ts b.ts) (events t)
  in
  List.iter
    (fun e ->
      Format.fprintf ppf "%12.1f %-7s %-16s pid=%d tid=%d" e.ts
        (if e.cat = "" then "-" else e.cat)
        e.name e.pid e.tid;
      if e.phase = Complete then Format.fprintf ppf " dur=%.1f" e.dur;
      List.iter
        (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Json.to_string v))
        e.args;
      Format.fprintf ppf "@.")
    by_time
