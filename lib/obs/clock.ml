(* [Monotonic_clock] (bechamel's clock stub, a single C call to
   clock_gettime(CLOCK_MONOTONIC)) returns nanoseconds as int64. *)
let now_wall () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let now_cpu () = Sys.time ()
