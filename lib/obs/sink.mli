(** A telemetry sink: one record bundling the event trace, the metrics
    registry, the flight recorder and the span collector an analysis
    should report into.

    Before the certification engine, every layer of the checker pipeline
    re-plumbed its own [?trace]/[?metrics] optional pair; a sink carries
    all four channels through one value (and one [enabled] check).  The
    {!null} sink is built from the null instances of all four, so
    unconditionally instrumented code pays nothing when telemetry is
    off. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  recorder : Recorder.t;
  spans : Span.t;
}

val null : t
(** The disabled sink: all four components are the null instances. *)

val v :
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?recorder:Recorder.t ->
  ?spans:Span.t ->
  unit ->
  t
(** Build a sink; each component defaults to its null instance. *)

val enabled : t -> bool
(** True iff any component is enabled. *)
