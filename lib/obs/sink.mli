(** A telemetry sink: one record bundling the event trace and the metrics
    registry an analysis should report into.

    Before the certification engine, every layer of the checker pipeline
    re-plumbed its own [?trace]/[?metrics] optional pair; a sink carries
    both through one value (and one [enabled] check).  The {!null} sink is
    built from the null trace and null registry, so unconditionally
    instrumented code pays nothing when telemetry is off. *)

type t = { trace : Trace.t; metrics : Metrics.t }

val null : t
(** The disabled sink: both components are the null instances. *)

val v : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t
(** Build a sink; either component defaults to its null instance. *)

val enabled : t -> bool
(** True iff either component is enabled. *)
