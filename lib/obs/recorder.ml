(* A bounded ring buffer of structured operational events.  Capacity is
   fixed at creation and the event slots are a preallocated array, so a
   recorder's memory is O(capacity) by construction whatever the stream
   length — the flight-recorder analogue of the monitor's O(active window)
   ambition: always on, never growing, dumped on demand when something
   goes wrong. *)

type severity = Debug | Info | Warn | Error

let severity_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type event = {
  seq : int;
  ts : float;
  severity : severity;
  cat : string;
  name : string;
  labels : Labels.t;
}

type t = {
  on : bool;
  slots : event option array; (* length = capacity; seq mod capacity *)
  mutable total : int; (* events ever recorded; next seq *)
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  { on = true; slots = Array.make capacity None; total = 0 }

let null = { on = false; slots = Array.make 1 None; total = 0 }

let enabled t = t.on

let capacity t = Array.length t.slots

let total t = t.total

let length t = min t.total (Array.length t.slots)

let dropped t = t.total - length t

let event t ?(severity = Info) ?(cat = "") ?(labels = Labels.empty) ~ts name =
  if t.on then begin
    let seq = t.total in
    t.slots.(seq mod Array.length t.slots) <-
      Some { seq; ts; severity; cat; name; labels };
    t.total <- seq + 1
  end

let record t ?severity ?cat ?labels name =
  if t.on then event t ?severity ?cat ?labels ~ts:(Clock.now_wall ()) name

(* Retained events, oldest first: seqs [total - length, total). *)
let events t =
  let cap = Array.length t.slots in
  let len = length t in
  List.init len (fun i ->
      match t.slots.((t.total - len + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let iter f t = List.iter f (events t)

(* Replay [src]'s retained events into [into], keeping timestamps,
   severities and payloads but assigning fresh sequence numbers — how the
   per-worker recorders of a parallel run are drained back into the
   caller's recorder in input order. *)
let absorb ~into src =
  if into.on then
    iter
      (fun e ->
        event into ~severity:e.severity ~cat:e.cat ~labels:e.labels ~ts:e.ts
          e.name)
      src

let event_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("ts", Json.Float e.ts);
       ("severity", Json.String (severity_string e.severity));
       ("cat", Json.String e.cat);
       ("name", Json.String e.name);
     ]
    @
    match Labels.to_list e.labels with
    | [] -> []
    | pairs ->
      [
        ( "labels",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) pairs) );
        (* The canonical encoded series form — label values escaped
           exactly as [Labels.encode] does, so [Labels.decode_series]
           round-trips the event from any dump. *)
        ("series", Json.String (Labels.series e.name e.labels));
      ])

let to_json t =
  Json.Obj
    [
      ("capacity", Json.Int (capacity t));
      ("recorded", Json.Int t.total);
      ("dropped", Json.Int (dropped t));
      ("events", Json.List (List.map event_json (events t)));
    ]

let pp ppf t =
  iter
    (fun e ->
      Format.fprintf ppf "#%d %12.6f %-5s %-8s %s%a@." e.seq e.ts
        (severity_string e.severity)
        (if e.cat = "" then "-" else e.cat)
        e.name Labels.pp e.labels)
    t
