type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else
    let s = Printf.sprintf "%.17g" f in
    (* shortest representation that still round-trips *)
    let shorter = Printf.sprintf "%.12g" f in
    Some (if float_of_string shorter = f then shorter else s)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
    match float_repr f with
    | None -> Buffer.add_string buf "null"
    | Some s ->
      Buffer.add_string buf s;
      (* ensure the token re-reads as a float, not an int *)
      if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
        Buffer.add_string buf ".0")
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j =
  let buf = Buffer.create 65536 in
  write buf j;
  Buffer.output_buffer oc buf

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom ->
    Format.pp_print_string ppf (to_string atom)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
    Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp)
      items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
    let field ppf (k, v) =
      Format.fprintf ppf "@[<hov 2>%s:@ %a@]" (to_string (String k)) pp v
    in
    Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") field)
      fields

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some ('"' | '\\' | '/') ->
        Buffer.add_char buf (Option.get (peek c));
        advance c;
        go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then fail c "truncated \\u escape";
        let hex = String.sub c.text c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        (* UTF-8 encode the code point (surrogate pairs are not recombined;
           the telemetry layer never emits them) *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let tok = String.sub c.text start (c.pos - start) in
  if tok = "" then fail c "expected a number";
  let floaty = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') tok in
  if floaty then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail c (Printf.sprintf "bad number %S" tok)
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" tok))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then fail c "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_exn = function
  | List items -> items
  | j -> invalid_arg (Printf.sprintf "Json.to_list_exn: not a list: %s" (to_string j))
