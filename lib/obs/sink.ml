type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  recorder : Recorder.t;
  spans : Span.t;
}

let null =
  {
    trace = Trace.null;
    metrics = Metrics.null;
    recorder = Recorder.null;
    spans = Span.null;
  }

let v ?(trace = Trace.null) ?(metrics = Metrics.null)
    ?(recorder = Recorder.null) ?(spans = Span.null) () =
  { trace; metrics; recorder; spans }

let enabled t =
  Trace.enabled t.trace || Metrics.enabled t.metrics
  || Recorder.enabled t.recorder || Span.enabled t.spans
