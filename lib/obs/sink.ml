type t = { trace : Trace.t; metrics : Metrics.t; recorder : Recorder.t }

let null =
  { trace = Trace.null; metrics = Metrics.null; recorder = Recorder.null }

let v ?(trace = Trace.null) ?(metrics = Metrics.null)
    ?(recorder = Recorder.null) () =
  { trace; metrics; recorder }

let enabled t =
  Trace.enabled t.trace || Metrics.enabled t.metrics
  || Recorder.enabled t.recorder
