type t = { trace : Trace.t; metrics : Metrics.t }

let null = { trace = Trace.null; metrics = Metrics.null }

let v ?(trace = Trace.null) ?(metrics = Metrics.null) () = { trace; metrics }

let enabled t = Trace.enabled t.trace || Metrics.enabled t.metrics
