(* A label set is kept canonical — sorted by key, one value per key — so
   structural equality is set equality and the encoded form is unique.
   The encoding doubles as the series key inside the metrics registry's
   flat tables: [name{k="v",k2="v2"}], which is also (after metric-name
   sanitization) the Prometheus exposition syntax, so the text writer can
   split any registry key back into name and labels. *)

type t = (string * string) list (* sorted by key, keys unique *)

let empty = []

let is_empty t = t = []

let valid_key k =
  k <> ""
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

let add k v t =
  if not (valid_key k) then
    invalid_arg ("Labels.add: invalid label key " ^ String.escaped k);
  let rec ins = function
    | [] -> [ (k, v) ]
    | (k', _) :: rest when k' = k -> (k, v) :: rest
    | ((k', _) as hd) :: rest when k' < k -> hd :: ins rest
    | rest -> (k, v) :: rest
  in
  ins t

let v pairs = List.fold_left (fun acc (k, value) -> add k value acc) empty pairs

let to_list t = t

let find k t = List.assoc_opt k t

let cardinal = List.length

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

(* Right-biased union: [union a b] keeps every binding of [b] and the
   [a]-bindings whose key [b] does not mention. *)
let union a b = List.fold_left (fun acc (k, value) -> add k value acc) a b

(* Value escaping is exactly the Prometheus label-value rule: backslash,
   double quote and newline are escaped, everything else passes through. *)
let escape_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let encode t =
  match t with
  | [] -> ""
  | pairs ->
    let buf = Buffer.create 32 in
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_value v);
        Buffer.add_char buf '"')
      pairs;
    Buffer.add_char buf '}';
    Buffer.contents buf

let series name t = name ^ encode t

exception Bad of string

(* Decode a series key produced by {!series}.  The registry only ever
   stores canonical encodings, so the parser is strict: a malformed suffix
   means the key never carried labels and the whole string is the name. *)
let decode_series key =
  match String.index_opt key '{' with
  | None -> (key, empty)
  | Some i when String.length key > 0 && key.[String.length key - 1] = '}' -> (
    let name = String.sub key 0 i in
    let body = String.sub key (i + 1) (String.length key - i - 2) in
    try
      let n = String.length body in
      let labels = ref empty in
      let pos = ref 0 in
      while !pos < n do
        let eq =
          match String.index_from_opt body !pos '=' with
          | Some e when e + 1 < n && body.[e + 1] = '"' -> e
          | _ -> raise (Bad key)
        in
        let k = String.sub body !pos (eq - !pos) in
        let buf = Buffer.create 8 in
        let j = ref (eq + 2) in
        let closed = ref false in
        while not !closed do
          if !j >= n then raise (Bad key);
          (match body.[!j] with
          | '\\' ->
            if !j + 1 >= n then raise (Bad key);
            (match body.[!j + 1] with
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | 'n' -> Buffer.add_char buf '\n'
            | _ -> raise (Bad key));
            j := !j + 2
          | '"' ->
            closed := true;
            incr j
          | c ->
            Buffer.add_char buf c;
            incr j)
        done;
        labels := add k (Buffer.contents buf) !labels;
        if !j < n then
          if body.[!j] = ',' then pos := !j + 1 else raise (Bad key)
        else pos := !j
      done;
      (name, !labels)
    with Bad _ | Invalid_argument _ -> (key, empty))
  | Some _ -> (key, empty)

let pp ppf t = Format.pp_print_string ppf (encode t)
