(** A minimal JSON tree, printer and parser.

    The telemetry layer must stay dependency-free (ROADMAP: the simulator's
    hot paths cannot drag a serialization stack along), so this module
    implements exactly the JSON subset the layer emits — objects, arrays,
    strings, numbers, booleans and null — plus a parser good enough to
    round-trip that output in tests and downstream tooling.

    Numbers are emitted so that they re-read exactly ([%.17g] for floats);
    non-finite floats, which JSON cannot represent, print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented, human-oriented rendering. *)

val to_channel : out_channel -> t -> unit
(** Compact rendering straight to a channel (no intermediate string). *)

exception Parse_error of string

val of_string : string -> t
(** Parse a JSON document.  Numbers without [.], [e] or [E] become {!Int};
    every other number becomes {!Float}.  Raises {!Parse_error}. *)

val member : string -> t -> t option
(** Field lookup in an {!Obj} ([None] on missing field or non-object). *)

val to_list_exn : t -> t list
(** The elements of a {!List}; raises [Invalid_argument] otherwise. *)
