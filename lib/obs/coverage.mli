(** The path-coverage registry: the engine's, monitor's and reduction's
    decision counters under canonical, stable names.

    The checker has many fast paths (monitor fast/delta/kernel/full,
    truncation and restore, the reduction's accept/reject/failure kinds),
    each already counted in a {!Metrics} registry under its
    instrumentation-site name.  This module pins that vocabulary down as
    a {e coverage signal}: a fixed list of points, each mapping a
    canonical key to the counter series (name + required labels) that
    feed it, exported as a [coverage/1] JSON whose key set is always the
    full point list — zeros included — so two dumps diff point-wise and
    a feedback-driven fuzzer (ROADMAP item 5) can steer toward the paths
    a workload never hit.

    Counter series carrying extra labels (the server's [shard=i]) are
    summed into their point; values inherit counter monotonicity. *)

val schema : string
(** ["coverage/1"]. *)

val keys : string list
(** The canonical point keys, in declaration order — the stable key set
    of every export. *)

val of_metrics : Metrics.t -> (string * int) list
(** Fold a registry into the point list: one [(key, value)] pair per
    point in {!keys} order, 0 for points the registry never hit. *)

val to_json : Metrics.t -> Json.t
(** [{"schema":"coverage/1","points":{key: count, ...}}] with every key
    of {!keys} present. *)
