(** Time sources for telemetry.

    Every metric named [*_wall_s] in this codebase is measured with
    {!now_wall}; CPU time stays available as {!now_cpu} under [*_cpu_s]
    names.  The distinction matters under parallelism: [Sys.time] is
    {e process} CPU time, so [n] busy domains burn [n] CPU-seconds per
    wall-clock second and a "wall" metric measured with it overstates
    elapsed time by up to the domain count (and understates it for a
    domain blocked on others). *)

val now_wall : unit -> float
(** Monotonic wall-clock seconds ([CLOCK_MONOTONIC]; arbitrary origin).
    Differences of two readings are elapsed real time, immune to
    system-clock adjustments. *)

val now_cpu : unit -> float
(** Process CPU seconds ({!Sys.time}): the sum over all domains of time
    actually spent executing. *)
