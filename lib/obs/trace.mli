(** Event tracing: timestamped instants and spans, exportable as Chrome
    [trace_event] JSON (load the file in Perfetto / [chrome://tracing]) or
    as a human-readable log.

    A sink collects {!event}s; {!null} is permanently disabled, so hot
    paths may call the recording functions unconditionally — on the null
    sink they return after one branch without allocating.  Callers that
    build argument lists should still guard with {!enabled} to skip the
    list construction itself.

    Timestamps are caller-supplied floats in {e microseconds} (the Chrome
    format's unit).  Each subsystem picks one clock per sink and sticks to
    it: the simulator records simulated time (1 simulated time unit =
    1 ms = 1000 µs, a readable scale in Perfetto), the checker records
    wall-clock time from {!now_us}.  The two never share a sink.

    Event vocabulary emitted by this repository (the [cat] field names the
    emitting subsystem, [sim] or [compc]):
    - [sim]: [dispatch], [lock_wait] (span: first refusal to grant),
      [lock_acquire], [abort], [backoff], [retry], [give_up], [commit],
      [certify_check] (span; wall-clock duration mapped onto sim time);
    - [compc]: [observed_order] (span), [reduction_step] (span per level,
      with front sizes and cluster counts), [front_check], [failure]. *)

type phase =
  | Instant
  | Complete
  | Async_begin
  | Async_end  (** Chrome [ph] "i" / "X" / "b" / "e". *)

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;  (** Microseconds. *)
  dur : float;  (** Microseconds; 0 for instants. *)
  pid : int;
  tid : int;
  id : int;  (** Async-event grouping id; 0 for other phases. *)
  args : (string * Json.t) list;
}

type t

val create : unit -> t

val null : t
(** The disabled sink: recording is a no-op, {!events} is always empty. *)

val enabled : t -> bool

val now_us : unit -> float
(** Monotonic wall-clock microseconds ({!Clock.now_wall}; arbitrary
    origin).  Span timestamps taken with this clock line up across domains
    in Perfetto, unlike the CPU clock it replaced. *)

(** {1 Recording} *)

val instant :
  t ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Json.t) list ->
  ts:float ->
  string ->
  unit

val complete :
  t ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Json.t) list ->
  ts:float ->
  dur:float ->
  string ->
  unit
(** A span: [ts] is its start, [dur] its length (both µs). *)

val async_begin :
  t ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Json.t) list ->
  id:int ->
  ts:float ->
  string ->
  unit
(** Open an async (nestable) interval: Chrome phase ["b"].  Async events
    pair up by (cat, id, name) rather than by thread, so intervals that
    start on one domain and end on another — a request crossing from the
    transport to a shard — still render as one bar.  [Span.export] emits
    one begin/end pair per finished span with [id] = the span's trace id,
    grouping every span of a request onto one track. *)

val async_end :
  t ->
  ?cat:string ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Json.t) list ->
  id:int ->
  ts:float ->
  string ->
  unit
(** Close an async interval: Chrome phase ["e"]. *)

val set_process_name : t -> pid:int -> string -> unit
(** Chrome metadata: label a [pid] row in the viewer. *)

val set_thread_name : t -> pid:int -> tid:int -> string -> unit

(** {1 Reading} *)

val events : t -> event list
(** Recorded events in recording order (metadata excluded). *)

val length : t -> int

val to_json : t -> Json.t
(** The Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val pp_log : Format.formatter -> t -> unit
(** Human-readable log, one event per line, sorted by timestamp. *)
