module Metrics = Repro_obs.Metrics
module Recorder = Repro_obs.Recorder
module Sink = Repro_obs.Sink
module Span = Repro_obs.Span

let default_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Each slot is written by exactly one worker (the one that claimed the
   index) and read only after every domain has been joined, so the plain
   array is race-free; [next] is the only contended word. *)
let run_pool jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let slots = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (slots.(i) <-
           (match f i arr.(i) with
           | r -> Some (Ok r)
           | exception e ->
             let bt = Printexc.get_raw_backtrace () in
             Some (Error (e, bt))));
        loop ()
      end
    in
    loop ()
  in
  let domains =
    List.init (max 0 (min (jobs - 1) (n - 1))) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join domains;
  Array.to_list
    (Array.map
       (function
         | Some (Ok r) -> r
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       slots)

let parmap ?jobs f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    if jobs <= 1 then List.map f items
    else run_pool jobs (fun _ x -> f x) items

let parmap_with ?jobs ~metrics f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if not (Metrics.enabled metrics) then
    parmap ~jobs (fun x -> f ~metrics:Metrics.null x) items
  else begin
    let n = List.length items in
    let regs = Array.init n (fun _ -> Metrics.create ()) in
    let results =
      match items with
      | [] -> []
      | [ x ] -> [ f ~metrics:regs.(0) x ]
      | _ ->
        if jobs <= 1 then List.mapi (fun i x -> f ~metrics:regs.(i) x) items
        else run_pool jobs (fun i x -> f ~metrics:regs.(i) x) items
    in
    Array.iter (fun r -> Metrics.merge ~into:metrics r) regs;
    results
  end

let parmap_sink ?jobs ?on_done ~obs f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let completed = Atomic.make 0 in
  let notify () =
    match on_done with
    | None -> ()
    | Some cb -> cb ~completed:(1 + Atomic.fetch_and_add completed 1)
  in
  let metrics = obs.Sink.metrics and recorder = obs.Sink.recorder in
  let n = List.length items in
  let regs =
    if Metrics.enabled metrics then Array.init n (fun _ -> Metrics.create ())
    else [||]
  in
  let recs =
    if Recorder.enabled recorder then
      Array.init n (fun _ ->
          Recorder.create ~capacity:(Recorder.capacity recorder) ())
    else [||]
  in
  let spans = obs.Sink.spans in
  (* Per-item collectors tagged by item index, so a parallel run mints
     the same span ids as a sequential one and the drain below (input
     order, like the metrics merge) reassembles an identical list. *)
  let spns =
    if Span.enabled spans then
      Array.init n (fun i -> Span.create ~rate:(Span.rate spans) ~tag:(i + 1) ())
    else [||]
  in
  let item_obs i =
    Sink.v
      ~metrics:(if Array.length regs = 0 then Metrics.null else regs.(i))
      ~recorder:(if Array.length recs = 0 then Recorder.null else recs.(i))
      ~spans:(if Array.length spns = 0 then Span.null else spns.(i))
      ()
  in
  let g i x =
    let r = f ~obs:(item_obs i) x in
    notify ();
    r
  in
  let results =
    match items with
    | [] -> []
    | [ x ] -> [ g 0 x ]
    | _ -> if jobs <= 1 then List.mapi g items else run_pool jobs g items
  in
  Array.iter (fun r -> Metrics.merge ~into:metrics r) regs;
  Array.iter (fun r -> Recorder.absorb ~into:recorder r) recs;
  Array.iter (fun r -> Span.drain ~into:spans r) spns;
  results
