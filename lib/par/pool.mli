(** A small fork-join Domain pool for embarrassingly parallel batches.

    The checker's batch workloads — one verdict per history file, one
    agreement probe per generated history — are independent items of
    uneven cost, so the pool is a plain work queue: items are claimed
    one at a time with an atomic counter, each worker loops until the
    queue is dry, and results land in a preallocated slot per item.
    Result order is therefore always the input order, whatever the
    claiming interleaving was, and a run with [jobs = n] computes
    exactly what a sequential run computes.

    Domains are spawned per call and joined before returning; the pool
    keeps no global state.  The calling domain works too, so [jobs = n]
    means [n] busy domains, not [n + 1], and [jobs <= 1] runs the plain
    sequential loop with no domain machinery at all.

    The items must not share mutable state — in particular each domain
    needs its own {!Repro_model.History.t}, whose lazily filled conflict
    cache is not domain-safe.  Telemetry obeys the same rule:
    {!parmap_with} gives every item a private metrics registry and the
    caller merges them in item order, keeping parallel runs
    byte-identical to sequential ones. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: [REPRO_JOBS] from the
    environment if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val parmap : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parmap ~jobs f items] is [List.map f items], computed by [jobs]
    domains claiming items off a shared queue.  Results are in input
    order.  If any [f item] raises, the first raising item's exception
    (in input order) is re-raised after all workers have joined. *)

val parmap_with :
  ?jobs:int ->
  metrics:Repro_obs.Metrics.t ->
  (metrics:Repro_obs.Metrics.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** Like {!parmap}, but [f] receives a metrics registry private to its
    item; after the join they are merged into [metrics] in item order
    (so the combined registry is deterministic and, counters and
    histograms being commutative sums, equal to a sequential run's).
    When [metrics] is disabled every item just gets
    {!Repro_obs.Metrics.null}. *)

val parmap_sink :
  ?jobs:int ->
  ?on_done:(completed:int -> unit) ->
  obs:Repro_obs.Sink.t ->
  (obs:Repro_obs.Sink.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** {!parmap_with} generalized to a full telemetry sink: [f] receives a
    sink private to its item — a fresh metrics registry when
    [obs.metrics] is enabled, a fresh flight recorder of the same
    capacity when [obs.recorder] is enabled, null otherwise — and after
    the join the private registries are {!Repro_obs.Metrics.merge}d and
    the private recorders {!Repro_obs.Recorder.absorb}ed into [obs] in
    item order, so the combined telemetry is deterministic whatever the
    claiming interleaving was.  [obs]'s trace is {e not} forked (the
    trace buffer is not domain-safe); items always get a null trace.

    [on_done ~completed] is invoked once per finished item with the
    number of items completed so far — the hook behind live progress
    lines.  It runs on the worker domain that finished the item,
    concurrently with other workers: the callback must do its own
    locking (or be atomic) and must not touch the items' private
    sinks. *)
