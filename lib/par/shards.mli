(** An affinity-sharded set of resident worker domains.

    The long-running counterpart of {!Pool}: where the pool fans a finite
    batch out and joins, a shard set stays up for the life of a service.
    Every job carries a key; jobs with one key always execute on the same
    worker domain ({e affinity}), in submission order, so per-key mutable
    state — a certification session, its conflict memo, a metrics
    registry — is only ever touched from a single domain and needs no
    locking of its own.  Jobs with different keys sharing a shard
    serialize behind each other; keys on different shards run in
    parallel.

    The job type is the caller's; shard-private state is typically an
    array the [run] closure indexes by its shard-index argument. *)

type 'job t

val create : shards:int -> run:(int -> 'job -> unit) -> 'job t
(** Spawn [shards] worker domains, each looping over its queue and
    applying [run shard_index job].  Exceptions escaping [run] are
    swallowed (a poison job must not kill its shard); [run] is
    responsible for its own error reporting.  Raises [Invalid_argument]
    when [shards <= 0]. *)

val size : 'job t -> int

val shard_index : 'job t -> string -> int
(** The shard a key is pinned to: a stable hash of the key modulo
    {!size}. *)

val submit : 'job t -> key:string -> 'job -> bool
(** Enqueue a job on its key's shard.  [false] when the set is draining
    (the job was not enqueued). *)

val submit_to : 'job t -> int -> 'job -> bool
(** Enqueue on an explicit shard index — the barrier/broadcast path
    (e.g. a stats fan-out to every shard).  Raises [Invalid_argument] on
    an out-of-range index. *)

val drain : 'job t -> unit
(** Graceful shutdown: refuse new jobs, let every shard finish its queue,
    join the domains.  Idempotent. *)
