(* An affinity-sharded set of resident worker domains: the long-running
   counterpart of {!Pool}.  Where the pool fans a finite batch out and
   joins, a shard set stays up for the life of a service and pins every
   job stream (keyed by name) to one worker, so per-key mutable state —
   a certification session, its conflict memo, its metrics registry —
   is only ever touched from a single domain and needs no locking of
   its own.  Used by the [compserve] multi-stream server. *)

type 'job shard = {
  index : int;
  mu : Mutex.t;
  cv : Condition.t;
  q : 'job Queue.t;
  mutable stop : bool;
  mutable dom : unit Domain.t option;
}

type 'job t = { shards : 'job shard array }

let size t = Array.length t.shards

let shard_index t key = Hashtbl.hash key mod Array.length t.shards

let worker run sh () =
  let rec loop () =
    Mutex.lock sh.mu;
    while Queue.is_empty sh.q && not sh.stop do
      Condition.wait sh.cv sh.mu
    done;
    if Queue.is_empty sh.q then Mutex.unlock sh.mu (* draining, queue dry *)
    else begin
      let job = Queue.pop sh.q in
      Mutex.unlock sh.mu;
      (try run sh.index job with _ -> ());
      loop ()
    end
  in
  loop ()

let create ~shards ~run =
  if shards <= 0 then invalid_arg "Shards.create: shards must be positive";
  let t =
    {
      shards =
        Array.init shards (fun index ->
            {
              index;
              mu = Mutex.create ();
              cv = Condition.create ();
              q = Queue.create ();
              stop = false;
              dom = None;
            });
    }
  in
  Array.iter (fun sh -> sh.dom <- Some (Domain.spawn (worker run sh))) t.shards;
  t

let submit_shard sh job =
  Mutex.lock sh.mu;
  if sh.stop then begin
    Mutex.unlock sh.mu;
    false
  end
  else begin
    Queue.push job sh.q;
    Condition.signal sh.cv;
    Mutex.unlock sh.mu;
    true
  end

let submit t ~key job = submit_shard t.shards.(shard_index t key) job

let submit_to t index job =
  if index < 0 || index >= Array.length t.shards then
    invalid_arg "Shards.submit_to: no such shard";
  submit_shard t.shards.(index) job

let drain t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.mu;
      sh.stop <- true;
      Condition.broadcast sh.cv;
      Mutex.unlock sh.mu)
    t.shards;
  Array.iter
    (fun sh ->
      match sh.dom with
      | None -> ()
      | Some d ->
        Domain.join d;
        sh.dom <- None)
    t.shards
