(** Discrete-event execution of composite transactions over a component
    topology — the runtime counterpart of the paper's (unpublished)
    prototype composite system.

    Clients submit composite transactions built from {!Template.t} values.
    Every component schedules the operations submitted to it under a
    concurrency-control protocol:

    - {!Serial}: a component admits one root transaction at a time
      (exclusive component locks retained to root commit) — the maximally
      conservative baseline;
    - {!Locking}[ { closed = true }]: semantic strict two-phase locking with
      {e closed} nesting — a subtransaction's locks are retained until the
      root commits (distributed multilevel 2PL; always produces Comp-C
      histories);
    - {!Locking}[ { closed = false }]: {e open} nesting — a
      subtransaction's locks are released when it completes, exposing
      maximal concurrency.  Safe exactly when conflict specifications are
      {e faithful} (higher-level conflicts cover lower-level interference);
      with unfaithful specifications it can and does emit histories that the
      Comp-C checker rejects, which experiment E10 demonstrates;
    - {!Certify}: lock-free execution validated at commit by the Comp-C
      checker itself (always-correct output, optimistic concurrency).

    Cross-component deadlocks are broken by lock-wait timeouts: the root
    transaction aborts (its store effects are undone via
    {!Repro_storage.Store.abort}), waits out a randomized backoff, and
    retries.  Only committed executions enter the emitted history.

    The emitted {!Repro_model.History.t} maps components to schedules, the
    completion order of each component's operations to its execution log,
    sequential template nodes to strong intra-transaction orders, and each
    client's session order to strong input orders between its roots (when
    they share a root component).  Feeding that history to
    {!Repro_core.Compc} closes the loop between protocol and theory. *)

open Repro_model

type protocol =
  | Serial
  | Locking of { closed : bool }
  | Certify
      (** Lock-free optimistic execution with {e backward validation}: a
          root transaction commits only if the history of all previously
          committed transactions extended with it is still Comp-C (decided
          by {!Repro_core.Compc} itself); otherwise it aborts and retries.
          Because every commit re-certifies the whole committed prefix,
          the emitted history is correct by construction — this is the
          certification-scheduler reading of the paper's "CC scheduling".
          Cost: one full Comp-C decision per commit attempt. *)

type params = {
  protocol : protocol;
  clients : int;  (** Concurrent sequential sessions. *)
  txs_per_client : int;
  mean_service : float;  (** Mean leaf service time (exponential-ish). *)
  think : float;  (** Pause between a commit and the client's next submission. *)
  lock_timeout : float;  (** Wait budget before a blocked acquisition aborts the root. *)
  backoff : float;  (** Mean randomized delay before a retry. *)
  dispatch_delay : float;
      (** Mean invocation latency before an operation reaches its component
          (randomized per call); [0.] dispatches instantaneously, which
          makes every transaction acquire its locks atomically and hides
          the cross-component races open nesting is prone to. *)
  max_attempts : int;  (** Retries before a transaction is dropped (counted in [given_up]). *)
  seed : int;
  certify_full_recheck : bool;
      (** {!Certify} only.  [false] (the default): certification keeps an
          incremental {!Repro_core.Monitor} over the committed prefix —
          append the candidate, take the verdict, undo on reject.
          [true]: the legacy oracle — re-run the full batch checker on the
          whole prefix at every commit attempt.  Identical verdicts (the
          monitor's pinned equivalence), so identical simulations; the flag
          exists for the E12 end-to-end comparison and equivalence tests. *)
}

val default_params : params
(** Serial protocol, 4 clients x 5 transactions, unit service time,
    incremental certification. *)

type stats = {
  committed : int;
  aborts : int;  (** Attempts that timed out and were retried. *)
  given_up : int;  (** Logical transactions dropped after [max_attempts]. *)
  lock_waits : int;  (** Blocked acquisitions (including those that later succeeded). *)
  makespan : float;  (** Simulated time until the last commit. *)
  mean_latency : float;  (** Mean commit latency of logical transactions, first submission to commit. *)
  history : History.t;  (** The committed composite execution. *)
}

val protocol_name : protocol -> string
(** ["serial"], ["closed"], ["open"] or ["certify"] — the CLI spelling,
    also used to suffix per-protocol metric names. *)

val run :
  ?trace:Repro_obs.Trace.t ->
  ?metrics:Repro_obs.Metrics.t ->
  ?recorder:Repro_obs.Recorder.t ->
  params ->
  Template.topology ->
  gen:(Repro_workload.Prng.t -> client:int -> seq:int -> Template.t) ->
  stats
(** Run the simulation: client [k] submits [gen rng ~client:k ~seq:0],
    then [~seq:1] after that commits, and so on.  Deterministic for a given
    [params.seed] — telemetry never draws from the random stream.

    With [trace] (default {!Repro_obs.Trace.null}), every scheduler event is
    recorded: [dispatch], [lock_blocked], [lock_wait] (span, closed with
    outcome [acquired] or [timeout]), [lock_acquire], [abort], [backoff]
    (span), [retry], [give_up], [commit] and — under {!Certify} —
    [certify_check] (span whose duration is the checker's wall-clock cost).
    Timestamps are simulated time scaled to 1 unit = 1 ms; pid 0 is the
    client process, pid [c+1] is component [c].

    With [metrics] (default {!Repro_obs.Metrics.null}), counters
    [sim.committed], [sim.aborts], [sim.given_up], [sim.lock_waits],
    [sim.lock_acquires], [sim.retries], [sim.dispatches],
    [sim.certify_checks], [sim.certify_rejects] match the returned {!stats}
    where they overlap; histograms [sim.latency],
    [sim.lock_wait_time.<protocol>], [sim.lock_hold_time.<protocol>],
    [sim.certify_wall_s] (monotonic wall clock) and [sim.certify_cpu_s]
    record distributions; gauges [sim.makespan], [sim.mean_latency] and
    [sim.throughput] summarize the run.  The incremental certification
    path additionally feeds the [monitor.*] metrics of
    {!Repro_core.Monitor}.

    With [recorder] (default {!Repro_obs.Recorder.null}), the scheduling
    decisions that change an execution's fate are kept as a bounded
    flight-recorder tail: [commit] (Info), [retry] (Debug), [abort]
    (Warn), and [give_up] / [certify_reject] (Error), each labeled with
    [client]/[seq]/[attempt] and stamped with the {e simulated} clock so a
    dumped tail reads in schedule order.  The certification session keeps
    its own wall-clock timeline and does not share this ring. *)
