open Repro_model

type key = int

type entry = { owner : int; label : Label.t; since : float }

type t = {
  compiled : Conflict.compiled;
      (* lock modes are the compiled spec's label probe — the same
         compatibility function the checker's memo fill uses, so runtime
         and checker agree on what commutes by construction *)
  entries : (key, entry) Hashtbl.t;
  mutable next : key;
}

let create spec =
  (* [Explicit] pairs reference nodes, which a lock table never sees: the
     label probe is pessimistically total and the component serializes.
     Say so once instead of silently degrading. *)
  (match spec with
  | Conflict.Explicit _ -> Validate.warn_explicit_fallback ()
  | _ -> ());
  { compiled = Conflict.compile spec; entries = Hashtbl.create 32; next = 0 }

let try_acquire ?(now = 0.0) t ~owner ~permits label =
  let blockers =
    Hashtbl.fold
      (fun _ e acc ->
        if (not (permits e.owner)) && Conflict.probe_labels t.compiled e.label label
        then e.owner :: acc
        else acc)
      t.entries []
  in
  match List.sort_uniq compare blockers with
  | [] ->
    let key = t.next in
    t.next <- key + 1;
    Hashtbl.replace t.entries key { owner; label; since = now };
    Ok key
  | blockers -> Error blockers

let release t key = Hashtbl.remove t.entries key

let release_if ?on_release t pred =
  let victims =
    Hashtbl.fold (fun k e acc -> if pred e.owner then (k, e) :: acc else acc) t.entries []
  in
  List.iter
    (fun (k, e) ->
      Hashtbl.remove t.entries k;
      match on_release with
      | Some f -> f ~owner:e.owner ~label:e.label ~since:e.since
      | None -> ())
    victims;
  victims <> []

let change_owner_if t pred ~owner =
  let moved =
    Hashtbl.fold (fun k e acc -> if pred e.owner then (k, e) :: acc else acc) t.entries []
  in
  List.iter (fun (k, e) -> Hashtbl.replace t.entries k { e with owner }) moved;
  moved <> []

let held t = Hashtbl.length t.entries

let owners t =
  Hashtbl.fold (fun _ e acc -> e.owner :: acc) t.entries []
  |> List.sort_uniq compare
