(* Multi-stream certification service: the library half of [compserve].

   Everything transport-independent lives here — the per-root chunker
   that turns a history file into a streamable prefix chain, the wire
   codec of the length-prefixed line protocol, and the sharded execution
   core that multiplexes many monitored streams across worker domains —
   so the daemon in [bin/cmd_serve.ml] is only sockets and a select
   loop, and the tests drive the full stack in-process. *)

open Repro_model
open Repro_obs
module Engine = Repro_core.Engine
module Reduction = Repro_core.Reduction
module Syntax = Repro_histlang.Syntax

(* ------------------------------------------------------------------ *)
(* Per-root chunking                                                   *)
(* ------------------------------------------------------------------ *)

module Chunks = struct
  type t = { preamble : string; chunks : string list }

  (* The histlang NAME alphabet; schedule names outside it (or colliding
     with a keyword) cannot round-trip through the textual protocol. *)
  let name_ok s =
    s <> ""
    && (not
          (List.mem s
             [ "schedule"; "root"; "tx"; "leaf"; "order"; "intra"; "input"; "log" ]))
    && String.for_all
         (fun c ->
           (c >= 'A' && c <= 'Z')
           || (c >= 'a' && c <= 'z')
           || (c >= '0' && c <= '9')
           || c = '_' || c = '.' || c = '\'' || c = '-')
         s

  let spec_string = function
    | Conflict.Rw -> "rw"
    | Conflict.Never -> "never"
    | Conflict.Always -> "always"
    | Conflict.Same_item -> "same-item"
    | Conflict.Table pairs ->
      Fmt.str "table(%a)"
        Fmt.(list ~sep:(any ",") (pair ~sep:(any "/") string string))
        pairs
    | Conflict.Adt f -> Fmt.str "%a" Repro_model.Adt.pp f
    | Conflict.Explicit _ ->
      invalid_arg
        "Server.Chunks.of_history: explicit conflict specifications reference \
         node names and cannot be streamed"

  (* Split [h] into a schedule preamble plus one chunk per root
     transaction, such that [preamble ^ chunk_1 ^ .. ^ chunk_k] parses to
     [History.prefix_by_roots h k]: node declarations follow the same
     root-major depth-first order (so the parser assigns the same
     identifiers), and each relation line lands in the chunk of its
     later endpoint's root.  Log lines are omitted — [Builder.seal]
     validates a log as a full permutation of its schedule's operations,
     so no restriction of one is replayable, and no certification path
     consults them (they are builder-input validation only). *)
  let of_history h =
    List.iter
      (fun (s : History.schedule) ->
        if not (name_ok s.History.sname) then
          invalid_arg
            (Fmt.str
               "Server.Chunks.of_history: schedule name %S is not streamable"
               s.History.sname))
      (History.schedules h);
    let pre = Buffer.create 256 in
    List.iter
      (fun (s : History.schedule) ->
        Buffer.add_string pre
          (Fmt.str "schedule %s conflict %s\n" s.History.sname
             (spec_string s.History.conflict)))
      (History.schedules h);
    let roots = History.roots h in
    let n_chunks = List.length roots in
    let nmap = Hashtbl.create 64 in
    (* original id -> root-major DFS rank *)
    let chunk_of = Hashtbl.create 64 in
    (* original id -> chunk index *)
    let ctr = ref 0 in
    List.iteri
      (fun ci r ->
        let rec dfs i =
          Hashtbl.replace nmap i !ctr;
          incr ctr;
          Hashtbl.replace chunk_of i ci;
          List.iter dfs (History.children h i)
        in
        dfs r)
      roots;
    let nn i = Fmt.str "n%d" (Hashtbl.find nmap i) in
    let sname sid = (History.schedule h sid).History.sname in
    let bufs = Array.init n_chunks (fun _ -> Buffer.create 256) in
    let add ci line = Buffer.add_string bufs.(ci) line in
    List.iteri
      (fun ci r ->
        let rec dfs i =
          let n = History.node h i in
          (match (n.History.parent, n.History.sched) with
          | None, Some s ->
            add ci (Fmt.str "root %s @@ %s %a\n" (nn i) (sname s) Label.pp n.History.label)
          | Some p, Some s ->
            add ci
              (Fmt.str "tx %s @@ %s parent %s %a\n" (nn i) (sname s) (nn p) Label.pp
                 n.History.label)
          | Some p, None ->
            add ci (Fmt.str "leaf %s parent %s %a\n" (nn i) (nn p) Label.pp n.History.label)
          | None, None -> assert false);
          List.iter dfs n.History.children
        in
        dfs r)
      roots;
    for i = 0 to History.n_nodes h - 1 do
      let n = History.node h i in
      let ci = Hashtbl.find chunk_of i in
      Repro_order.Rel.iter
        (fun a b ->
          let bang = Repro_order.Rel.mem a b n.History.intra_strong in
          add ci
            (Fmt.str "intra%s : %s < %s\n" (if bang then "!" else "") (nn a) (nn b)))
        n.History.intra_weak
    done;
    (* A cross-root pair belongs to the chunk of whichever endpoint's
       root comes later — both names are in scope by then, and the
       restriction to the first k chunks is exactly the restriction to
       the first k roots' subtrees. *)
    let later a b = max (Hashtbl.find chunk_of a) (Hashtbl.find chunk_of b) in
    List.iter
      (fun (s : History.schedule) ->
        Repro_order.Rel.iter
          (fun a b ->
            if History.is_root h a && History.is_root h b then
              let bang = Repro_order.Rel.mem a b s.History.strong_in in
              add (later a b)
                (Fmt.str "input%s : %s < %s\n" (if bang then "!" else "") (nn a) (nn b)))
          s.History.weak_in;
        Repro_order.Rel.iter
          (fun a b ->
            let bang = Repro_order.Rel.mem a b s.History.strong_out in
            add (later a b)
              (Fmt.str "order%s %s : %s < %s\n"
                 (if bang then "!" else "")
                 s.History.sname (nn a) (nn b)))
          s.History.weak_out)
      (History.schedules h);
    { preamble = Buffer.contents pre; chunks = Array.to_list (Array.map Buffer.contents bufs) }
end

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

module Wire = struct
  (* Protocol version 2: version 1 plus an optional [t=<trace>:<parent>]
     context token on [append] frames and the admin requests
     [metrics]/[health]/[slow].  Every version-1 frame is also a
     version-2 frame, so old clients keep working unchanged. *)
  let protocol_version = 2

  type ctx = { trace : int; parent : int }

  type request =
    | Open of { stream : string; window : int option }
    | Append of { stream : string; body : string; ctx : ctx option }
    | Verdict of string
    | Explain of string
    | Close of string
    | Stats
    | Metrics
    | Health
    | Slow of float option  (* retained-event filter threshold, seconds *)

  type response =
    | Ok
    | Verdict_r of { stream : string; accepted : bool; detail : string }
    | Json_r of Json.t
    | Text_r of string
    | Err of string

  type 'a decoded = Need_more | Got of 'a * int | Malformed of string * int

  let stream_ok s =
    s <> "" && String.for_all (fun c -> c > ' ' && c < '\x7f') s

  let ctx_token { trace; parent } = Fmt.str "t=%x:%x" trace parent

  (* [t=<trace-hex>:<parent-hex>]; None on anything else. *)
  let parse_ctx_token w =
    if String.length w < 4 || String.sub w 0 2 <> "t=" then None
    else
      match String.index_from_opt w 2 ':' with
      | None -> None
      | Some c -> (
        let hex s =
          match int_of_string_opt ("0x" ^ s) with
          | Some v when v >= 0 -> Some v
          | _ -> None
        in
        match
          ( hex (String.sub w 2 (c - 2)),
            hex (String.sub w (c + 1) (String.length w - c - 1)) )
        with
        | Some trace, Some parent when trace > 0 -> Some { trace; parent }
        | _ -> None)

  let encode_request = function
    | Open { stream; window = None } -> Fmt.str "open %s\n" stream
    | Open { stream; window = Some w } -> Fmt.str "open %s %d\n" stream w
    | Append { stream; body; ctx = None } ->
      Fmt.str "append %s %d\n%s" stream (String.length body) body
    | Append { stream; body; ctx = Some c } ->
      Fmt.str "append %s %d %s\n%s" stream (String.length body) (ctx_token c)
        body
    | Verdict s -> Fmt.str "verdict %s\n" s
    | Explain s -> Fmt.str "explain %s\n" s
    | Close s -> Fmt.str "close %s\n" s
    | Stats -> "stats\n"
    | Metrics -> "metrics\n"
    | Health -> "health\n"
    | Slow None -> "slow\n"
    | Slow (Some s) -> Fmt.str "slow %g\n" (s *. 1e3)

  let encode_response = function
    | Ok -> "ok\n"
    | Verdict_r { stream; accepted; detail } ->
      Fmt.str "verdict %s %s%s\n" stream
        (if accepted then "accept" else "reject")
        (if detail = "" then "" else " " ^ detail)
    | Json_r j ->
      let payload = Json.to_string j in
      Fmt.str "json %d\n%s\n" (String.length payload) payload
    | Text_r payload -> Fmt.str "text %d\n%s\n" (String.length payload) payload
    | Err msg ->
      let msg = String.map (fun c -> if c = '\n' then ' ' else c) msg in
      Fmt.str "err %s\n" msg

  (* One framed item out of [buf] starting at [pos]: the command line up
     to '\n', plus — for body-carrying frames — the declared number of
     raw bytes after it.  [Need_more] until the frame is complete, so
     callers accumulate reads and retry; [Malformed] consumes the
     offending line so one bad frame does not wedge the connection. *)
  let split_words line =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

  let decode_request buf ~pos =
    match String.index_from_opt buf pos '\n' with
    | None -> Need_more
    | Some nl -> (
      let line = String.sub buf pos (nl - pos) in
      let consumed_line = nl - pos + 1 in
      let malformed msg = Malformed (msg, consumed_line) in
      match split_words line with
      | [ "open"; sid ] when stream_ok sid ->
        Got (Open { stream = sid; window = None }, consumed_line)
      | [ "open"; sid; w ] when stream_ok sid -> (
        match int_of_string_opt w with
        | Some w when w > 0 -> Got (Open { stream = sid; window = Some w }, consumed_line)
        | _ -> malformed "open: window must be a positive integer")
      | [ "append"; sid; n ] when stream_ok sid -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
          if String.length buf - (nl + 1) < n then Need_more
          else
            Got
              ( Append
                  { stream = sid; body = String.sub buf (nl + 1) n; ctx = None },
                consumed_line + n )
        | _ -> malformed "append: expected a byte count")
      | [ "append"; sid; n; tok ] when stream_ok sid -> (
        match (int_of_string_opt n, parse_ctx_token tok) with
        | Some n, Some ctx when n >= 0 ->
          if String.length buf - (nl + 1) < n then Need_more
          else
            Got
              ( Append
                  {
                    stream = sid;
                    body = String.sub buf (nl + 1) n;
                    ctx = Some ctx;
                  },
                consumed_line + n )
        | Some n, None when n >= 0 ->
          (* The byte count is good, so the body length is known: wait for
             it and skip the whole frame, not just the line — otherwise
             the body bytes would be re-parsed as request lines. *)
          if String.length buf - (nl + 1) < n then Need_more
          else
            Malformed ("append: malformed trace context token", consumed_line + n)
        | _ -> malformed "append: expected a byte count")
      | [ "verdict"; sid ] when stream_ok sid -> Got (Verdict sid, consumed_line)
      | [ "explain"; sid ] when stream_ok sid -> Got (Explain sid, consumed_line)
      | [ "close"; sid ] when stream_ok sid -> Got (Close sid, consumed_line)
      | [ "stats" ] -> Got (Stats, consumed_line)
      | [ "metrics" ] -> Got (Metrics, consumed_line)
      | [ "health" ] -> Got (Health, consumed_line)
      | [ "slow" ] -> Got (Slow None, consumed_line)
      | [ "slow"; ms ] -> (
        match float_of_string_opt ms with
        | Some ms when ms >= 0.0 -> Got (Slow (Some (ms /. 1e3)), consumed_line)
        | _ -> malformed "slow: expected a millisecond threshold")
      | [] -> malformed "empty request line"
      | w :: _ -> malformed (Fmt.str "unknown or malformed request %S" w))

  let decode_response buf ~pos =
    match String.index_from_opt buf pos '\n' with
    | None -> Need_more
    | Some nl -> (
      let line = String.sub buf pos (nl - pos) in
      let consumed_line = nl - pos + 1 in
      match split_words line with
      | [ "ok" ] -> Got (Ok, consumed_line)
      | "verdict" :: sid :: verdict :: detail when verdict = "accept" || verdict = "reject"
        ->
        Got
          ( Verdict_r
              {
                stream = sid;
                accepted = verdict = "accept";
                detail = String.concat " " detail;
              },
            consumed_line )
      | [ "json"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
          (* payload + trailing '\n' *)
          if String.length buf - (nl + 1) < n + 1 then Need_more
          else
            Got (Json_r (Json.of_string (String.sub buf (nl + 1) n)), consumed_line + n + 1)
        | _ -> Malformed ("json: expected a byte count", consumed_line))
      | [ "text"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
          if String.length buf - (nl + 1) < n + 1 then Need_more
          else
            Got (Text_r (String.sub buf (nl + 1) n), consumed_line + n + 1)
        | _ -> Malformed ("text: expected a byte count", consumed_line))
      | "err" :: rest -> Got (Err (String.concat " " rest), consumed_line)
      | _ -> Malformed (Fmt.str "unknown response line %S" line, consumed_line))
end

(* ------------------------------------------------------------------ *)
(* Sharded execution core                                              *)
(* ------------------------------------------------------------------ *)

type stream = {
  text : Buffer.t;  (* accumulated history description *)
  eng : Engine.t;
  recorder : Recorder.t;  (* per-stream flight recorder *)
  mutable nodes : int;  (* node count after the last good append *)
  mutable appends : int;
}

(* A [Req] is a wire request plus its response continuation; [enq] is the
   submit timestamp, so the worker can record the shard queue wait as a
   span of the request's trace.  A [Hook] runs an arbitrary closure on
   the shard's own domain — the admin plane uses it to copy shard-private
   state (registry, slow log) without any cross-domain reads. *)
type job =
  | Req of { req : Wire.request; enq : float; k : Wire.response -> unit }
  | Hook of (shard -> unit)

(* Shard-private state, only ever touched by the owning worker domain of
   the {!Repro_par.Shards} set — which is what lets the streams table,
   the metrics registry, the span collector and the slow log go
   lock-free. *)
and shard = {
  index : int;
  streams : (string, stream) Hashtbl.t;
  metrics : Metrics.t;
  labels : Labels.t;  (* {shard=<index>} on every serve.* series *)
  spans : Span.t;  (* per-shard span collector; null unless span_rate *)
  slow : Recorder.t;  (* slow-request log (bounded ring, always on) *)
  slow_s : float;  (* appends slower than this are logged *)
}

type t = {
  pool : job Repro_par.Shards.t;
  state : shard array;  (* indexed by shard index *)
  window : int option;  (* default truncation window for new streams *)
  span_rate : float option;  (* head-sampling rate; None = tracing off *)
  born : float;  (* Clock.now_wall at creation, for health uptime *)
}

let shard_count t = Array.length t.state

(* ---- stream operations (run on the owning shard's domain) ---- *)

let verdict_response sid (v : Engine.verdict) =
  match v with
  | Engine.Accepted serial ->
    Wire.Verdict_r
      {
        stream = sid;
        accepted = true;
        detail = String.concat " " (List.map string_of_int serial);
      }
  | Engine.Rejected f ->
    Wire.Verdict_r
      { stream = sid; accepted = false; detail = Reduction.failure_kind f }

let exec_open ~window:default_window sh sid window =
  if Hashtbl.mem sh.streams sid then Wire.Err (Fmt.str "stream %s already open" sid)
  else begin
    let recorder = Recorder.create () in
    let eng =
      Engine.create
        ~obs:(Sink.v ~metrics:sh.metrics ~recorder ~spans:sh.spans ())
        ?window:(match window with Some _ -> window | None -> default_window)
        ()
    in
    Hashtbl.replace sh.streams sid
      { text = Buffer.create 1024; eng; recorder; nodes = 0; appends = 0 };
    Metrics.incr sh.metrics ~labels:sh.labels "serve.open";
    Metrics.set sh.metrics ~labels:sh.labels "serve.streams"
      (float_of_int (Hashtbl.length sh.streams));
    Wire.Ok
  end

let exec_append sh sid body =
  match Hashtbl.find_opt sh.streams sid with
  | None -> Wire.Err (Fmt.str "no such stream %s" sid)
  | Some s -> (
    let t0 = Clock.now_wall () in
    let rollback = Buffer.length s.text in
    Buffer.add_string s.text body;
    (* The protocol streams text, so the extension contract is enforced
       structurally: re-parse the accumulated description (identifiers
       are assigned by declaration order, so shared nodes keep theirs)
       and hand the engine the grown history.  On any failure the
       appended bytes are rolled back — a bad chunk must not wedge the
       stream. *)
    match Syntax.parse (Buffer.contents s.text) with
    | exception Syntax.Parse_error e ->
      Buffer.truncate s.text rollback;
      Wire.Err (Fmt.str "parse error: %a" Syntax.pp_error e)
    | exception Invalid_argument msg ->
      Buffer.truncate s.text rollback;
      Wire.Err (Fmt.str "invalid history: %s" msg)
    | h -> (
      if History.n_nodes h <= s.nodes then begin
        Buffer.truncate s.text rollback;
        Wire.Err
          (Fmt.str "append adds no nodes (%d before, %d after): not an extension"
             s.nodes (History.n_nodes h))
      end
      else
        match Engine.extend s.eng h with
        | exception Invalid_argument msg ->
          Buffer.truncate s.text rollback;
          Wire.Err (Fmt.str "not an extension: %s" msg)
        | v ->
          s.nodes <- History.n_nodes h;
          s.appends <- s.appends + 1;
          let wall = Clock.now_wall () -. t0 in
          Metrics.incr sh.metrics ~labels:sh.labels "serve.append";
          Metrics.observe sh.metrics ~labels:sh.labels "serve.append_wall_s"
            wall;
          if wall >= sh.slow_s then
            Recorder.record sh.slow ~severity:Recorder.Warn ~cat:"serve"
              ~labels:
                (Labels.v
                   [
                     ("stream", sid);
                     ("shard", string_of_int sh.index);
                     ("append", string_of_int s.appends);
                     ("nodes", string_of_int s.nodes);
                     ("wall_us", Printf.sprintf "%.1f" (wall *. 1e6));
                   ])
              "slow_append";
          verdict_response sid v))

let exec_verdict sh sid =
  match Hashtbl.find_opt sh.streams sid with
  | None -> Wire.Err (Fmt.str "no such stream %s" sid)
  | Some s -> (
    match Engine.verdict s.eng with
    | None -> Wire.Verdict_r { stream = sid; accepted = true; detail = "empty" }
    | Some v -> verdict_response sid v)

let exec_explain sh sid =
  match Hashtbl.find_opt sh.streams sid with
  | None -> Wire.Err (Fmt.str "no such stream %s" sid)
  | Some s ->
    Wire.Json_r
      (Json.Obj
         [
           ("schema", Json.String "compserve-explain/1");
           ("stream", Json.String sid);
           ("appends", Json.Int s.appends);
           ("nodes", Json.Int s.nodes);
           ("engine", Engine.introspect ~deep:false s.eng);
           ("flight_recorder", Recorder.to_json s.recorder);
         ])

let exec_close sh sid =
  if not (Hashtbl.mem sh.streams sid) then Wire.Err (Fmt.str "no such stream %s" sid)
  else begin
    Hashtbl.remove sh.streams sid;
    Metrics.incr sh.metrics ~labels:sh.labels "serve.close";
    Metrics.set sh.metrics ~labels:sh.labels "serve.streams"
      (float_of_int (Hashtbl.length sh.streams));
    Wire.Ok
  end

let exec ~window sh (req : Wire.request) =
  match req with
  | Wire.Open { stream; window = w } -> exec_open ~window sh stream w
  | Wire.Append { stream; body; ctx = _ } -> exec_append sh stream body
  | Wire.Verdict sid -> exec_verdict sh sid
  | Wire.Explain sid -> exec_explain sh sid
  | Wire.Close sid -> exec_close sh sid
  | Wire.Stats | Wire.Metrics | Wire.Health | Wire.Slow _ ->
    (* Admin requests never reach a single shard's exec: [submit] fans
       them out as snapshot hooks and assembles the merged answer. *)
    Wire.Err "internal error: admin request routed to a shard"

(* ---- shard workers ---- *)

let slow_capacity = 256

let default_slow_s = 0.1

let create ?shards ?window ?span_rate ?(slow_s = default_slow_s) () =
  (match window with
  | Some w when w <= 0 -> invalid_arg "Server.create: window must be positive"
  | _ -> ());
  (match span_rate with
  | Some r when not (r >= 0.0 && r <= 1.0) ->
    invalid_arg "Server.create: span_rate must be within [0,1]"
  | _ -> ());
  if not (slow_s >= 0.0) then
    invalid_arg "Server.create: slow_s must be non-negative";
  let n =
    match shards with
    | Some n when n > 0 -> n
    | Some _ -> invalid_arg "Server.create: shards must be positive"
    | None -> max 1 (min 8 (Domain.recommended_domain_count () - 1))
  in
  let state =
    Array.init n (fun i ->
        {
          index = i;
          streams = Hashtbl.create 16;
          metrics = Metrics.create ();
          labels = Labels.v [ ("shard", string_of_int i) ];
          spans =
            (match span_rate with
            (* Tag i+1: tag 0 is reserved for the transport's (or a
               client's) collector, so ids never collide within a trace. *)
            | Some rate -> Span.create ~rate ~tag:(i + 1) ()
            | None -> Span.null);
          slow = Recorder.create ~capacity:slow_capacity ();
          slow_s;
        })
  in
  let run i job =
    let sh = state.(i) in
    match job with
    | Hook f -> ( try f sh with _ -> ())
    | Req { req; enq; k } ->
      (* Span choreography for a traced append: the queue-wait span hangs
         off the transport's decode span (the wire context's parent), the
         engine parents onto the queue-wait via the collector's ambient
         context, and the encode span — the continuation writing the
         response — is a sibling of the queue-wait under the same
         parent. *)
      let trace, parent0 =
        match req with
        | Wire.Append { ctx = Some c; _ } -> (c.Wire.trace, c.Wire.parent)
        | _ -> (0, 0)
      in
      let traced = Span.sampled sh.spans trace in
      if traced then begin
        let qid =
          Span.emit sh.spans ~parent:parent0 ~cat:"serve" ~labels:sh.labels
            ~trace ~t0:enq ~t1:(Clock.now_wall ()) "serve.queue_wait"
        in
        Span.set_ctx sh.spans ~trace ~parent:qid
      end;
      let resp =
        try exec ~window sh req
        with exn ->
          Wire.Err (Fmt.str "internal error: %s" (Printexc.to_string exn))
      in
      if traced then Span.clear_ctx sh.spans;
      let t_enc = if traced then Clock.now_wall () else 0.0 in
      (try k resp with _ -> ());
      if traced then
        ignore
          (Span.emit sh.spans ~parent:parent0 ~cat:"serve" ~labels:sh.labels
             ~trace ~t0:t_enc ~t1:(Clock.now_wall ()) "serve.encode")
  in
  {
    pool = Repro_par.Shards.create ~shards:n ~run;
    state;
    window;
    span_rate;
    born = Clock.now_wall ();
  }

let submit_shard t index job =
  if not (Repro_par.Shards.submit_to t.pool index job) then
    match job with
    | Req { k; _ } -> ( try k (Wire.Err "server draining") with _ -> ())
    | Hook _ -> ()

(* ---- the admin plane ---- *)

(* One shard's contribution to a quiescent merged snapshot, copied on the
   shard's own domain by a [Hook], so the merge below never reads
   shard-private state across domains. *)
type shard_snap = {
  snap_metrics : Metrics.t;
  snap_slow : Recorder.t;
  snap_streams : int;
  snap_report : Json.t;
}

(* Fan a snapshot hook out to every shard; [k] runs on the last shard's
   domain with the contributions in index order ([None] = that shard
   refused, i.e. the server is draining).  The per-slot writes are
   published to the reader by the counter mutex. *)
let snapshot t k =
  let n = Array.length t.state in
  let acc = Array.make n None in
  let mu = Mutex.create () in
  let left = ref n in
  let finish_one () =
    Mutex.lock mu;
    decr left;
    let last = !left = 0 in
    Mutex.unlock mu;
    if last then k acc
  in
  for i = 0 to n - 1 do
    let hook sh =
      (try
         let m = Metrics.create () in
         Metrics.merge ~into:m sh.metrics;
         let r = Recorder.create ~capacity:(Recorder.capacity sh.slow) () in
         Recorder.absorb ~into:r sh.slow;
         acc.(i) <-
           Some
             {
               snap_metrics = m;
               snap_slow = r;
               snap_streams = Hashtbl.length sh.streams;
               snap_report =
                 Json.Obj
                   [
                     ("shard", Json.Int sh.index);
                     ("streams", Json.Int (Hashtbl.length sh.streams));
                     ("metrics", Metrics.to_json sh.metrics);
                     (* Conflict-spec lints of the shard's live streams
                        (unknown operation names falling to a spec's
                        pessimistic default).  Computed here on the shard's
                        own domain — the admin plane, never the append
                        path. *)
                     ( "lint",
                       Json.List
                         (Hashtbl.fold
                            (fun sid (s : stream) acc ->
                              match Engine.history s.eng with
                              | None -> acc
                              | Some h ->
                                List.fold_left
                                  (fun acc w ->
                                    Json.Obj
                                      [
                                        ("stream", Json.String sid);
                                        ( "warning",
                                          Json.String
                                            (Fmt.str "%a" Validate.pp_warning
                                               w) );
                                      ]
                                    :: acc)
                                  acc (Validate.lint h))
                            sh.streams []) );
                   ];
             }
       with _ -> ());
      finish_one ()
    in
    if not (Repro_par.Shards.submit_to t.pool i (Hook hook)) then finish_one ()
  done

let merged_snapshot snaps =
  let metrics = Metrics.create () in
  let slow =
    Recorder.create ~capacity:(max 1 (Array.length snaps) * slow_capacity) ()
  in
  let streams = ref 0 in
  Array.iter
    (fun s ->
      Metrics.merge ~into:metrics s.snap_metrics;
      Recorder.absorb ~into:slow s.snap_slow;
      streams := !streams + s.snap_streams)
    snaps;
  (metrics, slow, !streams)

let slow_event_json (e : Recorder.event) =
  Json.Obj
    [
      ("ts", Json.Float e.Recorder.ts);
      ("severity", Json.String (Recorder.severity_string e.Recorder.severity));
      (* The canonical encoded series form — label values escaped exactly
         as [Labels.encode] does, so [Labels.decode_series] round-trips
         the event. *)
      ( "series",
        Json.String (Labels.series e.Recorder.name e.Recorder.labels) );
    ]

let slow_wall_us (e : Recorder.event) =
  match Labels.find "wall_us" e.Recorder.labels with
  | Some s -> ( match float_of_string_opt s with Some v -> v | None -> 0.0)
  | None -> 0.0

let admin t (req : Wire.request) k =
  snapshot t (fun acc ->
      if Array.exists Option.is_none acc then
        k (Wire.Err "server draining")
      else
        let snaps = Array.map Option.get acc in
        let metrics, slow, streams = merged_snapshot snaps in
        match req with
        | Wire.Stats ->
          k
            (Wire.Json_r
               (Json.Obj
                  [
                    ("schema", Json.String "compserve-stats/1");
                    ( "shards",
                      Json.List
                        (Array.to_list
                           (Array.map (fun s -> s.snap_report) snaps)) );
                    ("coverage", Coverage.to_json metrics);
                  ]))
        | Wire.Metrics -> k (Wire.Text_r (Metrics.to_prometheus metrics))
        | Wire.Health ->
          k
            (Wire.Json_r
               (Json.Obj
                  [
                    ("schema", Json.String "compserve-health/1");
                    ("status", Json.String "ok");
                    ("protocol", Json.Int Wire.protocol_version);
                    ("shards", Json.Int (Array.length snaps));
                    ("streams", Json.Int streams);
                    ("uptime_s", Json.Float (Clock.now_wall () -. t.born));
                    ( "span_rate",
                      match t.span_rate with
                      | Some r -> Json.Float r
                      | None -> Json.Null );
                  ]))
        | Wire.Slow threshold ->
          let keep =
            match threshold with
            | None -> fun _ -> true
            | Some thr -> fun e -> slow_wall_us e >= thr *. 1e6
          in
          let events = List.filter keep (Recorder.events slow) in
          k
            (Wire.Json_r
               (Json.Obj
                  [
                    ("schema", Json.String "compserve-slow/1");
                    ( "threshold_ms",
                      Json.Float
                        ((match threshold with
                         | Some thr -> thr
                         | None -> 0.0)
                        *. 1e3) );
                    ("count", Json.Int (List.length events));
                    ("events", Json.List (List.map slow_event_json events));
                  ]))
        | Wire.Open _ | Wire.Append _ | Wire.Verdict _ | Wire.Explain _
        | Wire.Close _ ->
          assert false)

(* Admin requests fan a snapshot hook out to every shard and assemble the
   merged answer once the last contribution lands; everything else rides
   its stream's home shard, which is what gives one stream a
   single-threaded history of appends. *)
let submit t (req : Wire.request) k =
  match req with
  | Wire.Stats | Wire.Metrics | Wire.Health | Wire.Slow _ -> admin t req k
  | Wire.Open { stream; _ } | Wire.Append { stream; _ } | Wire.Verdict stream
  | Wire.Explain stream | Wire.Close stream ->
    submit_shard t
      (Repro_par.Shards.shard_index t.pool stream)
      (Req { req; enq = Clock.now_wall (); k })

let request t req =
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let slot = ref None in
  submit t req (fun r ->
      Mutex.lock mu;
      slot := Some r;
      Condition.signal cv;
      Mutex.unlock mu);
  Mutex.lock mu;
  while !slot = None do
    Condition.wait cv mu
  done;
  let r = match !slot with Some r -> r | None -> assert false in
  Mutex.unlock mu;
  r

let drain t = Repro_par.Shards.drain t.pool

(* Shard registries are written lock-free on their worker domains, so a
   coherent merged snapshot is only guaranteed once the queues are idle;
   benches and post-drain reporting call this between phases, with
   happens-before established by the completion callbacks they already
   waited on. *)
let metrics_snapshot t =
  let into = Metrics.create () in
  Array.iter (fun sh -> Metrics.merge ~into sh.metrics) t.state;
  into

let spans_snapshot t =
  let into =
    match t.span_rate with
    | Some rate -> Span.create ~rate ()
    | None -> Span.null
  in
  Array.iter (fun sh -> Span.drain ~into sh.spans) t.state;
  into
