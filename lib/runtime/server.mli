(** Multi-stream certification service: the transport-independent half of
    the [compserve] daemon.

    A server multiplexes many monitored certification streams across a
    fixed pool of worker domains.  Each stream is an incremental
    {!Repro_core.Engine} session fed textual history chunks (the
    {!Repro_histlang.Syntax} language); streams are assigned to shards by
    name hash, so one stream's appends execute single-threaded in arrival
    order while distinct streams certify in parallel.  With a truncation
    [window] every stream runs in bounded dense memory — the engine folds
    each certified prefix into a summary as the stream grows (see
    {!Repro_core.Engine.truncate}).

    The socket transport lives in [bin/cmd_serve.ml]; tests and the E18
    benchmark drive {!submit}/{!request} in-process. *)

(** Per-root chunking: turn a history file into a streamable chain. *)
module Chunks : sig
  type t = {
    preamble : string;  (** Schedule declarations; send in the first append. *)
    chunks : string list;  (** One chunk per root transaction, in root order. *)
  }

  val of_history : Repro_model.History.t -> t
  (** Split a history into a schedule preamble plus one textual chunk per
      root transaction such that [preamble ^ chunk_1 ^ .. ^ chunk_k]
      parses to {!Repro_model.History.prefix_by_roots}[ h k] — same
      root-major depth-first identifier assignment, relations restricted
      to the first [k] roots' subtrees (each relation line rides the
      chunk of its later endpoint).  Log lines are omitted: they are
      builder-input validation only (a full-permutation check no
      restriction satisfies) and no certification path consults them.
      Raises [Invalid_argument] on histories that cannot round-trip
      through the language: [Explicit] conflict specifications, schedule
      names outside the NAME alphabet. *)
end

(** The length-prefixed line protocol, both directions.  Requests:
    {v
    open <stream> [<window>]
    append <stream> <nbytes>\n<nbytes of history text>
    verdict <stream>
    explain <stream>
    close <stream>
    stats
    v}
    Responses: [ok], [verdict <stream> accept <serial ids>],
    [verdict <stream> reject <failure-kind>], [json <nbytes>\n<payload>\n],
    [err <message>]. *)
module Wire : sig
  type request =
    | Open of { stream : string; window : int option }
    | Append of { stream : string; body : string }
    | Verdict of string
    | Explain of string
    | Close of string
    | Stats

  type response =
    | Ok
    | Verdict_r of { stream : string; accepted : bool; detail : string }
    | Json_r of Repro_obs.Json.t
    | Err of string

  type 'a decoded =
    | Need_more  (** Frame incomplete; accumulate more bytes and retry. *)
    | Got of 'a * int  (** Decoded item and the number of bytes consumed. *)
    | Malformed of string * int
        (** Bad frame: diagnostic plus bytes to skip (the offending line),
            so one malformed request does not wedge the connection. *)

  val encode_request : request -> string
  val encode_response : response -> string

  val decode_request : string -> pos:int -> request decoded
  (** Decode one request frame starting at [pos]. *)

  val decode_response : string -> pos:int -> response decoded
end

type t

val create : ?shards:int -> ?window:int -> unit -> t
(** Start a server with [shards] worker domains (default: capped at the
    machine's recommended domain count, at most 8) and a default
    truncation [window] applied to streams that do not request their own
    (default: unbounded, no truncation).  Raises [Invalid_argument] on a
    non-positive value of either. *)

val shard_count : t -> int

val submit : t -> Wire.request -> (Wire.response -> unit) -> unit
(** Enqueue a request on its stream's home shard; the continuation runs
    on the worker domain once the request executes (so it must be quick
    and thread-safe — typically: push the encoded response onto a locked
    outbox and wake the transport).  [Stats] fans out to every shard as a
    synchronous barrier job and the continuation receives the merged
    per-shard report.  After {!drain} every request answers
    [Err "server draining"]. *)

val request : t -> Wire.request -> Wire.response
(** Blocking {!submit}: enqueue and wait for the response.  Must not be
    called from a shard worker (it would deadlock on its own queue). *)

val drain : t -> unit
(** Graceful shutdown: stop accepting work, let every shard finish its
    queued requests, and join the worker domains.  Idempotent. *)

val metrics_snapshot : t -> Repro_obs.Metrics.t
(** Merge every shard's registry into a fresh one (counters add,
    histograms add bucket-wise; series keep their [shard=i] label).
    Shard registries are written without locks on the worker domains, so
    call this only when no requests are in flight — after the responses
    you waited for, or after {!drain}. *)
