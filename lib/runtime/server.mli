(** Multi-stream certification service: the transport-independent half of
    the [compserve] daemon.

    A server multiplexes many monitored certification streams across a
    fixed pool of worker domains.  Each stream is an incremental
    {!Repro_core.Engine} session fed textual history chunks (the
    {!Repro_histlang.Syntax} language); streams are assigned to shards by
    name hash, so one stream's appends execute single-threaded in arrival
    order while distinct streams certify in parallel.  With a truncation
    [window] every stream runs in bounded dense memory — the engine folds
    each certified prefix into a summary as the stream grows (see
    {!Repro_core.Engine.truncate}).

    The socket transport lives in [bin/cmd_serve.ml]; tests and the E18
    benchmark drive {!submit}/{!request} in-process. *)

(** Per-root chunking: turn a history file into a streamable chain. *)
module Chunks : sig
  type t = {
    preamble : string;  (** Schedule declarations; send in the first append. *)
    chunks : string list;  (** One chunk per root transaction, in root order. *)
  }

  val of_history : Repro_model.History.t -> t
  (** Split a history into a schedule preamble plus one textual chunk per
      root transaction such that [preamble ^ chunk_1 ^ .. ^ chunk_k]
      parses to {!Repro_model.History.prefix_by_roots}[ h k] — same
      root-major depth-first identifier assignment, relations restricted
      to the first [k] roots' subtrees (each relation line rides the
      chunk of its later endpoint).  Log lines are omitted: they are
      builder-input validation only (a full-permutation check no
      restriction satisfies) and no certification path consults them.
      Raises [Invalid_argument] on histories that cannot round-trip
      through the language: [Explicit] conflict specifications, schedule
      names outside the NAME alphabet. *)
end

(** The length-prefixed line protocol (version 2), both directions.
    Requests:
    {v
    open <stream> [<window>]
    append <stream> <nbytes> [t=<trace>:<parent>]\n<nbytes of history text>
    verdict <stream>
    explain <stream>
    close <stream>
    stats
    metrics
    health
    slow [<threshold ms>]
    v}
    Responses: [ok], [verdict <stream> accept <serial ids>],
    [verdict <stream> reject <failure-kind>], [json <nbytes>\n<payload>\n],
    [text <nbytes>\n<payload>\n], [err <message>].

    Version 1 frames are a strict subset: an [append] without the
    optional [t=…] trace-context token decodes exactly as before, and
    every v1 request line is still a v2 request line, so old clients
    interoperate with new servers (and vice versa — a v2 client that
    sends no trace context and no admin request speaks pure v1). *)
module Wire : sig
  val protocol_version : int
  (** [2]. *)

  type ctx = { trace : int; parent : int }
  (** Trace context carried on an append frame: the (non-zero) trace id
      and the caller's span id, both hex on the wire.  Servers parent the
      request's span tree under [parent]. *)

  type request =
    | Open of { stream : string; window : int option }
    | Append of { stream : string; body : string; ctx : ctx option }
    | Verdict of string
    | Explain of string
    | Close of string
    | Stats
    | Metrics  (** Prometheus exposition text over a merged snapshot. *)
    | Health  (** Liveness summary: shards, streams, uptime. *)
    | Slow of float option
        (** Slow-request log, optionally filtered to appends at or above
            the given wall-time threshold (seconds). *)

  type response =
    | Ok
    | Verdict_r of { stream : string; accepted : bool; detail : string }
    | Json_r of Repro_obs.Json.t
    | Text_r of string  (** Length-prefixed opaque text payload. *)
    | Err of string

  type 'a decoded =
    | Need_more  (** Frame incomplete; accumulate more bytes and retry. *)
    | Got of 'a * int  (** Decoded item and the number of bytes consumed. *)
    | Malformed of string * int
        (** Bad frame: diagnostic plus bytes to skip (the offending line),
            so one malformed request does not wedge the connection. *)

  val encode_request : request -> string
  val encode_response : response -> string

  val decode_request : string -> pos:int -> request decoded
  (** Decode one request frame starting at [pos]. *)

  val decode_response : string -> pos:int -> response decoded
end

type t

val create :
  ?shards:int -> ?window:int -> ?span_rate:float -> ?slow_s:float -> unit -> t
(** Start a server with [shards] worker domains (default: capped at the
    machine's recommended domain count, at most 8) and a default
    truncation [window] applied to streams that do not request their own
    (default: unbounded, no truncation).  [span_rate] enables request
    tracing: each shard gets its own span collector head-sampling traced
    appends at that rate (default: tracing off — the null collector, no
    cost on the append path).  Appends whose engine wall time reaches
    [slow_s] seconds (default 0.1) land in the shard's slow-request log,
    served by {!Wire.Slow}.  Raises [Invalid_argument] on a non-positive
    [shards]/[window], a [span_rate] outside [0,1], or a negative
    [slow_s]. *)

val shard_count : t -> int

val submit : t -> Wire.request -> (Wire.response -> unit) -> unit
(** Enqueue a request on its stream's home shard; the continuation runs
    on the worker domain once the request executes (so it must be quick
    and thread-safe — typically: push the encoded response onto a locked
    outbox and wake the transport).  Admin requests ([Stats], [Metrics],
    [Health], [Slow]) fan a snapshot hook out to every shard — each shard
    copies its private state on its own domain — and the continuation
    receives the answer assembled from the merged copies.  After {!drain}
    every request answers [Err "server draining"]. *)

val request : t -> Wire.request -> Wire.response
(** Blocking {!submit}: enqueue and wait for the response.  Must not be
    called from a shard worker (it would deadlock on its own queue). *)

val drain : t -> unit
(** Graceful shutdown: stop accepting work, let every shard finish its
    queued requests, and join the worker domains.  Idempotent. *)

val metrics_snapshot : t -> Repro_obs.Metrics.t
(** Merge every shard's registry into a fresh one (counters add,
    histograms add bucket-wise; series keep their [shard=i] label).
    Shard registries are written without locks on the worker domains, so
    call this only when no requests are in flight — after the responses
    you waited for, or after {!drain}. *)

val spans_snapshot : t -> Repro_obs.Span.t
(** Drain every shard's span collector, in shard index order, into a
    fresh collector (recording order preserved per shard, like
    {!metrics_snapshot}'s merge) and return it.  Draining empties the
    shard collectors.  Same quiescence requirement as
    {!metrics_snapshot}. *)
