open Repro_model
open Repro_workload
module Trace = Repro_obs.Trace
module Metrics = Repro_obs.Metrics
module Json = Repro_obs.Json
module Recorder = Repro_obs.Recorder
module Labels = Repro_obs.Labels

type protocol = Serial | Locking of { closed : bool } | Certify

let protocol_name = function
  | Serial -> "serial"
  | Locking { closed = true } -> "closed"
  | Locking { closed = false } -> "open"
  | Certify -> "certify"

(* Telemetry timestamps: 1 simulated time unit renders as 1 ms (1000 µs in
   the Chrome trace format) — a readable scale in Perfetto. *)
let sim_us t = t *. 1000.0

type params = {
  protocol : protocol;
  clients : int;
  txs_per_client : int;
  mean_service : float;
  think : float;
  lock_timeout : float;
  backoff : float;
  dispatch_delay : float;
  max_attempts : int;
  seed : int;
  certify_full_recheck : bool;
}

let default_params =
  {
    protocol = Serial;
    clients = 4;
    txs_per_client = 5;
    mean_service = 1.0;
    think = 0.0;
    lock_timeout = 25.0;
    backoff = 4.0;
    dispatch_delay = 0.1;
    max_attempts = 40;
    seed = 1;
    certify_full_recheck = false;
  }

type stats = {
  committed : int;
  aborts : int;
  given_up : int;
  lock_waits : int;
  makespan : float;
  mean_latency : float;
  history : History.t;
}

(* One attempt at executing a logical transaction.  [done_ops] records, for
   every completed non-root node, its completion time, the component that
   scheduled it (its parent's component) and its reversed template path. *)
type attempt = {
  aid : int;
  client : int;
  seq : int;
  attempt_no : int;
  tmpl : Template.t;
  store_tx : Repro_storage.Store.txid;
  first_submitted : float;
  mutable alive : bool;
  mutable done_ops : (float * int * int list) list;
  insts : (int, unit) Hashtbl.t;
      (* transaction-instance ids of this attempt (lock owners) *)
}

type world = {
  p : params;
  topo : Template.topology;
  gen : Prng.t -> client:int -> seq:int -> Template.t;
  locks : Lock.t array;
  store : Repro_storage.Store.t;
  rng : Prng.t;
  mutable now : float;
  mutable events : (float * int * (unit -> unit)) list;
  mutable eseq : int;
  waiters : (unit -> unit) list ref array;
  mutable committed : attempt list; (* commit order, newest first *)
  mutable next_aid : int;
  mutable next_inst : int;
  inst_parent : (int, int) Hashtbl.t; (* instance -> parent instance *)
  mutable aborts : int;
  mutable given_up : int;
  mutable lock_waits : int;
  mutable latencies : float list;
  mutable last_commit : float;
  (* telemetry (both default to the disabled null instances) *)
  session : Repro_core.Engine.t;
      (* Certify protocol: the incremental certification session over the
         committed prefix; idle under the other protocols. *)
  trace : Trace.t;
  metrics : Metrics.t;
  recorder : Recorder.t;
  wait_hist : string; (* per-protocol histogram names, precomputed *)
  hold_hist : string;
  mutable on_release :
    (owner:int -> label:Label.t -> since:float -> unit) option;
}

let at w time fn =
  w.eseq <- w.eseq + 1;
  let ev = (time, w.eseq, fn) in
  let rec ins = function
    | [] -> [ ev ]
    | ((t', _, _) as hd) :: tl -> if time < t' then ev :: hd :: tl else hd :: ins tl
  in
  w.events <- ins w.events

let service_time w = w.p.mean_service *. (0.5 +. Prng.float w.rng 1.0)

let lock_table w c = w.locks.(c)

let closed_nesting w =
  match w.p.protocol with
  | Serial -> true
  | Locking { closed } -> closed
  | Certify -> false (* lock-free; certification happens at commit *)

let lock_free w = match w.p.protocol with Certify -> true | Serial | Locking _ -> false

let wake_component w c =
  let pending = List.rev !(w.waiters.(c)) in
  w.waiters.(c) := [];
  List.iter (fun retry -> retry ()) pending

let release_attempt_locks w att =
  Array.iteri
    (fun c table ->
      if Lock.release_if ?on_release:w.on_release table (fun ow -> Hashtbl.mem att.insts ow)
      then wake_component w c)
    w.locks

let new_instance w att ~parent =
  w.next_inst <- w.next_inst + 1;
  let inst = w.next_inst in
  Hashtbl.replace att.insts inst ();
  (match parent with Some p -> Hashtbl.replace w.inst_parent inst p | None -> ());
  inst

(* The set {q, parent q, ...}: the owners whose retained locks never block
   an operation running on behalf of [q]. *)
let ancestor_chain w q =
  let rec go acc q =
    let acc = q :: acc in
    match Hashtbl.find_opt w.inst_parent q with Some p -> go acc p | None -> acc
  in
  go [] q

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Flight-recorder events use the simulated clock — the same timeline as
   the trace — so a dumped tail reads in schedule order. *)
let sim_event w ?severity ~name ~client ~seq ~attempt () =
  if Recorder.enabled w.recorder then
    Recorder.event w.recorder ?severity ~cat:"sim" ~ts:w.now
      ~labels:
        (Labels.v
           [
             ("client", string_of_int client);
             ("seq", string_of_int seq);
             ("attempt", string_of_int attempt);
           ])
      name

let rec submit w ~client ~seq ~attempt_no ~first_submitted tmpl =
  if attempt_no > w.p.max_attempts then begin
    w.given_up <- w.given_up + 1;
    Metrics.incr w.metrics "sim.given_up";
    sim_event w ~severity:Recorder.Error ~name:"give_up" ~client ~seq
      ~attempt:attempt_no ();
    if Trace.enabled w.trace then
      Trace.instant w.trace ~cat:"sim" ~tid:client ~ts:(sim_us w.now)
        ~args:[ ("seq", Json.Int seq); ("attempts", Json.Int attempt_no) ]
        "give_up"
  end
  else begin
    if attempt_no > 0 then begin
      Metrics.incr w.metrics "sim.retries";
      sim_event w ~severity:Recorder.Debug ~name:"retry" ~client ~seq
        ~attempt:attempt_no ();
      if Trace.enabled w.trace then
        Trace.instant w.trace ~cat:"sim" ~tid:client ~ts:(sim_us w.now)
          ~args:[ ("seq", Json.Int seq); ("attempt", Json.Int attempt_no) ]
          "retry"
    end;
    let att =
      {
        aid =
          (w.next_aid <- w.next_aid + 1;
           w.next_aid);
        client;
        seq;
        attempt_no;
        tmpl;
        store_tx = Repro_storage.Store.begin_tx w.store;
        first_submitted;
        alive = true;
        done_ops = [];
        insts = Hashtbl.create 16;
      }
    in
    exec_node w att [] None None tmpl ~k:(fun () -> commit w att)
  end

(* Execute template node [t] (reversed path [rpath]) scheduled by component
   [parent_comp] on behalf of transaction instance [parent_inst] ([None] for
   the root); call [k] when it completes. *)
and exec_node w att rpath parent_comp parent_inst (t : Template.t) ~k =
  let self_inst = new_instance w att ~parent:parent_inst in
  (* Invocation latency: a remote call does not reach its component
     instantaneously, so concurrent transactions' lock requests genuinely
     interleave. *)
  let start () =
    if att.alive then
      exec_node_locked w att rpath parent_comp parent_inst self_inst t ~k
  in
  if parent_comp = None || w.p.dispatch_delay <= 0.0 then start ()
  else begin
    Metrics.incr w.metrics "sim.dispatches";
    if Trace.enabled w.trace then
      Trace.instant w.trace ~cat:"sim" ~tid:att.client ~ts:(sim_us w.now)
        ~args:
          [
            ("op", Json.String t.Template.label.Label.name);
            ("component", Json.Int (Option.get parent_comp));
          ]
        "dispatch";
    at w (w.now +. (w.p.dispatch_delay *. (0.5 +. Prng.float w.rng 1.0))) start
  end

and exec_node_locked w att rpath parent_comp parent_inst self_inst (t : Template.t) ~k =
  acquire w att parent_comp parent_inst t.Template.label ~k:(fun () ->
      let finish () =
        (match parent_comp with
        | Some c -> att.done_ops <- (w.now, c, rpath) :: att.done_ops
        | None -> ());
        (* This node's children's locks (owner: [self_inst]): open nesting
           releases them at subtransaction commit; closed nesting passes
           them to the parent, which retains them to the root. *)
        if closed_nesting w then begin
          match parent_inst with
          | Some p ->
            Array.iteri
              (fun c table ->
                if Lock.change_owner_if table (fun ow -> ow = self_inst) ~owner:p
                then wake_component w c)
              w.locks
          | None -> () (* the root's locks die at commit *)
        end
        else
          Array.iteri
            (fun c table ->
              if Lock.release_if ?on_release:w.on_release table (fun ow -> ow = self_inst)
              then wake_component w c)
            w.locks;
        k ()
      in
      match t.Template.children with
      | [] ->
        let dt = service_time w in
        at w (w.now +. dt) (fun () ->
            if att.alive then begin
              ignore (Repro_storage.Store.apply w.store att.store_tx t.Template.label);
              finish ()
            end)
      | children ->
        let c = Option.get t.Template.component in
        if t.Template.sequential then begin
          let rec seq_run i = function
            | [] -> finish ()
            | child :: rest ->
              exec_node w att (i :: rpath) (Some c) (Some self_inst) child
                ~k:(fun () -> if att.alive then seq_run (i + 1) rest)
          in
          seq_run 0 children
        end
        else begin
          let remaining = ref (List.length children) in
          let child_done () =
            decr remaining;
            if !remaining = 0 && att.alive then finish ()
          in
          List.iteri
            (fun i child ->
              exec_node w att (i :: rpath) (Some c) (Some self_inst) child
                ~k:child_done)
            children
        end)

(* Acquire the lock protecting an operation at its scheduling component on
   behalf of [parent_inst], blocking (with a timeout that aborts the root)
   while conflicting locks of non-ancestors are held. *)
and acquire w att parent_comp parent_inst label ~k =
  if lock_free w then k ()
  else
  match (parent_comp, parent_inst) with
  | None, _ | _, None -> k ()
  | Some c, Some owner ->
    let acquired = ref false in
    let blocked_once = ref false in
    let wait_start = ref 0.0 in
    (* Close the lock_wait span whichever way the wait ends. *)
    let wait_over outcome =
      let wait = w.now -. !wait_start in
      Metrics.observe w.metrics w.wait_hist wait;
      if Trace.enabled w.trace then
        Trace.complete w.trace ~cat:"sim" ~pid:(c + 1) ~tid:att.client
          ~ts:(sim_us !wait_start) ~dur:(sim_us wait)
          ~args:
            [
              ("op", Json.String label.Label.name);
              ("outcome", Json.String outcome);
            ]
          "lock_wait"
    in
    let rec try_lock () =
      if att.alive && not !acquired then begin
        let chain = ancestor_chain w owner in
        let permits ow = List.mem ow chain in
        match Lock.try_acquire ~now:w.now (lock_table w c) ~owner ~permits label with
        | Ok _key ->
          acquired := true;
          if !blocked_once then wait_over "acquired";
          Metrics.incr w.metrics "sim.lock_acquires";
          if Trace.enabled w.trace then
            Trace.instant w.trace ~cat:"sim" ~pid:(c + 1) ~tid:att.client
              ~ts:(sim_us w.now)
              ~args:
                [
                  ("op", Json.String label.Label.name);
                  ("owner", Json.Int owner);
                ]
              "lock_acquire";
          k ()
        | Error blockers ->
          if not !blocked_once then begin
            blocked_once := true;
            wait_start := w.now;
            w.lock_waits <- w.lock_waits + 1;
            Metrics.incr w.metrics "sim.lock_waits";
            if Trace.enabled w.trace then
              Trace.instant w.trace ~cat:"sim" ~pid:(c + 1) ~tid:att.client
                ~ts:(sim_us w.now)
                ~args:
                  [
                    ("op", Json.String label.Label.name);
                    ("blockers", Json.List (List.map (fun b -> Json.Int b) blockers));
                  ]
                "lock_blocked";
            at w (w.now +. w.p.lock_timeout) (fun () ->
                if att.alive && not !acquired then begin
                  wait_over "timeout";
                  abort w att
                end)
          end;
          w.waiters.(c) := try_lock :: !(w.waiters.(c))
      end
    in
    try_lock ()

and abort w att =
  if att.alive then begin
    att.alive <- false;
    w.aborts <- w.aborts + 1;
    Metrics.incr w.metrics "sim.aborts";
    sim_event w ~severity:Recorder.Warn ~name:"abort" ~client:att.client
      ~seq:att.seq ~attempt:att.attempt_no ();
    if Trace.enabled w.trace then
      Trace.instant w.trace ~cat:"sim" ~tid:att.client ~ts:(sim_us w.now)
        ~args:
          [ ("aid", Json.Int att.aid); ("attempt", Json.Int att.attempt_no) ]
        "abort";
    Repro_storage.Store.abort w.store att.store_tx;
    release_attempt_locks w att;
    let delay = w.p.backoff *. (0.5 +. Prng.float w.rng 1.0) in
    if Trace.enabled w.trace then
      Trace.complete w.trace ~cat:"sim" ~tid:att.client ~ts:(sim_us w.now)
        ~dur:(sim_us delay)
        ~args:[ ("aid", Json.Int att.aid) ]
        "backoff";
    at w (w.now +. delay) (fun () ->
        submit w ~client:att.client ~seq:att.seq ~attempt_no:(att.attempt_no + 1)
          ~first_submitted:att.first_submitted att.tmpl)
  end

and commit w att =
  if att.alive then begin
    if lock_free w && not (certifies w att) then abort w att
    else begin
    att.alive <- false;
    Repro_storage.Store.commit w.store att.store_tx;
    release_attempt_locks w att;
    w.committed <- att :: w.committed;
    let latency = w.now -. att.first_submitted in
    w.latencies <- latency :: w.latencies;
    w.last_commit <- max w.last_commit w.now;
    Metrics.incr w.metrics "sim.committed";
    Metrics.observe w.metrics "sim.latency" latency;
    sim_event w ~name:"commit" ~client:att.client ~seq:att.seq
      ~attempt:att.attempt_no ();
    if Trace.enabled w.trace then
      Trace.instant w.trace ~cat:"sim" ~tid:att.client ~ts:(sim_us w.now)
        ~args:
          [
            ("aid", Json.Int att.aid);
            ("seq", Json.Int att.seq);
            ("attempt", Json.Int att.attempt_no);
            ("latency", Json.Float latency);
          ]
        "commit";
    (* The client session continues. *)
    let seq = att.seq + 1 in
    if seq < w.p.txs_per_client then begin
      let client = att.client in
      at w (w.now +. w.p.think) (fun () ->
          let tmpl = w.gen w.rng ~client ~seq in
          submit w ~client ~seq ~attempt_no:0 ~first_submitted:w.now tmpl)
    end
    end
  end

(* Backward validation for the lock-free protocol: the candidate commits
   only if the committed prefix extended with it is still Comp-C.  Because
   every commit re-certifies the whole prefix, the finally emitted history
   is guaranteed correct.

   The decision is made by the engine's incremental path: the assembly
   order is deterministic and oldest-first, so the candidate history
   extends the session's snapshot of the committed prefix (new nodes get
   larger ids, relations only grow) and one [Engine.extend] certifies it
   against the warm conflict memos and the previously closed observed
   order; a rejected candidate is rolled back with [Engine.undo] so the
   snapshot stays the committed prefix.  [certify_full_recheck] restores
   the legacy oracle — a cold batch [Compc.is_correct] over the whole
   prefix — for benchmarking and equivalence tests. *)
(* The certification check runs the real Comp-C decision procedure, so its
   cost is wall-clock time, not simulated time; the trace span starts at
   the simulated commit point but its duration (and the metrics histogram)
   report the wall cost.  The checker's own per-level telemetry is not
   threaded through here — its wall-clock timestamps would not line up with
   this sink's simulated clock — but its metrics (dimensionless counters and
   durations) are shared. *)
and certifies w att =
  let trial = assemble_attempts w (att :: w.committed) in
  let t0 = Repro_obs.Clock.now_wall () in
  let t0c = Repro_obs.Clock.now_cpu () in
  let ok =
    if w.p.certify_full_recheck then
      Repro_core.Compc.is_correct ~metrics:w.metrics trial
    else
      match Repro_core.Engine.extend w.session trial with
      | Repro_core.Engine.Accepted _ -> true
      | Repro_core.Engine.Rejected _ ->
        Repro_core.Engine.undo w.session;
        false
  in
  let wall = Repro_obs.Clock.now_wall () -. t0 in
  Metrics.incr w.metrics "sim.certify_checks";
  if not ok then begin
    Metrics.incr w.metrics "sim.certify_rejects";
    sim_event w ~severity:Recorder.Error ~name:"certify_reject"
      ~client:att.client ~seq:att.seq ~attempt:att.attempt_no ()
  end;
  Metrics.observe w.metrics "sim.certify_wall_s" wall;
  Metrics.observe w.metrics "sim.certify_cpu_s"
    (Repro_obs.Clock.now_cpu () -. t0c);
  if Trace.enabled w.trace then
    Trace.complete w.trace ~cat:"sim" ~tid:att.client ~ts:(sim_us w.now)
      ~dur:(wall *. 1e6)
      ~args:
        [
          ("aid", Json.Int att.aid);
          ("prefix", Json.Int (List.length w.committed));
          ("ok", Json.Bool ok);
          ("wall_ms", Json.Float (wall *. 1e3));
        ]
      "certify_check";
  ok

(* ------------------------------------------------------------------ *)
(* History assembly                                                    *)
(* ------------------------------------------------------------------ *)

and assemble_attempts w newest_first =
  let module B = History.Builder in
  let b = B.create () in
  let scheds =
    Array.map (fun (name, spec) -> B.schedule b ~conflict:spec name) w.topo.Template.components
  in
  (* committed, oldest first *)
  let committed = List.rev newest_first in
  (* component -> (completion time, node id) list, for the logs *)
  let log_entries = Array.make (Array.length scheds) [] in
  (* (client, root component) -> last root, for session input orders *)
  let last_root = Hashtbl.create 8 in
  List.iter
    (fun att ->
      (* Build this attempt's execution tree; remember path -> node id. *)
      let ids = Hashtbl.create 16 in
      let rec build rpath parent (t : Template.t) =
        let id =
          match (parent, t.Template.component) with
          | None, Some c ->
            B.root b ~sched:scheds.(c)
              (Label.v
                 ~args:t.Template.label.Label.args
                 (Fmt.str "%s.%d.%d" t.Template.label.Label.name att.client att.seq))
          | None, None -> invalid_arg "Sim: root template must name a component"
          | Some p, Some c -> B.tx b ~parent:p ~sched:scheds.(c) t.Template.label
          | Some p, None -> B.leaf b ~parent:p t.Template.label
        in
        Hashtbl.replace ids rpath id;
        let kids = List.mapi (fun i child -> build (i :: rpath) (Some id) child) t.Template.children in
        if t.Template.sequential then begin
          let rec chain = function
            | a :: (b' :: _ as rest) ->
              B.intra_strong b ~a ~b:b';
              chain rest
            | _ -> ()
          in
          chain kids
        end;
        id
      in
      let root = build [] None att.tmpl in
      (* Session order: strong input between consecutive roots of a client
         on the same component. *)
      let rc = Option.get att.tmpl.Template.component in
      (match Hashtbl.find_opt last_root (att.client, rc) with
      | Some prev -> B.input_strong b ~a:prev ~b:root
      | None -> ());
      Hashtbl.replace last_root (att.client, rc) root;
      (* Log entries. *)
      List.iter
        (fun (time, c, rpath) ->
          match Hashtbl.find_opt ids rpath with
          | Some id -> log_entries.(c) <- (time, id) :: log_entries.(c)
          | None -> assert false)
        att.done_ops)
    committed;
  Array.iteri
    (fun c entries ->
      match entries with
      | [] -> ()
      | entries ->
        let sorted =
          List.sort (fun (t1, i1) (t2, i2) -> compare (t1, i1) (t2, i2)) entries
        in
        B.log b ~sched:scheds.(c) (List.map snd sorted))
    log_entries;
  B.seal b

let assemble w = assemble_attempts w w.committed

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(trace = Trace.null) ?(metrics = Metrics.null)
    ?(recorder = Recorder.null) p topo ~gen =
  let n = Array.length topo.Template.components in
  let proto = protocol_name p.protocol in
  let w =
    {
      p;
      topo;
      gen;
      locks = Array.init n (fun c ->
          match p.protocol with
          | Serial -> Lock.create Conflict.Always
          | Locking _ | Certify -> Lock.create (snd topo.Template.components.(c)));
      store = Repro_storage.Store.create ();
      rng = Prng.create ~seed:p.seed;
      now = 0.0;
      events = [];
      eseq = 0;
      waiters = Array.init n (fun _ -> ref []);
      committed = [];
      next_aid = 0;
      next_inst = 0;
      inst_parent = Hashtbl.create 256;
      aborts = 0;
      given_up = 0;
      lock_waits = 0;
      latencies = [];
      last_commit = 0.0;
      session = Repro_core.Engine.create ~obs:(Repro_obs.Sink.v ~metrics ()) ();
      trace;
      metrics;
      recorder;
      wait_hist = "sim.lock_wait_time." ^ proto;
      hold_hist = "sim.lock_hold_time." ^ proto;
      on_release = None;
    }
  in
  if Metrics.enabled metrics then
    w.on_release <-
      Some
        (fun ~owner:_ ~label:_ ~since ->
          Metrics.observe w.metrics w.hold_hist (w.now -. since));
  if Trace.enabled trace then begin
    Trace.set_process_name trace ~pid:0 "clients";
    Array.iteri
      (fun c (name, _) ->
        Trace.set_process_name trace ~pid:(c + 1) ("component:" ^ name))
      topo.Template.components;
    for client = 0 to p.clients - 1 do
      Trace.set_thread_name trace ~pid:0 ~tid:client (Fmt.str "client %d" client)
    done
  end;
  (* Initial submissions, slightly staggered for determinism. *)
  for client = 0 to p.clients - 1 do
    at w (0.001 *. float_of_int client) (fun () ->
        let tmpl = w.gen w.rng ~client ~seq:0 in
        Template.validate topo tmpl;
        submit w ~client ~seq:0 ~attempt_no:0 ~first_submitted:w.now tmpl)
  done;
  let guard = ref 0 in
  let rec loop () =
    match w.events with
    | [] -> ()
    | (time, _, fn) :: rest ->
      incr guard;
      if !guard > 5_000_000 then failwith "Sim.run: event budget exceeded";
      w.events <- rest;
      w.now <- time;
      fn ();
      loop ()
  in
  loop ();
  let committed = List.length w.committed in
  let mean_latency =
    match w.latencies with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  if Metrics.enabled metrics then begin
    Metrics.set metrics "sim.makespan" w.last_commit;
    Metrics.set metrics "sim.mean_latency" mean_latency;
    Metrics.set metrics "sim.throughput"
      (if w.last_commit > 0.0 then float_of_int committed /. w.last_commit
       else 0.0)
  end;
  {
    committed;
    aborts = w.aborts;
    given_up = w.given_up;
    lock_waits = w.lock_waits;
    makespan = w.last_commit;
    mean_latency;
    history = assemble w;
  }
