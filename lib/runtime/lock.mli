(** Semantic lock tables with nested-transaction ownership.

    Each runtime component guards its operations with a lock table whose
    compatibility relation is the complement of the component's conflict
    specification — the classical generalization of read/write locks to
    commutativity-based ("semantic") locking.

    Ownership follows Moss-style nested locking: a lock on an operation is
    held by the {e transaction instance on whose behalf} the operation runs
    (its parent node in the execution tree).  A conflicting lock blocks a
    requester unless its holder is the requester itself or one of the
    requester's ancestors — ancestors' retained locks never block their own
    descendants.  When a subtransaction commits, its locks are released
    (open nesting) or inherited by its parent (closed nesting); the
    simulator drives both through {!release_if} and {!change_owner_if}. *)

open Repro_model

type t

val create : Conflict.spec -> t
(** Compiles the spec once ({!Conflict.compile}); every grant decision is
    a {!Conflict.probe_labels} against the held labels — the same
    compatibility function the checker's conflict memo probes, so the
    runtime's lock modes and the checker agree on what commutes by
    construction.  An [Explicit] spec has no label-level meaning: the
    table treats every pair as conflicting (complete serialization) and
    emits a one-time {!Repro_model.Validate.warn_explicit_fallback}
    warning on stderr. *)

type key = int
(** Identifies one granted lock. *)

val try_acquire :
  ?now:float ->
  t ->
  owner:int ->
  permits:(int -> bool) ->
  Label.t ->
  (key, int list) result
(** [try_acquire t ~owner ~permits lbl] grants a lock unless some held lock
    with a conflicting label belongs to an owner for which [permits] is
    [false].  [permits] is the requester's ancestor test (it must accept
    [owner] itself).  On refusal, returns the blocking owners.  [now]
    (default 0) stamps the grant so telemetry can measure hold times. *)

val release : t -> key -> unit
(** Release one granted lock; unknown keys are ignored. *)

val release_if :
  ?on_release:(owner:int -> label:Label.t -> since:float -> unit) ->
  t ->
  (int -> bool) ->
  bool
(** Release every lock whose owner satisfies the predicate; returns whether
    anything was released (so the caller knows to wake waiters).
    [on_release] is invoked once per released lock with its owner, label
    and grant timestamp — the hook the simulator uses for lock-hold-time
    histograms. *)

val change_owner_if : t -> (int -> bool) -> owner:int -> bool
(** Transfer every lock whose owner satisfies the predicate to a new owner
    (closed-nesting inheritance; the grant timestamp is preserved — the
    hold continues); returns whether anything changed. *)

val held : t -> int
(** Number of currently granted locks. *)

val owners : t -> int list
(** Owners currently holding at least one lock (deduplicated). *)
