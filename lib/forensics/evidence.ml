open Repro_order
open Repro_model
open Ids
module Compc = Repro_core.Compc
module Engine = Repro_core.Engine
module Reduction = Repro_core.Reduction
module Observed = Repro_core.Observed
module Provenance = Repro_core.Provenance
module Front = Repro_core.Front
module Shrink = Repro_core.Shrink
module Json = Repro_obs.Json
module Dot = Repro_histlang.Dot
module Syntax = Repro_histlang.Syntax

type t = {
  verdict : Compc.verdict;
  prov : Provenance.t option;
  edges : ((id * id) * Reduction.edge) list;
  shrunk : Shrink.result option;
  extra : (string * Json.t) list;
}

(* Every assembly path goes through a session: its certificate, provenance
   and cycle classification are cached, so evidence after a batch analysis
   (or a monitored run) reuses the session's closure and conflict memo
   instead of recomputing them. *)
let of_session ?(shrink = false) ?max_probes ?(extra = []) s =
  let verdict =
    {
      Compc.history = Option.get (Engine.history s);
      relations = Option.get (Engine.relations s);
      certificate = Engine.certificate s;
    }
  in
  let e = Engine.explain s in
  let shrunk =
    if shrink && not (Engine.accepted s) then Engine.shrink ?max_probes s
    else None
  in
  { verdict; prov = e.Engine.provenance; edges = e.Engine.cycle_edges; shrunk; extra }

let build ?shrink ?max_probes ?extra (v : Compc.verdict) =
  of_session ?shrink ?max_probes ?extra
    (Engine.of_parts v.Compc.history v.Compc.relations v.Compc.certificate)

let provenance t = t.prov
let edges t = t.edges
let shrunk t = t.shrunk

(* ---- JSON ---- *)

let sname h s = (History.schedule h s).History.sname

let node_json h i =
  (* Owning schedule mirrors {!History.pp_node_sched}: the operation's
     schedule, or for roots the schedule they are transactions of. *)
  let sched =
    match (History.sched_of_op h i, History.sched_of_tx h i) with
    | Some s, _ | None, Some s -> Json.String (sname h s)
    | None, None -> Json.Null
  in
  Json.Obj
    [
      ("id", Json.Int i);
      ("label", Json.String (Fmt.str "%a" (History.pp_node h) i));
      ("schedule", sched);
    ]

let reason_json h (r : Provenance.reason) =
  match r with
  | Provenance.Base_output { sched } ->
    Json.Obj
      [
        ("rule", Json.String "base-output");
        ("schedule", Json.String (sname h sched));
      ]
  | Provenance.Base_conflict { sched; op_a; op_b } ->
    Json.Obj
      [
        ("rule", Json.String "base-conflict");
        ("schedule", Json.String (sname h sched));
        ("ops", Json.List [ Json.Int op_a; Json.Int op_b ]);
      ]
  | Provenance.Climb { from_a; from_b; sched } ->
    Json.Obj
      [
        ("rule", Json.String "climb");
        ("from", Json.List [ Json.Int from_a; Json.Int from_b ]);
        ( "schedule",
          match sched with
          | Some s -> Json.String (sname h s)
          | None -> Json.Null );
      ]
  | Provenance.Trans { mid } ->
    Json.Obj [ ("rule", Json.String "trans"); ("mid", Json.Int mid) ]

let chain_json h prov (a, b) =
  Json.List
    (List.map
       (fun (e : Provenance.entry) ->
         Json.Obj
           [
             ("a", Json.Int e.Provenance.a);
             ("b", Json.Int e.Provenance.b);
             ("reason", reason_json h e.Provenance.reason);
           ])
       (Provenance.chain prov a b))

let edge_json h prov ((a, b), (e : Reduction.edge)) =
  let kind, via, prov_chain =
    match e with
    | Reduction.Obs_edge { via } ->
      ("obs", Some via, Some (chain_json h prov via))
    | Reduction.Inp_edge { via } -> ("inp", Some via, None)
    | Reduction.Intra_edge { via } -> ("intra", Some via, None)
    | Reduction.Unexplained -> ("unexplained", None, None)
  in
  Json.Obj
    ([
       ("from", Json.Int a);
       ("to", Json.Int b);
       ("kind", Json.String kind);
       ( "via",
         match via with
         | Some (x, y) -> Json.List [ Json.Int x; Json.Int y ]
         | None -> Json.Null );
     ]
    @ match prov_chain with Some c -> [ ("provenance", c) ] | None -> [])

let fronts_json h rel =
  Json.List
    (List.init
       (History.order h + 1)
       (fun lvl ->
         let f = Front.make h rel lvl in
         Json.Obj
           [
             ("level", Json.Int lvl);
             ("members", Json.Int (Int_set.cardinal f.Front.members));
             ("obs_pairs", Json.Int (Rel.cardinal f.Front.obs));
             ("inp_pairs", Json.Int (Rel.cardinal f.Front.inp));
           ]))

let shrunk_json (r : Shrink.result) =
  Json.Obj
    [
      ("kind", Json.String r.Shrink.kind);
      ("nodes", Json.Int (History.n_nodes r.Shrink.history));
      ("roots", Json.Int (List.length (History.roots r.Shrink.history)));
      ("probes", Json.Int r.Shrink.probes);
      ("dropped_roots", Json.Int r.Shrink.dropped_roots);
      ("dropped_nodes", Json.Int r.Shrink.dropped_nodes);
      ("histlang", Json.String (Syntax.to_string r.Shrink.history));
    ]

let to_json t =
  let v = t.verdict in
  let h = v.Compc.history in
  let rel = v.Compc.relations in
  let base =
    [
      ("schema", Json.String "evidence/1");
      ( "verdict",
        Json.String (if Compc.is_correct_verdict v then "accept" else "reject")
      );
      ( "history",
        Json.Obj
          [
            ("nodes", Json.Int (History.n_nodes h));
            ("roots", Json.Int (List.length (History.roots h)));
            ("schedules", Json.Int (History.n_schedules h));
            ("order", Json.Int (History.order h));
          ] );
    ]
  in
  let tail =
    match v.Compc.certificate.Reduction.outcome with
    | Ok serial ->
      [ ("serial_order", Json.List (List.map (fun i -> Json.Int i) serial)) ]
    | Error f ->
      let prov = Option.get t.prov in
      [
        ( "failure",
          Json.Obj
            [
              ("kind", Json.String (Reduction.failure_kind f));
              ("level", Json.Int (Reduction.failure_level f));
              ( "cycle",
                Json.List
                  (List.map (node_json h) (Reduction.failure_cycle f)) );
              ("edges", Json.List (List.map (edge_json h prov) t.edges));
            ] );
        ( "provenance",
          Json.Obj
            [
              ("pairs", Json.Int (Provenance.cardinal prov));
              ("consistent", Json.Bool (Provenance.consistent prov));
            ] );
      ]
      @
      (match t.shrunk with
      | Some r -> [ ("shrunk", shrunk_json r) ]
      | None -> [])
  in
  Json.Obj (base @ [ ("fronts", fronts_json h rel) ] @ tail @ t.extra)

(* ---- DOT ---- *)

let dot t =
  let v = t.verdict in
  let h = v.Compc.history in
  let obs = v.Compc.relations.Observed.obs in
  match v.Compc.certificate.Reduction.outcome with
  | Ok _ -> Dot.forest ~obs h
  | Error f ->
    let cycle = Reduction.failure_cycle f in
    let positions = List.mapi (fun k n -> (n, k)) cycle in
    Dot.forest ~obs
      ~highlight_nodes:(Int_set.of_list cycle)
      ~highlight_edges:(List.map fst t.edges)
      ~annotate:(fun i ->
        Option.map (Fmt.str "cycle[%d]") (List.assoc_opt i positions))
      h

(* ---- text ---- *)

let pp_edge h prov ppf ((a, b), (e : Reduction.edge)) =
  let pn = History.pp_node_sched h in
  match e with
  | Reduction.Obs_edge { via } ->
    Fmt.pf ppf "@[<v 2>%a -obs-> %a, derived:@ %a@]" pn a pn b
      (Provenance.pp_chain prov) via
  | Reduction.Inp_edge { via = x, y } ->
    Fmt.pf ppf "%a -inp-> %a  (input-order pair %a -> %a)" pn a pn b pn x pn y
  | Reduction.Intra_edge { via = x, y } ->
    Fmt.pf ppf "%a -intra-> %a  (weak intra pair %a -> %a)" pn a pn b pn x pn
      y
  | Reduction.Unexplained -> Fmt.pf ppf "%a -> %a  (unexplained)" pn a pn b

let pp ppf t =
  let v = t.verdict in
  let h = v.Compc.history in
  Compc.explain ppf v;
  (match t.prov with
  | None -> ()
  | Some prov ->
    Fmt.pf ppf "provenance: %d derived pairs, %s@."
      (Provenance.cardinal prov)
      (if Provenance.consistent prov then "consistent with the closure"
       else "INCONSISTENT with the closure");
    List.iter (fun e -> Fmt.pf ppf "%a@." (pp_edge h prov) e) t.edges);
  match t.shrunk with
  | None -> ()
  | Some r ->
    Fmt.pf ppf
      "shrunk: %d -> %d nodes (%d roots and %d nodes dropped in %d probes), \
       still %s@.%s"
      (History.n_nodes h)
      (History.n_nodes r.Shrink.history)
      r.Shrink.dropped_roots r.Shrink.dropped_nodes r.Shrink.probes
      r.Shrink.kind
      (Syntax.to_string r.Shrink.history)
