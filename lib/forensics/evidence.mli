(** Machine-readable evidence reports for Comp-C verdicts.

    An evidence value bundles everything forensic about one verdict: the
    witness cycle classified edge by edge ({!Repro_core.Reduction.cycle_edges}),
    the observed-order provenance of each cycle edge
    ({!Repro_core.Provenance}), the optional 1-minimal shrunken
    counterexample ({!Repro_core.Shrink}), and per-level front sizes.
    Three renderings share the one value: {!to_json} (schema ["evidence/1"],
    built on {!Repro_obs.Json}), {!dot} (the execution forest with the
    witness cycle highlighted), and {!pp} (the human transcript —
    {!Repro_core.Compc.explain} plus derivation chains and the shrink
    summary).

    Evidence is assembled from an {!Repro_core.Engine} session
    ({!of_session}), reusing its cached closure, conflict memo, certificate
    and provenance; {!build} adopts a pre-computed {!Repro_core.Compc}
    verdict into a session first.  Strictly cold-path machinery: real work
    happens only on a rejection, and nothing in the accept fast path
    depends on this library. *)

open Repro_order.Ids

type t

val of_session :
  ?shrink:bool ->
  ?max_probes:int ->
  ?extra:(string * Repro_obs.Json.t) list ->
  Repro_core.Engine.t ->
  t
(** [of_session s] assembles the evidence for the session's current
    verdict, entirely from the session's caches ({!Repro_core.Engine.explain}).
    On a rejection it classifies the witness cycle's edges against the
    cached provenance; with [shrink] (default [false]) it additionally runs
    the delta-debugging shrinker ([max_probes] forwarded, default 2000),
    whose candidate restrictions inherit the session history's conflict
    memo.  [extra] fields are appended verbatim to the JSON object — the
    monitor mode uses this to record the violating prefix.  On an accepted
    verdict the evidence is just the verdict and the serial order.  Raises
    [Invalid_argument] on an empty session. *)

val build :
  ?shrink:bool ->
  ?max_probes:int ->
  ?extra:(string * Repro_obs.Json.t) list ->
  Repro_core.Compc.verdict ->
  t
(** [build v] is {!of_session} over a session adopting [v]'s
    already-computed state ({!Repro_core.Engine.of_parts}) — nothing is
    recomputed. *)

val provenance : t -> Repro_core.Provenance.t option
(** The replayed provenance index ([None] on accepted verdicts). *)

val edges : t -> ((id * id) * Repro_core.Reduction.edge) list
(** The classified witness-cycle edges ([[]] on accepted verdicts). *)

val shrunk : t -> Repro_core.Shrink.result option

val to_json : t -> Repro_obs.Json.t
(** Schema ["evidence/1"]: verdict, history sizes, per-level fronts, and —
    on rejection — the failure (kind, level, cycle members with labels and
    owning schedules, edges with witness pairs and full provenance
    derivation chains), a provenance cross-check, and the shrunken history
    in histlang syntax when shrinking ran. *)

val dot : t -> string
(** The execution forest with the observed order overlaid; on a rejection
    the witness cycle's nodes and edges are highlighted and members are
    annotated with their cycle position. *)

val pp : Format.formatter -> t -> unit
(** Full human transcript: {!Repro_core.Compc.explain}, then per-edge
    provenance derivation chains and the shrink summary (with the shrunken
    history printed in histlang syntax). *)
