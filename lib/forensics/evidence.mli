(** Machine-readable evidence reports for Comp-C verdicts.

    An evidence value bundles everything forensic about one verdict: the
    witness cycle classified edge by edge ({!Repro_core.Reduction.cycle_edges}),
    the observed-order provenance of each cycle edge
    ({!Repro_core.Provenance}), the optional 1-minimal shrunken
    counterexample ({!Repro_workload.Shrink}), and per-level front sizes.
    Three renderings share the one value: {!to_json} (schema ["evidence/1"],
    built on {!Repro_obs.Json}), {!dot} (the execution forest with the
    witness cycle highlighted), and {!pp} (the human transcript —
    {!Repro_core.Compc.explain} plus derivation chains and the shrink
    summary).

    Strictly cold-path machinery: {!build} does real work only on a
    rejection, and nothing in the accept fast path depends on this
    library. *)

open Repro_order.Ids

type t

val build :
  ?shrink:bool ->
  ?max_probes:int ->
  ?extra:(string * Repro_obs.Json.t) list ->
  Repro_core.Compc.verdict ->
  t
(** [build v] assembles the evidence for [v].  On a rejection it replays
    the observed-order provenance and classifies the witness cycle's edges;
    with [shrink] (default [false]) it additionally runs the delta-debugging
    shrinker ([max_probes] forwarded, default 2000).  [extra] fields are
    appended verbatim to the JSON object — the monitor uses this to record
    the violating prefix.  On an accepted verdict the evidence is just the
    verdict and the serial order. *)

val provenance : t -> Repro_core.Provenance.t option
(** The replayed provenance index ([None] on accepted verdicts). *)

val edges : t -> ((id * id) * Repro_core.Reduction.edge) list
(** The classified witness-cycle edges ([[]] on accepted verdicts). *)

val shrunk : t -> Repro_workload.Shrink.result option

val to_json : t -> Repro_obs.Json.t
(** Schema ["evidence/1"]: verdict, history sizes, per-level fronts, and —
    on rejection — the failure (kind, level, cycle members with labels and
    owning schedules, edges with witness pairs and full provenance
    derivation chains), a provenance cross-check, and the shrunken history
    in histlang syntax when shrinking ran. *)

val dot : t -> string
(** The execution forest with the observed order overlaid; on a rejection
    the witness cycle's nodes and edges are highlighted and members are
    annotated with their cycle position. *)

val pp : Format.formatter -> t -> unit
(** Full human transcript: {!Repro_core.Compc.explain}, then per-edge
    provenance derivation chains and the shrink summary (with the shrunken
    history printed in histlang syntax). *)
