(** Composite correctness (Comp-C, Def. 20) — the top-level checker API.

    A composite execution is Comp-C iff it is level-N-contained in a serial
    front, which by Theorem 1 holds iff the level-by-level reduction of
    {!Reduction} completes.  {!check} runs the whole pipeline — observed
    order, fronts, reduction — and returns a verdict carrying every
    intermediate object, so callers can print proofs and counterexamples.

    {[
      let verdict = Compc.check history in
      if Compc.is_correct_verdict verdict then
        Fmt.pr "serializable as %a@." Fmt.(list int) (Compc.serial_order verdict)
      else Compc.explain Fmt.stdout verdict
    ]} *)

open Repro_model
open Repro_order.Ids

type verdict = {
  history : History.t;
  relations : Observed.relations;
  certificate : Reduction.certificate;
}

val check :
  ?trace:Repro_obs.Trace.t -> ?metrics:Repro_obs.Metrics.t -> History.t -> verdict
(** Decide Comp-C for the history.  [trace] and [metrics] (defaulting to
    the disabled null instances) are threaded through
    {!Observed.compute} and {!Reduction.reduce} — see those for the event
    and metric vocabulary; {!check} itself adds the counter [compc.checks]
    and the end-to-end wall-time histogram [compc.check_wall_s]. *)

val is_correct :
  ?trace:Repro_obs.Trace.t -> ?metrics:Repro_obs.Metrics.t -> History.t -> bool
(** [is_correct h] is [Reduction.is_correct (check h).certificate]. *)

val is_correct_verdict : verdict -> bool

val serial_order : verdict -> id list
(** The witness serial order of root transactions; raises [Invalid_argument]
    on an incorrect execution. *)

val failure : verdict -> Reduction.failure option

val explain : Format.formatter -> verdict -> unit
(** Human-readable account of the reduction: every front with its observed
    order, input orders and generalized conflicts, every step's witness
    layout, and the verdict (with the failing cycle if incorrect). *)
