open Repro_model
open Repro_order.Ids

type verdict = {
  history : History.t;
  relations : Observed.relations;
  certificate : Reduction.certificate;
}

(* One-shot facade over the engine: a fresh session, advanced once, its
   state exposed as the traditional verdict record.  [Engine.analyze]
   forces the certificate and emits the compc.* check metrics. *)
let check ?(trace = Repro_obs.Trace.null) ?(metrics = Repro_obs.Metrics.null)
    history =
  let s = Engine.of_history ~obs:(Repro_obs.Sink.v ~trace ~metrics ()) history in
  {
    history;
    relations = Option.get (Engine.relations s);
    certificate = Engine.certificate s;
  }

let is_correct_verdict v = Reduction.is_correct v.certificate

let is_correct ?trace ?metrics h = is_correct_verdict (check ?trace ?metrics h)

let serial_order v =
  match v.certificate.Reduction.outcome with
  | Ok serial -> serial
  | Error _ -> invalid_arg "Compc.serial_order: execution is not Comp-C"

let failure v =
  match v.certificate.Reduction.outcome with Ok _ -> None | Error f -> Some f

let pp_front_detail h rel ppf (f : Front.t) =
  let pn = History.pp_node h in
  let pp_pairs ppf r =
    Fmt.(list ~sep:(any ",@ ") (pair ~sep:(any " < ") pn pn)) ppf (Repro_order.Rel.to_list r)
  in
  Fmt.pf ppf "@[<v 2>level %d front: {%a}" f.Front.index
    Fmt.(list ~sep:comma pn)
    (Int_set.elements f.Front.members);
  if not (Repro_order.Rel.is_empty f.Front.obs) then
    Fmt.pf ppf "@ observed order: %a" pp_pairs f.Front.obs;
  if not (Repro_order.Rel.is_empty f.Front.inp) then
    Fmt.pf ppf "@ input orders:   %a" pp_pairs f.Front.inp;
  (match Front.conflict_pairs h rel f with
  | [] -> ()
  | pairs ->
    Fmt.pf ppf "@ conflicts:      %a"
      Fmt.(list ~sep:(any ",@ ") (pair ~sep:(any " ~ ") pn pn))
      pairs);
  Fmt.pf ppf "@]"

let explain ppf v =
  let h = v.history in
  let pn = History.pp_node h in
  Fmt.pf ppf "composite system of order %d (%d schedules, %d nodes)@."
    (History.order h) (History.n_schedules h) (History.n_nodes h);
  Fmt.pf ppf "%a@." (pp_front_detail h v.relations) v.certificate.Reduction.initial;
  List.iter
    (fun (s : Reduction.step) ->
      Fmt.pf ppf "step %d: witness layout %a@." s.Reduction.level
        Fmt.(list ~sep:(any " ") pn)
        s.Reduction.layout;
      Fmt.pf ppf "%a@." (pp_front_detail h v.relations) s.Reduction.front)
    v.certificate.Reduction.steps;
  match v.certificate.Reduction.outcome with
  | Ok serial ->
    Fmt.pf ppf "verdict: Comp-C; serial root order: %a@."
      Fmt.(list ~sep:(any " << ") pn)
      serial
  | Error f ->
    Fmt.pf ppf "verdict: NOT Comp-C; %a@."
      (Reduction.pp_failure ~rel:v.relations h)
      f
