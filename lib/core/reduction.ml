open Repro_order
open Repro_model
open Ids

type failure =
  | Front_not_cc of { index : int; cycle : id list }
  | No_calculation of { level : int; cluster_cycle : id list }
  | Intra_contradiction of { level : int; tx : id; cycle : id list }

type step = { level : int; front : Front.t; layout : id list }

type certificate = {
  initial : Front.t;
  steps : step list;
  outcome : (id list, failure) result;
}

let failure_cycle = function
  | Front_not_cc { cycle; _ } -> cycle
  | No_calculation { cluster_cycle; _ } -> cluster_cycle
  | Intra_contradiction { cycle; _ } -> cycle

let failure_level = function
  | Front_not_cc { index; _ } -> index
  | No_calculation { level; _ } -> level
  | Intra_contradiction { level; _ } -> level

type edge =
  | Obs_edge of { via : id * id }
  | Inp_edge of { via : id * id }
  | Intra_edge of { via : id * id }
  | Unexplained

(* Classify each consecutive (and the closing) edge of a failure's witness
   cycle against the relations the cycle was found in.  A [No_calculation]
   cycle runs over cluster representatives — level-[lvl] transactions
   standing for their operations — so the witness pair [via] justifying a
   quotient edge may be an operation pair one level below the
   representatives.  Preference order: an observed pair explains the most
   (it has a Def. 10 derivation), then input orders, then the transaction's
   own weak intra order (Intra_contradiction cycles only). *)
let cycle_edges h (rel : Observed.relations) f =
  let lvl = failure_level f in
  let members v =
    match f with
    | No_calculation _ -> (
      match History.sched_of_tx h v with
      | Some s
        when History.level h s = lvl && History.children h v <> [] ->
        History.children h v
      | _ -> [ v ])
    | Front_not_cc _ | Intra_contradiction _ -> [ v ]
  in
  let obs_counts x y =
    Rel.mem x y rel.Observed.obs
    && (match f with
       | Front_not_cc _ -> true
       | No_calculation _ | Intra_contradiction _ ->
         (* Layout constraints keep only the generalized conflicts. *)
         Observed.conflict h rel x y)
  in
  let intra_counts x y =
    match f with
    | Intra_contradiction { tx; _ } ->
      Rel.mem x y (History.node h tx).History.intra_weak
    | _ -> false
  in
  let witness a b =
    let xs = members a and ys = members b in
    let probe pred ctor =
      List.find_map
        (fun x ->
          List.find_map (fun y -> if pred x y then Some (ctor x y) else None) ys)
        xs
    in
    match probe obs_counts (fun x y -> Obs_edge { via = (x, y) }) with
    | Some e -> e
    | None -> (
      match
        probe
          (fun x y -> Rel.mem x y rel.Observed.inp)
          (fun x y -> Inp_edge { via = (x, y) })
      with
      | Some e -> e
      | None -> (
        match probe intra_counts (fun x y -> Intra_edge { via = (x, y) }) with
        | Some e -> e
        | None -> Unexplained))
  in
  match failure_cycle f with
  | [] -> []
  | first :: _ as cycle ->
    let rec go = function
      | [] -> []
      | [ last ] -> [ ((last, first), witness last first) ]
      | a :: (b :: _ as rest) -> ((a, b), witness a b) :: go rest
    in
    go cycle

let pp_failure ?rel h ppf f =
  let pn = History.pp_node_sched h in
  let pp_cycle ppf cycle =
    match rel with
    | None -> Fmt.(list ~sep:(any " -> ") pn) ppf cycle
    | Some rel ->
      (* Annotated rendering, closing the cycle: the separator names the
         relation each edge came from. *)
      let arrow = function
        | Obs_edge _ -> "-obs->"
        | Inp_edge _ -> "-inp->"
        | Intra_edge _ -> "-intra->"
        | Unexplained -> "->"
      in
      let edges = cycle_edges h rel f in
      List.iter (fun ((a, _), e) -> Fmt.pf ppf "%a %s " pn a (arrow e)) edges;
      (match cycle with v :: _ -> pn ppf v | [] -> ())
  in
  match f with
  | Front_not_cc { index; cycle } ->
    Fmt.pf ppf "level %d front is not conflict consistent: cycle %a" index
      pp_cycle cycle
  | No_calculation { level; cluster_cycle } ->
    Fmt.pf ppf
      "no calculation at step %d: transactions cannot be isolated, cluster cycle %a"
      level pp_cycle cluster_cycle
  | Intra_contradiction { level; tx; cycle } ->
    Fmt.pf ppf
      "at step %d the intra-transaction order of %a contradicts the observed order: cycle %a"
      level pn tx pp_cycle cycle

module Trace = Repro_obs.Trace
module Metrics = Repro_obs.Metrics
module Json = Repro_obs.Json

(* One reduction step: isolate every level-[lvl] transaction inside the
   previous front [prev] and produce the level-[lvl] front.  On success
   also returns the cluster count of the contracted graph (telemetry). *)
let reduce_step h rel lvl (prev : Front.t) =
  let level_txs =
    History.schedules_at_level h lvl
    |> List.concat_map (fun s ->
           Int_set.elements (History.schedule h s).History.transactions)
  in
  (* Cluster map: operations of a level-[lvl] transaction map to the
     transaction; every other front member stands for itself.  Transaction
     ids never collide with previous-front member ids, so cluster ids are
     unambiguous. *)
  let cluster = Hashtbl.create 64 in
  List.iter
    (fun t -> List.iter (fun c -> Hashtbl.replace cluster c t) (History.children h t))
    level_txs;
  let cls n = match Hashtbl.find_opt cluster n with Some t -> t | None -> n in
  let constraints = Front.layout_constraints h rel prev in
  (* The constraints restricted to one transaction's operations, probed by
     successor set rather than by scanning the whole relation: the front's
     constraint graph is dense (up to |members|² pairs) while a transaction
     has only a handful of operations, so a per-transaction [Rel.restrict]
     would make this step quadratic in the front size. *)
  let local_constraints ops =
    Int_set.fold
      (fun a acc ->
        Int_set.fold
          (fun b acc -> Rel.add a b acc)
          (Int_set.inter (Rel.succs constraints a) ops)
          acc)
      ops Rel.empty
  in
  (* Intra-cluster feasibility (Def. 14): within one transaction, the
     observed/input orders joined with the transaction's weak
     intra-transaction order must be acyclic.  The per-transaction graphs
     are node-disjoint, so their union is block-diagonal and one dense
     cycle search decides every transaction at once; a cycle cannot leave
     its block, so its nodes name the culprit transaction. *)
  let intra_failure =
    let n = History.n_nodes h in
    let mark = Bytes.make n '\000' in
    let count = ref 0 in
    List.iter
      (fun t ->
        List.iter
          (fun c ->
            if Bytes.get mark c = '\000' then begin
              Bytes.set mark c '\001';
              incr count
            end)
          (History.children h t))
      level_txs;
    let ids = Array.make (max 1 !count) 0 in
    let j = ref 0 in
    for v = 0 to n - 1 do
      if Bytes.get mark v = '\001' then begin
        ids.(!j) <- v;
        incr j
      end
    done;
    let b = Bitrel.of_ids (if !count = 0 then [||] else ids) in
    Rel.iter
      (fun x y ->
        match (Hashtbl.find_opt cluster x, Hashtbl.find_opt cluster y) with
        | Some t1, Some t2 when t1 = t2 -> Bitrel.add b x y
        | _ -> ())
      constraints;
    List.iter
      (fun t -> Rel.iter (fun x y -> Bitrel.add b x y) (History.node h t).History.intra_weak)
      level_txs;
    match Bitrel.find_cycle b with
    | Some cycle ->
      Some
        (Intra_contradiction
           { level = lvl; tx = History.parent_tx h (List.hd cycle); cycle })
    | None -> None
  in
  match intra_failure with
  | Some f -> Error f
  | None -> (
    (* Contract the constraint graph by the cluster map and sort it, both in
       the dense representation: cluster identifiers form the universe, so
       isolated clusters still appear in the calculation order. *)
    let cluster_universe =
      Int_set.of_list (List.map cls (Int_set.elements prev.Front.members))
    in
    let quotient = Bitrel.create cluster_universe in
    Rel.iter
      (fun a b ->
        let ca = cls a and cb = cls b in
        if ca <> cb then Bitrel.add quotient ca cb)
      constraints;
    match Bitrel.topo_sort quotient with
    | None ->
      let cycle =
        match Bitrel.find_cycle quotient with Some c -> c | None -> assert false
      in
      Error (No_calculation { level = lvl; cluster_cycle = cycle })
    | Some cluster_order ->
      (* Expand the cluster order into the witness layout F**: clusters in
         quotient-topological order, each cluster laid out consistently with
         its internal constraints. *)
      let tx_set = Int_set.of_list level_txs in
      let layout =
        List.concat_map
          (fun c ->
            if Int_set.mem c tx_set then begin
              let ops = Int_set.of_list (History.children h c) in
              let local =
                Rel.union (local_constraints ops) (History.node h c).History.intra_weak
              in
              (* Acyclic: the intra-cluster check above succeeded. *)
              Option.get (Rel.topo_sort ~nodes:ops local)
            end
            else [ c ])
          cluster_order
      in
      let front = Front.make h rel lvl in
      Ok ({ level = lvl; front; layout }, Int_set.cardinal cluster_universe))

let failure_kind = function
  | Front_not_cc _ -> "front_not_cc"
  | No_calculation _ -> "no_calculation"
  | Intra_contradiction _ -> "intra_contradiction"

let reduce ?rel ?(trace = Trace.null) ?(metrics = Metrics.null) h =
  let rel = match rel with Some r -> r | None -> Observed.compute ~metrics h in
  let initial = Front.initial h rel in
  let order = History.order h in
  let telemetry = Trace.enabled trace || Metrics.enabled metrics in
  let record_step ~t0 ~level ~prev_size (step : step option) ~clusters outcome =
    if telemetry then begin
      let wall = Repro_obs.Clock.now_wall () -. t0 in
      Metrics.incr metrics "compc.steps";
      Metrics.observe metrics "compc.step_wall_s" wall;
      if Trace.enabled trace then
        Trace.complete trace ~cat:"compc" ~ts:(Trace.now_us () -. (wall *. 1e6))
          ~dur:(wall *. 1e6)
          ~args:
            ([
               ("level", Json.Int level);
               ("prev_front", Json.Int prev_size);
               ("outcome", Json.String outcome);
             ]
            @ (match step with
              | Some s ->
                [ ("front", Json.Int (Int_set.cardinal s.front.Front.members)) ]
              | None -> [])
            @ match clusters with
              | Some n -> [ ("clusters", Json.Int n) ]
              | None -> [])
          "reduction_step"
    end
  in
  let finish outcome =
    (match outcome with
    | Ok _ -> Metrics.incr metrics "compc.accept"
    | Error f ->
      Metrics.incr metrics "compc.reject";
      Metrics.incr metrics ("compc.failure." ^ failure_kind f);
      if Trace.enabled trace then
        Trace.instant trace ~cat:"compc" ~ts:(Trace.now_us ())
          ~args:[ ("kind", Json.String (failure_kind f)) ]
          "failure");
    outcome
  in
  let check_cc (front : Front.t) =
    match Front.cc_cycle front with
    | Some cycle -> Some (Front_not_cc { index = front.Front.index; cycle })
    | None -> None
  in
  if Trace.enabled trace then
    Trace.instant trace ~cat:"compc" ~ts:(Trace.now_us ())
      ~args:
        [
          ("members", Json.Int (Int_set.cardinal initial.Front.members));
          ("order", Json.Int order);
        ]
      "front_init";
  match check_cc initial with
  | Some f -> { initial; steps = []; outcome = finish (Error f) }
  | None ->
    let rec go lvl steps prev =
      if lvl > order then begin
        let final = prev in
        match
          Rel.topo_sort ~nodes:final.Front.members (Front.constraint_graph final)
        with
        | Some serial ->
          { initial; steps = List.rev steps; outcome = finish (Ok serial) }
        | None -> assert false (* final front passed its CC check *)
      end
      else begin
        let t0 = if telemetry then Repro_obs.Clock.now_wall () else 0.0 in
        let prev_size = Int_set.cardinal prev.Front.members in
        match reduce_step h rel lvl prev with
        | Error f ->
          record_step ~t0 ~level:lvl ~prev_size None ~clusters:None
            (failure_kind f);
          { initial; steps = List.rev steps; outcome = finish (Error f) }
        | Ok (step, clusters) -> (
          match check_cc step.front with
          | Some f ->
            record_step ~t0 ~level:lvl ~prev_size (Some step)
              ~clusters:(Some clusters) (failure_kind f);
            {
              initial;
              steps = List.rev (step :: steps);
              outcome = finish (Error f);
            }
          | None ->
            record_step ~t0 ~level:lvl ~prev_size (Some step)
              ~clusters:(Some clusters) "ok";
            go (lvl + 1) (step :: steps) step.front)
      end
    in
    go 1 [] initial

let is_correct c = Result.is_ok c.outcome
