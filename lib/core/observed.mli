(** Observed order and generalized conflicts (Defs. 10–11).

    The observed order [<_o] is how the theory relates transactions that
    share no schedule: interference among low-level operations is propagated
    {e upwards} along the execution trees.  The generative rules (Def. 10),
    as implemented:

    + {e base}: between two operations of a common schedule, that schedule
      is authoritative - the observed order is its weak output order.
      Def. 10 rule 1 states this for leaves; the Figure-4 narrative ("the
      orders obtained in the previous step are forgotten" when the common
      schedule sees no conflict) extends it to internal operations.
      Well-behaved schedules emit {e minimal} outputs, so these pairs are
      exactly the conflicting pairs, the intra-transaction orders, the
      input-order obligations, and their transitive combinations;
    + {e rule 2}: a pair of conflicting operations of a common schedule
      climbs to the parents (the schedule's serialization decision);
    + {e rule 3}: a cross-schedule observed pair climbs to the parents
      unconditionally;
    + a climbed pair is {e kept} only when the parents do not themselves
      share a schedule: if they do, that schedule's own output order is
      already in the base and anything else is forgotten (this is what lets
      commutativity knowledge erase lower-level interference);
    + transitivity.

    Propagation and transitivity feed each other, so the relation is their
    least fixpoint over the base.  [parent] is Def. 5's: a root is its own
    parent, which lets pairs keep climbing on the non-root side.

    The generalized conflict relation CON (Def. 11) is derived: operations
    of a common schedule conflict iff that schedule's own predicate says so;
    operations of different schedules conflict iff they are observed-related
    (interaction at a lower level is pessimistically treated as a
    conflict). *)

open Repro_order
open Repro_model

type relations = {
  obs : Rel.t;  (** The observed order [<_o], transitively closed, over all node ids. *)
  inp : Rel.t;
      (** The union of all schedules' weak input orders [→] — the input-order
          component of every computational front (Def. 12). *)
  inp_strong : Rel.t;  (** The union of all strong input orders [⇒]. *)
}

val base : History.t -> Rel.t
(** The base pairs of the observed order (the Def. 10 rules applied to the
    weak output orders, before propagation and closure) — a pure function
    of the history, recomputed on demand rather than carried in
    {!relations}; useful for explanation output. *)

val compute : ?metrics:Repro_obs.Metrics.t -> History.t -> relations
(** Least fixpoint of the Def. 10 rules over the whole history.

    [metrics] (default {!Repro_obs.Metrics.null}) receives the
    relation-closure sizing of the run: the counter
    [compc.observed_computes] (full fixpoint runs — the engine's
    cache-sharing tests assert this stays at one per session), gauges
    [compc.obs_base_pairs] (base pairs before propagation),
    [compc.obs_pairs] (pairs after closure) and [compc.obs_rounds]
    (fixpoint rounds), plus the time histograms [compc.observed_wall_s]
    (monotonic wall clock) and [compc.observed_cpu_s] (process CPU clock —
    these diverge under the parallel batch drivers). *)

type delta = {
  d_obs : (Ids.id * Ids.id) list;
      (** Observed pairs in [obs] but not [prev.obs], in saturation
          (insertion) order. *)
  d_inp : (Ids.id * Ids.id) list;  (** New weak input pairs. *)
  d_inp_strong : (Ids.id * Ids.id) list;  (** New strong input pairs. *)
}
(** The exact growth of an {!extend} step — what the append added to each
    relation.  Callers that maintain their own incremental structures
    (the engine's order kernel) consume these instead of diffing the
    persistent relations, which would cost O(|closure|) per append. *)

type inc
(** Reusable dense scratch for {!extend}: a Bigarray bit mirror of the
    observed closure and its inverse (arenas only) plus a flat worklist, so the
    saturation loop probes and scans bits instead of allocating through
    the persistent maps.  One value per monitored session; it is rebuilt
    from [prev.obs] transparently after {!inc_invalidate}. *)

val inc_create : unit -> inc

val inc_invalidate : inc -> unit
(** Mark the mirror stale (the session rolled back or recomputed from
    scratch); the next {!extend} rebuilds it from its [prev] argument. *)

exception Below_floor of Ids.id * Ids.id
(** Raised by {!extend} on a windowed mirror when the saturation derives a
    pair {e targeting} a node below the floor: staying exact would require
    joining against the folded closure, which was released.  The engine
    treats this as a window breach and restores the full dense state. *)

val inc_rebase : inc -> floor:int -> unit
(** Move the mirror's floor (frontier truncation): nodes below [floor]
    are folded, the arenas index by [id - floor] and mirror only pairs
    with both endpoints at or above it, and raising the floor releases
    the arenas' backing store.  Implies {!inc_invalidate}.  Pairs from a
    folded source into the window ("boundary pairs") are kept in the
    persistent relation only and joined against window successors on the
    fly; pairs targeting the folded region raise {!Below_floor} during
    {!extend}.  [~floor:0] restores the untruncated regime (the next
    sync rebuilds full-size).  Raises [Invalid_argument] on a negative
    floor. *)

val inc_floor : inc -> int

val inc_resident_words : inc -> int
(** Approximate words held by the mirror's backing store (the Bigarray
    arenas live off the OCaml heap, so [Obj.reachable_words] cannot see
    them) — the memory-accounting probe for engine introspection. *)

val extend :
  ?metrics:Repro_obs.Metrics.t ->
  ?inc:inc ->
  prev:relations ->
  n_old:int ->
  History.t ->
  relations * delta
(** [extend ~prev ~n_old h] recomputes {!relations} for [h] given that [h]
    {e extends} the history [prev] was computed from — [n_old] nodes, same
    schedules, shared nodes keep identifiers/labels/parents, relations
    restricted to shared nodes only grow (the {!History.prefix_by_roots}
    chain shape).  The base rules only ever add pairs under extension and
    every new weak-output pair touches a node [>= n_old], so the delta
    base pairs are replayed from the new endpoints' adjacency alone; the
    Def. 10 rules are monotone, so the closure is then grown from
    [prev.obs] by worklist saturation — joining each genuinely new pair
    against current successors/predecessors and climbing it — instead of
    restarting the dense fixpoint.  When no new base pair appeared the
    closed relation is reused as-is.  The input orders are grown the same
    way: per-schedule replay of the successor-set tails past [n_old]
    (every new input pair touches a new node, by the extension contract),
    instead of re-unioning every schedule's full order.  Equals
    {!compute} [h] (the [Final] variant)
    on the relations, and the returned {!delta} is exactly the pairwise
    difference; across a monitored run the total saturation work is
    proportional to the final closure size.

    [inc] supplies the reusable dense mirror; without it a private one is
    built for the call (correct, but the O(|obs|) rebuild recurs on every
    append).  [metrics] additionally receives the histograms
    [compc.obs_delta_base_pairs] and [compc.obs_saturated_pairs]. *)

(** {1 Ablation support}

    The published definitions admit more than one reading of how pulled-up
    pairs interact with a common schedule's commutativity knowledge; the
    reading implemented by {!compute} is the one under which the paper's
    Theorems 2-4 and figure narratives hold (validated empirically, see
    DESIGN.md section 4 and experiment E13).  The rejected readings remain
    available so the ablation experiment can quantify how each one breaks:

    - {!No_forgetting}: every observed pair climbs to the parents, even
      between commuting operations of a common schedule — low-level orders
      are never forgotten, so the criterion over-rejects (it collapses
      towards LLSR and disagrees with SCC on stacks);
    - {!Eager_forgetting}: climbed pairs landing between operations of a
      common schedule are dropped from the observed order entirely — fronts
      lose the pulled serialization orders, so the criterion over-accepts
      (it misses input-order violations that SCC catches). *)

type variant = Final | No_forgetting | Eager_forgetting

val compute_with :
  ?metrics:Repro_obs.Metrics.t -> variant -> History.t -> relations
(** [compute_with Final] is {!compute}. *)

val conflict : History.t -> relations -> Ids.id -> Ids.id -> bool
(** The generalized conflict relation CON of Def. 11 (symmetric). *)

val conflict_pairs : History.t -> relations -> Ids.Int_set.t -> (Ids.id * Ids.id) list
(** All generalized-conflict pairs within a node set, normalised with the
    smaller id first; used to display fronts. *)
