(* A thin facade over {!Engine}: the monitor {e is} a session whose only
   entry point is the incremental [extend].  Kept as a module of its own
   for the established vocabulary (append/undo/stats) and to preserve the
   historical error messages. *)

type t = Engine.t

type verdict = Engine.verdict =
  | Accepted of Repro_order.Ids.id list
  | Rejected of Reduction.failure

type stats = {
  appends : int;
  fastpath_hits : int;
  delta_hits : int;
  kernel_hits : int;
}

let create ?metrics ?recorder ?window () =
  Engine.create ~obs:(Repro_obs.Sink.v ?metrics ?recorder ()) ?window ()

let introspect ?deep t = Engine.introspect ?deep t

let append = Engine.extend

let verdict = Engine.verdict

let accepted = Engine.accepted

let truncate = Engine.truncate

let floor = Engine.floor

let undo t =
  try Engine.undo t
  with Invalid_argument msg ->
    (* Keep the historical no-snapshot message; let the truncation-boundary
       refusal surface distinctly (a different caller mistake). *)
    if msg = "Engine.undo: cannot roll back across a truncation boundary" then
      invalid_arg "Monitor.undo: cannot roll back across a truncation boundary"
    else invalid_arg "Monitor.undo: no snapshot held (undo depth is one)"

let history = Engine.history

let relations = Engine.relations

let obs_pairs = Engine.obs_pairs

let stats t =
  let s = Engine.stats t in
  {
    appends = s.Engine.appends;
    fastpath_hits = s.Engine.fastpath_hits;
    delta_hits = s.Engine.delta_hits;
    kernel_hits = s.Engine.kernel_hits;
  }
